//! Property-based tests for the simulation substrate.

use cagc_sim::event::EventQueue;
use cagc_sim::time::Nanos;
use cagc_sim::timeline::Timeline;
use cagc_harness::prop::*;

harness_proptest! {
    /// Events always pop in nondecreasing timestamp order, and ties preserve
    /// push (FIFO) order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut prev: Option<(Nanos, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((pt, pi)) = prev {
                prop_assert!(ev.at >= pt, "time went backwards");
                if ev.at == pt {
                    prop_assert!(ev.payload > pi, "FIFO violated on tie");
                }
            }
            prev = Some((ev.at, ev.payload));
        }
    }

    /// Popping a queue returns exactly the multiset of pushed payloads.
    #[test]
    fn event_queue_loses_nothing(times in vec(0u64..100, 0..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }

    /// All events at one timestamp pop in exactly their push order — the
    /// FIFO tie-break is total, not merely pairwise.
    #[test]
    fn same_timestamp_events_pop_in_push_order(
        n in 1usize..300,
        t in 0u64..1_000,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(t, i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    /// Interleaving scheduling with popping never reorders causally
    /// dependent events: an event scheduled *while handling* another (at a
    /// timestamp >= the handler's) always pops after it — even at zero
    /// delay, where only the FIFO tie-break separates parent and child.
    /// This is the property the host interface's doorbell/completion/irq
    /// event chains lean on.
    #[test]
    fn interleaved_schedule_pop_preserves_causal_order(
        delays in vec((0u64..300, 0u64..300), 1..100)
    ) {
        // Payload: (id, parent id). Each handled event schedules two
        // children at `now + d1` / `now + d2`; one event is handled per
        // script step, the rest drain at the end.
        let mut q = EventQueue::new();
        q.push(0, (0usize, usize::MAX));
        let mut next_id = 1usize;
        let mut parent_of: Vec<usize> = vec![usize::MAX];
        let mut pop_index: Vec<Option<usize>> = vec![None];
        let mut pops = 0usize;
        let mut now = 0u64;
        let handle = |ev: &cagc_sim::event::Event<(usize, usize)>,
                      now: &mut u64,
                      pops: &mut usize,
                      pop_index: &mut Vec<Option<usize>>|
         -> Result<(), TestCaseError> {
            if ev.at < *now {
                return Err(TestCaseError::fail("time went backwards"));
            }
            *now = ev.at;
            pop_index[ev.payload.0] = Some(*pops);
            *pops += 1;
            Ok(())
        };
        for &(d1, d2) in &delays {
            let ev = q.pop().expect("queue never runs dry while scheduling");
            handle(&ev, &mut now, &mut pops, &mut pop_index)?;
            let (id, at) = (ev.payload.0, ev.at);
            for d in [d1, d2] {
                q.push(at + d, (next_id, id));
                parent_of.push(id);
                pop_index.push(None);
                next_id += 1;
            }
        }
        while let Some(ev) = q.pop() {
            handle(&ev, &mut now, &mut pops, &mut pop_index)?;
        }
        for (child, &parent) in parent_of.iter().enumerate() {
            if parent == usize::MAX {
                continue;
            }
            let c = pop_index[child].expect("every scheduled event pops");
            let p = pop_index[parent].expect("parents popped before scheduling");
            prop_assert!(
                c > p,
                "child {child} (pop #{c}) overtook its parent {parent} (pop #{p})"
            );
        }
    }

    /// Timeline invariants: service is in-order and non-overlapping, every
    /// reservation starts no earlier than requested, and total busy time is
    /// the sum of durations.
    #[test]
    fn timeline_reservations_never_overlap(
        ops in vec((0u64..10_000, 1u64..500), 1..200)
    ) {
        let mut t = Timeline::new();
        let mut prev_end = 0u64;
        let mut total = 0u64;
        for &(ready, dur) in &ops {
            let r = t.reserve(ready, dur);
            prop_assert!(r.start >= ready);
            prop_assert!(r.start >= prev_end, "overlapping service");
            prop_assert_eq!(r.end, r.start + dur);
            prop_assert_eq!(r.queued, r.start - ready);
            prev_end = r.end;
            total += dur;
        }
        prop_assert_eq!(t.busy_total(), total);
        prop_assert_eq!(t.next_free(), prev_end);
        prop_assert_eq!(t.ops(), ops.len() as u64);
    }

    /// With monotone nondecreasing arrivals the queueing delay telescopes:
    /// completion of the k-th op equals max over prefixes of
    /// (arrival_i + sum of durations i..=k).
    #[test]
    fn timeline_matches_lindley_recurrence(
        ops in vec((0u64..1_000, 1u64..100), 1..100)
    ) {
        // Sort arrivals to form a valid arrival process.
        let mut arrivals: Vec<(u64, u64)> = ops;
        arrivals.sort_by_key(|&(a, _)| a);
        let mut t = Timeline::new();
        let mut lindley_end = 0u64; // Lindley: W_k = max(A_k, C_{k-1}) + S_k
        for &(a, s) in &arrivals {
            let r = t.reserve(a, s);
            lindley_end = a.max(lindley_end) + s;
            prop_assert_eq!(r.end, lindley_end);
        }
    }
}
