//! Property-based tests for the simulation substrate.

use cagc_sim::event::EventQueue;
use cagc_sim::time::Nanos;
use cagc_sim::timeline::Timeline;
use cagc_harness::prop::*;

harness_proptest! {
    /// Events always pop in nondecreasing timestamp order, and ties preserve
    /// push (FIFO) order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut prev: Option<(Nanos, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((pt, pi)) = prev {
                prop_assert!(ev.at >= pt, "time went backwards");
                if ev.at == pt {
                    prop_assert!(ev.payload > pi, "FIFO violated on tie");
                }
            }
            prev = Some((ev.at, ev.payload));
        }
    }

    /// Popping a queue returns exactly the multiset of pushed payloads.
    #[test]
    fn event_queue_loses_nothing(times in vec(0u64..100, 0..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }

    /// Timeline invariants: service is in-order and non-overlapping, every
    /// reservation starts no earlier than requested, and total busy time is
    /// the sum of durations.
    #[test]
    fn timeline_reservations_never_overlap(
        ops in vec((0u64..10_000, 1u64..500), 1..200)
    ) {
        let mut t = Timeline::new();
        let mut prev_end = 0u64;
        let mut total = 0u64;
        for &(ready, dur) in &ops {
            let r = t.reserve(ready, dur);
            prop_assert!(r.start >= ready);
            prop_assert!(r.start >= prev_end, "overlapping service");
            prop_assert_eq!(r.end, r.start + dur);
            prop_assert_eq!(r.queued, r.start - ready);
            prev_end = r.end;
            total += dur;
        }
        prop_assert_eq!(t.busy_total(), total);
        prop_assert_eq!(t.next_free(), prev_end);
        prop_assert_eq!(t.ops(), ops.len() as u64);
    }

    /// With monotone nondecreasing arrivals the queueing delay telescopes:
    /// completion of the k-th op equals max over prefixes of
    /// (arrival_i + sum of durations i..=k).
    #[test]
    fn timeline_matches_lindley_recurrence(
        ops in vec((0u64..1_000, 1u64..100), 1..100)
    ) {
        // Sort arrivals to form a valid arrival process.
        let mut arrivals: Vec<(u64, u64)> = ops;
        arrivals.sort_by_key(|&(a, _)| a);
        let mut t = Timeline::new();
        let mut lindley_end = 0u64; // Lindley: W_k = max(A_k, C_{k-1}) + S_k
        for &(a, s) in &arrivals {
            let r = t.reserve(a, s);
            lindley_end = a.max(lindley_end) + s;
            prop_assert_eq!(r.end, lindley_end);
        }
    }
}
