//! Deterministic seed derivation and the workspace PRNG.
//!
//! Experiments fan out into many PRNG consumers (per-workload generators,
//! the Random victim policy, per-cell perturbations). Deriving their seeds
//! ad hoc (`seed + 1`, `seed ^ constant`) invites accidental correlation;
//! [`derive_seed`] gives every named stream an independent, reproducible
//! seed from one root.
//!
//! [`SimRng`] is the single pseudo-random generator used everywhere in the
//! workspace: workload synthesis, the Random/D-Choices victim policies, and
//! the `cagc-harness` property-test case generator. One implementation
//! keeps every run bit-reproducible across platforms and crate versions —
//! there is no external `rand` to change algorithms under us.

/// Derive an independent sub-seed from `root` for the stream named `tag`.
///
/// SplitMix64 finalizer over `root ⊕ fnv1a(tag)`: well-distributed,
/// stable across platforms and releases, cheap.
pub fn derive_seed(root: u64, tag: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = root ^ h;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The splitmix64 finalizer: one round of strong 64-bit mixing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator seeded through splitmix64.
///
/// Small (32 bytes of state), fast (a handful of ALU ops per draw), and
/// statistically strong enough for every consumer in this workspace
/// (trace synthesis tolerances are a few percent over ≥10⁴ draws).
/// Identical seeds produce identical streams on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// A generator seeded from one `u64` (splitmix64 state expansion, the
    /// construction the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// A generator for the stream named `tag`, independent of any other tag
    /// derived from the same root (see [`derive_seed`]).
    pub fn for_stream(root: u64, tag: &str) -> Self {
        Self::seed_from_u64(derive_seed(root, tag))
    }

    /// Next raw 64-bit draw (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[range.start, range.end)`, unbiased (rejection
    /// sampling on the top of the 64-bit space).
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range_u64(&mut self, range: core::ops::Range<u64>) -> u64 {
        let span = range.end.checked_sub(range.start).filter(|&s| s > 0)
            .unwrap_or_else(|| panic!("empty range {}..{}", range.start, range.end));
        // Reject draws from the final partial copy of `span` so every value
        // is equally likely.
        let limit = u64::MAX - u64::MAX % span;
        loop {
            let x = self.next_u64();
            if x < limit {
                return range.start + x % span;
            }
        }
    }

    /// Uniform draw in `[range.start, range.end)` over `usize`.
    #[inline]
    pub fn gen_range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        self.gen_range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(derive_seed(7, "mail"), derive_seed(7, "mail"));
    }

    #[test]
    fn different_tags_decorrelate() {
        let a = derive_seed(7, "mail");
        let b = derive_seed(7, "homes");
        assert_ne!(a, b);
        // And differ in many bits, not just a few.
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn different_roots_decorrelate() {
        let a = derive_seed(1, "x");
        let b = derive_seed(2, "x");
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn empty_tag_is_fine() {
        assert_ne!(derive_seed(1, ""), derive_seed(2, ""));
    }

    #[test]
    fn simrng_is_seed_deterministic() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SimRng::seed_from_u64(8);
        assert_ne!(xs, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn f64_draws_stay_in_unit_interval_and_spread() {
        let mut r = SimRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_is_unbiased_enough() {
        let mut r = SimRng::seed_from_u64(11);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.gen_range_usize(0..7)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "bucket count {c}");
        }
        // Bounds are respected for awkward spans too.
        for _ in 0..1_000 {
            let x = r.gen_range_u64(5..6);
            assert_eq!(x, 5);
            assert!((10..13).contains(&r.gen_range_u64(10..13)));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        SimRng::seed_from_u64(0).gen_range_u64(4..4);
    }

    #[test]
    fn stream_derivation_decorrelates_generators() {
        let mut a = SimRng::for_stream(9, "mail");
        let mut b = SimRng::for_stream(9, "homes");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
