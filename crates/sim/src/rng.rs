//! Deterministic seed derivation.
//!
//! Experiments fan out into many PRNG consumers (per-workload generators,
//! the Random victim policy, per-cell perturbations). Deriving their seeds
//! ad hoc (`seed + 1`, `seed ^ constant`) invites accidental correlation;
//! [`derive_seed`] gives every named stream an independent, reproducible
//! seed from one root.

/// Derive an independent sub-seed from `root` for the stream named `tag`.
///
/// SplitMix64 finalizer over `root ⊕ fnv1a(tag)`: well-distributed,
/// stable across platforms and releases, cheap.
pub fn derive_seed(root: u64, tag: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = root ^ h;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(derive_seed(7, "mail"), derive_seed(7, "mail"));
    }

    #[test]
    fn different_tags_decorrelate() {
        let a = derive_seed(7, "mail");
        let b = derive_seed(7, "homes");
        assert_ne!(a, b);
        // And differ in many bits, not just a few.
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn different_roots_decorrelate() {
        let a = derive_seed(1, "x");
        let b = derive_seed(2, "x");
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn empty_tag_is_fine() {
        assert_ne!(derive_seed(1, ""), derive_seed(2, ""));
    }
}
