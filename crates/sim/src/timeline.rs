//! Single-server resource timelines.
//!
//! A [`Timeline`] models a unit that can do one thing at a time — a NAND die
//! executing reads/programs/erases, a channel transferring data, or the
//! SSD-internal hash engine. Work is *reserved* against the timeline: given
//! the earliest time the operation could start (`ready_at`) and its duration,
//! [`Timeline::reserve`] returns when it actually starts (after any earlier
//! reservation drains) and when it completes.
//!
//! This greedy in-order reservation discipline matches how FlashSim services
//! per-die command queues and is what makes garbage collection visibly delay
//! foreground I/O in the simulator: a GC erase reserves 1.5 ms of die time,
//! and the next user read on that die starts only after it.

use crate::time::Nanos;

/// The result of reserving an interval on a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the operation actually began (≥ the requested `ready_at`).
    pub start: Nanos,
    /// When the operation completes (`start + duration`).
    pub end: Nanos,
    /// Time spent waiting behind earlier reservations (`start - ready_at`).
    pub queued: Nanos,
}

/// A single-server resource with in-order (FIFO) service.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    busy_until: Nanos,
    busy_total: Nanos,
    ops: u64,
}

impl Timeline {
    /// An idle timeline at time zero.
    pub const fn new() -> Self {
        Self { busy_until: 0, busy_total: 0, ops: 0 }
    }

    /// Reserve `duration` of service, no earlier than `ready_at`.
    #[inline]
    pub fn reserve(&mut self, ready_at: Nanos, duration: Nanos) -> Reservation {
        let start = ready_at.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy_total += duration;
        self.ops += 1;
        Reservation { start, end, queued: start - ready_at }
    }

    /// Earliest time a new operation could start.
    #[inline]
    pub fn next_free(&self) -> Nanos {
        self.busy_until
    }

    /// Whether the timeline is idle at time `t`.
    #[inline]
    pub fn is_idle_at(&self, t: Nanos) -> bool {
        self.busy_until <= t
    }

    /// Total busy time accumulated across all reservations.
    #[inline]
    pub fn busy_total(&self) -> Nanos {
        self.busy_total
    }

    /// Number of operations reserved.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Utilisation over `[0, horizon]`: busy time / horizon (clamped to 1.0).
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy_total as f64 / horizon as f64).min(1.0)
        }
    }
}

/// An indexed set of [`Timeline`]s (e.g. one per NAND die or channel).
#[derive(Debug, Clone, Default)]
pub struct TimelineGroup {
    lines: Vec<Timeline>,
}

impl TimelineGroup {
    /// `n` idle timelines.
    pub fn new(n: usize) -> Self {
        Self { lines: vec![Timeline::new(); n] }
    }

    /// Number of timelines in the group.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Reserve on timeline `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range — callers derive the index from a
    /// validated physical address, so an out-of-range index is a logic bug.
    #[inline]
    pub fn reserve(&mut self, idx: usize, ready_at: Nanos, duration: Nanos) -> Reservation {
        self.lines[idx].reserve(ready_at, duration)
    }

    /// Immutable access to timeline `idx`.
    pub fn get(&self, idx: usize) -> &Timeline {
        &self.lines[idx]
    }

    /// Earliest `next_free` across the group (useful for idle detection).
    pub fn earliest_free(&self) -> Nanos {
        self.lines.iter().map(Timeline::next_free).min().unwrap_or(0)
    }

    /// Latest `next_free` across the group (when *everything* drains).
    pub fn all_drained_at(&self) -> Nanos {
        self.lines.iter().map(Timeline::next_free).max().unwrap_or(0)
    }

    /// Sum of busy time across all timelines.
    pub fn busy_total(&self) -> Nanos {
        self.lines.iter().map(Timeline::busy_total).sum()
    }

    /// Total operations across all timelines.
    pub fn ops(&self) -> u64 {
        self.lines.iter().map(Timeline::ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::us;

    #[test]
    fn idle_timeline_starts_immediately() {
        let mut t = Timeline::new();
        let r = t.reserve(us(100), us(12));
        assert_eq!(r.start, us(100));
        assert_eq!(r.end, us(112));
        assert_eq!(r.queued, 0);
    }

    #[test]
    fn busy_timeline_queues_work() {
        let mut t = Timeline::new();
        t.reserve(0, us(16)); // busy [0, 16us)
        let r = t.reserve(us(4), us(12)); // wants 4us, must wait
        assert_eq!(r.start, us(16));
        assert_eq!(r.end, us(28));
        assert_eq!(r.queued, us(12));
    }

    #[test]
    fn reservation_after_gap_leaves_idle_hole() {
        let mut t = Timeline::new();
        t.reserve(0, us(10));
        let r = t.reserve(us(50), us(10)); // arrives long after drain
        assert_eq!(r.start, us(50));
        assert_eq!(t.busy_total(), us(20)); // holes don't count as busy
        assert_eq!(t.ops(), 2);
    }

    #[test]
    fn zero_duration_reservation_is_a_fence() {
        let mut t = Timeline::new();
        t.reserve(0, us(10));
        let r = t.reserve(0, 0);
        assert_eq!(r.start, us(10));
        assert_eq!(r.end, us(10));
    }

    #[test]
    fn utilization_is_bounded() {
        let mut t = Timeline::new();
        t.reserve(0, us(50));
        assert!((t.utilization(us(100)) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(us(10)), 1.0); // clamped
        assert_eq!(t.utilization(0), 0.0);
    }

    #[test]
    fn group_reserves_independently() {
        let mut g = TimelineGroup::new(4);
        g.reserve(0, 0, us(100));
        let r = g.reserve(1, 0, us(5)); // different die: no interference
        assert_eq!(r.start, 0);
        assert_eq!(g.earliest_free(), 0); // dies 2,3 still idle
        assert_eq!(g.all_drained_at(), us(100));
        assert_eq!(g.busy_total(), us(105));
        assert_eq!(g.ops(), 2);
    }

    #[test]
    fn is_idle_at_boundary() {
        let mut t = Timeline::new();
        t.reserve(0, us(10));
        assert!(!t.is_idle_at(us(9)));
        assert!(t.is_idle_at(us(10))); // end is exclusive-busy
    }
}
