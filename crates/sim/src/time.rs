//! Simulated time base.
//!
//! All simulated time in this workspace is expressed in **nanoseconds** as a
//! plain `u64` ([`Nanos`]). A `u64` nanosecond clock wraps after ~584 years
//! of simulated time, far beyond any trace replay, and keeps arithmetic in
//! the hot path branch-free and cheap (no checked newtype in release builds;
//! the constructors and `Clock` assert monotonicity in debug builds).

/// Simulated time or duration, in nanoseconds.
pub type Nanos = u64;

/// `n` nanoseconds.
#[inline]
pub const fn ns(n: u64) -> Nanos {
    n
}

/// `n` microseconds as [`Nanos`].
#[inline]
pub const fn us(n: u64) -> Nanos {
    n * 1_000
}

/// `n` milliseconds as [`Nanos`].
#[inline]
pub const fn ms(n: u64) -> Nanos {
    n * 1_000_000
}

/// `n` seconds as [`Nanos`].
#[inline]
pub const fn sec(n: u64) -> Nanos {
    n * 1_000_000_000
}

/// Render a duration with an adaptive unit (`ns`, `us`, `ms`, `s`).
///
/// Used by report printers; favours two decimal places which is plenty for
/// human-readable latency tables.
pub fn fmt_duration(t: Nanos) -> String {
    if t < 1_000 {
        format!("{t}ns")
    } else if t < 1_000_000 {
        format!("{:.2}us", t as f64 / 1_000.0)
    } else if t < 1_000_000_000 {
        format!("{:.2}ms", t as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", t as f64 / 1_000_000_000.0)
    }
}

/// A monotonic simulated clock.
///
/// The clock never goes backwards: [`Clock::advance_to`] with a timestamp in
/// the past is a no-op, which lets callers blindly fast-forward to event
/// timestamps that may already have been overtaken by resource contention.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: Nanos,
}

impl Clock {
    /// A clock at time zero.
    #[inline]
    pub const fn new() -> Self {
        Self { now: 0 }
    }

    /// Current simulated time.
    #[inline]
    pub const fn now(&self) -> Nanos {
        self.now
    }

    /// Move the clock forward to `t` (no-op if `t` is in the past).
    #[inline]
    pub fn advance_to(&mut self, t: Nanos) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Move the clock forward by `d`.
    #[inline]
    pub fn advance_by(&mut self, d: Nanos) {
        self.now += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_scale() {
        assert_eq!(ns(7), 7);
        assert_eq!(us(1), 1_000);
        assert_eq!(us(12), 12_000);
        assert_eq!(ms(1), 1_000_000);
        assert_eq!(sec(2), 2_000_000_000);
    }

    #[test]
    fn table1_latencies_in_nanos() {
        // The paper's Table I parameters, sanity-checked in nanoseconds.
        assert_eq!(us(12), 12_000); // read
        assert_eq!(us(16), 16_000); // write
        assert_eq!(ms(1) + us(500), 1_500_000); // erase 1.5ms
        assert_eq!(us(14), 14_000); // hash
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(us(5));
        assert_eq!(c.now(), us(5));
        c.advance_to(us(3)); // past: ignored
        assert_eq!(c.now(), us(5));
        c.advance_by(us(2));
        assert_eq!(c.now(), us(7));
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(999), "999ns");
        assert_eq!(fmt_duration(us(12)), "12.00us");
        assert_eq!(fmt_duration(ms(1) + us(500)), "1.50ms");
        assert_eq!(fmt_duration(sec(3)), "3.00s");
    }
}
