//! Deterministic event queue.
//!
//! A thin wrapper over `BinaryHeap` that delivers events in nondecreasing
//! timestamp order with **FIFO tie-breaking**: two events pushed at the same
//! simulated timestamp pop in push order. `BinaryHeap` alone does not
//! guarantee that, and determinism is a hard requirement for reproducible
//! experiments (same seed ⇒ same report, bit for bit).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// An event scheduled at simulated time [`Event::at`], carrying `payload`.
#[derive(Debug, Clone)]
pub struct Event<P> {
    /// Simulated timestamp at which the event fires.
    pub at: Nanos,
    /// Monotonic sequence number assigned at push time (FIFO tie-break).
    pub seq: u64,
    /// The caller's payload.
    pub payload: P,
}

// Ordering is (at, seq), inverted so BinaryHeap's max-heap pops the minimum.
struct HeapEntry<P>(Event<P>);

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<P> Eq for HeapEntry<P> {}
impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest (at, seq) should be the heap maximum.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// Deterministic min-priority event queue keyed by timestamp.
///
/// ```
/// use cagc_sim::event::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(30, "late");
/// q.push(10, "first");
/// q.push(10, "second"); // same time: FIFO
/// assert_eq!(q.pop().unwrap().payload, "first");
/// assert_eq!(q.pop().unwrap().payload, "second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<P> {
    heap: BinaryHeap<HeapEntry<P>>,
    next_seq: u64,
}

impl<P> EventQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(cap), next_seq: 0 }
    }

    /// Schedule `payload` at time `at`. Returns the assigned sequence number.
    pub fn push(&mut self, at: Nanos, payload: P) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { at, seq, payload }));
        seq
    }

    /// Remove and return the earliest event (FIFO among equal timestamps).
    pub fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop().map(|e| e.0)
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<P> std::fmt::Debug for EventQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(50, 'c');
        q.push(10, 'a');
        q.push(30, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(42, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(15, 3);
        q.push(5, 4); // earlier than everything pending
        assert_eq!(q.pop().unwrap().payload, 4);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 2);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers keep increasing after clear, preserving global FIFO.
        let s = q.push(3, ());
        assert!(s >= 2);
    }

    #[test]
    fn determinism_same_inputs_same_order() {
        let build = || {
            let mut q = EventQueue::new();
            // A mix of duplicate and distinct timestamps.
            for (t, p) in [(5, 0), (3, 1), (5, 2), (1, 3), (3, 4), (5, 5)] {
                q.push(t, p);
            }
            std::iter::from_fn(move || q.pop().map(|e| (e.at, e.payload))).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
        assert_eq!(build(), vec![(1, 3), (3, 1), (3, 4), (5, 0), (5, 2), (5, 5)]);
    }
}
