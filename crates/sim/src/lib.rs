//! # cagc-sim — deterministic discrete-event simulation substrate
//!
//! This crate is the event-driven core that the CAGC reproduction builds its
//! SSD simulator on, playing the role that the simulation kernel plays inside
//! [FlashSim] (Kim et al., SIMUTools'09), which the paper used for its
//! prototype.
//!
//! It provides four small, heavily-tested building blocks:
//!
//! * [`time`] — a `u64`-nanosecond simulated time base with readable
//!   constructors (`us(12)`, `ms(2)`) and a monotonic [`time::Clock`].
//! * [`event`] — a generic, deterministic [`event::EventQueue`]: events that
//!   carry any payload, ordered by timestamp with FIFO tie-breaking, so two
//!   runs with the same inputs always pop events in the same order.
//! * [`timeline`] — [`timeline::Timeline`], a single-server busy/idle
//!   resource used to model NAND dies, channels and the hash engine. An
//!   operation *reserves* an interval and the timeline returns when the
//!   operation actually starts and completes; utilisation accounting comes
//!   for free. [`timeline::TimelineGroup`] manages an indexed set of them.
//! * [`rng`] — [`rng::derive_seed`] for correlation-free named seed streams
//!   and [`rng::SimRng`], the deterministic xoshiro256++ generator used by
//!   every random consumer in the workspace (no external `rand`).
//!
//! Everything here is deterministic and allocation-light: the hot paths
//! (`reserve`, `push`/`pop`) do no heap allocation beyond the containers'
//! amortised growth, per the HPC guidance this repository follows.
//!
//! [FlashSim]: https://doi.org/10.1109/SIMUL.2009.17
//!
//! ## Example: a tiny M/D/1 queue
//!
//! ```
//! use cagc_sim::event::EventQueue;
//! use cagc_sim::time::{us, Nanos};
//! use cagc_sim::timeline::Timeline;
//!
//! // Jobs arrive every 20us and need 12us of service on one server.
//! let mut q: EventQueue<u32> = EventQueue::new();
//! for job in 0..8u32 {
//!     q.push(us(20) * job as Nanos, job);
//! }
//! let mut server = Timeline::new();
//! let mut last_completion = 0;
//! while let Some(ev) = q.pop() {
//!     let r = server.reserve(ev.at, us(12));
//!     last_completion = r.end;
//! }
//! assert_eq!(last_completion, us(20) * 7 + us(12)); // never queues
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod event;
pub mod rng;
pub mod time;
pub mod timeline;

pub use event::{Event, EventQueue};
pub use rng::{derive_seed, SimRng};
pub use time::{ms, ns, sec, us, Clock, Nanos};
pub use timeline::{Reservation, Timeline, TimelineGroup};
