//! Trace characteristics analyzer (regenerates Table II from any trace).

use crate::trace::{OpKind, Trace};
use std::collections::HashSet;

/// Aggregate characteristics of a trace, in Table II's terms.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Workload name.
    pub name: String,
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Trim requests.
    pub trims: u64,
    /// writes / (reads + writes) — Table II "Write Ratio".
    pub write_ratio: f64,
    /// Fraction of written pages whose content appeared earlier in the
    /// trace — Table II "Dedup. Ratio".
    pub dedup_ratio: f64,
    /// Mean request size in KB (4 KB pages) — Table II "Aver. Req. Size".
    pub mean_req_kb: f64,
    /// Total pages written.
    pub written_pages: u64,
    /// Distinct contents observed.
    pub unique_contents: u64,
}

impl TraceProfile {
    /// Analyze `trace` (single pass).
    pub fn of(trace: &Trace) -> Self {
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut trims = 0u64;
        let mut total_pages = 0u64;
        let mut written_pages = 0u64;
        let mut dup_pages = 0u64;
        let mut seen = HashSet::new();

        for r in &trace.requests {
            total_pages += r.pages as u64;
            match r.kind {
                OpKind::Read => reads += 1,
                OpKind::Trim => trims += 1,
                OpKind::Write => {
                    writes += 1;
                    written_pages += r.pages as u64;
                    for c in &r.contents {
                        if !seen.insert(*c) {
                            dup_pages += 1;
                        }
                    }
                }
            }
        }
        let rw = reads + writes;
        Self {
            name: trace.name.clone(),
            reads,
            writes,
            trims,
            write_ratio: if rw == 0 { 0.0 } else { writes as f64 / rw as f64 },
            dedup_ratio: if written_pages == 0 {
                0.0
            } else {
                dup_pages as f64 / written_pages as f64
            },
            mean_req_kb: if trace.requests.is_empty() {
                0.0
            } else {
                total_pages as f64 * 4.0 / trace.requests.len() as f64
            },
            written_pages,
            unique_contents: seen.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Request;
    use cagc_dedup::ContentId;

    #[test]
    fn profile_of_hand_built_trace() {
        let t = Trace::new(
            "t",
            100,
            vec![
                Request::write(0, 0, vec![ContentId(1), ContentId(2)]),
                Request::write(1, 2, vec![ContentId(1)]), // duplicate page
                Request::read(2, 0, 1),
                Request::trim(3, 0, 4),
            ],
        );
        let p = TraceProfile::of(&t);
        assert_eq!(p.reads, 1);
        assert_eq!(p.writes, 2);
        assert_eq!(p.trims, 1);
        assert!((p.write_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.dedup_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.written_pages, 3);
        assert_eq!(p.unique_contents, 2);
        // (2 + 1 + 1 + 4) pages * 4KB / 4 requests = 8KB
        assert!((p.mean_req_kb - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_profile_is_zeroes() {
        let p = TraceProfile::of(&Trace::new("e", 10, vec![]));
        assert_eq!(p.write_ratio, 0.0);
        assert_eq!(p.dedup_ratio, 0.0);
        assert_eq!(p.mean_req_kb, 0.0);
    }

    #[test]
    fn all_duplicate_trace_has_high_ratio() {
        let reqs = (0..100)
            .map(|i| Request::write(i, 0, vec![ContentId(7)]))
            .collect();
        let p = TraceProfile::of(&Trace::new("dup", 10, reqs));
        assert!((p.dedup_ratio - 0.99).abs() < 1e-12);
        assert_eq!(p.unique_contents, 1);
    }
}
