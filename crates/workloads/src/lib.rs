//! # cagc-workloads — workload substrate
//!
//! The traces the CAGC experiments replay, and the machinery to make more:
//!
//! * [`trace`] — the request/trace model: timestamped, page-granular,
//!   content-carrying I/O (what the FIU SyLab traces provide).
//! * [`synth`] — the synthetic deduplicating workload generator, with
//!   controllable write ratio, dedup ratio, request-size distribution, LPN
//!   locality and content-popularity skew.
//! * [`fiu`] — presets reproducing the three FIU workloads' published
//!   characteristics (Table II: Mail / Homes / Web-vm). The real traces are
//!   not redistributable; see DESIGN.md for the substitution argument.
//! * [`files`] — scripted file create/share/delete scenarios (the Fig. 1 /
//!   Fig. 8 semantics).
//! * [`parser`] — native and FIU-style trace file parsing, plus a writer.
//! * [`analyze`] — single-pass trace characterization (regenerates
//!   Table II from any trace).
//! * [`zipf`] — the rank-skew sampler underlying the generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analyze;
pub mod files;
pub mod fiu;
pub mod mixer;
pub mod parser;
pub mod synth;
pub mod trace;
pub mod zipf;

pub use analyze::TraceProfile;
pub use files::{FileId, FileWorkloadBuilder};
pub use mixer::{
    concat, inject_trims, interleave, interleave_n, interleave_n_tagged, retime_poisson,
    scale_rate, truncate,
};
pub use fiu::FiuWorkload;
pub use parser::{parse_fiu, parse_native, write_native, ParseError};
pub use synth::SynthConfig;
pub use trace::{OpKind, Request, Trace};
pub use zipf::Zipf;
