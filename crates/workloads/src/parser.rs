//! Trace file parsing and writing.
//!
//! Two text formats:
//!
//! * **Native** — one request per line, written and read by this crate:
//!   ```text
//!   # time_us  op  lpn  pages  [contents]
//!   0      W  128  2  17,17
//!   1500   R  128  2
//!   2000   T  128  2
//!   ```
//!   Contents are comma-separated decimal content ids, one per page,
//!   required for `W`, forbidden otherwise.
//!
//! * **FIU-style** — the layout of the SyLab "IODedup" traces the paper
//!   replays (`ts pid process lba size op major minor hash`), where `lba`
//!   is in 512-byte sectors, `size` in sectors, and `hash` is the per-4KB
//!   content hash. Only the fields the simulator needs are consumed; the
//!   hash string is folded to a [`ContentId`]. This lets the real traces
//!   drop in when available.

use crate::trace::{OpKind, Request, Trace};
use cagc_dedup::ContentId;

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parse the native format. `logical_pages` bounds the trace's space.
pub fn parse_native(name: &str, logical_pages: u64, text: &str) -> Result<Trace, ParseError> {
    let mut requests = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let time_us: u64 = fields
            .next()
            .ok_or_else(|| err(lineno, "missing time"))?
            .parse()
            .map_err(|e| err(lineno, format!("bad time: {e}")))?;
        let op = fields.next().ok_or_else(|| err(lineno, "missing op"))?;
        let lpn: u64 = fields
            .next()
            .ok_or_else(|| err(lineno, "missing lpn"))?
            .parse()
            .map_err(|e| err(lineno, format!("bad lpn: {e}")))?;
        let pages: u32 = fields
            .next()
            .ok_or_else(|| err(lineno, "missing pages"))?
            .parse()
            .map_err(|e| err(lineno, format!("bad pages: {e}")))?;
        let at_ns = time_us * 1_000;
        let req = match op {
            "R" => Request::read(at_ns, lpn, pages),
            "T" => Request::trim(at_ns, lpn, pages),
            "W" => {
                let contents_field =
                    fields.next().ok_or_else(|| err(lineno, "write missing contents"))?;
                let contents: Vec<ContentId> = contents_field
                    .split(',')
                    .map(|c| c.parse::<u64>().map(ContentId))
                    .collect::<Result<_, _>>()
                    .map_err(|e| err(lineno, format!("bad content id: {e}")))?;
                if contents.len() != pages as usize {
                    return Err(err(
                        lineno,
                        format!("{} contents for {} pages", contents.len(), pages),
                    ));
                }
                Request::write(at_ns, lpn, contents)
            }
            other => return Err(err(lineno, format!("unknown op `{other}`"))),
        };
        if let Some(extra) = fields.next() {
            return Err(err(lineno, format!("trailing field `{extra}`")));
        }
        requests.push(req);
    }
    let trace = Trace { name: name.to_string(), logical_pages, requests };
    trace.validate().map_err(|m| err(0, m))?;
    Ok(trace)
}

/// Render a trace in the native format (round-trips through
/// [`parse_native`]).
pub fn write_native(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("# time_us op lpn pages [contents]\n");
    for r in &trace.requests {
        let t = r.at_ns / 1_000;
        match r.kind {
            OpKind::Read => out.push_str(&format!("{t} R {} {}\n", r.lpn, r.pages)),
            OpKind::Trim => out.push_str(&format!("{t} T {} {}\n", r.lpn, r.pages)),
            OpKind::Write => {
                let contents: Vec<String> =
                    r.contents.iter().map(|c| c.0.to_string()).collect();
                out.push_str(&format!("{t} W {} {} {}\n", r.lpn, r.pages, contents.join(",")));
            }
        }
    }
    out
}

/// Parse an FIU SyLab-style line set.
///
/// Layout per line: `ts_ns pid process lba_sectors size_sectors op major
/// minor hash` with `op` ∈ {R, W} (case-insensitive). Sector addresses are
/// converted to 4 KB pages (8 sectors/page, rounded down/up to cover the
/// extent); each written page receives the line's content hash.
pub fn parse_fiu(name: &str, logical_pages: u64, text: &str) -> Result<Trace, ParseError> {
    const SECTORS_PER_PAGE: u64 = 8;
    let mut requests: Vec<Request> = Vec::new();
    let mut t0: Option<u64> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 9 {
            return Err(err(lineno, format!("expected 9 fields, got {}", f.len())));
        }
        let ts: u64 =
            f[0].parse().map_err(|e| err(lineno, format!("bad timestamp: {e}")))?;
        let lba: u64 = f[3].parse().map_err(|e| err(lineno, format!("bad lba: {e}")))?;
        let sectors: u64 =
            f[4].parse().map_err(|e| err(lineno, format!("bad size: {e}")))?;
        if sectors == 0 {
            return Err(err(lineno, "zero-sector request"));
        }
        let first_page = lba / SECTORS_PER_PAGE;
        let last_page = (lba + sectors - 1) / SECTORS_PER_PAGE;
        let pages = (last_page - first_page + 1) as u32;
        let lpn = first_page % logical_pages.max(1);
        let pages = pages.min((logical_pages - lpn) as u32).max(1);
        let t0v = *t0.get_or_insert(ts);
        let at_ns = ts.saturating_sub(t0v);
        let req = match f[5] {
            "R" | "r" => Request::read(at_ns, lpn, pages),
            "W" | "w" => {
                // Hash string -> ContentId: fold the hex (or arbitrary
                // string) into 64 bits. Per-page uniqueness within a
                // multi-page request: offset the id by page index, matching
                // how the FIU collector hashed 4KB units.
                let base = fold_hash(f[8]);
                let contents =
                    (0..pages as u64).map(|p| ContentId(base ^ p)).collect();
                Request::write(at_ns, lpn, contents)
            }
            other => return Err(err(lineno, format!("unknown op `{other}`"))),
        };
        requests.push(req);
    }
    requests.sort_by_key(|r| r.at_ns);
    let trace = Trace { name: name.to_string(), logical_pages, requests };
    trace.validate().map_err(|m| err(0, m))?;
    Ok(trace)
}

/// Fold an arbitrary hash string to 64 bits (FNV-1a).
fn fold_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_round_trip() {
        let text = "\
# a comment
0 W 10 2 5,6

1500 R 10 2
2000 T 10 2
";
        let t = parse_native("rt", 100, text).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests[0].contents, vec![ContentId(5), ContentId(6)]);
        assert_eq!(t.requests[1].at_ns, 1_500_000);
        let rendered = write_native(&t);
        let t2 = parse_native("rt", 100, &rendered).unwrap();
        assert_eq!(t.requests, t2.requests);
    }

    #[test]
    fn native_rejects_bad_input_with_line_numbers() {
        assert_eq!(parse_native("x", 10, "0 W 0 1").unwrap_err().line, 1);
        assert_eq!(parse_native("x", 10, "0 R 0 1\n5 Q 0 1").unwrap_err().line, 2);
        assert!(parse_native("x", 10, "0 W 0 2 1")
            .unwrap_err()
            .message
            .contains("1 contents for 2 pages"));
        assert!(parse_native("x", 10, "0 R 0 1 zz").unwrap_err().message.contains("trailing"));
        assert!(parse_native("x", 10, "abc R 0 1").unwrap_err().message.contains("bad time"));
    }

    #[test]
    fn native_rejects_time_regression_via_validate() {
        let e = parse_native("x", 10, "5 R 0 1\n1 R 0 1").unwrap_err();
        assert!(e.message.contains("backwards"));
    }

    #[test]
    fn fiu_style_lines_parse() {
        let text = "\
1000000 321 mailsrv 80 16 W 8 1 4af1c56b9d
2000000 321 mailsrv 80 16 R 8 1 0
3000000 321 mailsrv 96 8 W 8 1 4af1c56b9d
";
        let t = parse_fiu("fiu", 1_000, text).unwrap();
        assert_eq!(t.len(), 3);
        // 80 sectors / 8 = page 10; 16 sectors = 2 pages.
        assert_eq!(t.requests[0].lpn, 10);
        assert_eq!(t.requests[0].pages, 2);
        // Identical hash => first page of request 3 duplicates page 10's
        // content.
        assert_eq!(t.requests[2].contents[0], t.requests[0].contents[0]);
        // Timestamps are rebased to the first record.
        assert_eq!(t.requests[0].at_ns, 0);
        assert_eq!(t.requests[1].at_ns, 1_000_000);
    }

    #[test]
    fn fiu_rejects_malformed() {
        assert!(parse_fiu("x", 100, "1 2 3").is_err());
        assert!(parse_fiu("x", 100, "1 p m 0 0 W 8 1 h").unwrap_err().message.contains("zero"));
        assert!(parse_fiu("x", 100, "1 p m 0 8 X 8 1 h").unwrap_err().message.contains("unknown op"));
    }

    #[test]
    fn fold_hash_is_stable_and_spreads() {
        assert_eq!(fold_hash("abc"), fold_hash("abc"));
        assert_ne!(fold_hash("abc"), fold_hash("abd"));
    }
}
