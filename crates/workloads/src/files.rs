//! A small file-level workload builder (the Fig. 1 / Fig. 8 semantics).
//!
//! The paper's dedup examples are phrased in files: files are sequences of
//! content chunks (Fig. 1: File 1 = A B C D …), deletion of a file
//! decrements the reference counts of its chunks, and a chunk's page is
//! invalidated only when the last file sharing it is gone. This builder
//! scripts exactly such scenarios as traces — the quickstart example uses
//! it to replay Fig. 8's "write four files, delete two" comparison.

use crate::trace::{Request, Trace};
use cagc_dedup::ContentId;
use cagc_sim::time::Nanos;
use std::collections::HashMap;

/// Handle for a written file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(u64);

/// Scripted file create/delete workload.
#[derive(Debug)]
pub struct FileWorkloadBuilder {
    name: String,
    logical_pages: u64,
    gap_ns: Nanos,
    now: Nanos,
    next_lpn: u64,
    next_file: u64,
    files: HashMap<FileId, (u64, u32)>, // (start lpn, pages)
    requests: Vec<Request>,
}

impl FileWorkloadBuilder {
    /// A builder over `logical_pages` of space; consecutive operations are
    /// spaced `gap_ns` apart.
    pub fn new(name: impl Into<String>, logical_pages: u64, gap_ns: Nanos) -> Self {
        Self {
            name: name.into(),
            logical_pages,
            gap_ns,
            now: 0,
            next_lpn: 0,
            next_file: 0,
            files: HashMap::new(),
            requests: Vec::new(),
        }
    }

    /// Write a file composed of the given content chunks (one page each) at
    /// the next sequential extent.
    ///
    /// # Panics
    /// Panics when the logical space is exhausted (scripted scenarios
    /// should fit their device) or the file is empty.
    pub fn write_file(&mut self, chunks: &[ContentId]) -> FileId {
        assert!(!chunks.is_empty(), "empty file");
        assert!(
            self.next_lpn + chunks.len() as u64 <= self.logical_pages,
            "file workload overflows logical space {}",
            self.logical_pages
        );
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.requests.push(Request::write(self.now, self.next_lpn, chunks.to_vec()));
        self.files.insert(id, (self.next_lpn, chunks.len() as u32));
        self.next_lpn += chunks.len() as u64;
        self.now += self.gap_ns;
        id
    }

    /// Overwrite one page of an existing file with new content.
    ///
    /// # Panics
    /// Panics if the file is unknown or the offset out of range.
    pub fn update_page(&mut self, file: FileId, page: u32, content: ContentId) {
        let &(start, pages) = self.files.get(&file).expect("unknown file");
        assert!(page < pages, "page {page} beyond file of {pages} pages");
        self.requests.push(Request::write(self.now, start + page as u64, vec![content]));
        self.now += self.gap_ns;
    }

    /// Delete a file: trims its extent.
    ///
    /// # Panics
    /// Panics if the file is unknown (double delete).
    pub fn delete_file(&mut self, file: FileId) {
        let (start, pages) = self.files.remove(&file).expect("unknown or deleted file");
        self.requests.push(Request::trim(self.now, start, pages));
        self.now += self.gap_ns;
    }

    /// Read a whole file back.
    pub fn read_file(&mut self, file: FileId) {
        let &(start, pages) = self.files.get(&file).expect("unknown file");
        self.requests.push(Request::read(self.now, start, pages));
        self.now += self.gap_ns;
    }

    /// Idle gap (lets background work drain in scripted scenarios).
    pub fn pause(&mut self, ns: Nanos) {
        self.now += ns;
    }

    /// Finish the script.
    pub fn build(self) -> Trace {
        Trace::new(self.name, self.logical_pages, self.requests)
    }

    /// The Fig. 8 scenario: four files sharing chunks (File1=ABCD,
    /// File2=EBF, File3=DAB, File4=BG), then delete files 2 and 4.
    pub fn fig8_scenario(logical_pages: u64) -> Trace {
        let [a, b, c, d, e, f, g] =
            [1u64, 2, 3, 4, 5, 6, 7].map(ContentId);
        let mut w = Self::new("fig8", logical_pages, 1_000_000);
        let _f1 = w.write_file(&[a, b, c, d]);
        let f2 = w.write_file(&[e, b, f]);
        let _f3 = w.write_file(&[d, a, b]);
        let f4 = w.write_file(&[b, g]);
        w.delete_file(f2);
        w.delete_file(f4);
        w.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpKind;

    #[test]
    fn files_occupy_sequential_extents() {
        let mut w = FileWorkloadBuilder::new("t", 100, 10);
        let f1 = w.write_file(&[ContentId(1), ContentId(2)]);
        let f2 = w.write_file(&[ContentId(3)]);
        w.read_file(f1);
        w.read_file(f2);
        let t = w.build();
        assert_eq!(t.requests[0].lpn, 0);
        assert_eq!(t.requests[1].lpn, 2);
        t.validate().unwrap();
    }

    #[test]
    fn delete_trims_the_extent() {
        let mut w = FileWorkloadBuilder::new("t", 100, 10);
        let f = w.write_file(&[ContentId(1), ContentId(2), ContentId(3)]);
        w.delete_file(f);
        let t = w.build();
        assert_eq!(t.requests[1].kind, OpKind::Trim);
        assert_eq!(t.requests[1].lpn, 0);
        assert_eq!(t.requests[1].pages, 3);
    }

    #[test]
    #[should_panic(expected = "unknown or deleted")]
    fn double_delete_panics() {
        let mut w = FileWorkloadBuilder::new("t", 100, 10);
        let f = w.write_file(&[ContentId(1)]);
        w.delete_file(f);
        w.delete_file(f);
    }

    #[test]
    fn update_page_targets_the_right_lpn() {
        let mut w = FileWorkloadBuilder::new("t", 100, 10);
        let f = w.write_file(&[ContentId(1), ContentId(2)]);
        w.update_page(f, 1, ContentId(9));
        let t = w.build();
        assert_eq!(t.requests[1].lpn, 1);
        assert_eq!(t.requests[1].contents, vec![ContentId(9)]);
    }

    #[test]
    fn fig8_has_12_chunk_writes_and_two_deletes() {
        let t = FileWorkloadBuilder::fig8_scenario(64);
        let written: u64 = t.written_pages();
        assert_eq!(written, 12); // 4+3+3+2 chunks
        let trims = t.requests.iter().filter(|r| r.kind == OpKind::Trim).count();
        assert_eq!(trims, 2);
        // Content B appears 4 times across files, matching Fig. 1.
        let b_count = t
            .requests
            .iter()
            .flat_map(|r| r.contents.iter())
            .filter(|c| c.0 == 2)
            .count();
        assert_eq!(b_count, 4);
    }

    #[test]
    #[should_panic(expected = "overflows logical space")]
    fn space_overflow_panics() {
        let mut w = FileWorkloadBuilder::new("t", 2, 10);
        w.write_file(&[ContentId(1), ContentId(2), ContentId(3)]);
    }
}
