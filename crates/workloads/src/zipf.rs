//! Approximate Zipf rank sampling.
//!
//! Skewed popularity drives both LPN access locality and content reuse in
//! the synthetic workloads. We use the continuous inverse-CDF
//! approximation: for skew `theta ∈ [0, 1)`, draw `u ∼ U(0,1)` and return
//! `rank = ⌊n · u^(1/(1−theta))⌋`, which gives `P(rank ≤ k) ≈ (k/n)^(1−theta)`
//! — the standard bounded-Pareto stand-in for a Zipf law. It is exact for
//! `theta = 0` (uniform), cheap (no per-`n` zeta precomputation, so the
//! support may grow every request), and deterministic under a seeded RNG.

use cagc_sim::SimRng;

/// A Zipf-like sampler over `{0, 1, …}` with rank 0 most popular.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    exponent: f64,
}

impl Zipf {
    /// Skew `theta ∈ [0, 1)`: 0 = uniform, → 1 = extremely skewed.
    ///
    /// # Panics
    /// Panics outside `[0, 1)`.
    pub fn new(theta: f64) -> Self {
        assert!((0.0..1.0).contains(&theta), "zipf theta {theta} outside [0,1)");
        Self { exponent: 1.0 / (1.0 - theta) }
    }

    /// Sample a rank in `[0, n)`. Returns 0 for `n <= 1`.
    pub fn sample(&self, n: u64, rng: &mut SimRng) -> u64 {
        if n <= 1 {
            return 0;
        }
        let u = rng.next_f64();
        let r = (n as f64 * u.powf(self.exponent)) as u64;
        r.min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts(theta: f64, n: u64, draws: usize) -> Vec<u64> {
        let z = Zipf::new(theta);
        let mut rng = SimRng::seed_from_u64(7);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(n, &mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let counts = sample_counts(0.0, 10, 100_000);
        let expect = 10_000.0;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.1, "count {c} far from uniform");
        }
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let counts = sample_counts(0.9, 1000, 100_000);
        let head: u64 = counts[..10].iter().sum();
        // With theta=0.9, P(rank < 10 of 1000) ≈ (10/1000)^0.1 ≈ 0.63.
        assert!(head > 50_000, "head mass {head} too small for theta=0.9");
        // And popularity decays with rank.
        assert!(counts[0] > counts[100]);
        assert!(counts[100] >= counts[900].saturating_sub(50));
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(0.99);
        let mut rng = SimRng::seed_from_u64(0);
        for n in [1u64, 2, 3, 1000] {
            for _ in 0..1000 {
                assert!(z.sample(n, &mut rng) < n);
            }
        }
        assert_eq!(z.sample(0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn theta_one_rejected() {
        Zipf::new(1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(0.8);
        let a: Vec<u64> = {
            let mut rng = SimRng::seed_from_u64(3);
            (0..100).map(|_| z.sample(500, &mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SimRng::seed_from_u64(3);
            (0..100).map(|_| z.sample(500, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
