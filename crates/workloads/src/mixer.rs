//! Trace composition: concatenate, interleave, rescale and truncate traces.
//!
//! Evaluation studies routinely need composed workloads — a mail server
//! phase followed by a backup sweep, two tenants interleaved on one
//! device, the same trace at twice the arrival rate. These operators build
//! such variants from existing traces while preserving validity
//! (time-ordering, extent bounds).

use crate::trace::{Request, Trace};

/// Append `b` after `a`, shifting `b`'s timestamps to start `gap_ns` after
/// `a`'s last arrival. LPN spaces are unioned (max).
pub fn concat(a: &Trace, b: &Trace, gap_ns: u64) -> Trace {
    let offset = a.requests.last().map(|r| r.at_ns + gap_ns).unwrap_or(0);
    let mut requests = a.requests.clone();
    requests.extend(b.requests.iter().map(|r| Request { at_ns: r.at_ns + offset, ..r.clone() }));
    Trace::new(
        format!("{}+{}", a.name, b.name),
        a.logical_pages.max(b.logical_pages),
        requests,
    )
}

/// Merge two traces on a shared timeline (multi-tenant): `b`'s LPNs are
/// offset past `a`'s space so the tenants never collide. Wrapper over
/// [`interleave_n`].
pub fn interleave(a: &Trace, b: &Trace) -> Trace {
    interleave_n(&[a, b])
}

/// Merge `k` tenant traces onto a shared timeline in **one stable pass**:
/// tenant `i`'s LPNs are offset past the combined space of tenants
/// `0..i`, so no two tenants ever collide, and requests are merged by
/// arrival time with ties broken by tenant order then FIFO within a
/// tenant — exactly the order a pairwise [`interleave`] fold produces,
/// without the fold's O(k²) re-clone-and-re-sort of ever-growing
/// intermediates. Verified equivalent to the fold in this module's tests.
///
/// # Panics
/// Panics on an empty tenant list.
pub fn interleave_n(tenants: &[&Trace]) -> Trace {
    interleave_n_tagged(tenants).0
}

/// [`interleave_n`] plus per-request tenant attribution: the second
/// element tags each merged request with the index (into `tenants`) of
/// the trace it came from. The fleet simulator uses the tags to account
/// latency and traffic per tenant after the streams are merged.
///
/// # Panics
/// Panics on an empty tenant list.
pub fn interleave_n_tagged(tenants: &[&Trace]) -> (Trace, Vec<u32>) {
    assert!(!tenants.is_empty(), "interleave_n needs at least one tenant");
    // Namespace layout: tenant i owns [offsets[i], offsets[i] + pages_i).
    let mut offsets = Vec::with_capacity(tenants.len());
    let mut total_pages = 0u64;
    for t in tenants {
        offsets.push(total_pages);
        total_pages += t.logical_pages;
    }
    let total_requests: usize = tenants.iter().map(|t| t.len()).sum();
    let mut requests = Vec::with_capacity(total_requests);
    let mut tags = Vec::with_capacity(total_requests);
    // K-way merge: each tenant trace is already time-ordered, so a heap
    // keyed (arrival, tenant index) yields the globally stable order.
    let mut pos = vec![0usize; tenants.len()];
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = tenants
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.requests.is_empty())
        .map(|(i, t)| std::cmp::Reverse((t.requests[0].at_ns, i)))
        .collect();
    while let Some(std::cmp::Reverse((_, i))) = heap.pop() {
        let r = &tenants[i].requests[pos[i]];
        requests.push(Request { lpn: r.lpn + offsets[i], ..r.clone() });
        tags.push(i as u32);
        pos[i] += 1;
        if let Some(next) = tenants[i].requests.get(pos[i]) {
            heap.push(std::cmp::Reverse((next.at_ns, i)));
        }
    }
    let name = tenants.iter().map(|t| t.name.as_str()).collect::<Vec<_>>().join("||");
    (Trace::new(name, total_pages, requests), tags)
}

/// Rescale arrival times by `factor` (2.0 = twice as slow, 0.5 = twice as
/// fast). Useful for load sweeps on a fixed access pattern.
///
/// # Panics
/// Panics on non-positive factors.
pub fn scale_rate(t: &Trace, factor: f64) -> Trace {
    assert!(factor > 0.0, "rate factor must be positive");
    let requests = t
        .requests
        .iter()
        .map(|r| Request { at_ns: (r.at_ns as f64 * factor) as u64, ..r.clone() })
        .collect();
    Trace::new(format!("{}x{factor}", t.name), t.logical_pages, requests)
}

/// Derive a trim-intensified variant of a trace: each write request is,
/// with probability `trim_fraction`, followed by a trim of the same extent
/// `delay_requests` arrivals later (at that later request's timestamp, so
/// time-ordering is preserved without inventing a clock). This models a
/// filesystem issuing discards for freed space some time after the data
/// stopped mattering — the knob behind Frankie-style trim/overprovisioning
/// sweeps on workloads whose generator has no trim stream of its own.
///
/// Selection is seeded and deterministic; `trim_fraction` of 0 returns an
/// identical-requests copy.
///
/// # Panics
/// Panics unless `trim_fraction` is within `[0, 1]`.
pub fn inject_trims(
    t: &Trace,
    trim_fraction: f64,
    delay_requests: usize,
    seed: u64,
) -> Trace {
    assert!(
        (0.0..=1.0).contains(&trim_fraction),
        "trim_fraction {trim_fraction} outside [0, 1]"
    );
    let mut rng = cagc_sim::SimRng::seed_from_u64(seed ^ 0x7219_6D5F);
    let mut requests = t.requests.clone();
    let last_at = t.requests.last().map(|r| r.at_ns).unwrap_or(0);
    for (i, r) in t.requests.iter().enumerate() {
        if r.kind != crate::trace::OpKind::Write || !rng.gen_bool(trim_fraction) {
            continue;
        }
        let at = t
            .requests
            .get(i + delay_requests.max(1))
            .map(|later| later.at_ns)
            .unwrap_or(last_at);
        requests.push(Request::trim(at, r.lpn, r.pages));
    }
    requests.sort_by_key(|r| r.at_ns);
    Trace::new(
        format!("{}~trim{trim_fraction}", t.name),
        t.logical_pages,
        requests,
    )
}

/// Re-time a trace as an open-loop Poisson arrival process: request order
/// is preserved, but the gaps between consecutive arrivals are redrawn as
/// i.i.d. exponentials with the given mean. This turns any access pattern
/// into a memoryless arrival stream — the canonical open-loop driver for
/// queue-depth studies, where bursts must come from the *process*, not
/// from whatever clock the original generator used.
///
/// Seeded and deterministic: same inputs, same byte-identical trace.
///
/// # Panics
/// Panics if `mean_interarrival_ns` is zero.
pub fn retime_poisson(t: &Trace, mean_interarrival_ns: u64, seed: u64) -> Trace {
    assert!(mean_interarrival_ns > 0, "mean interarrival must be positive");
    let mut rng = cagc_sim::SimRng::seed_from_u64(seed ^ 0x9035_7A11);
    let mut at = 0u64;
    let requests = t
        .requests
        .iter()
        .map(|r| {
            // Inverse-CDF exponential; clamp the uniform away from 0 so the
            // log is finite. Gaps round to >= 1 ns, keeping arrivals
            // strictly increasing (FIFO ties never depend on the sort).
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            let gap = (-u.ln() * mean_interarrival_ns as f64).round().max(1.0) as u64;
            at += gap;
            Request { at_ns: at, ..r.clone() }
        })
        .collect();
    Trace::new(
        format!("{}@poisson{mean_interarrival_ns}", t.name),
        t.logical_pages,
        requests,
    )
}

/// Keep only the first `n` requests.
pub fn truncate(t: &Trace, n: usize) -> Trace {
    Trace::new(
        format!("{}[..{n}]", t.name),
        t.logical_pages,
        t.requests.iter().take(n).cloned().collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;
    use crate::trace::OpKind;
    use cagc_dedup::ContentId;

    fn small(seed: u64) -> Trace {
        SynthConfig {
            requests: 200,
            logical_pages: 1_000,
            prefill_fraction: 0.0,
            seed,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn concat_preserves_order_and_counts() {
        let a = small(1);
        let b = small(2);
        let c = concat(&a, &b, 1_000_000);
        assert_eq!(c.len(), a.len() + b.len());
        c.validate().unwrap();
        // b's first request starts after a's last.
        let a_last = a.requests.last().unwrap().at_ns;
        assert!(c.requests[a.len()].at_ns >= a_last + 1_000_000);
    }

    #[test]
    fn concat_with_empty_prefix() {
        let empty = Trace::new("e", 10, vec![]);
        let b = small(3);
        let c = concat(&empty, &b, 500);
        assert_eq!(c.len(), b.len());
        c.validate().unwrap();
    }

    #[test]
    fn interleave_separates_tenants() {
        let a = small(1);
        let b = small(2);
        let c = interleave(&a, &b);
        assert_eq!(c.len(), a.len() + b.len());
        assert_eq!(c.logical_pages, 2_000);
        c.validate().unwrap();
        // Tenant B's extents all land in the upper half.
        let b_writes: Vec<&Request> =
            c.requests.iter().filter(|r| r.lpn >= 1_000).collect();
        assert_eq!(b_writes.len(), b.len());
    }

    #[test]
    fn interleave_n_equals_pairwise_fold() {
        // The contract the fleet relies on: one stable k-way pass is
        // byte-identical to folding the pairwise operator.
        let traces: Vec<Trace> = (1..=4).map(small).collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        for k in 1..=traces.len() {
            let folded = refs[1..k]
                .iter()
                .fold(traces[0].clone(), |acc, t| interleave(&acc, t));
            let merged = interleave_n(&refs[..k]);
            assert_eq!(merged.name, folded.name, "k={k}");
            assert_eq!(merged.logical_pages, folded.logical_pages, "k={k}");
            assert_eq!(merged.requests, folded.requests, "k={k}");
            merged.validate().unwrap();
        }
    }

    #[test]
    fn interleave_n_handles_simultaneous_arrivals_stably() {
        // All tenants fire at the same instants: ties must resolve in
        // tenant order then FIFO, matching a stable pairwise sort.
        let mk = |name: &str| {
            Trace::new(
                name,
                16,
                vec![
                    Request::write(100, 0, vec![ContentId(1)]),
                    Request::write(100, 1, vec![ContentId(2)]),
                    Request::read(200, 0, 1),
                ],
            )
        };
        let (a, b, c) = (mk("a"), mk("b"), mk("c"));
        let folded = interleave(&interleave(&a, &b), &c);
        let merged = interleave_n(&[&a, &b, &c]);
        assert_eq!(merged.requests, folded.requests);
        // First three requests: the t=100 writes of a, a, then b.
        assert_eq!(merged.requests[0].lpn, 0);
        assert_eq!(merged.requests[1].lpn, 1);
        assert_eq!(merged.requests[2].lpn, 16);
    }

    #[test]
    fn interleave_n_tags_attribute_every_request() {
        let traces: Vec<Trace> = (1..=3).map(small).collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let (merged, tags) = interleave_n_tagged(&refs);
        assert_eq!(tags.len(), merged.len());
        // Per-tenant request counts survive the merge...
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(tags.iter().filter(|&&g| g == i as u32).count(), t.len());
        }
        // ...and each tagged request falls inside its tenant's namespace
        // and matches that tenant's FIFO order.
        let mut pos = vec![0usize; traces.len()];
        let offsets = [0, traces[0].logical_pages, traces[0].logical_pages + traces[1].logical_pages];
        for (r, &tag) in merged.requests.iter().zip(&tags) {
            let i = tag as usize;
            let orig = &traces[i].requests[pos[i]];
            assert_eq!(r.lpn, orig.lpn + offsets[i]);
            assert_eq!(r.at_ns, orig.at_ns);
            assert_eq!(r.kind, orig.kind);
            pos[i] += 1;
        }
    }

    #[test]
    fn interleave_n_single_tenant_is_identity() {
        let a = small(5);
        let merged = interleave_n(&[&a]);
        assert_eq!(merged.name, a.name);
        assert_eq!(merged.requests, a.requests);
        assert_eq!(merged.logical_pages, a.logical_pages);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn interleave_n_rejects_empty_input() {
        interleave_n(&[]);
    }

    #[test]
    fn scale_rate_stretches_time() {
        let a = small(1);
        let slow = scale_rate(&a, 2.0);
        slow.validate().unwrap();
        assert_eq!(
            slow.requests.last().unwrap().at_ns,
            (a.requests.last().unwrap().at_ns as f64 * 2.0) as u64
        );
        let fast = scale_rate(&a, 0.25);
        fast.validate().unwrap();
        assert!(fast.requests.last().unwrap().at_ns < a.requests.last().unwrap().at_ns);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        scale_rate(&small(1), 0.0);
    }

    #[test]
    fn truncate_takes_a_prefix() {
        let a = small(1);
        let t = truncate(&a, 50);
        assert_eq!(t.len(), 50);
        assert_eq!(t.requests[..], a.requests[..50]);
        assert_eq!(truncate(&a, 10_000).len(), a.len());
    }

    #[test]
    fn inject_trims_adds_deterministic_trims() {
        // Start from a trim-free trace so every trim in the result is ours.
        let a = SynthConfig {
            requests: 200,
            logical_pages: 1_000,
            prefill_fraction: 0.0,
            trim_ratio: 0.0,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let writes = a.requests.iter().filter(|r| r.kind == OpKind::Write).count();
        let t1 = inject_trims(&a, 0.5, 8, 42);
        let t2 = inject_trims(&a, 0.5, 8, 42);
        assert_eq!(t1.requests, t2.requests, "same seed, same trims");
        t1.validate().unwrap();
        let trims = t1.requests.iter().filter(|r| r.kind == OpKind::Trim).count();
        assert!(trims > 0, "a 50% fraction must add trims");
        assert!(trims <= writes);
        assert_eq!(t1.len(), a.len() + trims, "originals are all preserved");
        // Every injected trim covers the extent of some earlier write.
        for r in t1.requests.iter().filter(|r| r.kind == OpKind::Trim) {
            assert!(a
                .requests
                .iter()
                .any(|w| w.kind == OpKind::Write && w.lpn == r.lpn && w.pages == r.pages));
        }
    }

    #[test]
    fn inject_trims_zero_fraction_is_identity() {
        let a = small(6);
        let t = inject_trims(&a, 0.0, 4, 1);
        assert_eq!(t.requests, a.requests);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn inject_trims_rejects_bad_fraction() {
        inject_trims(&small(1), 1.5, 4, 0);
    }

    #[test]
    fn retime_poisson_preserves_order_and_is_deterministic() {
        let a = small(8);
        let p1 = retime_poisson(&a, 50_000, 9);
        let p2 = retime_poisson(&a, 50_000, 9);
        assert_eq!(p1.requests, p2.requests, "same seed, same arrivals");
        p1.validate().unwrap();
        assert_eq!(p1.len(), a.len());
        // Only the clock changed: op sequence, extents and contents are
        // untouched, and arrivals are strictly increasing.
        for (orig, re) in a.requests.iter().zip(&p1.requests) {
            assert_eq!(orig.kind, re.kind);
            assert_eq!(orig.lpn, re.lpn);
            assert_eq!(orig.pages, re.pages);
            assert_eq!(orig.contents, re.contents);
        }
        for w in p1.requests.windows(2) {
            assert!(w[0].at_ns < w[1].at_ns);
        }
        // The realized mean gap lands near the requested mean.
        let span = p1.requests.last().unwrap().at_ns - p1.requests[0].at_ns;
        let mean = span as f64 / (p1.len() - 1) as f64;
        assert!((mean / 50_000.0 - 1.0).abs() < 0.25, "mean gap {mean} vs 50000");
    }

    #[test]
    fn retime_poisson_rate_scales_with_mean() {
        let a = small(9);
        let fast = retime_poisson(&a, 10_000, 3);
        let slow = retime_poisson(&a, 200_000, 3);
        assert!(fast.requests.last().unwrap().at_ns < slow.requests.last().unwrap().at_ns);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn retime_poisson_rejects_zero_mean() {
        retime_poisson(&small(1), 0, 1);
    }

    #[test]
    fn composition_preserves_content_semantics() {
        // Two tenants writing the same ContentId still deduplicate when
        // interleaved — content identity is global, as on a real device.
        let a = Trace::new(
            "a",
            10,
            vec![Request::write(0, 0, vec![ContentId(7)])],
        );
        let b = Trace::new(
            "b",
            10,
            vec![Request::write(5, 0, vec![ContentId(7)])],
        );
        let c = interleave(&a, &b);
        let writes: Vec<_> =
            c.requests.iter().filter(|r| r.kind == OpKind::Write).collect();
        assert_eq!(writes[0].contents, writes[1].contents);
        assert_ne!(writes[0].lpn, writes[1].lpn);
    }
}
