//! FIU SyLab workload presets (Table II).
//!
//! The paper replays three content-hashed traces collected at FIU \[9\], \[22\]:
//!
//! | Trace  | Write ratio | Dedup ratio | Mean request |
//! |--------|------------|-------------|--------------|
//! | Mail   | 69.8 %     | 89.3 %      | 14.8 KB      |
//! | Homes  | 80.5 %     | 30.0 %      | 13.1 KB      |
//! | Web-vm | 78.5 %     | 49.3 %      | 40.8 KB      |
//!
//! The real traces are not redistributable; these presets configure the
//! synthetic generator to match the published characteristics (verified by
//! `repro table2`). Real FIU traces can still be replayed through
//! [`crate::parser`].

use crate::synth::SynthConfig;

/// The three FIU workloads of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FiuWorkload {
    /// Email server: write-dominated, extremely redundant (89.3 %).
    Mail,
    /// File server VM: most writes, little redundancy (30.0 %).
    Homes,
    /// Two web servers: large requests, moderate redundancy (49.3 %).
    WebVm,
}

impl FiuWorkload {
    /// All three, in the order the paper's figures list them
    /// (Homes, Web-vm, Mail).
    pub const ALL: [FiuWorkload; 3] = [FiuWorkload::Homes, FiuWorkload::WebVm, FiuWorkload::Mail];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            FiuWorkload::Mail => "Mail",
            FiuWorkload::Homes => "Homes",
            FiuWorkload::WebVm => "Web-vm",
        }
    }

    /// Table II: fraction of requests that are writes.
    pub fn write_ratio(self) -> f64 {
        match self {
            FiuWorkload::Mail => 0.698,
            FiuWorkload::Homes => 0.805,
            FiuWorkload::WebVm => 0.785,
        }
    }

    /// Table II: fraction of written data that is redundant.
    pub fn dedup_ratio(self) -> f64 {
        match self {
            FiuWorkload::Mail => 0.893,
            FiuWorkload::Homes => 0.300,
            FiuWorkload::WebVm => 0.493,
        }
    }

    /// Table II: mean request size in KB.
    pub fn mean_req_kb(self) -> f64 {
        match self {
            FiuWorkload::Mail => 14.8,
            FiuWorkload::Homes => 13.1,
            FiuWorkload::WebVm => 40.8,
        }
    }

    /// Mean request size in 4 KB pages.
    pub fn mean_req_pages(self) -> f64 {
        self.mean_req_kb() / 4.0
    }

    /// A [`SynthConfig`] matching this workload's Table II characteristics,
    /// scaled to `logical_pages` of addressable space and `requests` timed
    /// requests.
    ///
    /// Content/LPN skews are fixed per workload: the mail server has the
    /// strongest content popularity (the same message bodies land in many
    /// mailboxes), the file server the weakest — consistent with the
    /// refcount skew the paper measures in Fig. 6.
    pub fn synth_config(self, logical_pages: u64, requests: usize, seed: u64) -> SynthConfig {
        let (lpn_theta, content_theta) = match self {
            FiuWorkload::Mail => (0.90, 0.90),
            FiuWorkload::Homes => (0.92, 0.70),
            FiuWorkload::WebVm => (0.88, 0.80),
        };
        SynthConfig {
            name: self.name().to_string(),
            requests,
            logical_pages,
            write_ratio: self.write_ratio(),
            dedup_ratio: self.dedup_ratio(),
            mean_req_pages: self.mean_req_pages(),
            max_req_pages: 64,
            lpn_theta,
            content_theta,
            trim_ratio: 0.02,
            // Arrival rate scales with request size so every workload
            // offers a similar, sustainable byte rate (the FIU traces are
            // multi-week recordings, far below device saturation; what the
            // experiments measure is GC interference, not overload).
            mean_interarrival_ns: (100_000.0 * self.mean_req_pages()) as u64,
            burst_mean: 8.0,
            burst_gap_ns: 5_000,
            prefill_fraction: 0.95,
            prefill_gap_ns_per_page: 35_000,
            seed: seed ^ (self as u64 + 1).wrapping_mul(0x9E37_79B9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::TraceProfile;

    #[test]
    fn names_match_figures() {
        assert_eq!(FiuWorkload::Mail.name(), "Mail");
        assert_eq!(FiuWorkload::Homes.name(), "Homes");
        assert_eq!(FiuWorkload::WebVm.name(), "Web-vm");
    }

    #[test]
    fn mail_is_the_most_redundant() {
        assert!(FiuWorkload::Mail.dedup_ratio() > FiuWorkload::WebVm.dedup_ratio());
        assert!(FiuWorkload::WebVm.dedup_ratio() > FiuWorkload::Homes.dedup_ratio());
    }

    #[test]
    fn generated_traces_match_table2() {
        // The substantive check behind Table II of EXPERIMENTS.md. The
        // steady-state mix is what Table II describes, so the device-aging
        // prefill is disabled for the measurement.
        for w in FiuWorkload::ALL {
            let mut cfg = w.synth_config(1 << 14, 12_000, 1);
            cfg.prefill_fraction = 0.0;
            let trace = cfg.generate();
            let p = TraceProfile::of(&trace);
            assert!(
                (p.write_ratio - w.write_ratio()).abs() < 0.04,
                "{}: write ratio {} vs Table II {}",
                w.name(),
                p.write_ratio,
                w.write_ratio()
            );
            assert!(
                (p.dedup_ratio - w.dedup_ratio()).abs() < 0.05,
                "{}: dedup ratio {} vs Table II {}",
                w.name(),
                p.dedup_ratio,
                w.dedup_ratio()
            );
            assert!(
                (p.mean_req_kb - w.mean_req_kb()).abs() < w.mean_req_kb() * 0.15,
                "{}: mean req {} KB vs Table II {} KB",
                w.name(),
                p.mean_req_kb,
                w.mean_req_kb()
            );
        }
    }

    #[test]
    fn distinct_workloads_get_distinct_seeds() {
        let a = FiuWorkload::Mail.synth_config(1024, 10, 7);
        let b = FiuWorkload::Homes.synth_config(1024, 10, 7);
        assert_ne!(a.seed, b.seed);
    }
}
