//! The trace model: timestamped page-granular I/O requests with content.
//!
//! Mirrors what the FIU SyLab traces provide (Sec. IV-A): each request has
//! an arrival time, an operation, a logical extent, and — for writes — a
//! content hash per page, which is what makes dedup studies possible
//! without the actual data.

use cagc_dedup::ContentId;
use cagc_sim::time::Nanos;

/// Request operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read an extent.
    Read,
    /// Write an extent (contents carried per page).
    Write,
    /// Trim/discard an extent (file deletion in the FIU traces).
    Trim,
}

/// One I/O request covering `pages` logical pages starting at `lpn`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Arrival time.
    pub at_ns: Nanos,
    /// Operation.
    pub kind: OpKind,
    /// First logical page.
    pub lpn: u64,
    /// Extent length in pages (≥ 1).
    pub pages: u32,
    /// Per-page content identities; length == `pages` for writes, empty
    /// otherwise.
    pub contents: Vec<ContentId>,
}

impl Request {
    /// A read request.
    pub fn read(at_ns: Nanos, lpn: u64, pages: u32) -> Self {
        Self { at_ns, kind: OpKind::Read, lpn, pages, contents: Vec::new() }
    }

    /// A write request carrying one content id per page.
    ///
    /// # Panics
    /// Panics if `contents` is empty (a write must carry content).
    pub fn write(at_ns: Nanos, lpn: u64, contents: Vec<ContentId>) -> Self {
        assert!(!contents.is_empty(), "write with no content");
        Self { at_ns, kind: OpKind::Write, lpn, pages: contents.len() as u32, contents }
    }

    /// A trim request.
    pub fn trim(at_ns: Nanos, lpn: u64, pages: u32) -> Self {
        Self { at_ns, kind: OpKind::Trim, lpn, pages, contents: Vec::new() }
    }

    /// Iterate the logical pages this request covers.
    pub fn lpns(&self) -> impl Iterator<Item = u64> + '_ {
        self.lpn..self.lpn + self.pages as u64
    }

    /// Internal consistency: write ⇔ contents present and sized.
    pub fn validate(&self) -> Result<(), String> {
        if self.pages == 0 {
            return Err("zero-length request".into());
        }
        match self.kind {
            OpKind::Write if self.contents.len() != self.pages as usize => Err(format!(
                "write covers {} pages but carries {} contents",
                self.pages,
                self.contents.len()
            )),
            OpKind::Read | OpKind::Trim if !self.contents.is_empty() => {
                Err("non-write carries contents".into())
            }
            _ => Ok(()),
        }
    }
}

/// A full trace: named, time-ordered, bounded to a logical space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Workload name ("Mail", "Homes", …).
    pub name: String,
    /// Number of logical pages the trace addresses (LPNs are `< this`).
    pub logical_pages: u64,
    /// Time-ordered requests.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Construct and validate: requests time-ordered, extents in range.
    pub fn new(name: impl Into<String>, logical_pages: u64, requests: Vec<Request>) -> Self {
        let t = Self { name: name.into(), logical_pages, requests };
        if let Err(e) = t.validate() {
            panic!("invalid trace `{}`: {e}", t.name);
        }
        t
    }

    /// Validation used by `new` and by the parser on untrusted input.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev = 0;
        for (i, r) in self.requests.iter().enumerate() {
            r.validate().map_err(|e| format!("request {i}: {e}"))?;
            if r.at_ns < prev {
                return Err(format!("request {i}: time goes backwards"));
            }
            if r.lpn + r.pages as u64 > self.logical_pages {
                return Err(format!(
                    "request {i}: extent [{}, {}) beyond logical space {}",
                    r.lpn,
                    r.lpn + r.pages as u64,
                    self.logical_pages
                ));
            }
            prev = r.at_ns;
        }
        Ok(())
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total pages written across all write requests.
    pub fn written_pages(&self) -> u64 {
        self.requests
            .iter()
            .filter(|r| r.kind == OpKind::Write)
            .map(|r| r.pages as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let r = Request::read(5, 10, 3);
        assert_eq!(r.lpns().collect::<Vec<_>>(), vec![10, 11, 12]);
        let w = Request::write(6, 0, vec![ContentId(1), ContentId(2)]);
        assert_eq!(w.pages, 2);
        let t = Request::trim(7, 1, 1);
        assert!(t.contents.is_empty());
    }

    #[test]
    #[should_panic(expected = "no content")]
    fn empty_write_rejected() {
        Request::write(0, 0, vec![]);
    }

    #[test]
    fn trace_validation_catches_time_travel() {
        let t = Trace {
            name: "x".into(),
            logical_pages: 100,
            requests: vec![Request::read(10, 0, 1), Request::read(5, 0, 1)],
        };
        assert!(t.validate().unwrap_err().contains("backwards"));
    }

    #[test]
    fn trace_validation_catches_overflow_extent() {
        let t = Trace {
            name: "x".into(),
            logical_pages: 10,
            requests: vec![Request::read(0, 8, 3)],
        };
        assert!(t.validate().unwrap_err().contains("beyond logical space"));
    }

    #[test]
    fn trace_validation_catches_content_mismatch() {
        let mut r = Request::write(0, 0, vec![ContentId(1)]);
        r.pages = 2; // corrupt
        let t = Trace { name: "x".into(), logical_pages: 10, requests: vec![r] };
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid trace")]
    fn new_panics_on_invalid() {
        Trace::new("bad", 1, vec![Request::read(0, 0, 5)]);
    }

    #[test]
    fn written_pages_counts_only_writes() {
        let t = Trace::new(
            "w",
            100,
            vec![
                Request::write(0, 0, vec![ContentId(1), ContentId(2)]),
                Request::read(1, 0, 50),
                Request::write(2, 10, vec![ContentId(3)]),
                Request::trim(3, 0, 20),
            ],
        );
        assert_eq!(t.written_pages(), 3);
    }
}
