//! Synthetic deduplicating workload generator.
//!
//! The FIU SyLab traces the paper replays are not redistributable, so this
//! generator synthesizes traces that match their *published aggregate
//! characteristics* (Table II): write ratio, dedup ratio and mean request
//! size — plus the two skews that drive FTL dynamics: LPN access locality
//! (hot logical pages are overwritten repeatedly) and content popularity
//! (a few contents are shared by many logical pages, accumulating high
//! reference counts, per Fig. 6).
//!
//! ## Content model
//!
//! Every written page draws its content as follows: with probability
//! `dedup_ratio` it *reuses* an already-written content, sampled Zipf-style
//! over the pool in first-appearance order (early contents stay popular);
//! otherwise it is a fresh, globally unique content. The realized
//! write-stream redundancy therefore converges to `dedup_ratio` by
//! construction, and reference-count skew emerges naturally — exactly the
//! two properties the CAGC experiments depend on.

use crate::trace::{Request, Trace};
use crate::zipf::Zipf;
use cagc_dedup::ContentId;
use cagc_sim::SimRng;

/// Parameters of a synthetic workload.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Workload name carried into the trace.
    pub name: String,
    /// Requests to generate *after* the prefill phase.
    pub requests: usize,
    /// Logical page space addressed by the trace.
    pub logical_pages: u64,
    /// Fraction of non-trim requests that are writes (Table II).
    pub write_ratio: f64,
    /// Target fraction of written pages whose content already exists
    /// (Table II "Dedup. Ratio").
    pub dedup_ratio: f64,
    /// Mean request size in pages (geometric; Table II "Aver. Req. Size").
    pub mean_req_pages: f64,
    /// Upper clamp on request size.
    pub max_req_pages: u32,
    /// Zipf skew of logical page access (overwrite locality).
    pub lpn_theta: f64,
    /// Zipf skew of duplicate-content choice (reference-count skew).
    pub content_theta: f64,
    /// Fraction of all requests that are trims (file deletions).
    pub trim_ratio: f64,
    /// Long-run mean interarrival gap (bursts redistribute arrivals within
    /// this budget; they do not change the average rate).
    pub mean_interarrival_ns: u64,
    /// Mean burst length in requests (geometric). Real block traces arrive
    /// in dense bursts separated by idle gaps; 1 disables bursting and
    /// yields plain exponential arrivals.
    pub burst_mean: f64,
    /// Gap between consecutive requests inside a burst.
    pub burst_gap_ns: u64,
    /// Fraction of the logical space written once, sequentially, before the
    /// timed phase (brings the device to steady state so GC is active).
    pub prefill_fraction: f64,
    /// Prefill pacing in ns per page. The default (35 µs) sits below the
    /// slowest ULL write path (inline dedup: hash 14 + lookup 1 + program
    /// 16 µs serialized); raise it when simulating slower media so the
    /// bulk load doesn't queue into the timed phase.
    pub prefill_gap_ns_per_page: u64,
    /// PRNG seed — same seed, same trace, bit for bit.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".into(),
            requests: 50_000,
            logical_pages: 1 << 16,
            write_ratio: 0.75,
            dedup_ratio: 0.5,
            mean_req_pages: 4.0,
            max_req_pages: 64,
            lpn_theta: 0.9,
            content_theta: 0.85,
            trim_ratio: 0.02,
            mean_interarrival_ns: 100_000,
            burst_mean: 8.0,
            burst_gap_ns: 5_000,
            prefill_fraction: 0.95,
            prefill_gap_ns_per_page: 35_000,
            seed: 42,
        }
    }
}

impl SynthConfig {
    /// Generate the trace.
    ///
    /// # Panics
    /// Panics on nonsensical parameters (empty space, ratios outside
    /// `[0,1]`, zero mean size).
    pub fn generate(&self) -> Trace {
        assert!(self.logical_pages > 0, "empty logical space");
        for (name, v) in [
            ("write_ratio", self.write_ratio),
            ("dedup_ratio", self.dedup_ratio),
            ("trim_ratio", self.trim_ratio),
            ("prefill_fraction", self.prefill_fraction),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} {v} outside [0,1]");
        }
        assert!(self.mean_req_pages >= 1.0, "mean_req_pages must be >= 1");

        let mut rng = SimRng::seed_from_u64(self.seed);
        let lpn_zipf = Zipf::new(self.lpn_theta);
        let content_zipf = Zipf::new(self.content_theta);
        let mut gen = ContentGen::new(self.dedup_ratio, content_zipf);
        let mut requests = Vec::with_capacity(self.requests + 1024);
        let mut now: u64 = 0;

        // ---- Prefill: sequential first write of the working set, using
        // the workload's own request-size distribution so trace-level
        // statistics (Table II) aren't skewed by oversized bulk chunks. ----
        let prefill_pages = (self.logical_pages as f64 * self.prefill_fraction) as u64;
        let mut lpn = 0u64;
        while lpn < prefill_pages {
            let pages = (self.draw_len(&mut rng) as u64).min(prefill_pages - lpn) as u32;
            let contents = (0..pages).map(|_| gen.next_content(&mut rng)).collect();
            requests.push(Request::write(now, lpn, contents));
            now += pages as u64 * self.prefill_gap_ns_per_page;
            lpn += pages as u64;
        }

        // ---- Timed phase. ----
        // Arrivals are bursty: a geometric number of requests arrive
        // `burst_gap_ns` apart, then an idle period restores the long-run
        // mean rate. `remaining_in_burst == 0` starts a new burst.
        let mut remaining_in_burst = 0u32;
        for _ in 0..self.requests {
            if remaining_in_burst == 0 {
                let len = geometric(self.burst_mean.max(1.0), &mut rng);
                // Idle gap sized so the burst's requests still average
                // `mean_interarrival_ns` apiece over burst + idle.
                let budget = self.mean_interarrival_ns * len as u64;
                let in_burst = self.burst_gap_ns * (len as u64 - 1);
                now += exp_gap(budget.saturating_sub(in_burst).max(1), &mut rng);
                remaining_in_burst = len;
            } else {
                now += self.burst_gap_ns;
            }
            remaining_in_burst -= 1;
            let pages = self.draw_len(&mut rng);
            let start = self.draw_lpn(pages, &lpn_zipf, &mut rng);
            let r = rng.next_f64();
            if r < self.trim_ratio {
                requests.push(Request::trim(now, start, pages));
            } else if r < self.trim_ratio + (1.0 - self.trim_ratio) * self.write_ratio {
                let contents =
                    (0..pages).map(|_| gen.next_content(&mut rng)).collect();
                requests.push(Request::write(now, start, contents));
            } else {
                requests.push(Request::read(now, start, pages));
            }
        }

        Trace::new(self.name.clone(), self.logical_pages, requests)
    }

    fn draw_len(&self, rng: &mut SimRng) -> u32 {
        // Geometric with mean `mean_req_pages`, clamped to the space.
        let p = 1.0 / self.mean_req_pages;
        let mut len = 1u32;
        let cap = self.max_req_pages.max(1).min(self.logical_pages as u32);
        while len < cap && rng.next_f64() > p {
            len += 1;
        }
        len
    }

    fn draw_lpn(&self, pages: u32, zipf: &Zipf, rng: &mut SimRng) -> u64 {
        // Zipf rank, scattered across the space by a multiplicative hash so
        // hot pages do not clump into a few physical blocks artificially.
        let rank = zipf.sample(self.logical_pages, rng);
        let base = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.logical_pages;
        base.min(self.logical_pages - pages as u64)
    }
}

/// Draws page contents with a target duplicate probability.
struct ContentGen {
    dedup_ratio: f64,
    zipf: Zipf,
    pool: Vec<ContentId>,
    next_unique: u64,
}

impl ContentGen {
    fn new(dedup_ratio: f64, zipf: Zipf) -> Self {
        Self { dedup_ratio, zipf, pool: Vec::new(), next_unique: 0 }
    }

    fn next_content(&mut self, rng: &mut SimRng) -> ContentId {
        if !self.pool.is_empty() && rng.next_f64() < self.dedup_ratio {
            let rank = self.zipf.sample(self.pool.len() as u64, rng);
            self.pool[rank as usize]
        } else {
            let c = ContentId(self.next_unique);
            self.next_unique += 1;
            self.pool.push(c);
            c
        }
    }
}

fn exp_gap(mean_ns: u64, rng: &mut SimRng) -> u64 {
    if mean_ns == 0 {
        return 0;
    }
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    (-u.ln() * mean_ns as f64) as u64
}

/// Geometric draw with the given mean (support `1..`).
fn geometric(mean: f64, rng: &mut SimRng) -> u32 {
    let p = 1.0 / mean.max(1.0);
    let mut n = 1u32;
    while n < 10_000 && rng.next_f64() > p {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpKind;
    use std::collections::HashSet;

    fn quick(cfg: SynthConfig) -> Trace {
        cfg.generate()
    }

    #[test]
    fn generates_requested_volume() {
        let t = quick(SynthConfig { requests: 1000, ..Default::default() });
        // prefill + timed phase
        assert!(t.len() > 1000);
        t.validate().unwrap();
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SynthConfig { requests: 500, ..Default::default() };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = SynthConfig { seed: 43, ..cfg.clone() };
        assert_ne!(other.generate(), cfg.generate());
    }

    #[test]
    fn write_ratio_is_respected() {
        let t = quick(SynthConfig {
            requests: 20_000,
            write_ratio: 0.7,
            trim_ratio: 0.0,
            prefill_fraction: 0.0,
            ..Default::default()
        });
        let writes = t.requests.iter().filter(|r| r.kind == OpKind::Write).count();
        let ratio = writes as f64 / t.len() as f64;
        assert!((ratio - 0.7).abs() < 0.02, "write ratio {ratio}");
    }

    #[test]
    fn dedup_ratio_converges_to_target() {
        for target in [0.3, 0.5, 0.893] {
            let t = quick(SynthConfig {
                requests: 15_000,
                dedup_ratio: target,
                prefill_fraction: 0.0,
                ..Default::default()
            });
            let mut seen = HashSet::new();
            let mut dup = 0u64;
            let mut total = 0u64;
            for r in &t.requests {
                for c in &r.contents {
                    total += 1;
                    if !seen.insert(*c) {
                        dup += 1;
                    }
                }
            }
            let realized = dup as f64 / total as f64;
            assert!(
                (realized - target).abs() < 0.03,
                "target {target}, realized {realized}"
            );
        }
    }

    #[test]
    fn mean_request_size_tracks_config() {
        let t = quick(SynthConfig {
            requests: 20_000,
            mean_req_pages: 3.7,
            prefill_fraction: 0.0,
            ..Default::default()
        });
        let mean =
            t.requests.iter().map(|r| r.pages as f64).sum::<f64>() / t.len() as f64;
        assert!((mean - 3.7).abs() < 0.25, "mean req pages {mean}");
    }

    #[test]
    fn prefill_covers_the_working_set() {
        let t = quick(SynthConfig {
            requests: 0,
            prefill_fraction: 0.5,
            logical_pages: 10_000,
            ..Default::default()
        });
        let covered: u64 = t.requests.iter().map(|r| r.pages as u64).sum();
        assert!((covered as f64 - 5_000.0).abs() < 64.0);
        // Prefill is sequential and non-overlapping.
        let mut seen = HashSet::new();
        for r in &t.requests {
            for l in r.lpns() {
                assert!(seen.insert(l), "prefill overlapped lpn {l}");
            }
        }
    }

    #[test]
    fn extents_always_in_range() {
        let t = quick(SynthConfig {
            requests: 5_000,
            logical_pages: 257, // awkward size
            max_req_pages: 64,
            ..Default::default()
        });
        for r in &t.requests {
            assert!(r.lpn + r.pages as u64 <= 257);
        }
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let t = quick(SynthConfig { requests: 2_000, ..Default::default() });
        assert!(t.requests.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn hot_lpns_are_rewritten() {
        // With high skew, some LPN must be written many times.
        let t = quick(SynthConfig {
            requests: 10_000,
            lpn_theta: 0.95,
            prefill_fraction: 0.0,
            logical_pages: 1 << 14,
            ..Default::default()
        });
        let mut counts = std::collections::HashMap::new();
        for r in t.requests.iter().filter(|r| r.kind == OpKind::Write) {
            for l in r.lpns() {
                *counts.entry(l).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 20, "no hot page found (max rewrites {max})");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_ratio_rejected() {
        quick(SynthConfig { dedup_ratio: 1.5, ..Default::default() });
    }
}
