//! Property-based tests for the metrics substrate.

use cagc_harness::prop::*;
use cagc_harness::{Json, ToJson};
use cagc_metrics::{Cdf, Histogram, Summary, TimeSeries};
use cagc_sim::SimRng;

harness_proptest! {
    /// The histogram's count/mean/min/max are exact for any input.
    #[test]
    fn histogram_exact_moments(values in vec(0u64..10_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    /// Quantiles are monotone in q and bounded by [min, max].
    #[test]
    fn histogram_quantiles_monotone(values in vec(1u64..100_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile regressed at q={q}");
            prop_assert!(v >= h.min() && v <= h.max());
            prev = v;
        }
    }

    /// Quantile relative error is bounded by the bucket design (~3.2%).
    #[test]
    fn histogram_quantile_error_bounded(values in vec(1u64..1_000_000_000, 10..300)) {
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        for &v in &values {
            h.record(v);
        }
        sorted.sort_unstable();
        for q in [0.25, 0.5, 0.75, 0.9] {
            let exact = sorted[((q * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1)];
            let approx = h.quantile(q);
            // approx is an upper bucket edge near some sample; allow the
            // bucket's relative width both ways around the exact value.
            prop_assert!(approx as f64 >= exact as f64 * 0.95 - 2.0,
                "q={q}: {approx} far below exact {exact}");
            prop_assert!(approx as f64 <= exact as f64 * 1.05 + 2.0,
                "q={q}: {approx} far above exact {exact}");
        }
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(a in vec(0u64..1_000_000, 0..200),
                                 b in vec(0u64..1_000_000, 0..200)) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a { ha.record(v); hc.record(v); }
        for &v in &b { hb.record(v); hc.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
    }

    /// A CDF built from any histogram is monotone, in [0,1], ends at 1.
    #[test]
    fn cdf_is_a_distribution(values in vec(0u64..50_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let c = Cdf::from_histogram(&h);
        let pts = c.points();
        prop_assert!(!pts.is_empty());
        prop_assert!((pts.last().unwrap().fraction - 1.0).abs() < 1e-9);
        for w in pts.windows(2) {
            prop_assert!(w[0].value_ns < w[1].value_ns);
            prop_assert!(w[0].fraction <= w[1].fraction + 1e-12);
        }
        for p in pts {
            prop_assert!(p.fraction > 0.0 && p.fraction <= 1.0 + 1e-12);
        }
    }

    /// The documented worst-case quantile error of the log-bucket design
    /// (one part in 32, ≈3.2 %) holds for SimRng-generated value sets
    /// spread across every bucket tier the simulator can produce.
    #[test]
    fn histogram_quantile_error_bound_holds_for_simrng_values(seed in any::<u64>(),
                                                             n in 16usize..400) {
        let mut rng = SimRng::for_stream(seed, "hist-error-bound");
        let mut h = Histogram::new();
        // Log-uniform draws: pick a tier, then a value inside it, so tiny
        // (exact) buckets and wide high-tier buckets are both exercised.
        let mut sorted: Vec<u64> = (0..n)
            .map(|_| {
                let bits = rng.gen_range_u64(0..40);
                let base = 1u64 << bits;
                base + rng.gen_range_u64(0..base)
            })
            .collect();
        for &v in &sorted {
            h.record(v);
        }
        sorted.sort_unstable();
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let target = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[target - 1];
            let approx = h.quantile(q);
            // quantile() reports the upper edge of the bucket holding the
            // target-th sample: never below the sample, and above it by at
            // most the bucket's relative width (1/32 beyond tier 0).
            prop_assert!(approx >= exact,
                "q={q}: approx {approx} below exact {exact}");
            prop_assert!(approx as f64 <= exact as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                "q={q}: approx {approx} violates the 3.2% bound vs exact {exact}");
        }
    }

    /// A sample stamped exactly on a window boundary lands in the window
    /// that *starts* there, never the one that ends there.
    #[test]
    fn window_boundary_sample_lands_in_starting_window(k in 0u64..1_000,
                                                       width in 1u64..100_000,
                                                       value in 0u64..1_000_000) {
        let mut ts = TimeSeries::new(width);
        ts.record(k * width, value);
        let w = ts.windows();
        prop_assert_eq!(w.len(), 1);
        prop_assert_eq!(w[0].start_ns, k * width);
        prop_assert_eq!(w[0].count, 1);
    }

    /// A single sample's window is degenerate: mean == max == the sample.
    #[test]
    fn single_sample_window_is_degenerate(at in 0u64..10_000_000,
                                          value in 0u64..1_000_000_000) {
        let mut ts = TimeSeries::new(1_000);
        ts.record(at, value);
        let w = ts.windows();
        prop_assert_eq!(w.len(), 1);
        prop_assert_eq!(w[0].max, value);
        prop_assert!((w[0].mean - value as f64).abs() < 1e-9);
        // The dump helpers agree with the aggregation.
        prop_assert_eq!(ts.to_csv().lines().count(), 2);
    }

    /// Empty windows never appear in the aggregation or either dump; the
    /// JSON dump round-trips through the harness parser.
    #[test]
    fn sparse_series_skips_empty_windows(times in vec(0u64..1_000_000, 0..50)) {
        let mut ts = TimeSeries::new(1_000);
        for &t in &times {
            ts.record(t, 1);
        }
        let distinct: std::collections::BTreeSet<u64> =
            times.iter().map(|t| t / 1_000).collect();
        let w = ts.windows();
        prop_assert_eq!(w.len(), distinct.len());
        prop_assert_eq!(ts.to_csv().lines().count(), 1 + distinct.len());
        let rendered = ts.to_json().render();
        let parsed = Json::parse(&rendered).expect("dump must be valid JSON");
        prop_assert_eq!(parsed.render(), rendered);
    }

    /// Welford summary matches naive two-pass computation.
    #[test]
    fn summary_matches_two_pass(values in vec(-1e6f64..1e6, 1..300)) {
        let mut s = Summary::new();
        for &v in &values {
            s.record(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.std_dev() - var.sqrt()).abs() < 1e-6 * var.sqrt().max(1.0));
    }
}
