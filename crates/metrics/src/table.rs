//! ASCII tables and bar charts for harness output.
//!
//! The repro harness prints every figure/table of the paper as text; these
//! renderers keep that output aligned and diff-friendly.

/// Column-aligned ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with ` | ` separators and a dashed underline.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join(" | ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 3 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Render a labelled horizontal bar chart (used for figure output).
///
/// `max_width` is the bar length of the largest value; all bars scale
/// linearly. Values must be non-negative.
pub fn bar_chart(entries: &[(String, f64)], max_width: usize) -> String {
    let peak = entries.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in entries {
        let w = if peak > 0.0 { (v / peak * max_width as f64).round() as usize } else { 0 };
        out.push_str(&format!("{label:<label_w$} | {} {v:.4}\n", "#".repeat(w)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["workload", "baseline", "cagc"]);
        t.row(vec!["Mail", "1.00", "0.30"]);
        t.row(vec!["Homes-longer-name", "1.00", "0.66"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All separator positions align.
        let pos: Vec<usize> = lines[0].match_indices('|').map(|(i, _)| i).collect();
        for l in &lines[2..] {
            let p: Vec<usize> = l.match_indices('|').map(|(i, _)| i).collect();
            assert_eq!(p, pos, "misaligned row: {l}");
        }
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn bar_chart_scales_to_peak() {
        let chart = bar_chart(
            &[("base".to_string(), 2.0), ("cagc".to_string(), 1.0)],
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 5);
    }

    #[test]
    fn bar_chart_handles_all_zero() {
        let chart = bar_chart(&[("z".to_string(), 0.0)], 10);
        assert!(!chart.contains('#'));
    }
}
