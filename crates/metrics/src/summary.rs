//! Scalar summary statistics and normalization helpers.

use cagc_harness::{Json, ToJson};

/// Streaming mean/variance/min/max over `f64` samples (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Absorb one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::U64(self.n)),
            ("mean", Json::F64(self.mean())),
            ("std_dev", Json::F64(self.std_dev())),
            ("min", Json::F64(self.min())),
            ("max", Json::F64(self.max())),
        ])
    }
}

/// `value / baseline`, the normalization used by Figs. 2 and 11.
/// Returns 0 when the baseline is 0 (empty run).
pub fn normalize(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// Percentage reduction relative to a baseline, the metric of Figs. 9, 10,
/// 13: `(baseline - value) / baseline * 100`. Returns 0 when baseline is 0.
pub fn reduction_pct(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - value) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_closed_form() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut s = Summary::new();
        s.record(42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn normalize_and_reduction_are_consistent() {
        // CAGC erases 0.134x of baseline <=> 86.6% reduction (Fig. 9 Mail).
        let norm = normalize(13_400.0, 100_000.0);
        let red = reduction_pct(100_000.0, 13_400.0);
        assert!((norm - 0.134).abs() < 1e-12);
        assert!((red - 86.6).abs() < 1e-9);
    }

    #[test]
    fn summary_renders_stable_json() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 6.0] {
            s.record(x);
        }
        assert_eq!(
            s.to_json().render(),
            r#"{"n":3,"mean":4,"std_dev":1.632993161855452,"min":2,"max":6}"#
        );
    }

    #[test]
    fn zero_baseline_does_not_divide() {
        assert_eq!(normalize(5.0, 0.0), 0.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }
}
