//! Log-bucket latency histogram.
//!
//! An HDR-style histogram: values are bucketed by (exponent, mantissa-slice)
//! with `SUB_BITS` linear sub-buckets per power of two, giving a bounded
//! relative error of `2^-SUB_BITS` (≈1.6 % with the default 6 bits) across
//! the full `u64` range in constant memory. Used for response-time
//! distributions (Fig. 11 means, Fig. 12 CDFs, tail percentiles).

const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Number of top-level (exponent) tiers.
const TIERS: usize = 64 - SUB_BITS as usize;
/// Exact values retained for the upper tail: quantiles whose rank falls
/// within the largest `TAIL_KEEP` recorded values (p99.9 of a ≤1M-sample
/// run, every quantile of a ≤1024-sample run) are exact order statistics,
/// not bucket approximations. Bounded memory, amortized O(1) per record.
const TAIL_KEEP: usize = 1024;

/// A fixed-memory log-bucket histogram over `u64` values (nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>, // TIERS * SUB_COUNT
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Unsorted buffer whose top-`TAIL_KEEP` multiset is exactly the
    /// largest `TAIL_KEEP` values ever recorded. Kept below `2 * TAIL_KEEP`
    /// entries by [`Self::tail_compact`]; record-path cost is a bounds
    /// check plus an amortized-O(1) push, which is why this is a flat `Vec`
    /// and not a heap (ordering is only needed at report time).
    tail: Vec<u64>,
    /// Values strictly below this floor cannot rank in the top `TAIL_KEEP`
    /// and are dropped on arrival. 0 (filter disabled) until the first
    /// compaction establishes a true K-th-largest.
    tail_floor: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; TIERS * SUB_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            tail: Vec::new(),
            tail_floor: 0,
        }
    }

    /// Offer `v` to the exact-tail buffer. Values below the established
    /// floor are dropped (they cannot rank in the top `TAIL_KEEP`); the
    /// retained *multiset* of the buffer's largest `TAIL_KEEP` entries is
    /// the top `TAIL_KEEP` values ever recorded, regardless of order.
    #[inline]
    fn tail_push(&mut self, v: u64) {
        if v < self.tail_floor {
            return;
        }
        self.tail.push(v);
        if self.tail.len() >= 2 * TAIL_KEEP {
            self.tail_compact();
        }
    }

    /// Shrink the buffer to exactly the top-`TAIL_KEEP` multiset and raise
    /// the floor to the K-th largest. O(len) via quickselect, so the
    /// amortized cost per retained push is O(1).
    fn tail_compact(&mut self) {
        self.tail.select_nth_unstable_by(TAIL_KEEP - 1, |a, b| b.cmp(a));
        self.tail.truncate(TAIL_KEEP);
        self.tail_floor = self.tail[TAIL_KEEP - 1];
    }

    /// Number of top ranks (from the maximum downward) answerable as exact
    /// order statistics from the tail buffer.
    fn tail_exact_len(&self) -> usize {
        self.count.min(TAIL_KEEP as u64) as usize
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v < SUB_COUNT as u64 {
            return v as usize; // exact in tier 0
        }
        // msb >= SUB_BITS here. Values in tier t keep their top SUB_BITS
        // bits: sub = v >> t lands in [SUB_COUNT/2, SUB_COUNT).
        let msb = 63 - v.leading_zeros();
        let tier = (msb - SUB_BITS + 1) as usize;
        let sub = (v >> tier) as usize;
        debug_assert!((SUB_COUNT / 2..SUB_COUNT).contains(&sub), "sub {sub} for {v}");
        tier * SUB_COUNT + sub
    }

    /// Representative (upper-edge) value of bucket `idx`.
    fn bucket_value(idx: usize) -> u64 {
        let tier = idx / SUB_COUNT;
        let sub = (idx % SUB_COUNT) as u64;
        if tier == 0 {
            return sub;
        }
        ((sub + 1) << tier) - 1
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.tail_push(v);
    }

    /// Record `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        // More than TAIL_KEEP copies are indistinguishable in a top-K
        // multiset, so capping the pushes preserves tail exactness.
        for _ in 0..n.min(TAIL_KEEP as u64) {
            self.tail_push(v);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q ∈ [0,1]`. Quantiles whose rank lands within the
    /// retained exact tail (the largest `TAIL_KEEP` values — p99.9 of a
    /// million-sample run, *every* quantile of a small run) are exact order
    /// statistics; lower ranks fall back to the bucket approximation
    /// (≈1.6 % relative error). Min/max are always exact. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_inner(q, &mut None)
    }

    /// Values at several quantiles at once. Equivalent to calling
    /// [`Self::quantile`] per entry, but the exact-tail buffer is sorted at
    /// most once for the whole batch — use this on report paths that
    /// summarize many percentiles of the same histogram.
    pub fn quantiles<const N: usize>(&self, qs: [f64; N]) -> [u64; N] {
        let mut sorted_tail = None;
        qs.map(|q| self.quantile_inner(q, &mut sorted_tail))
    }

    /// [`Self::quantile`] with a caller-held cache of the descending-sorted
    /// tail, filled on first use so a batch of queries sorts once.
    fn quantile_inner(&self, q: f64, sorted_tail: &mut Option<Vec<u64>>) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let from_top = self.count - target; // 0 = the maximum
        if (from_top as usize) < self.tail_exact_len() {
            // Rank falls inside the exact tail: return the true order
            // statistic. Queries are rare (report time), so sorting a copy
            // here beats paying for ordering on every record.
            let sorted = sorted_tail.get_or_insert_with(|| {
                let mut s = self.tail.clone();
                s.sort_unstable_by(|a, b| b.cmp(a));
                s
            });
            return sorted[from_top as usize];
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Iterate `(bucket_upper_value, count)` over non-empty buckets,
    /// ascending — the raw material for CDFs.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_value(i), c))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Top-K of a union is the top-K of the two top-Ks, and every entry
        // in `other.tail` is a genuinely recorded value, so offering the
        // whole buffer (a superset of other's top-K) preserves exactness.
        for &v in other.tail.iter() {
            self.tail_push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_COUNT as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_COUNT as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_COUNT as u64 - 1);
        // Every small value sits in its own bucket.
        assert_eq!(h.iter_buckets().count(), SUB_COUNT);
    }

    #[test]
    fn mean_is_exact_regardless_of_bucketing() {
        let mut h = Histogram::new();
        let values = [12_000u64, 16_000, 1_500_000, 28_000, 44_000];
        for &v in &values {
            h.record(v);
        }
        let expect = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert!((h.mean() - expect).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = Histogram::new();
        // Latencies spanning us to ms.
        let mut vals: Vec<u64> = (0..10_000).map(|i| 1_000 + i * 173).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = vals[((q * vals.len() as f64) as usize).min(vals.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.05, "q={q}: approx {approx} vs exact {exact} (rel {rel})");
        }
        assert_eq!(h.quantile(0.0), *vals.first().unwrap());
        assert_eq!(h.quantile(1.0), *vals.last().unwrap());
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..37 {
            a.record(12_345);
        }
        b.record_n(12_345, 37);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert!((a.mean() - b.mean()).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1_000);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1_000);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn tail_quantiles_are_exact_order_statistics() {
        // With fewer than TAIL_KEEP samples, *every* quantile is exact.
        let mut h = Histogram::new();
        let mut vals: Vec<u64> = (0..800u64).map(|i| 10_007 * (i * 37 % 800) + 991).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let target = (q * vals.len() as f64).ceil() as usize;
            let exact = vals[target - 1];
            assert_eq!(h.quantile(q), exact, "q={q} not exact");
        }
        assert_eq!(h.quantile(1.0), *vals.last().unwrap());
    }

    #[test]
    fn tail_stays_exact_past_capacity() {
        // 100k samples: p50 uses buckets, but p99.9 ranks inside the
        // retained top-1024 and must be the true order statistic.
        let mut h = Histogram::new();
        let mut vals: Vec<u64> = (0..100_000u64).map(|i| 1_000 + (i * 48_271 % 100_000) * 173).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.99, 0.999, 0.9999] {
            let target = (q * vals.len() as f64).ceil() as usize;
            assert_eq!(h.quantile(q), vals[target - 1], "q={q} not exact");
        }
    }

    #[test]
    fn merge_preserves_exact_tail() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Vec::new();
        for i in 0..3_000u64 {
            let v = 5_000 + (i * 127) % 90_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.push(v);
        }
        a.merge(&b);
        all.sort_unstable();
        let target = (0.999 * all.len() as f64).ceil() as usize;
        assert_eq!(a.quantile(0.999), all[target - 1]);
        assert_eq!(a.max(), *all.last().unwrap());
    }

    #[test]
    fn record_n_matches_repeated_record_in_the_tail() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..2_000 {
            a.record(7_777);
        }
        a.record(9_999);
        b.record_n(7_777, 2_000);
        b.record(9_999);
        for q in [0.5, 0.999, 0.9999, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q), "q={q}");
        }
    }

    #[test]
    fn tied_values_survive_tail_compaction() {
        // Thousands of copies of one value force repeated buffer
        // compactions where every candidate ties at the cut; the retained
        // multiset must still be exact.
        let mut h = Histogram::new();
        for _ in 0..5 * TAIL_KEEP {
            h.record(42_000);
        }
        h.record(99_000);
        assert_eq!(h.quantile(0.999), 42_000);
        assert_eq!(h.quantile(1.0), 99_000);
        assert_eq!(h.count(), 5 * TAIL_KEEP as u64 + 1);
    }

    #[test]
    fn batched_quantiles_match_single_queries() {
        let mut h = Histogram::new();
        for i in 0..30_000u64 {
            h.record(1_000 + (i * 48_271) % 500_000);
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0];
        let batch = h.quantiles(qs);
        for (q, b) in qs.iter().zip(batch) {
            assert_eq!(h.quantile(*q), b, "q={q}");
        }
    }

    #[test]
    fn buckets_are_monotone_in_value() {
        let mut prev = 0;
        for v in (0..1u64 << 40).step_by(1 << 22) {
            let b = Histogram::bucket_of(v);
            assert!(b >= prev, "bucket index regressed at {v}");
            prev = b;
        }
    }

    #[test]
    fn bucket_value_is_within_bucket() {
        // For sampled values, bucket_value(bucket_of(v)) must be >= v and
        // within the relative error bound.
        for v in [1u64, 63, 64, 65, 127, 128, 1_000, 12_000, 1_500_000, 10_000_000_000] {
            let bv = Histogram::bucket_value(Histogram::bucket_of(v));
            assert!(bv >= v, "bucket value {bv} below {v}");
            assert!((bv as f64) <= v as f64 * 1.04 + 1.0, "bucket value {bv} too far above {v}");
        }
    }
}
