//! # cagc-metrics — measurement substrate
//!
//! The statistics layer that turns simulator events into the numbers the
//! paper reports:
//!
//! * [`hist::Histogram`] — fixed-memory log-bucket latency histogram
//!   (HDR-style; ≈3 % worst-case relative error) for response times.
//! * [`cdf::Cdf`] — cumulative distributions for Fig. 12.
//! * [`summary::Summary`] — Welford mean/σ/min/max for scalar series, plus
//!   [`summary::normalize`] / [`summary::reduction_pct`], the exact
//!   normalizations used by Figs. 2/9/10/11/13.
//! * [`table`] — aligned ASCII tables and bar charts for harness output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cdf;
pub mod hist;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use cdf::{Cdf, CdfPoint};
pub use hist::Histogram;
pub use summary::{normalize, reduction_pct, Summary};
pub use table::{bar_chart, Table};
pub use timeseries::{TimeSeries, Window};
