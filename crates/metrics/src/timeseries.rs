//! Windowed time series: how a metric evolves over simulated time.
//!
//! Used to visualize GC interference — per-window mean/max latency spikes
//! line up with GC rounds — and to verify steady state was reached before
//! reading end-of-run counters.

use cagc_harness::{Json, ToJson};

/// One aggregated window.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Window start (ns).
    pub start_ns: u64,
    /// Samples recorded in the window.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: u64,
}

impl ToJson for Window {
    fn to_json(&self) -> Json {
        Json::obj([
            ("start_ns", Json::U64(self.start_ns)),
            ("count", Json::U64(self.count)),
            ("mean", Json::F64(self.mean)),
            ("max", Json::U64(self.max)),
        ])
    }
}

/// Fixed-width windowed aggregation over `(time, value)` samples.
///
/// Samples may arrive in any time order (late events from overlapping
/// operations are fine); memory is one slot per touched window.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window_ns: u64,
    // Dense from window 0; simulations start at t=0 anyway.
    slots: Vec<(u64, u128, u64)>, // (count, sum, max)
}

impl TimeSeries {
    /// A series with the given window width.
    ///
    /// # Panics
    /// Panics on a zero-width window.
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "zero-width window");
        Self { window_ns, slots: Vec::new() }
    }

    /// Window width.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Record `value` at simulated time `at_ns`.
    pub fn record(&mut self, at_ns: u64, value: u64) {
        let idx = (at_ns / self.window_ns) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, (0, 0, 0));
        }
        let slot = &mut self.slots[idx];
        slot.0 += 1;
        slot.1 += value as u128;
        slot.2 = slot.2.max(value);
    }

    /// Fold `other` into this series, window by window: counts and sums
    /// add, maxima take the max. Exact — merging operates on the raw
    /// integer accumulators, never on the derived float means, so a
    /// fleet-level merge is byte-deterministic regardless of how many
    /// devices contribute or in what order their samples were recorded.
    ///
    /// # Panics
    /// Panics if the window widths differ (windows would not line up).
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.window_ns, other.window_ns,
            "cannot merge series with different window widths"
        );
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), (0, 0, 0));
        }
        for (dst, src) in self.slots.iter_mut().zip(&other.slots) {
            dst.0 += src.0;
            dst.1 += src.1;
            dst.2 = dst.2.max(src.2);
        }
    }

    /// Total samples recorded across all windows.
    pub fn sample_count(&self) -> u64 {
        self.slots.iter().map(|&(c, _, _)| c).sum()
    }

    /// Sum of all recorded values across all windows.
    pub fn sample_sum(&self) -> u128 {
        self.slots.iter().map(|&(_, s, _)| s).sum()
    }

    /// Aggregated windows, ascending in time (empty windows skipped).
    pub fn windows(&self) -> Vec<Window> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &(c, _, _))| c > 0)
            .map(|(i, &(count, sum, max))| Window {
                start_ns: i as u64 * self.window_ns,
                count,
                mean: sum as f64 / count as f64,
                max,
            })
            .collect()
    }

    /// Dump the non-empty windows as CSV (`start_ns,count,mean,max` header
    /// included). Floats use the harness's shortest-round-trip formatting,
    /// so the output is byte-deterministic for a given series.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("start_ns,count,mean,max\n");
        for w in self.windows() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                w.start_ns,
                w.count,
                Json::F64(w.mean).render(),
                w.max
            ));
        }
        out
    }

    /// ASCII sparkline of per-window means (log-scaled), for terminal
    /// diagnostics. Empty windows render as spaces.
    pub fn sparkline(&self, width: usize) -> String {
        const LEVELS: &[u8] = b" .:-=+*#%@";
        if self.slots.is_empty() || width == 0 {
            return String::new();
        }
        let chunk = self.slots.len().div_ceil(width);
        let means: Vec<f64> = self
            .slots
            .chunks(chunk)
            .map(|c| {
                let (n, s) = c.iter().fold((0u64, 0u128), |(n, s), &(cn, cs, _)| {
                    (n + cn, s + cs)
                });
                if n == 0 {
                    0.0
                } else {
                    s as f64 / n as f64
                }
            })
            .collect();
        let peak = means.iter().cloned().fold(0.0f64, f64::max);
        means
            .iter()
            .map(|&m| {
                if m <= 0.0 || peak <= 0.0 {
                    ' '
                } else {
                    // log scale: one level per factor of peak^(1/9).
                    let frac = (m.ln() - (peak / 1e4).max(1.0).ln())
                        / (peak.ln() - (peak / 1e4).max(1.0).ln()).max(1e-12);
                    let lvl = (frac.clamp(0.0, 1.0) * (LEVELS.len() - 1) as f64).round();
                    LEVELS[lvl as usize] as char
                }
            })
            .collect()
    }
}

impl ToJson for TimeSeries {
    /// `{"window_ns":…,"windows":[…]}` with empty windows skipped — the
    /// JSON twin of [`TimeSeries::to_csv`].
    fn to_json(&self) -> Json {
        Json::obj([
            ("window_ns", Json::U64(self.window_ns)),
            (
                "windows",
                Json::Arr(self.windows().iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_aggregate_correctly() {
        let mut ts = TimeSeries::new(1_000);
        ts.record(100, 10);
        ts.record(900, 30);
        ts.record(1_500, 100);
        let w = ts.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start_ns, 0);
        assert_eq!(w[0].count, 2);
        assert!((w[0].mean - 20.0).abs() < 1e-12);
        assert_eq!(w[0].max, 30);
        assert_eq!(w[1].start_ns, 1_000);
        assert_eq!(w[1].count, 1);
    }

    #[test]
    fn out_of_order_samples_are_fine() {
        let mut ts = TimeSeries::new(100);
        ts.record(950, 1);
        ts.record(50, 2);
        assert_eq!(ts.windows().len(), 2);
        assert_eq!(ts.windows()[0].start_ns, 0);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut ts = TimeSeries::new(10);
        ts.record(5, 1);
        ts.record(95, 1);
        let w = ts.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].start_ns, 90);
    }

    #[test]
    fn sparkline_has_requested_width_bound() {
        let mut ts = TimeSeries::new(10);
        for i in 0..1_000 {
            ts.record(i * 10, (i % 97) + 1);
        }
        let s = ts.sparkline(40);
        assert!(s.chars().count() <= 40);
        assert!(!s.trim().is_empty());
    }

    #[test]
    fn window_renders_stable_json() {
        let mut ts = TimeSeries::new(1_000);
        ts.record(100, 10);
        ts.record(900, 30);
        assert_eq!(
            ts.windows()[0].to_json().render(),
            r#"{"start_ns":0,"count":2,"mean":20,"max":30}"#
        );
    }

    #[test]
    fn csv_and_json_dumps_agree_with_windows() {
        let mut ts = TimeSeries::new(1_000);
        ts.record(100, 10);
        ts.record(900, 30);
        ts.record(2_500, 7);
        assert_eq!(
            ts.to_csv(),
            "start_ns,count,mean,max\n0,2,20,30\n2000,1,7,7\n"
        );
        assert_eq!(
            ts.to_json().render(),
            r#"{"window_ns":1000,"windows":[{"start_ns":0,"count":2,"mean":20,"max":30},{"start_ns":2000,"count":1,"mean":7,"max":7}]}"#
        );
    }

    #[test]
    fn empty_series_dumps_header_only() {
        let ts = TimeSeries::new(10);
        assert_eq!(ts.to_csv(), "start_ns,count,mean,max\n");
        assert_eq!(ts.to_json().render(), r#"{"window_ns":10,"windows":[]}"#);
    }

    #[test]
    fn sparkline_of_empty_series_is_empty() {
        assert_eq!(TimeSeries::new(10).sparkline(20), "");
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_window_rejected() {
        TimeSeries::new(0);
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let mut a = TimeSeries::new(100);
        a.record(50, 10);
        a.record(250, 4);
        let mut b = TimeSeries::new(100);
        b.record(60, 20);
        b.record(950, 7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_csv(), ba.to_csv());
        let w = ab.windows();
        assert_eq!(w[0].count, 2);
        assert!((w[0].mean - 15.0).abs() < 1e-12);
        assert_eq!(w[0].max, 20);
        assert_eq!(ab.sample_count(), 4);
        assert_eq!(ab.sample_sum(), 41);
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn merge_rejects_mismatched_windows() {
        let mut a = TimeSeries::new(100);
        a.merge(&TimeSeries::new(200));
    }
}
