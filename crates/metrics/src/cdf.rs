//! Cumulative distribution functions over latency histograms (Fig. 12).

use crate::hist::Histogram;
use cagc_harness::{Json, ToJson};

/// One CDF point: `fraction` of samples are ≤ `value_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Latency (ns).
    pub value_ns: u64,
    /// Cumulative fraction in `[0, 1]`.
    pub fraction: f64,
}

/// A cumulative distribution extracted from a [`Histogram`].
#[derive(Debug, Clone)]
pub struct Cdf {
    points: Vec<CdfPoint>,
}

impl ToJson for CdfPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("value_ns", Json::U64(self.value_ns)),
            ("fraction", Json::F64(self.fraction)),
        ])
    }
}

impl ToJson for Cdf {
    fn to_json(&self) -> Json {
        Json::obj([("points", self.points.to_json())])
    }
}

impl Cdf {
    /// Build the CDF of `hist` (one point per non-empty bucket, ascending).
    pub fn from_histogram(hist: &Histogram) -> Self {
        let total = hist.count();
        let mut points = Vec::new();
        if total == 0 {
            return Self { points };
        }
        let mut cum = 0u64;
        for (value_ns, count) in hist.iter_buckets() {
            cum += count;
            points.push(CdfPoint { value_ns, fraction: cum as f64 / total as f64 });
        }
        Self { points }
    }

    /// The CDF points, ascending in value.
    pub fn points(&self) -> &[CdfPoint] {
        &self.points
    }

    /// Fraction of samples ≤ `value_ns` (step interpolation).
    pub fn fraction_at(&self, value_ns: u64) -> f64 {
        match self.points.partition_point(|p| p.value_ns <= value_ns) {
            0 => 0.0,
            i => self.points[i - 1].fraction,
        }
    }

    /// Smallest recorded value whose cumulative fraction reaches `q`.
    pub fn value_at(&self, q: f64) -> u64 {
        self.points
            .iter()
            .find(|p| p.fraction >= q)
            .or(self.points.last())
            .map(|p| p.value_ns)
            .unwrap_or(0)
    }

    /// Downsample to at most `n` points (always keeps the last point),
    /// for plotting / compact printing.
    pub fn downsample(&self, n: usize) -> Vec<CdfPoint> {
        let n = n.max(2);
        if self.points.len() <= n {
            return self.points.clone();
        }
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        (0..n).map(|i| self.points[(i as f64 * step).round() as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn empty_histogram_gives_empty_cdf() {
        let c = Cdf::from_histogram(&Histogram::new());
        assert!(c.points().is_empty());
        assert_eq!(c.fraction_at(100), 0.0);
        assert_eq!(c.value_at(0.5), 0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let c = Cdf::from_histogram(&hist_of(&[10, 20, 20, 30, 1_000_000]));
        let pts = c.points();
        assert!(pts.windows(2).all(|w| w[0].value_ns < w[1].value_ns));
        assert!(pts.windows(2).all(|w| w[0].fraction <= w[1].fraction));
        assert!((pts.last().unwrap().fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_steps_correctly() {
        let c = Cdf::from_histogram(&hist_of(&[10, 20, 30, 40]));
        assert_eq!(c.fraction_at(0), 0.0);
        assert!((c.fraction_at(10) - 0.25).abs() < 1e-12);
        assert!((c.fraction_at(25) - 0.5).abs() < 1e-12);
        assert!((c.fraction_at(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_at_inverts_fraction_at() {
        let c = Cdf::from_histogram(&hist_of(&[10, 20, 30, 40]));
        assert_eq!(c.value_at(0.25), 10);
        assert_eq!(c.value_at(0.5), 20);
        assert_eq!(c.value_at(1.0), 40);
    }

    #[test]
    fn downsample_preserves_endpoints() {
        let values: Vec<u64> = (1..500).map(|i| i * 97).collect();
        let c = Cdf::from_histogram(&hist_of(&values));
        let d = c.downsample(10);
        assert!(d.len() <= 10);
        assert_eq!(d.last().unwrap().value_ns, c.points().last().unwrap().value_ns);
        assert!(d.windows(2).all(|w| w[0].value_ns <= w[1].value_ns));
    }

    #[test]
    fn cdf_renders_stable_json() {
        let c = Cdf::from_histogram(&hist_of(&[10, 10, 30, 30]));
        assert_eq!(
            c.to_json().render(),
            r#"{"points":[{"value_ns":10,"fraction":0.5},{"value_ns":30,"fraction":1}]}"#
        );
    }

    #[test]
    fn downsample_of_short_cdf_is_identity() {
        let c = Cdf::from_histogram(&hist_of(&[5, 6]));
        assert_eq!(c.downsample(10).len(), c.points().len());
    }
}
