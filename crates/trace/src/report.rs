//! Telemetry summary embedded in a run report.

use cagc_harness::{Json, ToJson};
use cagc_metrics::Window;

/// What a traced run recorded, for `RunReport` embedding.
///
/// Only constructed when tracing is enabled ([`crate::Tracer::report`]
/// returns `None` otherwise), so untraced reports render byte-identical
/// to builds without the tracing layer.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Events retained in memory.
    pub events_recorded: u64,
    /// Events discarded by the bounded-memory guard.
    pub dropped_events: u64,
    /// Host-op sampling stride in effect (1 = every request).
    pub sample: u64,
    /// Gauge aggregation window width (ns).
    pub gauge_window_ns: u64,
    /// Every gauge with its aggregated windows, registration order.
    pub gauges: Vec<(String, Vec<Window>)>,
}

impl TelemetryReport {
    /// Human-readable lines for the ASCII report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry: {} events recorded, {} dropped (sample 1/{})\n",
            self.events_recorded, self.dropped_events, self.sample
        ));
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "  WARNING: event cap hit — {} events dropped; profiles and \
                 anatomy from this trace are truncated (raise max_events or \
                 the sampling stride)\n",
                self.dropped_events
            ));
        }
        for (name, windows) in &self.gauges {
            let last = windows.last();
            out.push_str(&format!(
                "  gauge {:<20} {:>4} windows, last mean {:.1}\n",
                name,
                windows.len(),
                last.map_or(0.0, |w| w.mean),
            ));
        }
        out
    }
}

impl ToJson for TelemetryReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("events_recorded", Json::U64(self.events_recorded)),
            ("dropped_events", Json::U64(self.dropped_events)),
            ("sample", Json::U64(self.sample)),
            ("gauge_window_ns", Json::U64(self.gauge_window_ns)),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, w)| (n.clone(), w.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_json_and_text() {
        let report = TelemetryReport {
            events_recorded: 12,
            dropped_events: 3,
            sample: 2,
            gauge_window_ns: 1_000,
            gauges: vec![(
                "free_pages".to_string(),
                vec![Window { start_ns: 0, count: 1, mean: 5.0, max: 5 }],
            )],
        };
        let json = report.to_json().render();
        assert!(json.contains("\"dropped_events\":3"));
        assert!(json.contains("\"free_pages\":[{"));
        let text = report.render();
        assert!(text.contains("12 events recorded"));
        assert!(text.contains("free_pages"));
        // Nonzero drop count surfaces a truncation warning…
        assert!(text.contains("WARNING: event cap hit — 3 events dropped"));
        // …which disappears entirely when nothing was dropped.
        let clean = TelemetryReport { dropped_events: 0, ..report };
        assert!(!clean.render().contains("WARNING"));
    }
}
