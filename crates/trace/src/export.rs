//! Deterministic exporters: Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) and a JSONL event log for scripts.
//!
//! Both formats are produced through the in-tree harness serializer, so
//! identical recordings render to identical bytes: object keys keep
//! insertion order, integers render exactly, and the only floats emitted
//! (`ts`/`dur` microseconds, gauge means) are pure functions of the
//! recorded integers.

use cagc_harness::Json;

use crate::event::{Event, EventKind, Track};
use crate::tracer::Tracer;

/// Chrome thread ids for the synthetic FTL process (`pid = channels`).
const FTL_TID_HOST: u64 = 0;
const FTL_TID_GC: u64 = 1;
const FTL_TID_HASH: u64 = 2;
const FTL_TID_FAULT: u64 = 3;
/// Queue-pair tracks follow the fixed FTL tids: `tid = 4 + pair`.
const FTL_TID_QUEUE_BASE: u64 = 4;

fn pid_tid(track: Track, channels: u32) -> (u64, u64) {
    match track {
        Track::Die { channel, die } => (u64::from(channel), u64::from(die)),
        Track::Host => (u64::from(channels), FTL_TID_HOST),
        Track::Gc => (u64::from(channels), FTL_TID_GC),
        Track::Hash => (u64::from(channels), FTL_TID_HASH),
        Track::Fault => (u64::from(channels), FTL_TID_FAULT),
        Track::Queue { pair } => (u64::from(channels), FTL_TID_QUEUE_BASE + u64::from(pair)),
    }
}

fn category(track: Track) -> &'static str {
    match track {
        Track::Die { .. } => "flash",
        Track::Host => "host",
        Track::Gc => "gc",
        Track::Hash => "hash",
        Track::Fault => "fault",
        Track::Queue { .. } => "queue",
    }
}

/// Simulated ns → Chrome `ts` microseconds. Chrome's unit is µs; the
/// division is deterministic (same u64 in, same f64 out) even when the
/// quotient is not exact.
fn ts_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn args_obj(args: &[(&'static str, u64)]) -> Json {
    Json::Obj(args.iter().map(|&(k, v)| (k.to_string(), Json::U64(v))).collect())
}

fn metadata(pid: u64, tid: u64, which: &'static str, label: String) -> Json {
    Json::obj([
        ("ph", Json::Str("M".into())),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(tid)),
        ("name", Json::Str(which.into())),
        ("args", Json::Obj(vec![("name".into(), Json::Str(label))])),
    ])
}

fn event_json(event: &Event, channels: u32) -> Json {
    let (pid, tid) = pid_tid(event.track, channels);
    let mut pairs: Vec<(String, Json)> = vec![
        ("name".into(), Json::Str(event.name.into())),
        ("cat".into(), Json::Str(category(event.track).into())),
    ];
    match event.kind {
        EventKind::Span { start_ns, end_ns } => {
            pairs.push(("ph".into(), Json::Str("X".into())));
            pairs.push(("ts".into(), Json::F64(ts_us(start_ns))));
            pairs.push(("dur".into(), Json::F64(ts_us(end_ns.saturating_sub(start_ns)))));
        }
        EventKind::Instant { at_ns } => {
            pairs.push(("ph".into(), Json::Str("i".into())));
            pairs.push(("ts".into(), Json::F64(ts_us(at_ns))));
            pairs.push(("s".into(), Json::Str("t".into())));
        }
    }
    pairs.push(("pid".into(), Json::U64(pid)));
    pairs.push(("tid".into(), Json::U64(tid)));
    if !event.args.is_empty() {
        pairs.push(("args".into(), args_obj(&event.args)));
    }
    Json::Obj(pairs)
}

/// Build the Chrome trace-event document for a recording.
///
/// `channels` is the device's channel count: die tracks map to
/// `pid = channel`, `tid = global die index`, and the FTL's logical
/// tracks (host/gc/hash/fault) share the synthetic process
/// `pid = channels`. Gauges become `ph:"C"` counter events on the FTL
/// process, one per aggregated window, valued at the window mean.
pub fn chrome_trace(tracer: &Tracer, channels: u32) -> Json {
    let mut events: Vec<Json> = Vec::new();

    // Process/thread naming metadata, emitted for every (pid, tid) that
    // actually carries events, in sorted order for determinism.
    let mut pids: Vec<u64> = Vec::new();
    let mut threads: Vec<(u64, u64, Track)> = Vec::new();
    for e in tracer.events() {
        let (pid, tid) = pid_tid(e.track, channels);
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        if !threads.iter().any(|&(p, t, _)| p == pid && t == tid) {
            threads.push((pid, tid, e.track));
        }
    }
    if !tracer.registry().is_empty() {
        let ftl = u64::from(channels);
        if !pids.contains(&ftl) {
            pids.push(ftl);
        }
    }
    pids.sort_unstable();
    threads.sort_unstable_by_key(|&(p, t, _)| (p, t));
    for &pid in &pids {
        let label = if pid == u64::from(channels) {
            "ftl".to_string()
        } else {
            format!("channel {pid}")
        };
        events.push(metadata(pid, 0, "process_name", label));
    }
    for &(pid, tid, track) in &threads {
        let label = match track {
            Track::Die { die, .. } => format!("die {die}"),
            Track::Host => "host".to_string(),
            Track::Gc => "gc".to_string(),
            Track::Hash => "hash".to_string(),
            Track::Fault => "fault".to_string(),
            Track::Queue { pair } => format!("queue {pair}"),
        };
        events.push(metadata(pid, tid, "thread_name", label));
    }

    for e in tracer.events() {
        events.push(event_json(e, channels));
    }

    // Gauge counters ride on the FTL process track.
    let ftl = u64::from(channels);
    for (name, windows) in tracer.registry().snapshot() {
        for w in windows {
            events.push(Json::obj([
                ("ph", Json::Str("C".into())),
                ("ts", Json::F64(ts_us(w.start_ns))),
                ("pid", Json::U64(ftl)),
                ("tid", Json::U64(0)),
                ("name", Json::Str(name.into())),
                (
                    "args",
                    Json::Obj(vec![(name.to_string(), Json::F64(w.mean))]),
                ),
            ]));
        }
    }

    // Truncation marker: hitting the event cap silently skews every
    // downstream analysis, so the drop count rides in the document as a
    // metadata event on the FTL process.
    if tracer.dropped_events() > 0 {
        events.push(Json::obj([
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(ftl)),
            ("tid", Json::U64(0)),
            ("name", Json::Str("dropped_events".into())),
            (
                "args",
                Json::Obj(vec![(
                    "dropped_events".into(),
                    Json::U64(tracer.dropped_events()),
                )]),
            ),
        ]));
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

fn jsonl_track(track: Track) -> Vec<(String, Json)> {
    match track {
        Track::Die { channel, die } => vec![
            ("track".into(), Json::Str("die".into())),
            ("channel".into(), Json::U64(u64::from(channel))),
            ("die".into(), Json::U64(u64::from(die))),
        ],
        Track::Host => vec![("track".into(), Json::Str("host".into()))],
        Track::Gc => vec![("track".into(), Json::Str("gc".into()))],
        Track::Hash => vec![("track".into(), Json::Str("hash".into()))],
        Track::Fault => vec![("track".into(), Json::Str("fault".into()))],
        Track::Queue { pair } => vec![
            ("track".into(), Json::Str("queue".into())),
            ("pair".into(), Json::U64(u64::from(pair))),
        ],
    }
}

/// Render the recording as JSONL: one compact JSON object per line —
/// every event in recording order, then one `"gauge"` line per
/// aggregated window. Each line parses with `cagc_harness::Json::parse`.
pub fn jsonl(tracer: &Tracer) -> String {
    let mut out = String::new();
    for e in tracer.events() {
        let mut pairs = jsonl_track(e.track);
        pairs.push(("name".into(), Json::Str(e.name.into())));
        match e.kind {
            EventKind::Span { start_ns, end_ns } => {
                pairs.push(("kind".into(), Json::Str("span".into())));
                pairs.push(("start_ns".into(), Json::U64(start_ns)));
                pairs.push(("end_ns".into(), Json::U64(end_ns)));
            }
            EventKind::Instant { at_ns } => {
                pairs.push(("kind".into(), Json::Str("instant".into())));
                pairs.push(("at_ns".into(), Json::U64(at_ns)));
            }
        }
        if !e.args.is_empty() {
            pairs.push(("args".into(), args_obj(&e.args)));
        }
        out.push_str(&Json::Obj(pairs).render());
        out.push('\n');
    }
    for (name, windows) in tracer.registry().snapshot() {
        for w in windows {
            let line = Json::obj([
                ("track", Json::Str("gauge".into())),
                ("name", Json::Str(name.into())),
                ("start_ns", Json::U64(w.start_ns)),
                ("count", Json::U64(w.count)),
                ("mean", Json::F64(w.mean)),
                ("max", Json::U64(w.max)),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
    }
    // Trailer line when the bounded-memory guard truncated the recording,
    // so scripts reading the log can tell a complete trace from a capped
    // one without consulting the run report.
    if tracer.dropped_events() > 0 {
        let line = Json::obj([
            ("track", Json::Str("meta".into())),
            ("name", Json::Str("dropped_events".into())),
            ("dropped_events", Json::U64(tracer.dropped_events())),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceConfig;

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::enabled(TraceConfig {
            counter_window_ns: 1_000,
            ..TraceConfig::default()
        });
        t.span(
            Track::Die { channel: 1, die: 3 },
            "read",
            2_000,
            5_000,
            &[("ppn", 42)],
        );
        t.span(Track::Gc, "gc_round", 1_000, 9_000, &[("victim", 7)]);
        t.instant(Track::Fault, "program_retry", 4_500, &[("block", 7), ("attempt", 1)]);
        t.gauge("free_pages", 0, 100);
        t.gauge("free_pages", 2_500, 90);
        t
    }

    #[test]
    fn chrome_trace_has_metadata_spans_instants_and_counters() {
        let json = chrome_trace(&sample_tracer(), 2);
        let text = json.render();
        // Structure: loadable trace-event document.
        assert!(text.starts_with(r#"{"traceEvents":["#));
        assert!(text.contains(r#""displayTimeUnit":"ns""#));
        // pid mapping: die on channel 1, FTL process at pid=channels=2.
        assert!(text.contains(r#""process_name","args":{"name":"channel 1"}"#));
        assert!(text.contains(r#""process_name","args":{"name":"ftl"}"#));
        assert!(text.contains(r#""thread_name","args":{"name":"die 3"}"#));
        // Complete span with µs timestamps: 2000 ns = 2 µs, 3000 ns dur.
        assert!(text.contains(r#""name":"read","cat":"flash","ph":"X","ts":2,"dur":3,"pid":1,"tid":3"#));
        // Instant and counter phases present.
        assert!(text.contains(r#""ph":"i""#));
        assert!(text.contains(r#""ph":"C""#));
        // Round-trips through the harness parser.
        let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = jsonl(&sample_tracer());
        let lines: Vec<&str> = text.lines().collect();
        // 3 events + 2 gauge windows (0 ns and 2000 ns windows).
        assert_eq!(lines.len(), 5);
        for line in &lines {
            Json::parse(line).expect("every JSONL line must parse");
        }
        assert!(lines[0].contains(r#""track":"die","channel":1,"die":3"#));
        assert!(lines[4].contains(r#""track":"gauge""#));
    }

    #[test]
    fn queue_track_maps_onto_the_ftl_process() {
        let mut t = Tracer::enabled(TraceConfig::default());
        t.span(Track::Queue { pair: 1 }, "sq_busy", 1_000, 2_000, &[("depth", 3)]);
        let text = chrome_trace(&t, 2).render();
        assert!(text.contains(r#""thread_name","args":{"name":"queue 1"}"#));
        // tid = FTL_TID_QUEUE_BASE + pair on the ftl process (pid = channels).
        assert!(text.contains(r#""cat":"queue","ph":"X","ts":1,"dur":1,"pid":2,"tid":5"#));
        let line = jsonl(&t);
        assert!(line.contains(r#""track":"queue","pair":1"#));
    }

    #[test]
    fn dropped_events_surface_in_both_exports() {
        let mut t = Tracer::enabled(TraceConfig { max_events: 1, ..TraceConfig::default() });
        t.instant(Track::Gc, "tick", 0, &[]);
        t.instant(Track::Gc, "tick", 1, &[]);
        t.instant(Track::Gc, "tick", 2, &[]);
        assert_eq!(t.dropped_events(), 2);
        let chrome = chrome_trace(&t, 2).render();
        assert!(chrome.contains(r#""name":"dropped_events","args":{"dropped_events":2}"#));
        let log = jsonl(&t);
        let trailer = log.lines().last().unwrap();
        assert_eq!(
            trailer,
            r#"{"track":"meta","name":"dropped_events","dropped_events":2}"#
        );
        // No truncation ⇒ no marker anywhere.
        let clean = sample_tracer();
        assert!(!chrome_trace(&clean, 2).render().contains("dropped_events"));
        assert!(!jsonl(&clean).contains("dropped_events"));
    }

    #[test]
    fn export_is_byte_identical_across_identical_recordings() {
        let a = sample_tracer();
        let b = sample_tracer();
        assert_eq!(chrome_trace(&a, 2).render(), chrome_trace(&b, 2).render());
        assert_eq!(jsonl(&a), jsonl(&b));
    }
}
