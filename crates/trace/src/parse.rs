//! Re-ingestion of recorded traces: turn a live [`Tracer`] or a JSONL
//! dump back into a uniform record stream the analyzers (profiler,
//! GC anatomy) consume.
//!
//! Records use owned `String` names because a JSONL round-trip cannot
//! reconstruct the simulator's `&'static str` identities; everything
//! else mirrors [`crate::event::Event`] exactly, so analyzing a live
//! recording and analyzing its JSONL export give byte-identical results.

use cagc_harness::Json;

use crate::event::{EventKind, Track};
use crate::tracer::Tracer;

/// One parsed trace record (span or instant) with owned identity.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Track the record was drawn on.
    pub track: Track,
    /// Event name (`"migrate_read"`, `"gc_round"`, …).
    pub name: String,
    /// Span or instant, with timestamps.
    pub kind: EventKind,
    /// Key/value payload.
    pub args: Vec<(String, u64)>,
}

impl SpanRec {
    /// The timestamp the record sorts by: span start, or the instant.
    pub fn ts_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { start_ns, .. } => start_ns,
            EventKind::Instant { at_ns } => at_ns,
        }
    }

    /// Span duration; instants are zero-width.
    pub fn dur_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { start_ns, end_ns } => end_ns.saturating_sub(start_ns),
            EventKind::Instant { .. } => 0,
        }
    }

    /// True for interval records.
    pub fn is_span(&self) -> bool {
        matches!(self.kind, EventKind::Span { .. })
    }

    /// Look up an argument by key.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// A re-ingested trace: the record stream plus the truncation marker.
#[derive(Debug, Clone, Default)]
pub struct ParsedTrace {
    /// Every span/instant in recording order.
    pub spans: Vec<SpanRec>,
    /// Events the recording dropped at its cap (from the JSONL trailer
    /// line, or [`Tracer::dropped_events`] directly). Nonzero means every
    /// derived profile/anatomy is a lower bound, not a census.
    pub dropped_events: u64,
}

/// Snapshot a live tracer's events as parsed records — the zero-copy
/// sibling of [`parse_jsonl`] for in-process analysis.
pub fn from_tracer(tracer: &Tracer) -> ParsedTrace {
    ParsedTrace {
        spans: tracer
            .events()
            .iter()
            .map(|e| SpanRec {
                track: e.track,
                name: e.name.to_string(),
                kind: e.kind,
                args: e.args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            })
            .collect(),
        dropped_events: tracer.dropped_events(),
    }
}

fn num(j: &Json) -> Option<u64> {
    match *j {
        Json::U64(v) => Some(v),
        Json::I64(v) => u64::try_from(v).ok(),
        _ => None,
    }
}

fn str_of(j: &Json) -> Option<&str> {
    match j {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn field<'a>(pairs: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn parse_line(pairs: &[(String, Json)]) -> Result<Option<SpanRec>, String> {
    let track_tag = field(pairs, "track")
        .and_then(str_of)
        .ok_or("missing track field")?;
    let track = match track_tag {
        // Gauge windows and the dropped-events trailer are not records.
        "gauge" | "meta" => return Ok(None),
        "die" => Track::Die {
            channel: field(pairs, "channel")
                .and_then(num)
                .ok_or("die line missing channel")? as u32,
            die: field(pairs, "die").and_then(num).ok_or("die line missing die")? as u32,
        },
        "queue" => Track::Queue {
            pair: field(pairs, "pair").and_then(num).ok_or("queue line missing pair")? as u32,
        },
        "host" => Track::Host,
        "gc" => Track::Gc,
        "hash" => Track::Hash,
        "fault" => Track::Fault,
        other => return Err(format!("unknown track {other:?}")),
    };
    let name = field(pairs, "name")
        .and_then(str_of)
        .ok_or("missing name field")?
        .to_string();
    let kind = match field(pairs, "kind").and_then(str_of).ok_or("missing kind field")? {
        "span" => EventKind::Span {
            start_ns: field(pairs, "start_ns").and_then(num).ok_or("span missing start_ns")?,
            end_ns: field(pairs, "end_ns").and_then(num).ok_or("span missing end_ns")?,
        },
        "instant" => EventKind::Instant {
            at_ns: field(pairs, "at_ns").and_then(num).ok_or("instant missing at_ns")?,
        },
        other => return Err(format!("unknown kind {other:?}")),
    };
    let args = match field(pairs, "args") {
        Some(Json::Obj(kv)) => kv
            .iter()
            .map(|(k, v)| num(v).map(|v| (k.clone(), v)).ok_or("non-integer arg"))
            .collect::<Result<Vec<_>, _>>()?,
        _ => Vec::new(),
    };
    Ok(Some(SpanRec { track, name, kind, args }))
}

/// Parse a [`crate::export::jsonl`] dump back into records. Gauge lines
/// are skipped (they are windowed aggregates, not events); the
/// `dropped_events` trailer is folded into [`ParsedTrace`].
///
/// # Errors
/// Returns a message naming the first malformed line (1-based).
pub fn parse_jsonl(text: &str) -> Result<ParsedTrace, String> {
    let mut out = ParsedTrace::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        let Json::Obj(pairs) = &json else {
            return Err(format!("line {}: not an object", i + 1));
        };
        if field(pairs, "track").and_then(str_of) == Some("meta") {
            if let Some(d) = field(pairs, "dropped_events").and_then(num) {
                out.dropped_events = d;
            }
            continue;
        }
        match parse_line(pairs).map_err(|e| format!("line {}: {e}", i + 1))? {
            Some(rec) => out.spans.push(rec),
            None => continue,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::jsonl;
    use crate::tracer::TraceConfig;

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::enabled(TraceConfig {
            counter_window_ns: 1_000,
            ..TraceConfig::default()
        });
        t.span(Track::Die { channel: 1, die: 3 }, "migrate_read", 2_000, 5_000, &[
            ("ppn", 42),
            ("queued_ns", 500),
        ]);
        t.span(Track::Gc, "gc_round", 1_000, 9_000, &[("victims", 7)]);
        t.instant(Track::Gc, "victim_select", 1_000, &[("block", 7)]);
        t.span(Track::Queue { pair: 2 }, "sq_busy", 0, 100, &[]);
        t.gauge("free_pages", 0, 100);
        t
    }

    #[test]
    fn jsonl_round_trip_matches_live_records() {
        let t = sample_tracer();
        let live = from_tracer(&t);
        let parsed = parse_jsonl(&jsonl(&t)).unwrap();
        assert_eq!(live.spans, parsed.spans);
        assert_eq!(parsed.dropped_events, 0);
        assert_eq!(parsed.spans.len(), 4, "gauge lines are not records");
        assert_eq!(parsed.spans[0].arg("queued_ns"), Some(500));
        assert_eq!(parsed.spans[0].dur_ns(), 3_000);
        assert_eq!(parsed.spans[2].dur_ns(), 0);
        assert!(!parsed.spans[2].is_span());
    }

    #[test]
    fn dropped_trailer_is_folded_in() {
        let mut t = Tracer::enabled(TraceConfig { max_events: 1, ..TraceConfig::default() });
        t.instant(Track::Gc, "tick", 0, &[]);
        t.instant(Track::Gc, "tick", 1, &[]);
        let parsed = parse_jsonl(&jsonl(&t)).unwrap();
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.dropped_events, 1);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let err = parse_jsonl("{\"track\":\"gc\",\"name\":\"x\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(parse_jsonl("not json\n").unwrap_err().starts_with("line 1:"));
        let err = parse_jsonl("{\"track\":\"warp\",\"name\":\"x\",\"kind\":\"instant\",\"at_ns\":0}\n")
            .unwrap_err();
        assert!(err.contains("unknown track"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let parsed = parse_jsonl("\n\n").unwrap();
        assert!(parsed.spans.is_empty());
    }
}
