//! # cagc-trace — deterministic tracing & telemetry
//!
//! Structured observability for the simulator: spans and instant events
//! stamped in **simulated nanoseconds** from every layer (host ops, GC
//! phases, fault handling, per-die flash operations), plus a counter/
//! gauge registry sampled into [`cagc_metrics::TimeSeries`] windows.
//!
//! Design rules (see `docs/OBSERVABILITY.md` for the full taxonomy):
//!
//! * **Pay-as-you-go** — the default [`Tracer`] is disabled; every
//!   recording entry point is one branch, and a disabled run's outputs
//!   are byte-identical to an untraced build.
//! * **Deterministic** — a fixed seed yields byte-identical trace files:
//!   events are recorded in simulation order and exported through the
//!   harness serializer (insertion-order keys, exact integers).
//! * **Bounded** — [`TraceConfig::max_events`] caps retained events;
//!   overflow increments a `dropped_events` counter instead of growing.
//!
//! Exports: [`chrome_trace`] (Perfetto / `chrome://tracing` loadable)
//! and [`jsonl`] (one event per line for scripted analysis).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod anatomy;
pub mod event;
pub mod export;
pub mod parse;
pub mod profile;
pub mod registry;
pub mod report;
pub mod tracer;

pub use anatomy::{GcAnatomy, PhaseStat, GC_PHASES};
pub use event::{Event, EventKind, Track};
pub use export::{chrome_trace, jsonl};
pub use parse::{from_tracer, parse_jsonl, ParsedTrace, SpanRec};
pub use profile::{ProfileRow, SpanProfile};
pub use registry::GaugeRegistry;
pub use report::TelemetryReport;
pub use tracer::{TraceConfig, Tracer};
