//! Span profiler: fold a recorded span stream into a hierarchical
//! profile — per phase: call count, total and self simulated time, and
//! min/p50/p99/max span duration — with deterministic CSV/JSON exports
//! and a collapsed-stack flamegraph text format.
//!
//! ## Hierarchy model
//!
//! Spans on [`Track::Gc`] and [`Track::Host`] are **containers**
//! (`gc_round`, `gc_slice`, host `read`/`write`/`trim`); every other
//! span, and every instant, is a **leaf**. A leaf is attributed to the
//! latest-starting container whose interval contains the leaf's start,
//! searched first among containers on the leaf's preferred track — GC
//! for the GC pipeline names (`migrate_read`, `migrate_write`, `erase`,
//! `fingerprint`) and everything recorded on the GC track, host for the
//! rest — then among all containers, falling back to a root bucket.
//! Containers are reported flat (one bucket per `track/name`); their
//! self time subtracts the union of attributed leaves *and* of
//! containers fully nested inside them.
//!
//! Every rule is a pure function of the recorded intervals, so two
//! identical recordings — or the same recording analyzed live vs. after
//! a JSONL round-trip — profile to identical bytes.

use std::collections::BTreeMap;

use cagc_harness::{Json, ToJson};

use crate::event::Track;
use crate::parse::SpanRec;

/// Merge-union a set of closed intervals; returns the merged list,
/// sorted and disjoint.
pub(crate) fn union(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.retain(|&(s, e)| e > s);
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of a disjoint interval list.
pub(crate) fn total_len(v: &[(u64, u64)]) -> u64 {
    v.iter().map(|&(s, e)| e - s).sum()
}

/// Intersection of two disjoint sorted interval lists.
pub(crate) fn intersect(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if e > s {
            out.push((s, e));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// `a` minus `b`, both disjoint and sorted.
pub(crate) fn subtract(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut j = 0;
    for &(s, e) in a {
        let mut cur = s;
        while j < b.len() && b[j].1 <= cur {
            j += 1;
        }
        let mut k = j;
        while k < b.len() && b[k].0 < e {
            if b[k].0 > cur {
                out.push((cur, b[k].0));
            }
            cur = cur.max(b[k].1);
            k += 1;
        }
        if cur < e {
            out.push((cur, e));
        }
    }
    out
}

fn category(track: Track) -> &'static str {
    match track {
        Track::Die { .. } => "flash",
        Track::Host => "host",
        Track::Gc => "gc",
        Track::Hash => "hash",
        Track::Fault => "fault",
        Track::Queue { .. } => "queue",
    }
}

/// Names the GC context stamps on die/hash spans: these leaves attach to
/// GC containers even when an overlapping host span also contains them.
fn prefers_gc(rec: &SpanRec) -> bool {
    rec.track == Track::Gc
        || matches!(rec.name.as_str(), "migrate_read" | "migrate_write" | "erase" | "fingerprint")
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Bucket {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    durs: Vec<u64>,
}

/// One exported profile row (a bucket with its duration statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Slash-separated bucket path (`gc/gc_round/migrate_read`).
    pub path: String,
    /// Spans/instants folded into the bucket.
    pub calls: u64,
    /// Sum of span durations (instants contribute zero).
    pub total_ns: u64,
    /// Total minus the union of child intervals (equals `total_ns` for
    /// leaves).
    pub self_ns: u64,
    /// Shortest span.
    pub min_ns: u64,
    /// Median span (nearest-rank).
    pub p50_ns: u64,
    /// 99th-percentile span (nearest-rank).
    pub p99_ns: u64,
    /// Longest span.
    pub max_ns: u64,
}

/// A mergeable hierarchical span profile.
///
/// Buckets keep their raw duration samples so profiles from many devices
/// merge exactly: quantiles are computed over the merged (sorted) sample
/// set at export time, making every output independent of merge order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanProfile {
    buckets: BTreeMap<String, Bucket>,
}

/// Nearest-rank percentile over a sorted sample set.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (p * (sorted.len() as u64 - 1) + 50) / 100;
    sorted[idx as usize]
}

impl SpanProfile {
    /// Fold a record stream into a profile.
    pub fn from_spans(spans: &[SpanRec]) -> Self {
        // Containers, as (start, end, rec index), in (start, idx) order.
        let mut containers: Vec<(u64, u64, usize)> = spans
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_span() && matches!(r.track, Track::Gc | Track::Host))
            .map(|(i, r)| (r.ts_ns(), r.ts_ns() + r.dur_ns(), i))
            .collect();
        containers.sort_unstable_by_key(|&(s, e, i)| (s, std::cmp::Reverse(e), i));
        // Prefix maxima of ends bound the backward containment search.
        let mut prefix_max_end: Vec<u64> = Vec::with_capacity(containers.len());
        let mut run = 0u64;
        for &(_, e, _) in &containers {
            run = run.max(e);
            prefix_max_end.push(run);
        }
        // Positions (into `containers`) of each track's containers, for
        // the preferred-track search.
        let gc_pos: Vec<usize> = (0..containers.len())
            .filter(|&p| spans[containers[p].2].track == Track::Gc)
            .collect();
        let host_pos: Vec<usize> = (0..containers.len())
            .filter(|&p| spans[containers[p].2].track == Track::Host)
            .collect();
        let mut gc_max_end = Vec::with_capacity(gc_pos.len());
        run = 0;
        for &p in &gc_pos {
            run = run.max(containers[p].1);
            gc_max_end.push(run);
        }
        let mut host_max_end = Vec::with_capacity(host_pos.len());
        run = 0;
        for &p in &host_pos {
            run = run.max(containers[p].1);
            host_max_end.push(run);
        }

        // Latest-starting container containing `ts` within a sorted
        // position subset (`None` = all containers).
        let find = |subset: Option<(&[usize], &[u64])>, ts: u64| -> Option<usize> {
            match subset {
                None => {
                    let hi = containers.partition_point(|&(s, _, _)| s <= ts);
                    (0..hi).rev().find_map(|k| {
                        if prefix_max_end[k] < ts {
                            return Some(None); // nothing earlier can reach ts
                        }
                        (containers[k].1 >= ts).then_some(Some(containers[k].2))
                    })?
                }
                Some((pos, max_end)) => {
                    let hi = pos.partition_point(|&p| containers[p].0 <= ts);
                    (0..hi).rev().find_map(|k| {
                        if max_end[k] < ts {
                            return Some(None);
                        }
                        (containers[pos[k]].1 >= ts).then_some(Some(containers[pos[k]].2))
                    })?
                }
            }
        };

        // Per container instance: the child intervals its self time
        // excludes (attributed leaves + directly nested containers).
        let mut children: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
        let mut profile = SpanProfile::default();

        // Nested containers: stack sweep over (start asc, end desc) order
        // finds each container's immediate enclosing container.
        let mut stack: Vec<usize> = Vec::new();
        for k in 0..containers.len() {
            let (s, e, idx) = containers[k];
            while let Some(&top) = stack.last() {
                let (_, te, _) = containers[top];
                if te < e {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = stack.last() {
                let (ps, pe, pidx) = containers[top];
                children.entry(pidx).or_default().push((s.max(ps), e.min(pe)));
            }
            stack.push(k);
            let rec = &spans[idx];
            profile.add(
                format!("{}/{}", category(rec.track), rec.name),
                rec.dur_ns(),
                0, // self filled in below
            );
        }

        // Leaves: attribute, bucket, and feed the parent's child list.
        for rec in spans {
            let is_container =
                rec.is_span() && matches!(rec.track, Track::Gc | Track::Host);
            if is_container {
                continue;
            }
            let ts = rec.ts_ns();
            let preferred = if prefers_gc(rec) {
                find(Some((&gc_pos, &gc_max_end)), ts)
            } else {
                find(Some((&host_pos, &host_max_end)), ts)
            };
            let owner = preferred.or_else(|| find(None, ts));
            let path = match owner {
                Some(idx) => {
                    let c = &spans[idx];
                    let (cs, ce) = (c.ts_ns(), c.ts_ns() + c.dur_ns());
                    let (ls, le) = (ts, ts + rec.dur_ns());
                    if le > ls {
                        children
                            .entry(idx)
                            .or_default()
                            .push((ls.max(cs), le.min(ce)));
                    }
                    format!("{}/{}/{}", category(c.track), c.name, rec.name)
                }
                None => format!("{}/{}", category(rec.track), rec.name),
            };
            let dur = rec.dur_ns();
            profile.add(path, dur, dur);
        }

        // Container self times: duration minus covered-by-children.
        for &(s, e, idx) in &containers {
            let covered = children
                .remove(&idx)
                .map(|ivs| total_len(&union(ivs)))
                .unwrap_or(0);
            let rec = &spans[idx];
            let path = format!("{}/{}", category(rec.track), rec.name);
            let slf = (e - s).saturating_sub(covered);
            if let Some(b) = profile.buckets.get_mut(&path) {
                b.self_ns += slf;
            }
        }
        profile
    }

    fn add(&mut self, path: String, dur_ns: u64, self_ns: u64) {
        let b = self.buckets.entry(path).or_default();
        b.calls += 1;
        b.total_ns += dur_ns;
        b.self_ns += self_ns;
        b.durs.push(dur_ns);
    }

    /// Fold `other` into this profile. Exact: counts and times add,
    /// duration samples concatenate (and are re-sorted at export), so the
    /// result is independent of merge order.
    pub fn merge(&mut self, other: &SpanProfile) {
        for (path, src) in &other.buckets {
            let dst = self.buckets.entry(path.clone()).or_default();
            dst.calls += src.calls;
            dst.total_ns += src.total_ns;
            dst.self_ns += src.self_ns;
            dst.durs.extend_from_slice(&src.durs);
        }
    }

    /// True when no span was folded in.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Exported rows in bucket-path order.
    pub fn rows(&self) -> Vec<ProfileRow> {
        self.buckets
            .iter()
            .map(|(path, b)| {
                let mut durs = b.durs.clone();
                durs.sort_unstable();
                ProfileRow {
                    path: path.clone(),
                    calls: b.calls,
                    total_ns: b.total_ns,
                    self_ns: b.self_ns,
                    min_ns: durs.first().copied().unwrap_or(0),
                    p50_ns: percentile(&durs, 50),
                    p99_ns: percentile(&durs, 99),
                    max_ns: durs.last().copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// CSV export (`path,calls,total_ns,self_ns,min_ns,p50_ns,p99_ns,max_ns`),
    /// rows in path order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("path,calls,total_ns,self_ns,min_ns,p50_ns,p99_ns,max_ns\n");
        for r in self.rows() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.path, r.calls, r.total_ns, r.self_ns, r.min_ns, r.p50_ns, r.p99_ns, r.max_ns
            ));
        }
        out
    }

    /// Collapsed-stack flamegraph text: one `a;b;c self_ns` line per
    /// bucket with nonzero self time, in path order. Feed to any
    /// flamegraph renderer.
    pub fn flamegraph(&self) -> String {
        let mut out = String::new();
        for r in self.rows() {
            if r.self_ns == 0 {
                continue;
            }
            out.push_str(&format!("{} {}\n", r.path.replace('/', ";"), r.self_ns));
        }
        out
    }

    /// Human-readable table sorted by total time (descending, then path).
    pub fn render(&self) -> String {
        let mut rows = self.rows();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.path.cmp(&b.path)));
        let mut out = String::from(
            "span profile (simulated ns)\n  path                                     calls      total       self        p50        p99\n",
        );
        for r in &rows {
            out.push_str(&format!(
                "  {:<40} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
                r.path, r.calls, r.total_ns, r.self_ns, r.p50_ns, r.p99_ns
            ));
        }
        out
    }
}

impl ToJson for ProfileRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("path", Json::Str(self.path.clone())),
            ("calls", Json::U64(self.calls)),
            ("total_ns", Json::U64(self.total_ns)),
            ("self_ns", Json::U64(self.self_ns)),
            ("min_ns", Json::U64(self.min_ns)),
            ("p50_ns", Json::U64(self.p50_ns)),
            ("p99_ns", Json::U64(self.p99_ns)),
            ("max_ns", Json::U64(self.max_ns)),
        ])
    }
}

impl ToJson for SpanProfile {
    fn to_json(&self) -> Json {
        Json::obj([(
            "buckets",
            Json::Arr(self.rows().iter().map(ToJson::to_json).collect()),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn span(track: Track, name: &str, start: u64, end: u64) -> SpanRec {
        SpanRec {
            track,
            name: name.to_string(),
            kind: EventKind::Span { start_ns: start, end_ns: end },
            args: Vec::new(),
        }
    }

    fn instant(track: Track, name: &str, at: u64) -> SpanRec {
        SpanRec {
            track,
            name: name.to_string(),
            kind: EventKind::Instant { at_ns: at },
            args: Vec::new(),
        }
    }

    fn die(name: &str, start: u64, end: u64) -> SpanRec {
        span(Track::Die { channel: 0, die: 0 }, name, start, end)
    }

    #[test]
    fn interval_algebra_is_exact() {
        let u = union(vec![(5, 10), (0, 3), (9, 12), (12, 12)]);
        assert_eq!(u, vec![(0, 3), (5, 12)]);
        assert_eq!(total_len(&u), 10);
        assert_eq!(intersect(&u, &[(2, 6)]), vec![(2, 3), (5, 6)]);
        assert_eq!(subtract(&u, &[(1, 2), (6, 20)]), vec![(0, 1), (2, 3), (5, 6)]);
        assert_eq!(subtract(&[(0, 10)], &[]), vec![(0, 10)]);
    }

    #[test]
    fn known_nesting_gives_exact_self_and_total() {
        // gc_round [0,100] containing migrate_read [10,30], erase [20,60]
        // (overlapping children: union covers [10,60] = 50 ⇒ self = 50).
        let spans = vec![
            span(Track::Gc, "gc_round", 0, 100),
            die("migrate_read", 10, 30),
            die("erase", 20, 60),
        ];
        let p = SpanProfile::from_spans(&spans);
        let rows = p.rows();
        let by_path = |q: &str| rows.iter().find(|r| r.path == q).unwrap().clone();
        let round = by_path("gc/gc_round");
        assert_eq!(round.calls, 1);
        assert_eq!(round.total_ns, 100);
        assert_eq!(round.self_ns, 50);
        let read = by_path("gc/gc_round/migrate_read");
        assert_eq!((read.calls, read.total_ns, read.self_ns), (1, 20, 20));
        let erase = by_path("gc/gc_round/erase");
        assert_eq!(erase.total_ns, 40);
    }

    #[test]
    fn leaves_prefer_their_context_track() {
        // Host write [0,100] overlaps gc_round [40,200]; the host-op read
        // at 50 goes to the host container despite gc_round starting
        // later, while migrate_read at 60 goes to GC.
        let spans = vec![
            span(Track::Host, "write", 0, 100),
            span(Track::Gc, "gc_round", 40, 200),
            die("read", 50, 55),
            die("migrate_read", 60, 70),
        ];
        let p = SpanProfile::from_spans(&spans);
        let paths: Vec<String> = p.rows().iter().map(|r| r.path.clone()).collect();
        assert!(paths.contains(&"host/write/read".to_string()), "{paths:?}");
        assert!(paths.contains(&"gc/gc_round/migrate_read".to_string()), "{paths:?}");
    }

    #[test]
    fn unattributed_leaves_land_in_root_buckets() {
        let spans = vec![die("read", 0, 10), instant(Track::Fault, "write_fault", 3)];
        let p = SpanProfile::from_spans(&spans);
        let rows = p.rows();
        assert_eq!(rows[0].path, "fault/write_fault");
        assert_eq!((rows[0].calls, rows[0].total_ns), (1, 0));
        assert_eq!(rows[1].path, "flash/read");
        assert_eq!(rows[1].self_ns, 10);
    }

    #[test]
    fn overlapping_same_track_containers_attribute_to_latest_start() {
        // Two overlapping gc_rounds; erase at ts=50 starts inside both —
        // the later-starting round owns it.
        let spans = vec![
            span(Track::Gc, "gc_round", 0, 60),
            span(Track::Gc, "gc_slice", 40, 100),
            die("erase", 50, 90),
        ];
        let p = SpanProfile::from_spans(&spans);
        let rows = p.rows();
        let slice = rows.iter().find(|r| r.path == "gc/gc_slice/erase").unwrap();
        assert_eq!(slice.total_ns, 40);
        assert!(!rows.iter().any(|r| r.path == "gc/gc_round/erase"));
    }

    #[test]
    fn nested_containers_reduce_parent_self_time() {
        // A host write [0,100] fully containing a gc_round [20,80]: the
        // round's interval is excluded from the write's self time.
        let spans = vec![
            span(Track::Host, "write", 0, 100),
            span(Track::Gc, "gc_round", 20, 80),
        ];
        let p = SpanProfile::from_spans(&spans);
        let rows = p.rows();
        let write = rows.iter().find(|r| r.path == "host/write").unwrap();
        assert_eq!(write.self_ns, 40);
        let round = rows.iter().find(|r| r.path == "gc/gc_round").unwrap();
        assert_eq!(round.self_ns, 60);
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut p = SpanProfile::default();
        for d in [10u64, 20, 30, 40] {
            p.add("x/y".to_string(), d, d);
        }
        let r = &p.rows()[0];
        assert_eq!((r.min_ns, r.p50_ns, r.p99_ns, r.max_ns), (10, 30, 40, 40));
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let a = SpanProfile::from_spans(&[span(Track::Gc, "gc_round", 0, 10), die("erase", 2, 6)]);
        let b = SpanProfile::from_spans(&[span(Track::Gc, "gc_round", 0, 30), die("erase", 5, 25)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_csv(), ba.to_csv());
        assert_eq!(ab.flamegraph(), ba.flamegraph());
        let round = ab.rows().into_iter().find(|r| r.path == "gc/gc_round").unwrap();
        assert_eq!((round.calls, round.total_ns, round.self_ns), (2, 40, 16));
    }

    #[test]
    fn exports_are_deterministic_and_flamegraph_skips_zero_self() {
        let spans = vec![span(Track::Gc, "gc_round", 0, 10), die("erase", 0, 10)];
        let p = SpanProfile::from_spans(&spans);
        assert_eq!(p.to_csv(), SpanProfile::from_spans(&spans).to_csv());
        // gc_round self is 0 (fully covered) ⇒ absent from the flamegraph.
        let fg = p.flamegraph();
        assert_eq!(fg, "gc;gc_round;erase 10\n");
        assert!(p.to_json().render().starts_with(r#"{"buckets":[{"path":"gc/gc_round""#));
        assert!(p.render().contains("gc/gc_round/erase"));
    }
}
