//! The trace sink: a disabled-by-default recorder with a hard in-memory
//! event cap (bounded-memory guard) and deterministic host-op sampling.
//!
//! Pay-as-you-go invariant: a disabled [`Tracer`] records nothing,
//! allocates nothing beyond the struct itself, and every recording entry
//! point returns after one branch — so simulation results with tracing
//! off are byte-identical to a build that never heard of tracing.

use crate::event::{Event, EventKind, Track};
use crate::registry::GaugeRegistry;
use crate::report::TelemetryReport;

/// Tracing knobs.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Record every `sample`-th host request's spans (GC, fault and gauge
    /// activity is always recorded). `0` and `1` both mean "every
    /// request".
    pub sample: u64,
    /// Hard cap on retained events; once full, further events increment
    /// [`Tracer::dropped_events`] instead of allocating.
    pub max_events: usize,
    /// Gauge aggregation window width (simulated ns).
    pub counter_window_ns: u64,
    /// Record span/instant events. `false` turns the tracer into a
    /// gauges-only sink (the fleet observability plane's mode): the
    /// windowed registry keeps aggregating while the event buffer — and
    /// its per-event allocation — stays empty, without counting the
    /// skipped events as drops.
    pub record_spans: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sample: 1,
            // ~64 bytes/event ⇒ the default cap bounds a full-scale run
            // to tens of MB instead of letting --trace OOM the host.
            max_events: 1 << 20,
            counter_window_ns: 1_000_000, // 1 ms
            record_spans: true,
        }
    }
}

impl TraceConfig {
    /// A gauges-only configuration: no span/instant events, windowed
    /// gauges of width `window_ns`, host sampling every `sample`-th
    /// request. This is what fleet telemetry arms per device.
    pub fn gauges_only(window_ns: u64, sample: u64) -> Self {
        Self {
            sample,
            max_events: 0,
            counter_window_ns: window_ns,
            record_spans: false,
        }
    }
}

/// Records spans, instants, and gauge samples stamped in simulated time.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    cfg: TraceConfig,
    events: Vec<Event>,
    dropped: u64,
    host_ops_seen: u64,
    registry: GaugeRegistry,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// The no-op sink. Every recording method is a single branch.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            cfg: TraceConfig::default(),
            events: Vec::new(),
            dropped: 0,
            host_ops_seen: 0,
            registry: GaugeRegistry::new(1_000_000),
        }
    }

    /// A live tracer with the given knobs.
    pub fn enabled(cfg: TraceConfig) -> Self {
        let registry = GaugeRegistry::new(cfg.counter_window_ns.max(1));
        Self {
            enabled: true,
            cfg,
            events: Vec::new(),
            dropped: 0,
            host_ops_seen: 0,
            registry,
        }
    }

    /// Is the sink live? Callers may use this to skip argument
    /// construction entirely on the disabled path.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Decide whether the next host request's spans should be recorded,
    /// honoring [`TraceConfig::sample`]. Deterministic: purely a function
    /// of how many requests came before. Always `false` when disabled.
    #[inline]
    pub fn sample_host_op(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        let n = self.host_ops_seen;
        self.host_ops_seen += 1;
        self.cfg.sample <= 1 || n.is_multiple_of(self.cfg.sample)
    }

    /// Record a span over `[start_ns, end_ns]`.
    #[inline]
    pub fn span(
        &mut self,
        track: Track,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled || !self.cfg.record_spans {
            return;
        }
        self.push(Event {
            track,
            name,
            kind: EventKind::Span { start_ns, end_ns },
            args: args.to_vec(),
        });
    }

    /// Record a point event at `at_ns`.
    #[inline]
    pub fn instant(
        &mut self,
        track: Track,
        name: &'static str,
        at_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.enabled || !self.cfg.record_spans {
            return;
        }
        self.push(Event { track, name, kind: EventKind::Instant { at_ns }, args: args.to_vec() });
    }

    /// Sample gauge `name` at `at_ns`. Gauges live outside the event cap:
    /// a [`GaugeRegistry`] is already O(windows), not O(samples).
    #[inline]
    pub fn gauge(&mut self, name: &'static str, at_ns: u64, value: u64) {
        if !self.enabled {
            return;
        }
        self.registry.record(name, at_ns, value);
    }

    fn push(&mut self, event: Event) {
        if self.events.len() >= self.cfg.max_events {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    /// Events retained so far, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events discarded by the bounded-memory guard.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The gauge registry.
    pub fn registry(&self) -> &GaugeRegistry {
        &self.registry
    }

    /// Configured knobs.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Summary for embedding in a run report. `None` when disabled, so
    /// reports from untraced runs stay byte-identical.
    pub fn report(&self) -> Option<TelemetryReport> {
        if !self.enabled {
            return None;
        }
        Some(TelemetryReport {
            events_recorded: self.events.len() as u64,
            dropped_events: self.dropped,
            sample: self.cfg.sample.max(1),
            gauge_window_ns: self.registry.window_ns(),
            gauges: self
                .registry
                .snapshot()
                .into_iter()
                .map(|(n, w)| (n.to_string(), w))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.sample_host_op());
        t.span(Track::Host, "write", 0, 10, &[("lpn", 1)]);
        t.instant(Track::Gc, "victim_select", 5, &[]);
        t.gauge("free_pages", 0, 100);
        assert!(t.events().is_empty());
        assert!(t.registry().is_empty());
        assert_eq!(t.dropped_events(), 0);
        assert!(t.report().is_none());
    }

    #[test]
    fn event_cap_drops_and_counts() {
        let mut t = Tracer::enabled(TraceConfig { max_events: 3, ..TraceConfig::default() });
        for i in 0..10 {
            t.instant(Track::Gc, "tick", i, &[("i", i)]);
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped_events(), 7);
        // The survivors are the earliest events (count limit, not a ring).
        assert_eq!(t.events()[2].ts_ns(), 2);
        let report = t.report().unwrap();
        assert_eq!(report.events_recorded, 3);
        assert_eq!(report.dropped_events, 7);
    }

    #[test]
    fn host_sampling_is_deterministic_every_nth() {
        let mut t = Tracer::enabled(TraceConfig { sample: 4, ..TraceConfig::default() });
        let picks: Vec<bool> = (0..9).map(|_| t.sample_host_op()).collect();
        assert_eq!(
            picks,
            vec![true, false, false, false, true, false, false, false, true]
        );
        // sample=0 and sample=1 both mean "everything".
        let mut all = Tracer::enabled(TraceConfig { sample: 0, ..TraceConfig::default() });
        assert!((0..5).all(|_| all.sample_host_op()));
    }

    #[test]
    fn gauges_only_mode_skips_events_without_counting_drops() {
        let mut t = Tracer::enabled(TraceConfig::gauges_only(2_000_000, 16));
        t.span(Track::Host, "write", 0, 10, &[]);
        t.instant(Track::Gc, "victim_select", 5, &[]);
        t.gauge("free_pages", 0, 100);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 0, "skipped spans are not drops");
        assert_eq!(t.registry().snapshot().len(), 1);
        // Host sampling still paces gauge emission deterministically.
        assert!(t.sample_host_op());
        assert!(!t.sample_host_op());
    }

    #[test]
    fn gauges_bypass_the_event_cap() {
        let mut t = Tracer::enabled(TraceConfig { max_events: 0, ..TraceConfig::default() });
        t.gauge("waf_milli", 0, 1000);
        t.gauge("waf_milli", 2_000_000, 1500);
        assert_eq!(t.registry().snapshot()[0].1.len(), 2);
        assert_eq!(t.dropped_events(), 0);
    }
}
