//! Trace event model: which track an event lives on, and whether it is a
//! span (an interval of simulated time) or an instant (a point).
//!
//! Names and argument keys are `&'static str` by design: the set of event
//! kinds the simulator emits is closed, so recording an event never
//! allocates for its identity — only the (small) argument vector.

/// Where an event is drawn in the trace viewer.
///
/// Flash-operation spans carry their physical coordinates so the Chrome
/// exporter can map `pid = channel`, `tid = die`; everything the FTL does
/// above the flash array goes on one of four logical tracks grouped under
/// a synthetic "ftl" process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// A flash die, addressed by channel and global die index.
    Die {
        /// Channel the die sits on (Chrome `pid`).
        channel: u32,
        /// Global die index (Chrome `tid`; unique across channels).
        die: u32,
    },
    /// Host-visible request lifecycle (queueing and service).
    Host,
    /// One NVMe-style submission/completion queue pair of the host
    /// interface (doorbells, interrupts, occupancy).
    Queue {
        /// Queue-pair index (Chrome `tid = 4 + pair` on the FTL process).
        pair: u32,
    },
    /// Garbage-collection machinery (victim selection through erase).
    Gc,
    /// Content fingerprinting (hash engine).
    Hash,
    /// Fault injections, retries and recovery.
    Fault,
}

/// Span vs. instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interval `[start_ns, end_ns]` of simulated time.
    Span {
        /// Interval start (simulated ns).
        start_ns: u64,
        /// Interval end (simulated ns); `end_ns >= start_ns`.
        end_ns: u64,
    },
    /// A point event.
    Instant {
        /// When it happened (simulated ns).
        at_ns: u64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Track the event belongs to.
    pub track: Track,
    /// Event name (e.g. `"migrate_read"`, `"dedup_drop"`).
    pub name: &'static str,
    /// Span or instant, with timestamps.
    pub kind: EventKind,
    /// Small key/value payload (LPN, PPN, block, retry count, …).
    pub args: Vec<(&'static str, u64)>,
}

impl Event {
    /// The timestamp the event sorts by: span start, or the instant.
    pub fn ts_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { start_ns, .. } => start_ns,
            EventKind::Instant { at_ns } => at_ns,
        }
    }
}
