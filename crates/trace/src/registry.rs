//! Counter/gauge registry: named scalar series sampled over simulated
//! time into [`cagc_metrics::TimeSeries`] windows.
//!
//! Gauges are `u64`-valued. Ratios (write amplification, dedup hit rate)
//! follow a naming convention instead of a float type: sample them scaled
//! ×1000 under a `*_milli` name, so `waf_milli = 1340` means WA ≈ 1.34.
//! Keeping the registry integer-only means every sample aggregates
//! exactly and the exported JSON never depends on float summation order.

use cagc_harness::{Json, ToJson};
use cagc_metrics::{TimeSeries, Window};

/// A set of named gauges, each a windowed [`TimeSeries`].
///
/// Registration is implicit: the first `record` for a name creates the
/// series. Insertion order is preserved so every export is deterministic.
#[derive(Debug, Clone)]
pub struct GaugeRegistry {
    window_ns: u64,
    gauges: Vec<(&'static str, TimeSeries)>,
}

impl GaugeRegistry {
    /// A registry whose gauges aggregate into windows of `window_ns`.
    pub fn new(window_ns: u64) -> Self {
        Self { window_ns, gauges: Vec::new() }
    }

    /// Record `value` for gauge `name` at simulated time `at_ns`.
    pub fn record(&mut self, name: &'static str, at_ns: u64, value: u64) {
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, series)) => series.record(at_ns, value),
            None => {
                let mut series = TimeSeries::new(self.window_ns);
                series.record(at_ns, value);
                self.gauges.push((name, series));
            }
        }
    }

    /// Gauge window width.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of registered gauges.
    pub fn len(&self) -> usize {
        self.gauges.len()
    }

    /// True when no gauge has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.gauges.is_empty()
    }

    /// Every gauge with its aggregated windows, in registration order.
    pub fn snapshot(&self) -> Vec<(&'static str, Vec<Window>)> {
        self.gauges.iter().map(|(n, s)| (*n, s.windows())).collect()
    }

    /// Every gauge with its raw [`TimeSeries`], in registration order.
    /// Fleet merging folds these exactly ([`TimeSeries::merge`]) instead
    /// of re-aggregating the derived per-window floats.
    pub fn series(&self) -> impl Iterator<Item = (&'static str, &TimeSeries)> {
        self.gauges.iter().map(|(n, s)| (*n, s))
    }
}

impl ToJson for GaugeRegistry {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.snapshot()
                .into_iter()
                .map(|(name, windows)| (name.to_string(), windows.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_register_on_first_record_and_keep_order() {
        let mut reg = GaugeRegistry::new(1_000);
        reg.record("free_pages", 10, 500);
        reg.record("waf_milli", 10, 1000);
        reg.record("free_pages", 1_500, 400);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "free_pages");
        assert_eq!(snap[0].1.len(), 2);
        assert_eq!(snap[1].0, "waf_milli");
        assert_eq!(snap[1].1[0].max, 1000);
    }

    #[test]
    fn json_is_deterministic_across_identical_inputs() {
        let build = || {
            let mut reg = GaugeRegistry::new(100);
            reg.record("a", 0, 1);
            reg.record("b", 250, 7);
            reg.record("a", 50, 3);
            reg.to_json().render()
        };
        assert_eq!(build(), build());
        assert!(build().starts_with(r#"{"a":[{"start_ns":0,"count":2"#));
    }
}
