//! GC-cycle anatomy: reconstruct the paper's Fig. 8 decomposition —
//! victim_select / migrate_read / fingerprint / migrate_write / erase —
//! directly from a recorded span stream, with overlap attribution.
//!
//! The **GC wall** is the union of all GC container spans (`gc_round`,
//! `gc_slice`). Each phase's intervals are the spans the GC trace
//! context stamped (`migrate_read`, `fingerprint`, `migrate_write`,
//! `erase`), extended backwards by their recorded `queued_ns` — die
//! queueing *inside* a GC round is GC time spent waiting for the die,
//! not unaccounted time — and clipped to the wall. Per phase:
//!
//! * `busy_ns` — union length of the phase's clipped intervals;
//! * `exclusive_ns` — the portion covered by *only* this phase;
//! * `overlapped_ns` — `busy - exclusive`, i.e. time shared with another
//!   phase (the Sec. III-B pipelining the paper measures).
//!
//! `accounted_permille` is the fraction of the wall covered by any
//! phase; the verify gate requires ≥950 (95%), so a taxonomy change
//! that silently un-names GC work fails loudly.

use cagc_harness::{Json, ToJson};

use crate::event::Track;
use crate::parse::SpanRec;
use crate::profile::{intersect, subtract, total_len, union};

/// The Fig. 8 phase order. `victim_select` is an instant (a pure
/// metadata decision with no simulated duration), so it contributes a
/// call count only.
pub const GC_PHASES: [&str; 5] =
    ["victim_select", "migrate_read", "fingerprint", "migrate_write", "erase"];

/// Per-phase decomposition entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (one of [`GC_PHASES`]).
    pub name: &'static str,
    /// Spans (or instants) folded in.
    pub calls: u64,
    /// Union length of the phase's intervals inside the GC wall.
    pub busy_ns: u64,
    /// Portion of `busy_ns` covered by no other phase.
    pub exclusive_ns: u64,
    /// Portion of `busy_ns` shared with at least one other phase.
    pub overlapped_ns: u64,
}

/// The reconstructed GC-cycle decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcAnatomy {
    /// Union length of all GC container spans.
    pub gc_wall_ns: u64,
    /// `gc_round` container spans seen.
    pub rounds: u64,
    /// `gc_slice` container spans seen (preemptible GC quanta).
    pub slices: u64,
    /// Per-phase stats in [`GC_PHASES`] order.
    pub phases: Vec<PhaseStat>,
    /// Exact union length of all phase intervals inside the wall.
    pub covered_ns: u64,
    /// Wall coverage by any phase, in permille (0–1000).
    pub accounted_permille: u64,
}

impl GcAnatomy {
    /// Derive the anatomy from a record stream.
    pub fn from_spans(spans: &[SpanRec]) -> Self {
        let mut wall_ivs = Vec::new();
        let (mut rounds, mut slices) = (0u64, 0u64);
        for r in spans {
            if r.track == Track::Gc && r.is_span() {
                match r.name.as_str() {
                    "gc_round" => rounds += 1,
                    "gc_slice" => slices += 1,
                    _ => continue,
                }
                wall_ivs.push((r.ts_ns(), r.ts_ns() + r.dur_ns()));
            }
        }
        let wall = union(wall_ivs);
        let gc_wall_ns = total_len(&wall);

        // Phase intervals, queue-extended and clipped to the wall.
        let mut phase_ivs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); GC_PHASES.len()];
        let mut calls = [0u64; 5];
        for r in spans {
            let Some(p) = GC_PHASES.iter().position(|&n| n == r.name) else {
                continue;
            };
            calls[p] += 1;
            if !r.is_span() {
                continue;
            }
            let queued = r.arg("queued_ns").unwrap_or(0);
            let start = r.ts_ns().saturating_sub(queued);
            phase_ivs[p].push((start, r.ts_ns() + r.dur_ns()));
        }
        let clipped: Vec<Vec<(u64, u64)>> = phase_ivs
            .into_iter()
            .map(|ivs| intersect(&union(ivs), &wall))
            .collect();

        let covered_ns = total_len(&union(clipped.iter().flatten().copied().collect()));
        let accounted_permille = (covered_ns * 1000).checked_div(gc_wall_ns).unwrap_or(0);

        let phases = GC_PHASES
            .iter()
            .enumerate()
            .map(|(p, &name)| {
                let busy_ns = total_len(&clipped[p]);
                let others =
                    union(clipped.iter().enumerate().filter(|&(q, _)| q != p).flat_map(
                        |(_, ivs)| ivs.iter().copied(),
                    ).collect());
                let exclusive_ns = total_len(&subtract(&clipped[p], &others));
                PhaseStat {
                    name,
                    calls: calls[p],
                    busy_ns,
                    exclusive_ns,
                    overlapped_ns: busy_ns - exclusive_ns,
                }
            })
            .collect();

        GcAnatomy { gc_wall_ns, rounds, slices, phases, covered_ns, accounted_permille }
    }

    /// CSV export: one row per phase plus a `total` row carrying the
    /// wall, its covered length, and `accounted_permille`.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("phase,calls,busy_ns,exclusive_ns,overlapped_ns,share_permille\n");
        for p in &self.phases {
            let share = self.share_permille(p.busy_ns);
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                p.name, p.calls, p.busy_ns, p.exclusive_ns, p.overlapped_ns, share
            ));
        }
        out.push_str(&format!(
            "total,{},{},{},{},{}\n",
            self.rounds + self.slices,
            self.gc_wall_ns,
            self.covered_ns,
            self.shared_ns(),
            self.accounted_permille
        ));
        out
    }

    /// Wall time covered by two or more phases at once. Derived exactly:
    /// every overlapped interval is shared by ≥2 phases, and summing
    /// `overlapped_ns` counts each shared stretch once per participant.
    /// For the dominant pairwise case (read/hash/write pipelining against
    /// the long erase) `sum(overlapped)/2` is the shared length; deeper
    /// stacking makes this an upper bound, which is all the `total` row
    /// reports it as.
    fn shared_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.overlapped_ns).sum::<u64>() / 2
    }

    /// A phase's busy time as a per-mille share of the GC wall.
    fn share_permille(&self, busy_ns: u64) -> u64 {
        (busy_ns * 1000).checked_div(self.gc_wall_ns).unwrap_or(0)
    }

    /// Human-readable decomposition.
    pub fn render(&self) -> String {
        let mut out = format!(
            "GC anatomy: wall {} ns over {} rounds + {} slices, {}.{}% accounted\n",
            self.gc_wall_ns,
            self.rounds,
            self.slices,
            self.accounted_permille / 10,
            self.accounted_permille % 10,
        );
        out.push_str(
            "  phase              calls     busy_ns  exclusive  overlapped  share\n",
        );
        for p in &self.phases {
            let share = self.share_permille(p.busy_ns);
            out.push_str(&format!(
                "  {:<16} {:>7} {:>11} {:>10} {:>11} {:>4}.{}%\n",
                p.name,
                p.calls,
                p.busy_ns,
                p.exclusive_ns,
                p.overlapped_ns,
                share / 10,
                share % 10,
            ));
        }
        out
    }

    /// Per-phase deltas against another anatomy (`self` = A, `other` = B):
    /// CSV `phase,calls_a,calls_b,busy_a_ns,busy_b_ns,delta_ns` plus a
    /// `gc_wall` row — the attribution companion to the PR-7 perf gate:
    /// *which phase* got slower, not just that the run did.
    pub fn diff_csv(&self, other: &GcAnatomy) -> String {
        let mut out = String::from("phase,calls_a,calls_b,busy_a_ns,busy_b_ns,delta_ns\n");
        for (a, b) in self.phases.iter().zip(&other.phases) {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                a.name,
                a.calls,
                b.calls,
                a.busy_ns,
                b.busy_ns,
                b.busy_ns as i64 - a.busy_ns as i64
            ));
        }
        out.push_str(&format!(
            "gc_wall,{},{},{},{},{}\n",
            self.rounds + self.slices,
            other.rounds + other.slices,
            self.gc_wall_ns,
            other.gc_wall_ns,
            other.gc_wall_ns as i64 - self.gc_wall_ns as i64
        ));
        out
    }
}

impl ToJson for PhaseStat {
    fn to_json(&self) -> Json {
        Json::obj([
            ("phase", Json::Str(self.name.into())),
            ("calls", Json::U64(self.calls)),
            ("busy_ns", Json::U64(self.busy_ns)),
            ("exclusive_ns", Json::U64(self.exclusive_ns)),
            ("overlapped_ns", Json::U64(self.overlapped_ns)),
        ])
    }
}

impl ToJson for GcAnatomy {
    fn to_json(&self) -> Json {
        Json::obj([
            ("gc_wall_ns", Json::U64(self.gc_wall_ns)),
            ("rounds", Json::U64(self.rounds)),
            ("slices", Json::U64(self.slices)),
            ("accounted_permille", Json::U64(self.accounted_permille)),
            ("covered_ns", Json::U64(self.covered_ns)),
            (
                "phases",
                Json::Arr(self.phases.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn span(track: Track, name: &str, start: u64, end: u64) -> SpanRec {
        SpanRec {
            track,
            name: name.to_string(),
            kind: EventKind::Span { start_ns: start, end_ns: end },
            args: Vec::new(),
        }
    }

    fn die(name: &str, start: u64, end: u64, queued: u64) -> SpanRec {
        SpanRec {
            track: Track::Die { channel: 0, die: 0 },
            name: name.to_string(),
            kind: EventKind::Span { start_ns: start, end_ns: end },
            args: vec![("queued_ns".to_string(), queued)],
        }
    }

    /// One synthetic GC round with full pipelining:
    /// wall [0,100]; read [0,20], hash [20,40] (queue-extended from 30),
    /// write [40,70], erase [60,100] overlapping the write by 10.
    fn round() -> Vec<SpanRec> {
        vec![
            span(Track::Gc, "gc_round", 0, 100),
            SpanRec {
                track: Track::Gc,
                name: "victim_select".to_string(),
                kind: EventKind::Instant { at_ns: 0 },
                args: Vec::new(),
            },
            die("migrate_read", 0, 20, 0),
            span(Track::Hash, "fingerprint", 30, 40).with_queue(10),
            die("migrate_write", 40, 70, 0),
            die("erase", 60, 100, 0),
        ]
    }

    trait WithQueue {
        fn with_queue(self, q: u64) -> SpanRec;
    }
    impl WithQueue for SpanRec {
        fn with_queue(mut self, q: u64) -> SpanRec {
            self.args.push(("queued_ns".to_string(), q));
            self
        }
    }

    #[test]
    fn decomposition_is_exact_with_overlap_attribution() {
        let a = GcAnatomy::from_spans(&round());
        assert_eq!(a.gc_wall_ns, 100);
        assert_eq!(a.rounds, 1);
        assert_eq!(a.slices, 0);
        // read [0,20] + hash [20,40] + write [40,70] + erase [60,100]
        // cover the whole wall.
        assert_eq!(a.covered_ns, 100);
        assert_eq!(a.accounted_permille, 1000);
        let by = |n: &str| a.phases.iter().find(|p| p.name == n).unwrap();
        assert_eq!(by("victim_select").calls, 1);
        assert_eq!(by("victim_select").busy_ns, 0);
        assert_eq!(by("migrate_read").busy_ns, 20);
        assert_eq!(by("migrate_read").exclusive_ns, 20);
        // Queue extension pulled the hash back to [20,40].
        assert_eq!(by("fingerprint").busy_ns, 20);
        assert_eq!(by("migrate_write").busy_ns, 30);
        assert_eq!(by("migrate_write").overlapped_ns, 10);
        assert_eq!(by("erase").busy_ns, 40);
        assert_eq!(by("erase").overlapped_ns, 10);
        assert_eq!(by("erase").exclusive_ns, 30);
    }

    #[test]
    fn phase_time_outside_the_wall_is_clipped() {
        // Erase tail extends past the recorded round (shouldn't happen,
        // but the algebra must stay exact if it does).
        let spans = vec![
            span(Track::Gc, "gc_slice", 0, 50),
            die("erase", 40, 90, 0),
        ];
        let a = GcAnatomy::from_spans(&spans);
        assert_eq!(a.gc_wall_ns, 50);
        assert_eq!(a.slices, 1);
        let erase = a.phases.iter().find(|p| p.name == "erase").unwrap();
        assert_eq!(erase.busy_ns, 10);
        assert_eq!(a.accounted_permille, 200);
    }

    #[test]
    fn empty_stream_yields_zero_anatomy() {
        let a = GcAnatomy::from_spans(&[]);
        assert_eq!(a.gc_wall_ns, 0);
        assert_eq!(a.accounted_permille, 0);
        assert_eq!(a.phases.len(), 5);
        assert!(a.to_csv().lines().count() == 7); // header + 5 phases + total
    }

    #[test]
    fn csv_and_diff_are_deterministic() {
        let a = GcAnatomy::from_spans(&round());
        let b = GcAnatomy::from_spans(&round());
        assert_eq!(a.to_csv(), b.to_csv());
        assert!(a.to_csv().starts_with("phase,calls,busy_ns"));
        assert!(a.to_csv().contains("\ntotal,1,100,"));
        // Self-diff: every delta is zero.
        let d = a.diff_csv(&b);
        for line in d.lines().skip(1) {
            assert!(line.ends_with(",0"), "{line}");
        }
        // A slower erase shows as a positive delta on the erase row.
        let mut slow = round();
        slow[0] = span(Track::Gc, "gc_round", 0, 130);
        slow[5] = die("erase", 60, 130, 0);
        let d = a.diff_csv(&GcAnatomy::from_spans(&slow));
        let erase_row: Vec<&str> =
            d.lines().find(|l| l.starts_with("erase")).unwrap().split(',').collect();
        assert_eq!(erase_row[5], "30");
        let wall_row: Vec<&str> =
            d.lines().find(|l| l.starts_with("gc_wall")).unwrap().split(',').collect();
        assert_eq!(wall_row[5], "30");
    }

    #[test]
    fn json_mirrors_the_struct() {
        let a = GcAnatomy::from_spans(&round());
        let text = a.to_json().render();
        assert!(text.starts_with(r#"{"gc_wall_ns":100,"rounds":1,"slices":0,"accounted_permille":1000"#));
        assert!(text.contains(r#"{"phase":"victim_select","calls":1"#));
    }
}
