//! Host-observed replay results: end-to-end latency summaries, interface
//! counters, and the embedded device-level [`RunReport`].

use cagc_core::{LatencySummary, RunReport};
use cagc_harness::{Json, ToJson};
use cagc_metrics::Cdf;
use cagc_sim::time::{fmt_duration, Nanos};

/// Host resilience-policy counters: what the retry/deadline machinery did
/// and which error completions ultimately surfaced to the host.
///
/// All-zero on a fault-free run (the policy never fires), and the whole
/// section is omitted from rendered/JSON output in that case, keeping
/// fault-free reports byte-identical with or without the policy armed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Error completions re-issued to the device.
    pub retries: u64,
    /// Final completions delivered past the per-command deadline
    /// (observational — the completion is still delivered).
    pub timeouts: u64,
    /// Commands abandoned because the next retry would start past the
    /// deadline (retry budget remained).
    pub aborts: u64,
    /// Media-read-error completions that surfaced (post-retry).
    pub media_read_errors: u64,
    /// Write-fault completions that surfaced (post-retry).
    pub write_faults: u64,
    /// Write-protected rejections (device read-only; never retried).
    pub write_protected: u64,
}

impl ResilienceStats {
    /// True when the policy never fired and no error surfaced — the
    /// section carries no information and is omitted from output.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }

    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "retries={} timeouts={} aborts={} errors: media_read={} write_fault={} write_protected={}",
            self.retries,
            self.timeouts,
            self.aborts,
            self.media_read_errors,
            self.write_faults,
            self.write_protected,
        )
    }
}

impl ToJson for ResilienceStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("retries", Json::U64(self.retries)),
            ("timeouts", Json::U64(self.timeouts)),
            ("aborts", Json::U64(self.aborts)),
            ("media_read_errors", Json::U64(self.media_read_errors)),
            ("write_faults", Json::U64(self.write_faults)),
            ("write_protected", Json::U64(self.write_protected)),
        ])
    }
}

/// Result of one host-interface replay.
///
/// All latencies are *host-observed*: from the moment the host wanted the
/// I/O (open-loop: trace arrival; closed-loop: submission) to the
/// interrupt that delivered its completion. The embedded [`device`] report
/// carries the device-side view of the same run, so the two can be
/// compared directly — the gap is queueing plus interface overhead.
///
/// [`device`]: HostReport::device
#[derive(Debug, Clone)]
pub struct HostReport {
    /// `"open-loop"` or `"closed-loop"`.
    pub mode: &'static str,
    /// Queue pairs the run used.
    pub queue_pairs: u32,
    /// Slots per pair.
    pub queue_depth: u32,
    /// End-to-end latency over every command.
    pub all: LatencySummary,
    /// End-to-end latency of reads.
    pub reads: LatencySummary,
    /// End-to-end latency of writes.
    pub writes: LatencySummary,
    /// Host-side wait: wanted → doorbell dispatch (queueing only, no
    /// device service).
    pub queue_wait: LatencySummary,
    /// Full read-latency CDF (the per-QD Fig. 12-style curve).
    pub read_cdf: Cdf,
    /// Doorbell rings (submission batches issued to the controller).
    pub doorbells: u64,
    /// Completion interrupts fired (coalescing makes this < completions).
    pub irqs: u64,
    /// Open-loop arrivals that found their pair full and waited host-side.
    pub backlogged: u64,
    /// Idle-window GC quanta the host pumped through the device.
    pub pump_slices: u64,
    /// Highest total slot occupancy observed across all pairs.
    pub peak_occupancy: u64,
    /// Resilience-policy counters (retries, timeouts, aborts, surfaced
    /// error completions). Quiet on fault-free runs.
    pub resilience: ResilienceStats,
    /// The device-side report for the same run.
    pub device: RunReport,
    /// Simulated time of the last event.
    pub end_ns: Nanos,
}

impl HostReport {
    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "host {} pairs={} qd={} end={}\n  all:    {}\n  reads:  {}\n  writes: {}\n  wait:   {}\n  doorbells={} irqs={} backlogged={} pump_slices={} peak_occupancy={}",
            self.mode,
            self.queue_pairs,
            self.queue_depth,
            fmt_duration(self.end_ns),
            self.all.render(),
            self.reads.render(),
            self.writes.render(),
            self.queue_wait.render(),
            self.doorbells,
            self.irqs,
            self.backlogged,
            self.pump_slices,
            self.peak_occupancy,
        );
        if !self.resilience.is_quiet() {
            out.push_str("\n  resilience: ");
            out.push_str(&self.resilience.render());
        }
        out
    }
}

impl ToJson for HostReport {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("mode", Json::Str(self.mode.to_string())),
            ("queue_pairs", Json::U64(u64::from(self.queue_pairs))),
            ("queue_depth", Json::U64(u64::from(self.queue_depth))),
            ("all", self.all.to_json()),
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("queue_wait", self.queue_wait.to_json()),
            ("read_cdf", self.read_cdf.to_json()),
            ("doorbells", Json::U64(self.doorbells)),
            ("irqs", Json::U64(self.irqs)),
            ("backlogged", Json::U64(self.backlogged)),
            ("pump_slices", Json::U64(self.pump_slices)),
            ("peak_occupancy", Json::U64(self.peak_occupancy)),
        ];
        // Pay-as-you-go: the section appears only once the policy has
        // something to say, so quiet reports keep their historical bytes.
        if !self.resilience.is_quiet() {
            fields.push(("resilience", self.resilience.to_json()));
        }
        fields.push(("device", self.device.to_json()));
        fields.push(("end_ns", Json::U64(self.end_ns)));
        Json::obj(fields)
    }
}
