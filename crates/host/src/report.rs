//! Host-observed replay results: end-to-end latency summaries, interface
//! counters, and the embedded device-level [`RunReport`].

use cagc_core::{LatencySummary, RunReport};
use cagc_harness::{Json, ToJson};
use cagc_metrics::Cdf;
use cagc_sim::time::{fmt_duration, Nanos};

/// Result of one host-interface replay.
///
/// All latencies are *host-observed*: from the moment the host wanted the
/// I/O (open-loop: trace arrival; closed-loop: submission) to the
/// interrupt that delivered its completion. The embedded [`device`] report
/// carries the device-side view of the same run, so the two can be
/// compared directly — the gap is queueing plus interface overhead.
///
/// [`device`]: HostReport::device
#[derive(Debug, Clone)]
pub struct HostReport {
    /// `"open-loop"` or `"closed-loop"`.
    pub mode: &'static str,
    /// Queue pairs the run used.
    pub queue_pairs: u32,
    /// Slots per pair.
    pub queue_depth: u32,
    /// End-to-end latency over every command.
    pub all: LatencySummary,
    /// End-to-end latency of reads.
    pub reads: LatencySummary,
    /// End-to-end latency of writes.
    pub writes: LatencySummary,
    /// Host-side wait: wanted → doorbell dispatch (queueing only, no
    /// device service).
    pub queue_wait: LatencySummary,
    /// Full read-latency CDF (the per-QD Fig. 12-style curve).
    pub read_cdf: Cdf,
    /// Doorbell rings (submission batches issued to the controller).
    pub doorbells: u64,
    /// Completion interrupts fired (coalescing makes this < completions).
    pub irqs: u64,
    /// Open-loop arrivals that found their pair full and waited host-side.
    pub backlogged: u64,
    /// Idle-window GC quanta the host pumped through the device.
    pub pump_slices: u64,
    /// Highest total slot occupancy observed across all pairs.
    pub peak_occupancy: u64,
    /// The device-side report for the same run.
    pub device: RunReport,
    /// Simulated time of the last event.
    pub end_ns: Nanos,
}

impl HostReport {
    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "host {} pairs={} qd={} end={}\n  all:    {}\n  reads:  {}\n  writes: {}\n  wait:   {}\n  doorbells={} irqs={} backlogged={} pump_slices={} peak_occupancy={}",
            self.mode,
            self.queue_pairs,
            self.queue_depth,
            fmt_duration(self.end_ns),
            self.all.render(),
            self.reads.render(),
            self.writes.render(),
            self.queue_wait.render(),
            self.doorbells,
            self.irqs,
            self.backlogged,
            self.pump_slices,
            self.peak_occupancy,
        )
    }
}

impl ToJson for HostReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mode", Json::Str(self.mode.to_string())),
            ("queue_pairs", Json::U64(u64::from(self.queue_pairs))),
            ("queue_depth", Json::U64(u64::from(self.queue_depth))),
            ("all", self.all.to_json()),
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("queue_wait", self.queue_wait.to_json()),
            ("read_cdf", self.read_cdf.to_json()),
            ("doorbells", Json::U64(self.doorbells)),
            ("irqs", Json::U64(self.irqs)),
            ("backlogged", Json::U64(self.backlogged)),
            ("pump_slices", Json::U64(self.pump_slices)),
            ("peak_occupancy", Json::U64(self.peak_occupancy)),
            ("device", self.device.to_json()),
            ("end_ns", Json::U64(self.end_ns)),
        ])
    }
}
