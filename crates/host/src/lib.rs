//! # cagc-host — NVMe-style multi-queue host interface
//!
//! The crates below this one answer *how long does the device take*; this
//! crate answers *what does the host actually see*. It wraps a
//! [`cagc_core::Ssd`] behind an NVMe-flavored interface:
//!
//! * N submission/completion **queue pairs** with bounded depth — a
//!   command occupies a slot from submission until its completion is
//!   reaped.
//! * **Doorbell batching**: submissions accumulate and the doorbell rings
//!   on a count threshold or a flush timeout, fetching the whole batch.
//! * **Interrupt coalescing**: completions are delivered in bursts, on a
//!   depth threshold or a timeout.
//! * **Open-loop** replay (arrival-timed, backlogs under overload) and
//!   **closed-loop** replay (fio `iodepth` semantics: a fixed number of
//!   commands kept outstanding per pair).
//! * An **idle-window GC pump**: when every queue drains, the host lets
//!   the device run preemptible GC quanta ([`cagc_core::Ssd::gc_pump`])
//!   until the next command arrives.
//!
//! Everything runs on the `cagc-sim` event engine, so replays are
//! deterministic: same trace, same config ⇒ byte-identical
//! [`HostReport`]s. The [`HostConfig::passthrough`] shape degenerates to
//! the synchronous [`cagc_core::Ssd::replay`] path exactly (a tested
//! byte-identity), which anchors every multi-queue result to the rest of
//! the repository's golden artifacts.
//!
//! See `docs/HOST_INTERFACE.md` for the queue model and the GC preemption
//! state machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod engine;
pub mod report;

pub use config::{ConfigError, HostConfig};
pub use engine::{CmdLatency, HostInterface};
pub use report::{HostReport, ResilienceStats};
