//! Host-interface configuration: queue shape, doorbell and interrupt
//! behavior, per-command controller costs.

use cagc_sim::time::Nanos;

/// Configuration of the NVMe-style host interface.
///
/// Two presets cover the common cases: [`HostConfig::passthrough`] is the
/// zero-overhead single-queue shape whose open-loop replay is byte-identical
/// to [`cagc_core::Ssd::replay`], and [`HostConfig::nvme`] is a realistic
/// multi-queue controller with doorbell batching and interrupt coalescing.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Number of submission/completion queue pairs. Commands are assigned
    /// round-robin across pairs (a deterministic stand-in for per-core
    /// queues).
    pub queue_pairs: u32,
    /// Slots per pair: a command occupies one slot from submission until
    /// its completion is reaped. Open-loop arrivals beyond this backlog
    /// host-side; closed-loop replay keeps exactly this many commands
    /// outstanding per pair (fio `iodepth` semantics).
    pub queue_depth: u32,
    /// Doorbell batching: the doorbell rings once this many submissions
    /// accumulate. `1` rings on every submission (classic NVMe).
    pub doorbell_batch: u32,
    /// Backstop for batching: an un-rung submission queue flushes this
    /// long after its first pending entry. Ignored when
    /// `doorbell_batch == 1`.
    pub doorbell_flush_ns: Nanos,
    /// Interrupt coalescing: the completion interrupt fires once this many
    /// completions are pending. `1` interrupts on every completion.
    pub coalesce_depth: u32,
    /// Coalescing timeout: pending completions are delivered at most this
    /// long after the first one. Ignored when `coalesce_depth == 1`.
    pub coalesce_ns: Nanos,
    /// Controller cost to fetch a command after the doorbell (submission
    /// queue read + decode).
    pub fetch_ns: Nanos,
    /// Controller cost to post one completion entry.
    pub completion_ns: Nanos,
    /// Pump preemptible GC in host-idle windows: whenever no command is
    /// queued or in flight, run [`cagc_core::Ssd::gc_pump`] quanta until
    /// work arrives. Requires `gc_preempt` on the device to have any
    /// effect.
    pub gc_pump: bool,
}

impl HostConfig {
    /// Zero-overhead single-queue shape: one pair, unbounded depth, every
    /// submission rings the doorbell, every completion interrupts, no
    /// controller costs, no pumping. Open-loop replay through this config
    /// executes each command at its arrival time in trace order — byte
    /// identical to the synchronous [`cagc_core::Ssd::replay`] path.
    pub fn passthrough() -> Self {
        Self {
            queue_pairs: 1,
            queue_depth: u32::MAX,
            doorbell_batch: 1,
            doorbell_flush_ns: 0,
            coalesce_depth: 1,
            coalesce_ns: 0,
            fetch_ns: 0,
            completion_ns: 0,
            gc_pump: false,
        }
    }

    /// A realistic NVMe-flavored controller: the given queue shape,
    /// per-command fetch/completion costs, and interrupt coalescing.
    pub fn nvme(queue_pairs: u32, queue_depth: u32) -> Self {
        Self {
            queue_pairs,
            queue_depth,
            doorbell_batch: 1,
            doorbell_flush_ns: 2_000,
            coalesce_depth: 4,
            coalesce_ns: 8_000,
            fetch_ns: 200,
            completion_ns: 300,
            gc_pump: true,
        }
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_pairs == 0 {
            return Err("queue_pairs must be >= 1".into());
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be >= 1".into());
        }
        if self.doorbell_batch == 0 {
            return Err("doorbell_batch must be >= 1".into());
        }
        if self.doorbell_batch > 1 && self.doorbell_flush_ns == 0 {
            return Err("doorbell_batch > 1 needs a nonzero flush timeout".into());
        }
        if self.coalesce_depth == 0 {
            return Err("coalesce_depth must be >= 1".into());
        }
        if self.coalesce_depth > 1 && self.coalesce_ns == 0 {
            return Err("coalesce_depth > 1 needs a nonzero coalesce timeout".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        HostConfig::passthrough().validate().unwrap();
        HostConfig::nvme(4, 32).validate().unwrap();
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        let mut c = HostConfig::passthrough();
        c.queue_pairs = 0;
        assert!(c.validate().is_err());

        let mut c = HostConfig::passthrough();
        c.queue_depth = 0;
        assert!(c.validate().is_err());

        let mut c = HostConfig::passthrough();
        c.doorbell_batch = 4; // batching with no flush backstop would hang
        assert!(c.validate().is_err());

        let mut c = HostConfig::passthrough();
        c.coalesce_depth = 4;
        assert!(c.validate().is_err());
    }
}
