//! Host-interface configuration: queue shape, doorbell and interrupt
//! behavior, per-command controller costs, and the resilience policy
//! (deadlines, retries, backoff).

use cagc_sim::time::Nanos;

/// A structured, reportable reason a [`HostConfig`] is malformed.
///
/// Carried by [`HostConfig::validate`] and
/// [`crate::HostInterface::try_new`] so callers (config loaders, sweep
/// drivers) can surface the problem instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `queue_pairs == 0` — there is no queue to submit on.
    ZeroQueuePairs,
    /// `queue_depth == 0` — no command could ever occupy a slot.
    ZeroQueueDepth,
    /// `doorbell_batch == 0` — the doorbell would never ring.
    ZeroDoorbellBatch,
    /// `doorbell_batch > 1` without a flush timeout — a partial batch
    /// would hang forever.
    BatchWithoutFlush,
    /// `coalesce_depth == 0` — the interrupt would never fire.
    ZeroCoalesceDepth,
    /// `coalesce_depth > 1` without a coalescing timeout — pending
    /// completions would never be delivered.
    CoalesceWithoutTimeout,
    /// `max_retries > 0` without a retry backoff — the retry loop would
    /// re-issue at the failure instant, busy-spinning simulated time.
    RetryWithoutBackoff,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroQueuePairs => write!(f, "queue_pairs must be >= 1"),
            ConfigError::ZeroQueueDepth => write!(f, "queue_depth must be >= 1"),
            ConfigError::ZeroDoorbellBatch => write!(f, "doorbell_batch must be >= 1"),
            ConfigError::BatchWithoutFlush => {
                write!(f, "doorbell_batch > 1 needs a nonzero flush timeout")
            }
            ConfigError::ZeroCoalesceDepth => write!(f, "coalesce_depth must be >= 1"),
            ConfigError::CoalesceWithoutTimeout => {
                write!(f, "coalesce_depth > 1 needs a nonzero coalesce timeout")
            }
            ConfigError::RetryWithoutBackoff => {
                write!(f, "max_retries > 0 needs a nonzero retry_backoff_ns")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the NVMe-style host interface.
///
/// Two presets cover the common cases: [`HostConfig::passthrough`] is the
/// zero-overhead single-queue shape whose open-loop replay is byte-identical
/// to [`cagc_core::Ssd::replay`], and [`HostConfig::nvme`] is a realistic
/// multi-queue controller with doorbell batching and interrupt coalescing.
/// Both ship with the resilience policy disabled; arm it with
/// [`HostConfig::with_resilience`]. An armed policy on a fault-free device
/// never fires (no retries, no PRNG draws, no extra events), so reports
/// stay byte-identical to a run without it.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Number of submission/completion queue pairs. Commands are assigned
    /// round-robin across pairs (a deterministic stand-in for per-core
    /// queues).
    pub queue_pairs: u32,
    /// Slots per pair: a command occupies one slot from submission until
    /// its completion is reaped. Open-loop arrivals beyond this backlog
    /// host-side; closed-loop replay keeps exactly this many commands
    /// outstanding per pair (fio `iodepth` semantics).
    pub queue_depth: u32,
    /// Doorbell batching: the doorbell rings once this many submissions
    /// accumulate. `1` rings on every submission (classic NVMe).
    pub doorbell_batch: u32,
    /// Backstop for batching: an un-rung submission queue flushes this
    /// long after its first pending entry. Ignored when
    /// `doorbell_batch == 1`.
    pub doorbell_flush_ns: Nanos,
    /// Interrupt coalescing: the completion interrupt fires once this many
    /// completions are pending. `1` interrupts on every completion.
    pub coalesce_depth: u32,
    /// Coalescing timeout: pending completions are delivered at most this
    /// long after the first one. Ignored when `coalesce_depth == 1`.
    pub coalesce_ns: Nanos,
    /// Controller cost to fetch a command after the doorbell (submission
    /// queue read + decode).
    pub fetch_ns: Nanos,
    /// Controller cost to post one completion entry.
    pub completion_ns: Nanos,
    /// Pump preemptible GC in host-idle windows: whenever no command is
    /// queued or in flight, run [`cagc_core::Ssd::gc_pump`] quanta until
    /// work arrives. Requires `gc_preempt` on the device to have any
    /// effect.
    pub gc_pump: bool,
    /// Per-command deadline from the moment the host wanted the I/O.
    /// `0` disables it. Completions landing past the deadline count as
    /// timeouts; a retry that would *start* past it is abandoned and the
    /// command aborts with its last error status.
    pub deadline_ns: Nanos,
    /// How many times a retryable error completion (media read error,
    /// write fault — never write-protection) is re-issued to the device.
    /// `0` disables host retries: error completions surface immediately.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt
    /// (exponential). Required nonzero when `max_retries > 0`.
    pub retry_backoff_ns: Nanos,
    /// Upper bound on the uniform jitter added to every backoff (`0` =
    /// no jitter). Drawn from the seeded `"host-retry"` PRNG stream, so
    /// retry schedules are deterministic per seed.
    pub retry_jitter_ns: Nanos,
    /// Seed for the retry-jitter PRNG stream.
    pub retry_seed: u64,
}

impl HostConfig {
    /// Zero-overhead single-queue shape: one pair, unbounded depth, every
    /// submission rings the doorbell, every completion interrupts, no
    /// controller costs, no pumping. Open-loop replay through this config
    /// executes each command at its arrival time in trace order — byte
    /// identical to the synchronous [`cagc_core::Ssd::replay`] path.
    pub fn passthrough() -> Self {
        Self {
            queue_pairs: 1,
            queue_depth: u32::MAX,
            doorbell_batch: 1,
            doorbell_flush_ns: 0,
            coalesce_depth: 1,
            coalesce_ns: 0,
            fetch_ns: 0,
            completion_ns: 0,
            gc_pump: false,
            deadline_ns: 0,
            max_retries: 0,
            retry_backoff_ns: 0,
            retry_jitter_ns: 0,
            retry_seed: 0,
        }
    }

    /// A realistic NVMe-flavored controller: the given queue shape,
    /// per-command fetch/completion costs, and interrupt coalescing.
    pub fn nvme(queue_pairs: u32, queue_depth: u32) -> Self {
        Self {
            queue_pairs,
            queue_depth,
            doorbell_batch: 1,
            doorbell_flush_ns: 2_000,
            coalesce_depth: 4,
            coalesce_ns: 8_000,
            fetch_ns: 200,
            completion_ns: 300,
            gc_pump: true,
            deadline_ns: 0,
            max_retries: 0,
            retry_backoff_ns: 0,
            retry_jitter_ns: 0,
            retry_seed: 0,
        }
    }

    /// Arm the resilience policy on top of any shape: per-command
    /// `deadline_ns` (0 keeps it disabled), up to `max_retries` re-issues
    /// of retryable error completions with exponential backoff from
    /// `retry_backoff_ns` plus uniform jitter in `[0, retry_jitter_ns)`
    /// drawn from the seeded `"host-retry"` stream.
    pub fn with_resilience(
        mut self,
        deadline_ns: Nanos,
        max_retries: u32,
        retry_backoff_ns: Nanos,
        retry_jitter_ns: Nanos,
        retry_seed: u64,
    ) -> Self {
        self.deadline_ns = deadline_ns;
        self.max_retries = max_retries;
        self.retry_backoff_ns = retry_backoff_ns;
        self.retry_jitter_ns = retry_jitter_ns;
        self.retry_seed = retry_seed;
        self
    }

    /// Sanity-check the configuration.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found; `Ok(())` means the shape
    /// is runnable.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_pairs == 0 {
            return Err(ConfigError::ZeroQueuePairs);
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.doorbell_batch == 0 {
            return Err(ConfigError::ZeroDoorbellBatch);
        }
        if self.doorbell_batch > 1 && self.doorbell_flush_ns == 0 {
            return Err(ConfigError::BatchWithoutFlush);
        }
        if self.coalesce_depth == 0 {
            return Err(ConfigError::ZeroCoalesceDepth);
        }
        if self.coalesce_depth > 1 && self.coalesce_ns == 0 {
            return Err(ConfigError::CoalesceWithoutTimeout);
        }
        if self.max_retries > 0 && self.retry_backoff_ns == 0 {
            return Err(ConfigError::RetryWithoutBackoff);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        HostConfig::passthrough().validate().unwrap();
        HostConfig::nvme(4, 32).validate().unwrap();
        HostConfig::nvme(4, 32)
            .with_resilience(10_000_000, 3, 50_000, 10_000, 7)
            .validate()
            .unwrap();
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        let mut c = HostConfig::passthrough();
        c.queue_pairs = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroQueuePairs));

        let mut c = HostConfig::passthrough();
        c.queue_depth = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroQueueDepth));

        let mut c = HostConfig::passthrough();
        c.doorbell_batch = 4; // batching with no flush backstop would hang
        assert_eq!(c.validate(), Err(ConfigError::BatchWithoutFlush));

        let mut c = HostConfig::passthrough();
        c.coalesce_depth = 4;
        assert_eq!(c.validate(), Err(ConfigError::CoalesceWithoutTimeout));

        let mut c = HostConfig::passthrough();
        c.max_retries = 2; // retries with no backoff would spin in place
        assert_eq!(c.validate(), Err(ConfigError::RetryWithoutBackoff));
    }

    #[test]
    fn config_errors_render_and_are_std_errors() {
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::RetryWithoutBackoff);
        assert!(e.to_string().contains("retry_backoff_ns"));
        assert!(format!("{}", ConfigError::ZeroQueuePairs).contains("queue_pairs"));
    }
}
