//! The multi-queue engine: an event-driven NVMe-flavored submission/
//! completion model wrapped around one [`Ssd`].
//!
//! Every state transition is driven by the `cagc-sim` event queue, whose
//! FIFO tie-breaking makes the whole machine deterministic: same trace,
//! same config, same seed ⇒ byte-identical reports. Commands flow
//!
//! ```text
//! arrive → [backlog] → submit (SQ slot) → doorbell → fetch → device
//!        → complete (CQ entry) → interrupt → reap (latency stamped)
//! ```
//!
//! with the doorbell batched by count-or-timeout and the completion
//! interrupt coalesced the same way. Per-request latency is simulated ns
//! from *wanted* (open-loop: the arrival; closed-loop: the submission) to
//! the interrupt that delivered its completion — host-observed latency,
//! including every queueing effect the synchronous replay cannot see.

use std::collections::VecDeque;

use cagc_core::{CmdStatus, Completion, Ssd};
use cagc_metrics::{Cdf, Histogram};
use cagc_sim::event::EventQueue;
use cagc_sim::time::Nanos;
use cagc_sim::SimRng;
use cagc_trace::Track;
use cagc_workloads::{OpKind, Request, Trace};

use crate::config::{ConfigError, HostConfig};
use crate::report::{HostReport, ResilienceStats};

/// Engine event payloads.
#[derive(Debug, Clone)]
enum Ev {
    /// Open-loop arrival of command `cmd` (index into the trace).
    Arrive { cmd: usize },
    /// Doorbell flush backstop for pair `q`, valid only at `gen`.
    DoorbellTimer { q: usize, gen: u64 },
    /// Device finished command `cmd`; its completion entry lands on `q`.
    Complete { q: usize, cmd: usize },
    /// Re-issue command `cmd` to the device after a retryable error
    /// completion (backoff + jitter already elapsed).
    Retry { q: usize, cmd: usize },
    /// Interrupt coalescing backstop for pair `q`, valid only at `gen`.
    IrqTimer { q: usize, gen: u64 },
    /// Continue idle-window GC pumping.
    Pump,
}

/// Lifecycle timestamps of one command (all simulated ns), in trace
/// order. Returned by the `_detailed` replay variants for per-request
/// analysis (time series, worst-offender listings).
#[derive(Debug, Clone, Copy, Default)]
pub struct CmdLatency {
    /// The queue pair that carried the command.
    pub queue: usize,
    /// When the host wanted the I/O: open-loop arrival, closed-loop
    /// submission. End-to-end latency is `reaped - wanted`.
    pub wanted_ns: Nanos,
    /// When it got a submission-queue slot.
    pub submitted_ns: Nanos,
    /// When the doorbell handed it to the controller.
    pub dispatched_ns: Nanos,
    /// When the completion interrupt delivered it back to the host.
    pub reaped_ns: Nanos,
    /// The NVMe-style status its final completion carried
    /// ([`CmdStatus::Success`] on every fault-free run).
    pub status: CmdStatus,
    /// Device re-issues the resilience policy spent on this command.
    pub retries: u32,
}

impl CmdLatency {
    /// Host-observed end-to-end latency.
    pub fn latency_ns(&self) -> Nanos {
        self.reaped_ns - self.wanted_ns
    }
}

/// One submission/completion queue pair.
#[derive(Debug, Default)]
struct QueuePair {
    /// Submitted commands whose doorbell has not rung yet.
    sq: VecDeque<usize>,
    /// Commands dispatched to the device, completion pending.
    inflight: usize,
    /// Completed commands awaiting the interrupt.
    cq: Vec<usize>,
    /// Open-loop arrivals waiting for a free slot.
    backlog: VecDeque<usize>,
    /// Doorbell generation: a flush timer is valid only if no ring
    /// happened since it was scheduled.
    db_gen: u64,
    /// Interrupt generation, same role for the coalescing timer.
    irq_gen: u64,
}

impl QueuePair {
    /// Slots in use: submission until completion consumed.
    fn occupancy(&self) -> usize {
        self.sq.len() + self.inflight + self.cq.len()
    }
}

#[derive(Debug, Default)]
struct RawStats {
    all: Histogram,
    reads: Histogram,
    writes: Histogram,
    queue_wait: Histogram,
    doorbells: u64,
    irqs: u64,
    backlogged: u64,
    pump_slices: u64,
    peak_occupancy: u64,
    resilience: ResilienceStats,
}

/// An NVMe-style multi-queue host interface wrapped around one SSD.
pub struct HostInterface {
    cfg: HostConfig,
    ssd: Ssd,
}

impl HostInterface {
    /// Wrap `ssd` behind the given host interface.
    ///
    /// # Panics
    /// Panics if the configuration fails [`HostConfig::validate`]; use
    /// [`HostInterface::try_new`] to handle malformed configs as values.
    pub fn new(ssd: Ssd, cfg: HostConfig) -> Self {
        match Self::try_new(ssd, cfg) {
            Ok(host) => host,
            Err(e) => panic!("invalid HostConfig: {e}"),
        }
    }

    /// Fallible constructor: a malformed configuration comes back as a
    /// reportable [`ConfigError`] instead of aborting the process.
    ///
    /// # Errors
    /// Returns the first validation failure of `cfg`.
    pub fn try_new(ssd: Ssd, cfg: HostConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self { cfg, ssd })
    }

    /// The host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// The wrapped SSD (for audits and device-level queries).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Mutable access to the wrapped SSD (e.g. to attach a tracer).
    pub fn ssd_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// Unwrap the SSD, consuming the interface.
    pub fn into_ssd(self) -> Ssd {
        self.ssd
    }

    /// Open-loop replay: every command arrives at its trace timestamp
    /// whether or not earlier ones completed (arrival-timed load). A full
    /// pair backlogs arrivals host-side; latency still counts from the
    /// arrival, so backpressure shows up in the tail exactly as an
    /// overloaded device would feel to its host.
    pub fn replay_open_loop(&mut self, trace: &Trace) -> HostReport {
        self.run(trace, false).0
    }

    /// [`replay_open_loop`](Self::replay_open_loop), also returning the
    /// per-command lifecycle timestamps in trace order.
    pub fn replay_open_loop_detailed(&mut self, trace: &Trace) -> (HostReport, Vec<CmdLatency>) {
        self.run(trace, false)
    }

    /// Closed-loop replay (fio `iodepth` semantics): trace timestamps are
    /// ignored; each pair keeps `queue_depth` commands outstanding, and
    /// every reaped completion immediately submits the next command in
    /// trace order. Wanted time is the submission, so latency is pure
    /// service + queueing under a fixed offered depth.
    pub fn replay_closed_loop(&mut self, trace: &Trace) -> HostReport {
        self.run(trace, true).0
    }

    /// [`replay_closed_loop`](Self::replay_closed_loop), also returning
    /// the per-command lifecycle timestamps in trace order.
    pub fn replay_closed_loop_detailed(&mut self, trace: &Trace) -> (HostReport, Vec<CmdLatency>) {
        self.run(trace, true)
    }

    fn run(&mut self, trace: &Trace, closed: bool) -> (HostReport, Vec<CmdLatency>) {
        assert!(
            trace.logical_pages <= self.ssd.logical_pages(),
            "trace extent ({} pages) exceeds device logical space ({})",
            trace.logical_pages,
            self.ssd.logical_pages()
        );
        let pairs = self.cfg.queue_pairs as usize;
        let n = trace.requests.len();
        let mut r = Runner {
            cfg: self.cfg.clone(),
            ssd: &mut self.ssd,
            trace,
            events: EventQueue::with_capacity(n + 64),
            cmds: vec![CmdLatency::default(); n],
            queues: (0..pairs).map(|_| QueuePair::default()).collect(),
            cursor: 0,
            closed,
            stats: RawStats::default(),
            pump_pending: false,
            retry_rng: SimRng::for_stream(self.cfg.retry_seed, "host-retry"),
        };
        r.prime();
        let end_ns = r.drain();
        let stats = r.stats;
        let cmds = r.cmds;
        let reaped: u64 = stats.all.count();
        debug_assert_eq!(reaped, n as u64, "every command must be reaped");
        let report = HostReport {
            mode: if closed { "closed-loop" } else { "open-loop" },
            queue_pairs: self.cfg.queue_pairs,
            queue_depth: self.cfg.queue_depth,
            all: cagc_core::LatencySummary::of(&stats.all),
            reads: cagc_core::LatencySummary::of(&stats.reads),
            writes: cagc_core::LatencySummary::of(&stats.writes),
            queue_wait: cagc_core::LatencySummary::of(&stats.queue_wait),
            read_cdf: Cdf::from_histogram(&stats.reads),
            doorbells: stats.doorbells,
            irqs: stats.irqs,
            backlogged: stats.backlogged,
            pump_slices: stats.pump_slices,
            peak_occupancy: stats.peak_occupancy,
            resilience: stats.resilience,
            device: self.ssd.report(&trace.name),
            end_ns,
        };
        (report, cmds)
    }
}

/// Per-run engine state; borrows the SSD for the duration of one replay.
struct Runner<'a> {
    cfg: HostConfig,
    ssd: &'a mut Ssd,
    trace: &'a Trace,
    events: EventQueue<Ev>,
    cmds: Vec<CmdLatency>,
    queues: Vec<QueuePair>,
    /// Closed-loop: next trace index to submit.
    cursor: usize,
    closed: bool,
    stats: RawStats,
    pump_pending: bool,
    /// Jitter stream for retry backoff; only drawn when a retry with
    /// nonzero jitter is actually scheduled, so fault-free runs never
    /// touch it.
    retry_rng: SimRng,
}

impl Runner<'_> {
    /// Seed the event queue: open-loop schedules every arrival up front;
    /// closed-loop fills each pair to its depth at t = 0.
    fn prime(&mut self) {
        if self.closed {
            let depth = (self.cfg.queue_depth as usize).min(self.trace.requests.len());
            for q in 0..self.queues.len() {
                for _ in 0..depth {
                    if self.cursor >= self.trace.requests.len() {
                        return;
                    }
                    let i = self.cursor;
                    self.cursor += 1;
                    self.cmds[i].wanted_ns = 0;
                    self.submit(i, q, 0);
                }
            }
        } else {
            for (i, req) in self.trace.requests.iter().enumerate() {
                self.events.push(req.at_ns, Ev::Arrive { cmd: i });
            }
        }
    }

    /// Pop events to exhaustion; returns the last event timestamp.
    fn drain(&mut self) -> Nanos {
        let mut now = 0;
        while let Some(ev) = self.events.pop() {
            now = ev.at;
            match ev.payload {
                Ev::Arrive { cmd } => self.arrive(cmd, now),
                Ev::DoorbellTimer { q, gen } => {
                    if gen == self.queues[q].db_gen && !self.queues[q].sq.is_empty() {
                        self.ring(q, now);
                    }
                }
                Ev::Complete { q, cmd } => self.complete(q, cmd, now),
                Ev::Retry { q, cmd } => self.issue(q, cmd, now),
                Ev::IrqTimer { q, gen } => {
                    if gen == self.queues[q].irq_gen && !self.queues[q].cq.is_empty() {
                        self.fire_irq(q, now);
                    }
                }
                Ev::Pump => {
                    self.pump_pending = false;
                }
            }
            self.maybe_pump(now);
        }
        now
    }

    /// Open-loop arrival: take a slot on the round-robin pair, or backlog.
    fn arrive(&mut self, cmd: usize, now: Nanos) {
        let q = cmd % self.queues.len();
        self.cmds[cmd].wanted_ns = now;
        if self.queues[q].occupancy() >= self.cfg.queue_depth as usize {
            self.stats.backlogged += 1;
            self.queues[q].backlog.push_back(cmd);
            return;
        }
        self.submit(cmd, q, now);
    }

    /// Take a submission-queue slot and ring (or arm the flush timer).
    fn submit(&mut self, cmd: usize, q: usize, now: Nanos) {
        self.cmds[cmd].queue = q;
        self.cmds[cmd].submitted_ns = now;
        self.queues[q].sq.push_back(cmd);
        let occ: u64 = self.queues.iter().map(|p| p.occupancy() as u64).sum();
        if occ > self.stats.peak_occupancy {
            self.stats.peak_occupancy = occ;
        }
        if self.ssd.tracer().is_enabled() {
            self.ssd.tracer_mut().gauge("queue_occupancy", now, occ);
        }
        if self.queues[q].sq.len() >= self.cfg.doorbell_batch as usize {
            self.ring(q, now);
        } else if self.queues[q].sq.len() == 1 {
            let gen = self.queues[q].db_gen;
            self.events
                .push(now + self.cfg.doorbell_flush_ns, Ev::DoorbellTimer { q, gen });
        }
    }

    /// Doorbell: fetch every pending submission in FIFO order and issue it
    /// to the device. The device call is synchronous state-wise but the
    /// *time* of the completion comes back as an event, so commands from
    /// other pairs interleave with this batch on the simulated clock.
    fn ring(&mut self, q: usize, now: Nanos) {
        self.queues[q].db_gen += 1;
        if self.queues[q].sq.is_empty() {
            return;
        }
        self.stats.doorbells += 1;
        let mut fetched = 0u64;
        while let Some(cmd) = self.queues[q].sq.pop_front() {
            fetched += 1;
            self.cmds[cmd].dispatched_ns = now;
            self.queues[q].inflight += 1;
            self.issue(q, cmd, now + self.cfg.fetch_ns);
        }
        if self.ssd.tracer().is_enabled() {
            self.ssd.tracer_mut().instant(
                Track::Queue { pair: q as u32 },
                "doorbell",
                now,
                &[("cmds", fetched)],
            );
        }
    }

    /// Issue (or re-issue) one command to the device at `exec_at` on the
    /// checked status path. Success — and error completions the policy
    /// cannot or will not retry — post a CQ entry carrying the status; a
    /// retryable error completion (media read error, write fault) within
    /// the retry budget and deadline schedules an [`Ev::Retry`] after
    /// exponential backoff + seeded jitter instead. Write-protection is
    /// never retried (the spare pool is gone for good).
    fn issue(&mut self, q: usize, cmd: usize, exec_at: Nanos) {
        let req = &self.trace.requests[cmd];
        // Power loss keeps the absorb semantics the panicking path had via
        // `Ssd::process` (the command completes un-serviced at issue time);
        // crash workloads drive the device directly and recover there.
        let comp = self
            .ssd
            .process_status(&Request { at_ns: exec_at, ..req.clone() })
            .unwrap_or(Completion { end_ns: exec_at, status: CmdStatus::Success });
        if !comp.status.is_ok() {
            let wanted = self.cmds[cmd].wanted_ns;
            let tries = self.cmds[cmd].retries;
            let deadline =
                if self.cfg.deadline_ns > 0 { Some(wanted + self.cfg.deadline_ns) } else { None };
            if comp.status.is_retryable() && tries < self.cfg.max_retries {
                let backoff = self.cfg.retry_backoff_ns << tries.min(16);
                let jitter = if self.cfg.retry_jitter_ns > 0 {
                    self.retry_rng.gen_range_u64(0..self.cfg.retry_jitter_ns)
                } else {
                    0
                };
                let retry_at = comp.end_ns + backoff + jitter;
                let past_deadline = match deadline {
                    Some(d) => retry_at > d,
                    None => false,
                };
                if !past_deadline {
                    self.cmds[cmd].retries += 1;
                    self.stats.resilience.retries += 1;
                    if self.ssd.tracer().is_enabled() {
                        self.ssd.tracer_mut().instant(
                            Track::Queue { pair: q as u32 },
                            "retry",
                            comp.end_ns,
                            &[("req", cmd as u64), ("attempt", u64::from(tries) + 1)],
                        );
                    }
                    self.events.push(retry_at, Ev::Retry { q, cmd });
                    return;
                }
                // Budget remains but the next attempt would start past the
                // deadline: abandon the command with its last error status.
                self.stats.resilience.aborts += 1;
            }
            match comp.status {
                CmdStatus::MediaReadError => self.stats.resilience.media_read_errors += 1,
                CmdStatus::WriteFault => self.stats.resilience.write_faults += 1,
                CmdStatus::WriteProtected => self.stats.resilience.write_protected += 1,
                CmdStatus::Success => {}
            }
        }
        self.cmds[cmd].status = comp.status;
        let end = comp.end_ns + self.cfg.completion_ns;
        if self.cfg.deadline_ns > 0 && end > self.cmds[cmd].wanted_ns + self.cfg.deadline_ns {
            // Observational only: the completion is still delivered; the
            // counter is how an operator sees deadline pressure build.
            self.stats.resilience.timeouts += 1;
        }
        self.events.push(end, Ev::Complete { q, cmd });
    }

    /// Completion entry posted; interrupt now (depth reached) or arm the
    /// coalescing timer.
    fn complete(&mut self, q: usize, cmd: usize, now: Nanos) {
        self.queues[q].inflight -= 1;
        self.queues[q].cq.push(cmd);
        if self.queues[q].cq.len() >= self.cfg.coalesce_depth as usize {
            self.fire_irq(q, now);
        } else if self.queues[q].cq.len() == 1 {
            let gen = self.queues[q].irq_gen;
            self.events.push(now + self.cfg.coalesce_ns, Ev::IrqTimer { q, gen });
        }
    }

    /// Interrupt: reap every pending completion (stamping end-to-end
    /// latency), then refill the freed slots — backlog first (open loop)
    /// or the next trace commands (closed loop).
    fn fire_irq(&mut self, q: usize, now: Nanos) {
        self.queues[q].irq_gen += 1;
        self.stats.irqs += 1;
        let reaped = std::mem::take(&mut self.queues[q].cq);
        let traced = self.ssd.tracer().is_enabled();
        for &cmd in &reaped {
            let rec = &mut self.cmds[cmd];
            rec.reaped_ns = now;
            let lat = now - rec.wanted_ns;
            self.stats.all.record(lat);
            match self.trace.requests[cmd].kind {
                OpKind::Read => self.stats.reads.record(lat),
                OpKind::Write => self.stats.writes.record(lat),
                OpKind::Trim => {}
            }
            self.stats.queue_wait.record(rec.dispatched_ns - rec.wanted_ns);
            if traced {
                let (submitted, queue) = (rec.submitted_ns, rec.queue as u32);
                self.ssd.tracer_mut().span(
                    Track::Queue { pair: queue },
                    "cmd",
                    submitted,
                    now,
                    &[("req", cmd as u64)],
                );
            }
        }
        if traced {
            self.ssd.tracer_mut().instant(
                Track::Queue { pair: q as u32 },
                "irq",
                now,
                &[("reaped", reaped.len() as u64)],
            );
        }
        // Refill freed slots.
        while self.queues[q].occupancy() < self.cfg.queue_depth as usize {
            if let Some(cmd) = self.queues[q].backlog.pop_front() {
                self.submit(cmd, q, now);
            } else if self.closed && self.cursor < self.trace.requests.len() {
                let i = self.cursor;
                self.cursor += 1;
                self.cmds[i].wanted_ns = now;
                self.submit(i, q, now);
            } else {
                break;
            }
        }
    }

    /// Idle-window GC: when nothing is queued, in flight, or backlogged
    /// anywhere — and no event fires at this very instant — run one
    /// preemptible GC quantum and chain a [`Ev::Pump`] at its completion.
    /// An arriving command naturally queues behind the in-progress slice
    /// on the die timelines: the quantum is the preemption granularity.
    fn maybe_pump(&mut self, now: Nanos) {
        if !self.cfg.gc_pump || self.pump_pending {
            return;
        }
        let idle = self
            .queues
            .iter()
            .all(|p| p.occupancy() == 0 && p.backlog.is_empty());
        if !idle || self.events.peek_time().is_some_and(|t| t <= now) {
            return;
        }
        if let Some(end) = self.ssd.gc_pump(now) {
            self.stats.pump_slices += 1;
            self.events.push(end, Ev::Pump);
            self.pump_pending = true;
        }
    }
}
