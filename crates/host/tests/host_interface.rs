//! Integration tests for the multi-queue host interface: the passthrough
//! identity with the synchronous replay path, closed-loop QD=1 equivalence,
//! determinism, coalescing, backpressure, and the idle GC pump.

use cagc_core::{CmdStatus, Scheme, Ssd, SsdConfig};
use cagc_flash::FaultConfig;
use cagc_harness::ToJson;
use cagc_host::{ConfigError, HostConfig, HostInterface, HostReport};
use cagc_workloads::{Request, SynthConfig, Trace};

fn churn_trace(seed: u64, requests: usize, mean_interarrival_ns: u64) -> Trace {
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    SynthConfig {
        name: "churn".into(),
        requests,
        logical_pages: (flash.logical_pages() as f64 * 0.93) as u64,
        write_ratio: 0.8,
        dedup_ratio: 0.4,
        mean_req_pages: 2.5,
        max_req_pages: 8,
        mean_interarrival_ns,
        seed,
        ..Default::default()
    }
    .generate()
}

/// The passthrough shape (one pair, unbounded depth, zero costs) feeds the
/// device the exact sequence `Ssd::replay` would: the device-side report
/// must be byte-identical, for every scheme.
#[test]
fn passthrough_open_loop_matches_synchronous_replay() {
    let trace = churn_trace(11, 6_000, 200_000);
    for scheme in Scheme::EXTENDED {
        let mut sync = Ssd::new(SsdConfig::tiny(scheme));
        let want = sync.replay(&trace).to_json().render();

        let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(scheme)), HostConfig::passthrough());
        let report = host.replay_open_loop(&trace);
        host.ssd().audit().expect("audit after passthrough replay");
        assert_eq!(
            report.device.to_json().render(),
            want,
            "{} passthrough diverged from Ssd::replay",
            scheme.name()
        );
        assert_eq!(report.backlogged, 0, "unbounded depth never backlogs");
        assert_eq!(report.all.count, trace.requests.len() as u64);
    }
}

/// Closed-loop QD=1 with zero interface costs is the synchronous chain
/// `t = process(at = t)`: each command issued the instant its predecessor
/// completes.
#[test]
fn closed_loop_qd1_matches_sequential_reference() {
    let trace = churn_trace(13, 6_000, 200_000);
    let mut reference = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
    let mut t = 0;
    for r in &trace.requests {
        t = reference.process(&Request { at_ns: t, ..r.clone() });
    }
    let want = reference.report(&trace.name).to_json().render();

    let mut cfg = HostConfig::passthrough();
    cfg.queue_depth = 1;
    let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), cfg);
    let report = host.replay_closed_loop(&trace);
    host.ssd().audit().expect("audit after closed-loop replay");
    assert_eq!(report.device.to_json().render(), want);
    assert_eq!(report.end_ns, t, "last reap is the last completion");
}

/// Same trace, same config, preemptible GC and the realistic NVMe shape:
/// two runs must produce byte-identical host reports.
#[test]
fn multi_queue_replay_is_deterministic() {
    let trace = churn_trace(17, 6_000, 50_000);
    let run = || {
        let mut dev = SsdConfig::tiny(Scheme::Cagc);
        dev.gc_preempt = true;
        dev.gc_slice_pages = 4;
        let mut host = HostInterface::new(Ssd::new(dev), HostConfig::nvme(2, 8));
        let r = host.replay_closed_loop(&trace);
        host.ssd().audit().expect("audit after nvme replay");
        r.to_json().render()
    };
    assert_eq!(run(), run());
}

/// With coalescing depth > 1, completions are delivered in bursts: fewer
/// interrupts than commands.
#[test]
fn coalescing_reduces_interrupts() {
    let trace = churn_trace(19, 4_000, 200_000);
    let mut cfg = HostConfig::passthrough();
    cfg.queue_depth = 8;
    cfg.coalesce_depth = 4;
    cfg.coalesce_ns = 8_000;
    let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), cfg);
    let report = host.replay_closed_loop(&trace);
    assert_eq!(report.all.count, trace.requests.len() as u64);
    assert!(
        report.irqs < report.all.count,
        "coalescing fired {} irqs for {} commands",
        report.irqs,
        report.all.count
    );
}

/// Open-loop arrivals faster than the device can serve, into a single
/// depth-1 pair: the backlog must absorb them and every command must still
/// be reaped with its latency counted from arrival.
#[test]
fn shallow_queue_backpressure_backlogs_arrivals() {
    let trace = churn_trace(23, 4_000, 500);
    let mut cfg = HostConfig::passthrough();
    cfg.queue_depth = 1;
    let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), cfg);
    let report = host.replay_open_loop(&trace);
    host.ssd().audit().expect("audit after backpressure replay");
    assert!(report.backlogged > 0, "depth-1 queue under overload must backlog");
    assert_eq!(report.all.count, trace.requests.len() as u64);
    assert!(
        report.queue_wait.max_ns > 0,
        "backlogged commands wait before dispatch"
    );
}

/// Four pairs share the load; everything completes and peak occupancy
/// exceeds what one pair could hold.
#[test]
fn commands_spread_across_pairs() {
    let trace = churn_trace(29, 4_000, 200_000);
    let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), HostConfig::nvme(4, 4));
    let report = host.replay_closed_loop(&trace);
    host.ssd().audit().expect("audit after 4-pair replay");
    assert_eq!(report.all.count, trace.requests.len() as u64);
    assert!(
        report.peak_occupancy > 4,
        "four pairs at depth 4 should exceed one pair's worth of slots (peak {})",
        report.peak_occupancy
    );
}

/// A tiny device with a hot fault plan: injected ECC and program failures
/// plus a cranked unrecoverable probability, so host commands actually
/// complete with error statuses.
fn faulty_config(seed: u64) -> SsdConfig {
    let mut cfg = SsdConfig::tiny(Scheme::Cagc);
    cfg.faults = FaultConfig {
        program_fail_prob: 0.05,
        read_ecc_prob: 0.2,
        unrecoverable_prob: 0.5,
        seed,
        ..FaultConfig::none()
    };
    cfg
}

/// The QD=1 byte-identity gate extended to the faulty regime: with
/// unrecoverable faults armed and the resilience policy disabled,
/// closed-loop QD=1 through the passthrough shape must match the direct
/// sequential `process_status` chain — byte-identical device report and
/// identical surfaced-error counters, status by status.
#[test]
fn closed_loop_qd1_matches_sequential_reference_under_faults() {
    let trace = churn_trace(37, 5_000, 200_000);
    let mut reference = Ssd::new(faulty_config(41));
    let mut t = 0;
    let (mut media, mut wfault, mut wprot) = (0u64, 0u64, 0u64);
    for r in &trace.requests {
        let c = reference
            .process_status(&Request { at_ns: t, ..r.clone() })
            .expect("no crash configured");
        t = c.end_ns;
        match c.status {
            CmdStatus::MediaReadError => media += 1,
            CmdStatus::WriteFault => wfault += 1,
            CmdStatus::WriteProtected => wprot += 1,
            CmdStatus::Success => {}
        }
    }
    let want = reference.report(&trace.name).to_json().render();
    assert!(media + wfault > 0, "fault plan too mild to exercise the gate");

    let mut cfg = HostConfig::passthrough();
    cfg.queue_depth = 1;
    let mut host = HostInterface::new(Ssd::new(faulty_config(41)), cfg);
    let report = host.replay_closed_loop(&trace);
    host.ssd().audit().expect("audit after faulty closed-loop replay");
    assert_eq!(report.device.to_json().render(), want);
    assert_eq!(report.resilience.media_read_errors, media);
    assert_eq!(report.resilience.write_faults, wfault);
    assert_eq!(report.resilience.write_protected, wprot);
    assert_eq!(report.resilience.retries, 0, "policy disabled: no retries");
    assert_eq!(report.end_ns, t, "last reap is the last completion");
}

/// The armed retry policy re-issues retryable error completions and
/// recovers most of them (a re-read rarely needs the heroic decode again),
/// and stays deterministic with jitter drawn from the seeded stream.
#[test]
fn retry_policy_recovers_errors_and_stays_deterministic() {
    let trace = churn_trace(41, 5_000, 200_000);
    let run = |resilient: bool| -> HostReport {
        let mut cfg = HostConfig::passthrough();
        cfg.queue_depth = 1;
        if resilient {
            cfg = cfg.with_resilience(0, 4, 10_000, 2_000, 9);
        }
        let mut host = HostInterface::new(Ssd::new(faulty_config(43)), cfg);
        let r = host.replay_closed_loop(&trace);
        host.ssd().audit().expect("audit after resilient replay");
        r
    };
    let surfaced = |r: &HostReport| {
        r.resilience.media_read_errors + r.resilience.write_faults + r.resilience.write_protected
    };
    let plain = run(false);
    assert!(surfaced(&plain) > 0, "fault plan too mild to exercise retries");
    let resilient = run(true);
    assert!(resilient.resilience.retries > 0, "errors must trigger retries");
    assert!(
        surfaced(&resilient) < surfaced(&plain),
        "retries should recover errors ({} surfaced with policy, {} without)",
        surfaced(&resilient),
        surfaced(&plain)
    );
    assert_eq!(
        run(true).to_json().render(),
        resilient.to_json().render(),
        "resilient replay (incl. jitter stream) must be deterministic"
    );
}

/// A deadline shorter than any backoff turns every would-be retry into an
/// abort, and completions landing past it count as timeouts.
#[test]
fn deadline_aborts_retries_and_counts_timeouts() {
    let trace = churn_trace(43, 5_000, 200_000);
    let mut cfg = HostConfig::passthrough();
    cfg.queue_depth = 1;
    cfg = cfg.with_resilience(1, 4, 10_000_000, 0, 9);
    let mut host = HostInterface::new(Ssd::new(faulty_config(47)), cfg);
    let report = host.replay_closed_loop(&trace);
    host.ssd().audit().expect("audit after deadline replay");
    let r = &report.resilience;
    assert!(r.aborts > 0, "every retryable error should abort on the 1ns deadline");
    assert_eq!(r.retries, 0, "no retry fits inside a 1ns deadline");
    assert!(r.timeouts > 0, "completions past the deadline count as timeouts");
    assert!(
        r.media_read_errors + r.write_faults > 0,
        "aborted commands surface their last error status"
    );
    assert_eq!(report.all.count, trace.requests.len() as u64, "aborts still complete");
}

/// An armed resilience policy on a fault-free device never fires — no
/// retries, no PRNG draws, no extra events — so the host report is
/// byte-identical to a run without it.
#[test]
fn armed_resilience_is_invisible_on_fault_free_runs() {
    let trace = churn_trace(47, 5_000, 100_000);
    let run = |cfg: HostConfig| {
        let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), cfg);
        host.replay_closed_loop(&trace).to_json().render()
    };
    // The deadline must sit above the fault-free tail (timeouts are
    // counted even without faults — deadline pressure is observable); one
    // simulated second clears it by orders of magnitude.
    let base = HostConfig::nvme(2, 8);
    let armed = base.clone().with_resilience(1_000_000_000, 3, 50_000, 10_000, 7);
    assert_eq!(run(base), run(armed), "armed policy must be invisible without faults");
}

/// Malformed host configs come back as reportable errors from `try_new`;
/// only the panicking convenience constructor aborts.
#[test]
fn malformed_config_is_reported_not_panicked() {
    let mut cfg = HostConfig::passthrough();
    cfg.max_retries = 1; // retries with no backoff would spin in place
    let err = HostInterface::try_new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), cfg)
        .err()
        .expect("validation must fail");
    assert_eq!(err, ConfigError::RetryWithoutBackoff);
}

/// With preemptible GC on the device and the pump enabled, an open-loop
/// trace with wide idle gaps lets the host reclaim space between bursts.
#[test]
fn idle_windows_pump_preemptible_gc() {
    let trace = churn_trace(31, 8_000, 400_000);
    let mut dev = SsdConfig::tiny(Scheme::Cagc);
    dev.gc_preempt = true;
    dev.gc_slice_pages = 4;
    let mut cfg = HostConfig::nvme(1, 8);
    cfg.gc_pump = true;
    let mut host = HostInterface::new(Ssd::new(dev), cfg);
    let report = host.replay_open_loop(&trace);
    host.ssd().audit().expect("audit after pumped replay");
    assert!(
        report.pump_slices > 0,
        "idle windows on a churning device should pump GC quanta"
    );
}
