//! Integration tests for the multi-queue host interface: the passthrough
//! identity with the synchronous replay path, closed-loop QD=1 equivalence,
//! determinism, coalescing, backpressure, and the idle GC pump.

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_harness::ToJson;
use cagc_host::{HostConfig, HostInterface};
use cagc_workloads::{Request, SynthConfig, Trace};

fn churn_trace(seed: u64, requests: usize, mean_interarrival_ns: u64) -> Trace {
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    SynthConfig {
        name: "churn".into(),
        requests,
        logical_pages: (flash.logical_pages() as f64 * 0.93) as u64,
        write_ratio: 0.8,
        dedup_ratio: 0.4,
        mean_req_pages: 2.5,
        max_req_pages: 8,
        mean_interarrival_ns,
        seed,
        ..Default::default()
    }
    .generate()
}

/// The passthrough shape (one pair, unbounded depth, zero costs) feeds the
/// device the exact sequence `Ssd::replay` would: the device-side report
/// must be byte-identical, for every scheme.
#[test]
fn passthrough_open_loop_matches_synchronous_replay() {
    let trace = churn_trace(11, 6_000, 200_000);
    for scheme in Scheme::EXTENDED {
        let mut sync = Ssd::new(SsdConfig::tiny(scheme));
        let want = sync.replay(&trace).to_json().render();

        let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(scheme)), HostConfig::passthrough());
        let report = host.replay_open_loop(&trace);
        host.ssd().audit().expect("audit after passthrough replay");
        assert_eq!(
            report.device.to_json().render(),
            want,
            "{} passthrough diverged from Ssd::replay",
            scheme.name()
        );
        assert_eq!(report.backlogged, 0, "unbounded depth never backlogs");
        assert_eq!(report.all.count, trace.requests.len() as u64);
    }
}

/// Closed-loop QD=1 with zero interface costs is the synchronous chain
/// `t = process(at = t)`: each command issued the instant its predecessor
/// completes.
#[test]
fn closed_loop_qd1_matches_sequential_reference() {
    let trace = churn_trace(13, 6_000, 200_000);
    let mut reference = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
    let mut t = 0;
    for r in &trace.requests {
        t = reference.process(&Request { at_ns: t, ..r.clone() });
    }
    let want = reference.report(&trace.name).to_json().render();

    let mut cfg = HostConfig::passthrough();
    cfg.queue_depth = 1;
    let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), cfg);
    let report = host.replay_closed_loop(&trace);
    host.ssd().audit().expect("audit after closed-loop replay");
    assert_eq!(report.device.to_json().render(), want);
    assert_eq!(report.end_ns, t, "last reap is the last completion");
}

/// Same trace, same config, preemptible GC and the realistic NVMe shape:
/// two runs must produce byte-identical host reports.
#[test]
fn multi_queue_replay_is_deterministic() {
    let trace = churn_trace(17, 6_000, 50_000);
    let run = || {
        let mut dev = SsdConfig::tiny(Scheme::Cagc);
        dev.gc_preempt = true;
        dev.gc_slice_pages = 4;
        let mut host = HostInterface::new(Ssd::new(dev), HostConfig::nvme(2, 8));
        let r = host.replay_closed_loop(&trace);
        host.ssd().audit().expect("audit after nvme replay");
        r.to_json().render()
    };
    assert_eq!(run(), run());
}

/// With coalescing depth > 1, completions are delivered in bursts: fewer
/// interrupts than commands.
#[test]
fn coalescing_reduces_interrupts() {
    let trace = churn_trace(19, 4_000, 200_000);
    let mut cfg = HostConfig::passthrough();
    cfg.queue_depth = 8;
    cfg.coalesce_depth = 4;
    cfg.coalesce_ns = 8_000;
    let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), cfg);
    let report = host.replay_closed_loop(&trace);
    assert_eq!(report.all.count, trace.requests.len() as u64);
    assert!(
        report.irqs < report.all.count,
        "coalescing fired {} irqs for {} commands",
        report.irqs,
        report.all.count
    );
}

/// Open-loop arrivals faster than the device can serve, into a single
/// depth-1 pair: the backlog must absorb them and every command must still
/// be reaped with its latency counted from arrival.
#[test]
fn shallow_queue_backpressure_backlogs_arrivals() {
    let trace = churn_trace(23, 4_000, 500);
    let mut cfg = HostConfig::passthrough();
    cfg.queue_depth = 1;
    let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), cfg);
    let report = host.replay_open_loop(&trace);
    host.ssd().audit().expect("audit after backpressure replay");
    assert!(report.backlogged > 0, "depth-1 queue under overload must backlog");
    assert_eq!(report.all.count, trace.requests.len() as u64);
    assert!(
        report.queue_wait.max_ns > 0,
        "backlogged commands wait before dispatch"
    );
}

/// Four pairs share the load; everything completes and peak occupancy
/// exceeds what one pair could hold.
#[test]
fn commands_spread_across_pairs() {
    let trace = churn_trace(29, 4_000, 200_000);
    let mut host = HostInterface::new(Ssd::new(SsdConfig::tiny(Scheme::Cagc)), HostConfig::nvme(4, 4));
    let report = host.replay_closed_loop(&trace);
    host.ssd().audit().expect("audit after 4-pair replay");
    assert_eq!(report.all.count, trace.requests.len() as u64);
    assert!(
        report.peak_occupancy > 4,
        "four pairs at depth 4 should exceed one pair's worth of slots (peak {})",
        report.peak_occupancy
    );
}

/// With preemptible GC on the device and the pump enabled, an open-loop
/// trace with wide idle gaps lets the host reclaim space between bursts.
#[test]
fn idle_windows_pump_preemptible_gc() {
    let trace = churn_trace(31, 8_000, 400_000);
    let mut dev = SsdConfig::tiny(Scheme::Cagc);
    dev.gc_preempt = true;
    dev.gc_slice_pages = 4;
    let mut cfg = HostConfig::nvme(1, 8);
    cfg.gc_pump = true;
    let mut host = HostInterface::new(Ssd::new(dev), cfg);
    let report = host.replay_open_loop(&trace);
    host.ssd().audit().expect("audit after pumped replay");
    assert!(
        report.pump_slices > 0,
        "idle windows on a churning device should pump GC quanta"
    );
}
