//! Region-aware free-block allocation.
//!
//! The allocator owns the free-block pool and one open *write frontier*
//! per region: [`Region::Host`] for foreground writes (kept separate so
//! user programs never queue behind migration bursts), [`Region::Hot`]
//! for GC-migrated pages with refcount ≤ threshold, and [`Region::Cold`]
//! for high-refcount pages (CAGC's Sec. III-C placement). Baseline and
//! the inline schemes simply never open the GC-cold frontier.
//!
//! A small **GC reserve** of free blocks is withheld from foreground
//! allocation so that garbage collection always has somewhere to migrate
//! valid pages to — the classic FTL deadlock guard.

use cagc_flash::BlockId;
use std::collections::VecDeque;

/// Placement region for a write frontier.
///
/// Real FTLs keep the host active block separate from the GC active block
/// so migrations don't serialize behind foreground programs; CAGC splits
/// the GC side further into hot and cold by reference count (Sec. III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Foreground (host) writes.
    Host,
    /// GC-migrated pages with refcount ≤ threshold (frequently updated).
    Hot,
    /// GC-migrated pages with refcount > threshold (rarely invalidated).
    Cold,
}

impl Region {
    const COUNT: usize = 3;

    #[inline]
    fn idx(self) -> usize {
        match self {
            Region::Host => 0,
            Region::Hot => 1,
            Region::Cold => 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenBlock {
    block: BlockId,
    used: u32,
}

/// Free-block pool plus per-region write frontiers.
#[derive(Debug, Clone)]
pub struct Allocator {
    free: VecDeque<BlockId>,
    open: [Option<OpenBlock>; Region::COUNT],
    region_of: Vec<Option<Region>>,
    pages_per_block: u32,
    total_blocks: u32,
    gc_reserve: u32,
    /// Blocks retired to the device's bad-block table (erase failures).
    /// They never re-enter the free pool and shrink the usable device.
    retired: Vec<bool>,
    retired_count: u32,
}

impl Allocator {
    /// All `total_blocks` blocks start free; `gc_reserve` of them are
    /// withheld from foreground allocation.
    ///
    /// # Panics
    /// Panics if the reserve eats the whole device.
    pub fn new(total_blocks: u32, pages_per_block: u32, gc_reserve: u32) -> Self {
        Self::with_block_order((0..total_blocks).collect(), pages_per_block, gc_reserve)
    }

    /// Like [`Allocator::new`], but the free pool is initialized in the
    /// given order. FTLs interleave blocks across dies here so consecutive
    /// frontier blocks (and therefore writes, migrations and erases) spread
    /// over the device's parallel units instead of hammering one die.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..len`, or if the
    /// reserve eats the whole device.
    pub fn with_block_order(order: Vec<BlockId>, pages_per_block: u32, gc_reserve: u32) -> Self {
        let total_blocks = order.len() as u32;
        assert!(
            gc_reserve + 2 < total_blocks,
            "gc_reserve {gc_reserve} leaves no usable blocks out of {total_blocks}"
        );
        let mut seen = vec![false; order.len()];
        for &b in &order {
            assert!(
                (b as usize) < order.len() && !std::mem::replace(&mut seen[b as usize], true),
                "block order is not a permutation (block {b})"
            );
        }
        Self {
            free: order.into(),
            open: [None; Region::COUNT],
            region_of: vec![None; total_blocks as usize],
            pages_per_block,
            total_blocks,
            gc_reserve,
            retired: vec![false; total_blocks as usize],
            retired_count: 0,
        }
    }

    /// Rebuild an allocator from post-crash durable facts: the free pool
    /// is exactly `free_order` (already die-interleaved and filtered to
    /// erased, non-retired blocks by the recovery pass), `retired` lists
    /// the device's bad-block table, and every write frontier starts
    /// closed — partially written blocks simply wait for GC.
    ///
    /// # Panics
    /// Panics if a free block is also retired, or a block id is out of
    /// range.
    pub fn recovered(
        total_blocks: u32,
        pages_per_block: u32,
        gc_reserve: u32,
        free_order: Vec<BlockId>,
        retired: &[BlockId],
    ) -> Self {
        let mut a = Self {
            free: VecDeque::new(),
            open: [None; Region::COUNT],
            region_of: vec![None; total_blocks as usize],
            pages_per_block,
            total_blocks,
            gc_reserve,
            retired: vec![false; total_blocks as usize],
            retired_count: 0,
        };
        for &b in retired {
            assert!(b < total_blocks, "retired block {b} out of range");
            a.retired[b as usize] = true;
        }
        a.retired_count = retired.len() as u32;
        for &b in &free_order {
            assert!(
                b < total_blocks && !a.retired[b as usize],
                "free block {b} invalid or retired"
            );
        }
        a.free = free_order.into();
        a
    }

    /// The canonical die-interleaved order: block `i` of die 0, block `i`
    /// of die 1, …, for `i = 0, 1, …`.
    pub fn die_interleaved_order(total_blocks: u32, blocks_per_die: u32) -> Vec<BlockId> {
        assert!(blocks_per_die > 0 && total_blocks.is_multiple_of(blocks_per_die));
        let dies = total_blocks / blocks_per_die;
        let mut order = Vec::with_capacity(total_blocks as usize);
        for i in 0..blocks_per_die {
            for d in 0..dies {
                order.push(d * blocks_per_die + i);
            }
        }
        order
    }

    /// Number of blocks currently in the free pool (open frontiers are not
    /// free).
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Programmable pages still available right now: every page of the
    /// free pool plus the unwritten tail of each open frontier. This is
    /// the "free pages" gauge the telemetry layer samples — unlike
    /// [`Allocator::free_fraction`] it moves on every single program, so
    /// a trace shows GC rounds as sawtooth refills.
    pub fn free_pages(&self) -> u64 {
        let frontier_tail: u64 = self
            .open
            .iter()
            .flatten()
            .map(|o| u64::from(self.pages_per_block - o.used))
            .sum();
        self.free.len() as u64 * u64::from(self.pages_per_block) + frontier_tail
    }

    /// Free fraction of the device: free pool / usable blocks. This is
    /// the quantity compared against the GC watermark (Table I: 20 %).
    /// Retired blocks leave the denominator — capacity the device lost is
    /// not capacity GC can reclaim — so with no retirements this is
    /// exactly free pool / total blocks.
    pub fn free_fraction(&self) -> f64 {
        self.free.len() as f64 / self.usable_blocks() as f64
    }

    /// The region a block was opened under, if any. Blocks keep their tag
    /// until erased (released).
    pub fn region_of(&self, block: BlockId) -> Option<Region> {
        self.region_of[block as usize]
    }

    /// Whether `block` is one of the open write frontiers (never a GC
    /// victim: it still has free pages being filled). A frontier that has
    /// been completely filled counts as closed — it will be rotated out on
    /// the next allocation and is already a legitimate GC victim.
    pub fn is_open(&self, block: BlockId) -> bool {
        self.open
            .iter()
            .flatten()
            .any(|o| o.block == block && o.used < self.pages_per_block)
    }

    /// Pick the block the next page write in `region` must go to, advancing
    /// the frontier. `for_gc` allocations may dig into the GC reserve;
    /// foreground allocations may not (the caller must trigger GC instead).
    ///
    /// Returns `None` when the appropriate pool is exhausted.
    pub fn alloc_page(&mut self, region: Region, for_gc: bool) -> Option<BlockId> {
        let slot = region.idx();
        // Rotate the frontier if missing or full.
        let need_new = match self.open[slot] {
            None => true,
            Some(o) => o.used == self.pages_per_block,
        };
        if need_new {
            let floor = if for_gc { 0 } else { self.gc_reserve as usize };
            if self.free.len() <= floor {
                return None;
            }
            let block = self.free.pop_front().expect("checked non-empty");
            self.region_of[block as usize] = Some(region);
            self.open[slot] = Some(OpenBlock { block, used: 0 });
        }
        let o = self.open[slot].as_mut().expect("frontier just ensured");
        o.used += 1;
        Some(o.block)
    }

    /// Return an erased block to the free pool and clear its region tag.
    ///
    /// # Panics
    /// Panics if the block is an open frontier (erasing the frontier is an
    /// FTL logic bug); double-release (already in the free pool) is checked
    /// in debug builds only — the containment scan of the free queue is
    /// measurable on the GC hot path and the invariant is exercised by the
    /// test suite.
    pub fn release(&mut self, block: BlockId) {
        assert!(!self.is_open(block), "releasing open frontier block {block}");
        debug_assert!(
            !self.free.contains(&block),
            "double release of block {block}"
        );
        self.region_of[block as usize] = None;
        self.free.push_back(block);
    }

    /// Whether foreground allocation is currently possible without GC.
    pub fn can_alloc_foreground(&self) -> bool {
        let frontier_has_room = self.open[Region::Host.idx()]
            .map(|o| o.used < self.pages_per_block)
            .unwrap_or(false);
        frontier_has_room || self.free.len() > self.gc_reserve as usize
    }

    /// Total blocks the allocator manages.
    pub fn total_blocks(&self) -> u32 {
        self.total_blocks
    }

    /// The configured GC reserve.
    pub fn gc_reserve(&self) -> u32 {
        self.gc_reserve
    }

    /// Account a block retired to the device's bad-block table after an
    /// erase failure: it never returns to the free pool and the usable
    /// device shrinks by one block.
    ///
    /// # Panics
    /// Panics if the block is an open frontier, still in the free pool
    /// (retirement only happens to erase victims), or already retired.
    pub fn retire(&mut self, block: BlockId) {
        assert!(!self.is_open(block), "retiring open frontier block {block}");
        assert!(!self.free.contains(&block), "retiring free block {block}");
        assert!(
            !std::mem::replace(&mut self.retired[block as usize], true),
            "double retirement of block {block}"
        );
        self.region_of[block as usize] = None;
        self.retired_count += 1;
    }

    /// Blocks retired so far.
    pub fn retired_count(&self) -> u32 {
        self.retired_count
    }

    /// Blocks still usable: total minus retired.
    pub fn usable_blocks(&self) -> u32 {
        self.total_blocks - self.retired_count
    }

    /// Close the open frontier of `region` (if any) without filling it:
    /// the next allocation in that region rotates to a fresh block. The
    /// program-failure retry policy calls this so the retry lands on a
    /// different block — re-programming the next page of a block that
    /// just failed a program is exactly what real FTLs avoid.
    pub fn close_frontier(&mut self, region: Region) {
        if let Some(o) = self.open[region.idx()].as_mut() {
            o.used = self.pages_per_block;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> Allocator {
        Allocator::new(16, 4, 2)
    }

    #[test]
    fn frontier_fills_then_rotates() {
        let mut a = alloc();
        let b0 = a.alloc_page(Region::Hot, false).unwrap();
        for _ in 0..3 {
            assert_eq!(a.alloc_page(Region::Hot, false), Some(b0));
        }
        // Block full: next alloc opens a new one.
        let b1 = a.alloc_page(Region::Hot, false).unwrap();
        assert_ne!(b0, b1);
        assert!(a.is_open(b1));
        assert!(!a.is_open(b0));
        assert_eq!(a.region_of(b0), Some(Region::Hot));
    }

    #[test]
    fn free_pages_counts_pool_and_frontier_tails() {
        let mut a = alloc();
        assert_eq!(a.free_pages(), 16 * 4);
        // Opening a frontier moves its block out of the pool but its
        // unwritten pages still count.
        a.alloc_page(Region::Hot, false).unwrap();
        assert_eq!(a.free_pages(), 16 * 4 - 1);
        a.alloc_page(Region::Hot, false).unwrap();
        assert_eq!(a.free_pages(), 16 * 4 - 2);
    }

    #[test]
    fn regions_have_independent_frontiers() {
        let mut a = alloc();
        let h = a.alloc_page(Region::Hot, false).unwrap();
        let c = a.alloc_page(Region::Cold, true).unwrap();
        assert_ne!(h, c);
        assert_eq!(a.region_of(h), Some(Region::Hot));
        assert_eq!(a.region_of(c), Some(Region::Cold));
        assert!(a.is_open(h) && a.is_open(c));
    }

    #[test]
    fn foreground_respects_gc_reserve() {
        let mut a = alloc(); // 16 blocks, reserve 2
        let mut opened = std::collections::HashSet::new();
        // Fill frontier blocks until foreground refuses.
        while let Some(b) = a.alloc_page(Region::Hot, false) {
            opened.insert(b);
        }
        // 14 blocks usable by foreground (16 - 2 reserve).
        assert_eq!(opened.len(), 14);
        assert_eq!(a.free_blocks(), 2);
        // GC can still allocate from the reserve.
        assert!(a.alloc_page(Region::Cold, true).is_some());
        assert_eq!(a.free_blocks(), 1);
    }

    #[test]
    fn release_recycles_blocks() {
        let mut a = alloc();
        let b0 = a.alloc_page(Region::Hot, false).unwrap();
        for _ in 0..3 {
            a.alloc_page(Region::Hot, false);
        }
        let before = a.free_blocks();
        a.release(b0);
        assert_eq!(a.free_blocks(), before + 1);
        assert_eq!(a.region_of(b0), None);
    }

    #[test]
    #[should_panic(expected = "open frontier")]
    fn releasing_open_frontier_panics() {
        let mut a = alloc();
        let b = a.alloc_page(Region::Hot, false).unwrap();
        a.release(b);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut a = alloc();
        let b0 = a.alloc_page(Region::Hot, false).unwrap();
        for _ in 0..3 {
            a.alloc_page(Region::Hot, false);
        }
        a.alloc_page(Region::Hot, false); // rotate so b0 is closed
        a.release(b0);
        a.release(b0);
    }

    #[test]
    fn free_fraction_tracks_pool() {
        let mut a = alloc();
        assert!((a.free_fraction() - 1.0).abs() < 1e-12);
        a.alloc_page(Region::Hot, false);
        assert!((a.free_fraction() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no usable blocks")]
    fn absurd_reserve_rejected() {
        Allocator::new(4, 4, 3);
    }

    #[test]
    fn retirement_shrinks_the_usable_device() {
        let mut a = alloc(); // 16 blocks, reserve 2
        let b0 = a.alloc_page(Region::Hot, false).unwrap();
        for _ in 0..3 {
            a.alloc_page(Region::Hot, false);
        }
        a.alloc_page(Region::Hot, false); // rotate so b0 is closed
        assert_eq!(a.usable_blocks(), 16);
        a.retire(b0);
        assert_eq!(a.retired_count(), 1);
        assert_eq!(a.usable_blocks(), 15);
        assert_eq!(a.region_of(b0), None);
        // free_fraction now divides by the shrunken device.
        assert!((a.free_fraction() - a.free_blocks() as f64 / 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "double retirement")]
    fn double_retirement_panics() {
        let mut a = alloc();
        let b0 = a.alloc_page(Region::Hot, false).unwrap();
        for _ in 0..4 {
            a.alloc_page(Region::Hot, false);
        }
        a.retire(b0);
        a.retire(b0);
    }

    #[test]
    fn close_frontier_forces_rotation() {
        let mut a = alloc();
        let b0 = a.alloc_page(Region::Host, false).unwrap();
        assert!(a.is_open(b0));
        a.close_frontier(Region::Host);
        assert!(!a.is_open(b0), "closed frontier is no longer open");
        let b1 = a.alloc_page(Region::Host, false).unwrap();
        assert_ne!(b0, b1, "retry must land on a fresh block");
        // Closing a region with no frontier is a no-op.
        a.close_frontier(Region::Cold);
    }

    #[test]
    fn recovered_allocator_starts_from_durable_facts() {
        let a = Allocator::recovered(16, 4, 2, vec![5, 9, 1], &[3, 7]);
        assert_eq!(a.free_blocks(), 3);
        assert_eq!(a.retired_count(), 2);
        assert_eq!(a.usable_blocks(), 14);
        assert_eq!(a.region_of(5), None);
        assert!(!a.is_open(5));
        assert!((a.free_fraction() - 3.0 / 14.0).abs() < 1e-12);
        let mut a = a;
        // First allocation pops the recovered order.
        assert_eq!(a.alloc_page(Region::Host, true), Some(5));
    }

    #[test]
    #[should_panic(expected = "invalid or retired")]
    fn recovered_rejects_retired_free_blocks() {
        Allocator::recovered(16, 4, 2, vec![3], &[3]);
    }
}
