//! Victim-block selection policies (Sec. II-C, Sec. IV-C).
//!
//! The paper evaluates CAGC under three victim-selection algorithms:
//!
//! * **Random** — uniformly random among blocks holding invalid pages
//!   (cheap, naturally wear-even) \[29\];
//! * **Greedy** — the block with the most invalid pages \[10\]; the paper's
//!   default for all main experiments;
//! * **Cost-Benefit** — maximize `age × (1 − u) / 2u` where `u` is the
//!   valid-page utilization (Kawaguchi et al. \[16\]), trading reclaim
//!   efficiency against block age/wear.
//!
//! Policies are pure over a candidate snapshot, so the same policy objects
//! drive any scheme; determinism comes from seeded RNG and stable
//! tie-breaking (most trimmed pages, then lowest erase count, then lowest
//! block id). The trimmed-page tie-break makes greedy-family policies
//! trim-aware: among equally-invalid blocks, prefer the one whose garbage
//! is host-deallocated (stable) over one that merely got overwritten and
//! may keep accumulating invalid pages if deferred.

use cagc_flash::BlockId;
use cagc_sim::time::Nanos;
use cagc_sim::SimRng;

/// Snapshot of one candidate block at selection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCandidate {
    /// The block.
    pub block: BlockId,
    /// Currently valid pages (these must be migrated).
    pub valid: u32,
    /// Invalid pages (this is what erasing reclaims beyond free ones).
    pub invalid: u32,
    /// Invalid pages whose invalidation came from a host trim (always
    /// ≤ `invalid`). Trim garbage is *stable*: a trimmed page can never
    /// turn valid again, whereas an overwrite-hot block keeps gaining
    /// invalid pages if collection is deferred — so among equally-invalid
    /// blocks, the one with more trimmed pages is the better victim.
    pub trimmed: u32,
    /// Never-written pages stranded behind a closed write pointer. Zero in
    /// fault-free operation (frontiers close only when full), but program
    /// failures abandon suspect blocks mid-write and recovery re-closes
    /// every frontier, and those pages come back only through an erase —
    /// so they count toward the reclaim gain exactly like invalid ones.
    pub stranded: u32,
    /// Pages per block (for utilization).
    pub pages: u32,
    /// Times the block has been erased.
    pub erase_count: u32,
    /// Last time the block was written/invalidated.
    pub last_modified: Nanos,
}

/// Which victim-selection algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimKind {
    /// Uniform random over candidates.
    Random,
    /// Most invalid pages first (paper default).
    Greedy,
    /// Kawaguchi cost-benefit: `age (1-u) / 2u`.
    CostBenefit,
    /// Oldest block first (by last modification) — the log-structured
    /// baseline; cheap and naturally wear-even, but blind to utilization.
    Fifo,
    /// Power-of-d-choices greedy: sample `D_CHOICES` random candidates and
    /// take the most invalid. O(d) instead of O(n) per selection with
    /// near-greedy reclaim efficiency — the practical compromise used by
    /// production FTLs with very large block counts.
    DChoices,
}

impl VictimKind {
    /// The three algorithms the paper evaluates, in the order Fig. 13
    /// presents them.
    pub const ALL: [VictimKind; 3] =
        [VictimKind::Random, VictimKind::Greedy, VictimKind::CostBenefit];

    /// Every implemented algorithm (paper's three plus extensions).
    pub const EXTENDED: [VictimKind; 5] = [
        VictimKind::Random,
        VictimKind::Greedy,
        VictimKind::CostBenefit,
        VictimKind::Fifo,
        VictimKind::DChoices,
    ];

    /// Sample size for [`VictimKind::DChoices`].
    pub const D_CHOICES: usize = 8;

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            VictimKind::Random => "Random",
            VictimKind::Greedy => "Greedy",
            VictimKind::CostBenefit => "Cost-Benefit",
            VictimKind::Fifo => "FIFO",
            VictimKind::DChoices => "D-Choices",
        }
    }
}

/// A stateful victim selector (Random carries its RNG).
#[derive(Debug, Clone)]
pub struct VictimSelector {
    kind: VictimKind,
    rng: SimRng,
    /// Scratch buffer for the sampling policies in
    /// [`VictimSelector::select_streaming`] (Random and D-Choices need the
    /// whole candidate set materialized for index draws; the deterministic
    /// policies fold the stream without it).
    scratch: Vec<VictimCandidate>,
}

impl VictimSelector {
    /// A selector of the given kind; `seed` only matters for `Random`.
    pub fn new(kind: VictimKind, seed: u64) -> Self {
        Self { kind, rng: SimRng::seed_from_u64(seed), scratch: Vec::new() }
    }

    /// The algorithm this selector runs.
    pub fn kind(&self) -> VictimKind {
        self.kind
    }

    /// Choose a victim among `candidates` (each must have `invalid > 0`;
    /// callers pre-filter). Returns `None` when there is nothing to reclaim.
    pub fn select(&mut self, candidates: &[VictimCandidate], now: Nanos) -> Option<BlockId> {
        if candidates.is_empty() {
            return None;
        }
        match self.kind {
            VictimKind::Random => {
                let i = self.rng.gen_range_usize(0..candidates.len());
                Some(candidates[i].block)
            }
            VictimKind::Greedy => candidates
                .iter()
                // max reclaim gain (invalid + stranded); ties: most trim
                // garbage (stable — deferring a trim-heavy block gains
                // nothing, while an overwrite-hot block grows more invalid
                // pages by waiting), then least-worn, then lowest id
                // (stable).
                .min_by_key(|c| {
                    (u32::MAX - (c.invalid + c.stranded), u32::MAX - c.trimmed, c.erase_count, c.block)
                })
                .map(|c| c.block),
            VictimKind::CostBenefit => candidates
                .iter()
                .map(|c| (Self::cost_benefit_score(c, now), c))
                // max score; ties broken deterministically by id.
                .min_by(|(sa, ca), (sb, cb)| {
                    sb.partial_cmp(sa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(ca.block.cmp(&cb.block))
                })
                .map(|(_, c)| c.block),
            VictimKind::Fifo => candidates
                .iter()
                .min_by_key(|c| (c.last_modified, c.block))
                .map(|c| c.block),
            VictimKind::DChoices => {
                let d = VictimKind::D_CHOICES.min(candidates.len());
                (0..d)
                    .map(|_| &candidates[self.rng.gen_range_usize(0..candidates.len())])
                    .min_by_key(|c| {
                        (u32::MAX - (c.invalid + c.stranded), u32::MAX - c.trimmed, c.erase_count, c.block)
                    })
                    .map(|c| c.block)
            }
        }
    }

    /// Choose a victim from a candidate *stream* without materializing it.
    ///
    /// Semantically identical to collecting the iterator into a slice and
    /// calling [`VictimSelector::select`] — same winner, same RNG draws —
    /// but the deterministic policies (Greedy, Cost-Benefit, FIFO) fold the
    /// stream in O(1) space. The sampling policies (Random, D-Choices) need
    /// indexed access for their draws, so they buffer the stream into a
    /// selector-owned scratch vector (amortized allocation-free).
    pub fn select_streaming(
        &mut self,
        candidates: impl Iterator<Item = VictimCandidate>,
        now: Nanos,
    ) -> Option<BlockId> {
        match self.kind {
            VictimKind::Greedy => candidates
                .min_by_key(|c| {
                    (u32::MAX - (c.invalid + c.stranded), u32::MAX - c.trimmed, c.erase_count, c.block)
                })
                .map(|c| c.block),
            VictimKind::CostBenefit => candidates
                .map(|c| (Self::cost_benefit_score(&c, now), c))
                .min_by(|(sa, ca), (sb, cb)| {
                    sb.partial_cmp(sa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(ca.block.cmp(&cb.block))
                })
                .map(|(_, c)| c.block),
            VictimKind::Fifo => {
                candidates.min_by_key(|c| (c.last_modified, c.block)).map(|c| c.block)
            }
            VictimKind::Random | VictimKind::DChoices => {
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                scratch.extend(candidates);
                let pick = self.select(&scratch, now);
                self.scratch = scratch;
                pick
            }
        }
    }

    /// Kawaguchi benefit/cost: `age * (1 - u) / (2u)`, with `u` the valid
    /// utilization. A block with zero valid pages is free to reclaim —
    /// score +∞.
    fn cost_benefit_score(c: &VictimCandidate, now: Nanos) -> f64 {
        let u = c.valid as f64 / c.pages as f64;
        if u == 0.0 {
            return f64::INFINITY;
        }
        let age = now.saturating_sub(c.last_modified) as f64 + 1.0;
        age * (1.0 - u) / (2.0 * u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(block: BlockId, valid: u32, invalid: u32, erases: u32, last: Nanos) -> VictimCandidate {
        VictimCandidate {
            block,
            valid,
            invalid,
            trimmed: 0,
            stranded: 0,
            pages: 64,
            erase_count: erases,
            last_modified: last,
        }
    }

    #[test]
    fn empty_candidates_give_none() {
        for kind in VictimKind::EXTENDED {
            let mut s = VictimSelector::new(kind, 1);
            assert_eq!(s.select(&[], 0), None);
        }
    }

    #[test]
    fn fifo_picks_the_oldest_block() {
        let mut s = VictimSelector::new(VictimKind::Fifo, 0);
        let cands = [cand(0, 10, 20, 0, 5_000), cand(1, 60, 4, 0, 1_000), cand(2, 5, 59, 0, 9_000)];
        // Block 1 is oldest despite being nearly full of valid data.
        assert_eq!(s.select(&cands, 10_000), Some(1));
    }

    #[test]
    fn d_choices_returns_a_candidate_and_tracks_greedy() {
        // Skewed invalid counts: d-choices should usually land near the
        // top of the distribution.
        let cands: Vec<VictimCandidate> = (0..200).map(|b| cand(b, 64 - (b % 65), b % 65, 0, 0)).collect();
        let mut s = VictimSelector::new(VictimKind::DChoices, 3);
        let mut total_invalid = 0u64;
        for _ in 0..200 {
            let pick = s.select(&cands, 0).expect("candidates exist");
            total_invalid += cands.iter().find(|c| c.block == pick).unwrap().invalid as u64;
        }
        let mean_pick = total_invalid as f64 / 200.0;
        let mean_all: f64 =
            cands.iter().map(|c| c.invalid as f64).sum::<f64>() / cands.len() as f64;
        assert!(
            mean_pick > mean_all * 1.5,
            "d-choices mean {mean_pick:.1} should beat uniform mean {mean_all:.1}"
        );
    }

    #[test]
    fn d_choices_is_seed_deterministic() {
        let cands: Vec<VictimCandidate> = (0..50).map(|b| cand(b, 32, 32, 0, 0)).collect();
        let run = |seed| {
            let mut s = VictimSelector::new(VictimKind::DChoices, seed);
            (0..20).map(|_| s.select(&cands, 0).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn greedy_picks_most_invalid() {
        let mut s = VictimSelector::new(VictimKind::Greedy, 0);
        let cands = [cand(0, 60, 4, 0, 0), cand(1, 2, 62, 0, 0), cand(2, 30, 34, 0, 0)];
        assert_eq!(s.select(&cands, 100), Some(1));
    }

    #[test]
    fn greedy_breaks_ties_by_wear_then_id() {
        let mut s = VictimSelector::new(VictimKind::Greedy, 0);
        let cands = [cand(5, 10, 20, 7, 0), cand(3, 10, 20, 2, 0), cand(4, 10, 20, 2, 0)];
        assert_eq!(s.select(&cands, 0), Some(3)); // least worn, lowest id
    }

    #[test]
    fn d_choices_breaks_ties_by_wear_like_greedy() {
        // All candidates tie on invalid and trimmed counts; block 3 is the
        // only low-wear block. D-choices samples with replacement, so block
        // 3 is in the sample ~67 % of the time (1 − (4/5)^5) — and whenever
        // it is, the wear tie-break must make it win. Far above the 20 %
        // a wear-blind tie-break (uniform over the sample) would give.
        let mut s = VictimSelector::new(VictimKind::DChoices, 13);
        let cands: Vec<VictimCandidate> =
            (0..5).map(|b| cand(b, 10, 20, if b == 3 { 1 } else { 9 }, 0)).collect();
        let picks_of_3 =
            (0..200).filter(|_| s.select(&cands, 0) == Some(3)).count();
        assert!(
            picks_of_3 > 100,
            "least-worn block won only {picks_of_3}/200 tied selections"
        );
    }

    #[test]
    fn greedy_counts_stranded_pages_as_reclaim_gain() {
        let mut s = VictimSelector::new(VictimKind::Greedy, 0);
        // Block 1 was abandoned mid-write after a program failure: only 4
        // invalid pages, but 40 stranded free ones behind the closed write
        // pointer. Erasing it reclaims 44 pages — more than block 0's 30.
        let abandoned = VictimCandidate { stranded: 40, ..cand(1, 20, 4, 0, 0) };
        let cands = [cand(0, 34, 30, 0, 0), abandoned];
        assert_eq!(s.select(&cands, 0), Some(1));
    }

    #[test]
    fn greedy_prefers_trim_garbage_among_equal_invalid() {
        let mut s = VictimSelector::new(VictimKind::Greedy, 0);
        // Same invalid count everywhere; block 7's garbage is mostly trimmed
        // pages, which can never revert to valid — collect it first.
        let trim_heavy = VictimCandidate { trimmed: 18, ..cand(7, 10, 20, 9, 0) };
        let cands = [cand(2, 10, 20, 0, 0), trim_heavy, cand(4, 10, 20, 0, 0)];
        assert_eq!(s.select(&cands, 0), Some(7));
    }

    #[test]
    fn greedy_still_ranks_invalid_above_trimmed() {
        let mut s = VictimSelector::new(VictimKind::Greedy, 0);
        // More reclaimable pages beats better-attributed garbage.
        let trim_heavy = VictimCandidate { trimmed: 20, ..cand(1, 40, 20, 0, 0) };
        let cands = [cand(0, 30, 30, 0, 0), trim_heavy];
        assert_eq!(s.select(&cands, 0), Some(0));
    }

    #[test]
    fn cost_benefit_prefers_empty_blocks_absolutely() {
        let mut s = VictimSelector::new(VictimKind::CostBenefit, 0);
        let cands = [cand(0, 0, 64, 0, 1_000_000), cand(1, 1, 63, 0, 0)];
        assert_eq!(s.select(&cands, 2_000_000), Some(0));
    }

    #[test]
    fn cost_benefit_weighs_age_against_utilization() {
        let mut s = VictimSelector::new(VictimKind::CostBenefit, 0);
        // Block 0: half utilized but ancient. Block 1: slightly emptier but
        // just written. Age should dominate here.
        let cands = [cand(0, 32, 32, 0, 0), cand(1, 30, 34, 0, 99_999_000)];
        assert_eq!(s.select(&cands, 100_000_000), Some(0));
    }

    #[test]
    fn random_is_seed_deterministic_and_covers_candidates() {
        let cands: Vec<VictimCandidate> = (0..10).map(|b| cand(b, 1, 63, 0, 0)).collect();
        let picks1: Vec<_> = {
            let mut s = VictimSelector::new(VictimKind::Random, 42);
            (0..50).map(|_| s.select(&cands, 0).unwrap()).collect()
        };
        let picks2: Vec<_> = {
            let mut s = VictimSelector::new(VictimKind::Random, 42);
            (0..50).map(|_| s.select(&cands, 0).unwrap()).collect()
        };
        assert_eq!(picks1, picks2, "same seed, same picks");
        let distinct: std::collections::HashSet<_> = picks1.iter().collect();
        assert!(distinct.len() > 3, "random policy should spread picks");
    }

    #[test]
    fn streaming_select_agrees_with_slice_select() {
        // Mixed candidate set with ties, stranded pages and trim garbage;
        // every policy must pick the same victim from the stream as from
        // the slice, with identical RNG evolution for the sampling ones.
        let cands: Vec<VictimCandidate> = (0..40)
            .map(|b| {
                let mut c = cand(b, 64 - (b % 13) * 4, (b % 13) * 4, b % 5, (b as Nanos) * 700);
                c.trimmed = (b % 7).min(c.invalid);
                c.stranded = b % 3;
                c
            })
            .collect();
        for kind in VictimKind::EXTENDED {
            let mut by_slice = VictimSelector::new(kind, 99);
            let mut by_stream = VictimSelector::new(kind, 99);
            for round in 0..30 {
                let now = 1_000_000 + round * 50_000;
                assert_eq!(
                    by_stream.select_streaming(cands.iter().copied(), now),
                    by_slice.select(&cands, now),
                    "{kind:?} diverged at round {round}"
                );
            }
        }
    }

    #[test]
    fn streaming_select_empty_gives_none() {
        for kind in VictimKind::EXTENDED {
            let mut s = VictimSelector::new(kind, 1);
            assert_eq!(s.select_streaming(std::iter::empty(), 0), None);
        }
    }

    #[test]
    fn greedy_beats_random_on_reclaim_efficiency() {
        // Sanity: over a skewed candidate set, greedy reclaims strictly more
        // invalid pages per pick than random on average.
        let cands: Vec<VictimCandidate> =
            (0..16).map(|b| cand(b, 64 - b * 4, b * 4, 0, 0)).collect();
        let mut greedy = VictimSelector::new(VictimKind::Greedy, 0);
        let g = greedy.select(&cands, 0).unwrap();
        assert_eq!(g, 15); // most invalid
        let mut random = VictimSelector::new(VictimKind::Random, 7);
        let mut total = 0u32;
        for _ in 0..100 {
            let r = random.select(&cands, 0).unwrap();
            total += cands[r as usize].invalid;
        }
        assert!(total / 100 < cands[g as usize].invalid);
    }
}
