//! # cagc-ftl — page-mapping FTL substrate
//!
//! The flash-translation-layer building blocks the schemes in `cagc-core`
//! are assembled from — the part of FlashSim's FTL that is *common* to
//! Baseline, Inline-Dedupe and CAGC:
//!
//! * [`mapping::MappingTable`] — dense LPN → PPN page-level mapping (many-
//!   to-one under dedup).
//! * [`rmap::ReverseMap`] — PPN → LPNs, so GC migration can remap every
//!   logical page backed by a moved physical page.
//! * [`allocator::Allocator`] — free-block pool plus hot/cold write
//!   frontiers and the GC reserve that prevents migration deadlock.
//! * [`victim`] — the victim-selection policies, deterministic under a
//!   seed.
//! * [`gc`] — watermark trigger with hysteresis (Table I: 20 %) and the
//!   [`gc::GcStats`] counters behind Figs. 9, 10 and 13.
//!
//! ## Victim-policy semantics
//!
//! All policies score the same snapshot, a slice of
//! [`victim::VictimCandidate`] (one per closed block: valid/invalid
//! page counts, the trim-deallocated subset of invalid, erase count,
//! last-modified time). The paper's three:
//!
//! * **Random** — uniform over candidates; the floor every other policy
//!   is measured against (Fig. 13).
//! * **Greedy** — most invalid pages wins. Ties break toward the block
//!   with more *trimmed* pages (trim garbage is stable — it cannot be
//!   re-validated, while overwrite garbage keeps accruing, so waiting is
//!   worth more there), then toward lower erase count (wear), then lowest
//!   block id (determinism).
//! * **Cost-Benefit** — classic `benefit/cost = age * (1-u) / 2u`; age
//!   rewards cold blocks whose garbage has stopped growing, so it needs
//!   no explicit trim term.
//!
//! Extensions beyond the paper ([`victim::VictimKind::EXTENDED`]):
//! **FIFO** (oldest last-modified) and **D-Choices** (Greedy key over a
//! seeded sample of *d* candidates — the scalable approximation). The
//! trimmed tie-break feeds Greedy and D-Choices only. The full trim data
//! path, host op to victim score, is documented in `docs/TRIM.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod allocator;
pub mod gc;
pub mod mapping;
pub mod rmap;
pub mod victim;

pub use allocator::{Allocator, Region};
pub use gc::{GcStats, GcTrigger};
pub use mapping::{Lpn, MappingTable};
pub use rmap::ReverseMap;
pub use victim::{VictimCandidate, VictimKind, VictimSelector};
