//! # cagc-ftl — page-mapping FTL substrate
//!
//! The flash-translation-layer building blocks the schemes in `cagc-core`
//! are assembled from — the part of FlashSim's FTL that is *common* to
//! Baseline, Inline-Dedupe and CAGC:
//!
//! * [`mapping::MappingTable`] — dense LPN → PPN page-level mapping (many-
//!   to-one under dedup).
//! * [`rmap::ReverseMap`] — PPN → LPNs, so GC migration can remap every
//!   logical page backed by a moved physical page.
//! * [`allocator::Allocator`] — free-block pool plus hot/cold write
//!   frontiers and the GC reserve that prevents migration deadlock.
//! * [`victim`] — the three victim-selection policies the paper evaluates
//!   (Random, Greedy, Cost-Benefit), deterministic under a seed.
//! * [`gc`] — watermark trigger with hysteresis (Table I: 20 %) and the
//!   [`gc::GcStats`] counters behind Figs. 9, 10 and 13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod gc;
pub mod mapping;
pub mod rmap;
pub mod victim;

pub use allocator::{Allocator, Region};
pub use gc::{GcStats, GcTrigger};
pub use mapping::{Lpn, MappingTable};
pub use rmap::ReverseMap;
pub use victim::{VictimCandidate, VictimKind, VictimSelector};
