//! PPN → LPNs reverse map.
//!
//! GC migrates physical pages, but the state that must be updated is
//! logical: every LPN that points at the migrated PPN has to be remapped.
//! Without dedup each PPN has exactly one LPN; with dedup a popular page
//! may be shared by many. The reverse map tracks that set per PPN.

use crate::mapping::Lpn;
use cagc_flash::Ppn;
use std::collections::HashMap;

/// Reverse mapping from physical page to the logical pages backed by it.
#[derive(Debug, Clone, Default)]
pub struct ReverseMap {
    map: HashMap<Ppn, Vec<Lpn>>,
}

impl ReverseMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of PPNs with at least one LPN.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no PPN is referenced.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Record that `lpn` now points at `ppn`.
    pub fn add(&mut self, ppn: Ppn, lpn: Lpn) {
        self.map.entry(ppn).or_default().push(lpn);
    }

    /// Record that `lpn` no longer points at `ppn`. Returns how many LPNs
    /// still reference the PPN.
    ///
    /// # Panics
    /// Panics if the pair was not present — the forward and reverse maps
    /// must never disagree.
    pub fn remove(&mut self, ppn: Ppn, lpn: Lpn) -> usize {
        let v = self
            .map
            .get_mut(&ppn)
            .unwrap_or_else(|| panic!("reverse map: ppn {ppn} untracked"));
        let i = v
            .iter()
            .position(|&l| l == lpn)
            .unwrap_or_else(|| panic!("reverse map: lpn {lpn} not under ppn {ppn}"));
        v.swap_remove(i);
        let remaining = v.len();
        if remaining == 0 {
            self.map.remove(&ppn);
        }
        remaining
    }

    /// LPNs currently backed by `ppn` (empty slice if none).
    pub fn lpns(&self, ppn: Ppn) -> &[Lpn] {
        self.map.get(&ppn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of LPNs backed by `ppn`.
    pub fn count(&self, ppn: Ppn) -> usize {
        self.map.get(&ppn).map_or(0, Vec::len)
    }

    /// Remove and return all LPNs of `ppn` (migration: the set will be
    /// re-added under the destination PPN).
    pub fn take(&mut self, ppn: Ppn) -> Vec<Lpn> {
        self.map.remove(&ppn).unwrap_or_default()
    }

    /// Move every LPN of `from` under `to` (dedup hit during migration:
    /// the migrated page's references are absorbed by the existing copy).
    /// Returns how many LPNs moved.
    pub fn merge_into(&mut self, from: Ppn, to: Ppn) -> usize {
        let moved = self.take(from);
        let n = moved.len();
        if n > 0 {
            self.map.entry(to).or_default().extend(moved);
        }
        n
    }

    /// Total LPN references across all PPNs (= mapped LPN count; used by
    /// consistency audits).
    pub fn total_refs(&self) -> u64 {
        self.map.values().map(|v| v.len() as u64).sum()
    }

    /// Iterate `(ppn, sharing LPNs)` over all referenced physical pages
    /// (order unspecified; audits and reports only).
    pub fn iter(&self) -> impl Iterator<Item = (Ppn, &[Lpn])> {
        self.map.iter().map(|(&p, v)| (p, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut r = ReverseMap::new();
        r.add(10, 1);
        r.add(10, 2);
        assert_eq!(r.count(10), 2);
        assert_eq!(r.remove(10, 1), 1);
        assert_eq!(r.lpns(10), &[2]);
        assert_eq!(r.remove(10, 2), 0);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn removing_unknown_ppn_panics() {
        ReverseMap::new().remove(5, 1);
    }

    #[test]
    #[should_panic(expected = "not under")]
    fn removing_unknown_lpn_panics() {
        let mut r = ReverseMap::new();
        r.add(5, 1);
        r.remove(5, 2);
    }

    #[test]
    fn take_empties_the_ppn() {
        let mut r = ReverseMap::new();
        r.add(7, 1);
        r.add(7, 2);
        let mut taken = r.take(7);
        taken.sort_unstable();
        assert_eq!(taken, vec![1, 2]);
        assert_eq!(r.count(7), 0);
        assert!(r.take(7).is_empty()); // idempotent on empty
    }

    #[test]
    fn merge_into_moves_all_references() {
        let mut r = ReverseMap::new();
        r.add(1, 10);
        r.add(1, 11);
        r.add(2, 20);
        assert_eq!(r.merge_into(1, 2), 2);
        assert_eq!(r.count(1), 0);
        assert_eq!(r.count(2), 3);
        assert_eq!(r.total_refs(), 3);
    }

    #[test]
    fn merge_from_empty_is_noop() {
        let mut r = ReverseMap::new();
        r.add(2, 20);
        assert_eq!(r.merge_into(1, 2), 0);
        assert_eq!(r.count(2), 1);
    }

    #[test]
    fn duplicate_lpn_entries_are_counted_separately() {
        // Shouldn't occur in a consistent FTL, but the structure itself is
        // a multiset and removal takes one occurrence at a time.
        let mut r = ReverseMap::new();
        r.add(3, 9);
        r.add(3, 9);
        assert_eq!(r.count(3), 2);
        assert_eq!(r.remove(3, 9), 1);
        assert_eq!(r.remove(3, 9), 0);
    }
}
