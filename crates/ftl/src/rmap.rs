//! PPN → LPNs reverse map.
//!
//! GC migrates physical pages, but the state that must be updated is
//! logical: every LPN that points at the migrated PPN has to be remapped.
//! Without dedup each PPN has exactly one LPN; with dedup a popular page
//! may be shared by many. The reverse map tracks that set per PPN.
//!
//! # Representation
//!
//! The map is on the GC hot path (every migrated page consults its sharer
//! set; every host overwrite removes one pair), so it is a dense
//! `Vec<RSlot>` indexed by PPN rather than a `HashMap<Ppn, Vec<Lpn>>`.
//! The overwhelmingly common case — a page with exactly one sharer — is
//! stored inline (`RSlot::One`) with no heap allocation at all; a `Vec`
//! is only materialized once a second sharer appears (a dedup share), and
//! is dropped again when the set shrinks back to one. Iteration order and
//! the multiset semantics of the original `HashMap` version are preserved
//! exactly; `iter` now walks PPNs in ascending order (callers treat the
//! order as unspecified).

use crate::mapping::Lpn;
use cagc_flash::Ppn;

/// Per-PPN sharer set: empty, one inline LPN, or a spilled vector.
#[derive(Debug, Clone, Default)]
enum RSlot {
    /// No LPN references this PPN.
    #[default]
    Empty,
    /// Exactly one sharer, stored inline (the common, allocation-free case).
    One(Lpn),
    /// Two or more sharers (a deduplicated page).
    Many(Vec<Lpn>),
}

/// Reverse mapping from physical page to the logical pages backed by it.
#[derive(Debug, Clone, Default)]
pub struct ReverseMap {
    slots: Vec<RSlot>,
    /// `pos[lpn]` = index of `lpn` inside its PPN's [`RSlot::Many`] vector,
    /// making [`ReverseMap::remove`] O(1) instead of a linear scan (a hot
    /// dedup page can have thousands of sharers, and every host overwrite
    /// of one of them removes a pair). Maintained on every add/remove;
    /// meaningless (stale) for LPNs not currently in a `Many` slot. With
    /// duplicate LPN entries (multiset semantics) it points at *one*
    /// occurrence, which is equally valid to remove since they are
    /// indistinguishable.
    pos: Vec<u32>,
    /// Number of PPNs with at least one sharer.
    occupied: usize,
    /// Total LPN references across all PPNs.
    total: u64,
}

impl ReverseMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of PPNs with at least one LPN.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no PPN is referenced.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    fn slot_mut(&mut self, ppn: Ppn) -> &mut RSlot {
        let i = ppn as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, RSlot::default);
        }
        &mut self.slots[i]
    }

    /// Grow the positional index to cover `lpn` and record its position.
    #[inline]
    fn set_pos(pos: &mut Vec<u32>, lpn: Lpn, p: u32) {
        let i = lpn as usize;
        if i >= pos.len() {
            pos.resize(i + 1, 0);
        }
        pos[i] = p;
    }

    /// Record that `lpn` now points at `ppn`.
    #[inline]
    pub fn add(&mut self, ppn: Ppn, lpn: Lpn) {
        let i = ppn as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, RSlot::default);
        }
        let slot = &mut self.slots[i];
        match slot {
            RSlot::Empty => {
                *slot = RSlot::One(lpn);
                self.occupied += 1;
            }
            RSlot::One(first) => {
                let f = *first;
                *slot = RSlot::Many(vec![f, lpn]);
                Self::set_pos(&mut self.pos, f, 0);
                Self::set_pos(&mut self.pos, lpn, 1);
            }
            RSlot::Many(v) => {
                let p = v.len() as u32;
                v.push(lpn);
                Self::set_pos(&mut self.pos, lpn, p);
            }
        }
        self.total += 1;
    }

    /// Record that `lpn` no longer points at `ppn`. Returns how many LPNs
    /// still reference the PPN.
    ///
    /// # Panics
    /// Panics if the pair was not present — the forward and reverse maps
    /// must never disagree.
    #[inline]
    pub fn remove(&mut self, ppn: Ppn, lpn: Lpn) -> usize {
        let slot = self
            .slots
            .get_mut(ppn as usize)
            .filter(|s| !matches!(s, RSlot::Empty))
            .unwrap_or_else(|| panic!("reverse map: ppn {ppn} untracked"));
        let remaining = match slot {
            RSlot::Empty => unreachable!("filtered above"),
            RSlot::One(l) => {
                assert!(*l == lpn, "reverse map: lpn {lpn} not under ppn {ppn}");
                *slot = RSlot::Empty;
                self.occupied -= 1;
                0
            }
            RSlot::Many(v) => {
                // O(1) via the positional index; the hint is only trusted
                // when it actually points at `lpn`, so a stale entry (from
                // duplicate-LPN multiset use) degrades to the scan instead
                // of corrupting the set.
                let hint = self.pos.get(lpn as usize).copied().unwrap_or(0) as usize;
                let i = if v.get(hint) == Some(&lpn) {
                    hint
                } else {
                    v.iter()
                        .position(|&l| l == lpn)
                        .unwrap_or_else(|| panic!("reverse map: lpn {lpn} not under ppn {ppn}"))
                };
                v.swap_remove(i);
                if let Some(&moved) = v.get(i) {
                    self.pos[moved as usize] = i as u32;
                }
                if v.len() == 1 {
                    // Shrink back to the inline representation, releasing
                    // the spill vector.
                    *slot = RSlot::One(v[0]);
                    1
                } else {
                    v.len()
                }
            }
        };
        self.total -= 1;
        remaining
    }

    /// LPNs currently backed by `ppn` (empty slice if none).
    pub fn lpns(&self, ppn: Ppn) -> &[Lpn] {
        match self.slots.get(ppn as usize) {
            Some(RSlot::One(l)) => std::slice::from_ref(l),
            Some(RSlot::Many(v)) => v.as_slice(),
            _ => &[],
        }
    }

    /// Number of LPNs backed by `ppn`.
    pub fn count(&self, ppn: Ppn) -> usize {
        match self.slots.get(ppn as usize) {
            Some(RSlot::One(_)) => 1,
            Some(RSlot::Many(v)) => v.len(),
            _ => 0,
        }
    }

    /// Detach and return `ppn`'s whole sharer slot, fixing up the counters.
    fn take_slot(&mut self, ppn: Ppn) -> RSlot {
        let Some(slot) = self.slots.get_mut(ppn as usize) else {
            return RSlot::Empty;
        };
        let taken = std::mem::take(slot);
        match &taken {
            RSlot::Empty => {}
            RSlot::One(_) => {
                self.occupied -= 1;
                self.total -= 1;
            }
            RSlot::Many(v) => {
                self.occupied -= 1;
                self.total -= v.len() as u64;
            }
        }
        taken
    }

    /// Remove and return all LPNs of `ppn` (migration: the set will be
    /// re-added under the destination PPN).
    pub fn take(&mut self, ppn: Ppn) -> Vec<Lpn> {
        match self.take_slot(ppn) {
            RSlot::Empty => Vec::new(),
            RSlot::One(l) => vec![l],
            RSlot::Many(v) => v,
        }
    }

    /// [`ReverseMap::take`] into a caller-owned scratch buffer: `out` is
    /// cleared and filled with `ppn`'s former sharers. Lets the GC hot path
    /// reuse one allocation across migrations.
    pub fn take_into(&mut self, ppn: Ppn, out: &mut Vec<Lpn>) {
        out.clear();
        match self.take_slot(ppn) {
            RSlot::Empty => {}
            RSlot::One(l) => out.push(l),
            RSlot::Many(v) => out.extend_from_slice(&v),
        }
    }

    /// Move `from`'s entire sharer set under `to`, which must currently be
    /// empty (GC relocation of a page to a fresh destination). O(1): the
    /// slot moves wholesale, without visiting individual LPNs.
    ///
    /// # Panics
    /// Panics if `from` is untracked or `to` already has sharers.
    pub fn relocate(&mut self, from: Ppn, to: Ppn) {
        assert!(
            self.count(to) == 0,
            "reverse map: relocate target ppn {to} occupied"
        );
        let slot = self
            .slots
            .get_mut(from as usize)
            .filter(|s| !matches!(s, RSlot::Empty))
            .unwrap_or_else(|| panic!("reverse map: ppn {from} untracked"));
        let moved = std::mem::take(slot);
        *self.slot_mut(to) = moved;
        // occupied/total are unchanged: one slot emptied, one filled.
    }

    /// Move every LPN of `from` under `to` (dedup hit during migration:
    /// the migrated page's references are absorbed by the existing copy).
    /// Returns how many LPNs moved.
    pub fn merge_into(&mut self, from: Ppn, to: Ppn) -> usize {
        let moved = self.take_slot(from);
        match moved {
            RSlot::Empty => 0,
            RSlot::One(l) => {
                self.add(to, l);
                1
            }
            RSlot::Many(v) => {
                let n = v.len();
                for l in v {
                    self.add(to, l);
                }
                n
            }
        }
    }

    /// Total LPN references across all PPNs (= mapped LPN count; used by
    /// consistency audits).
    pub fn total_refs(&self) -> u64 {
        self.total
    }

    /// Iterate `(ppn, sharing LPNs)` over all referenced physical pages
    /// (order unspecified; audits and reports only).
    pub fn iter(&self) -> impl Iterator<Item = (Ppn, &[Lpn])> {
        self.slots.iter().enumerate().filter_map(|(p, s)| match s {
            RSlot::Empty => None,
            RSlot::One(l) => Some((p as Ppn, std::slice::from_ref(l))),
            RSlot::Many(v) => Some((p as Ppn, v.as_slice())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut r = ReverseMap::new();
        r.add(10, 1);
        r.add(10, 2);
        assert_eq!(r.count(10), 2);
        assert_eq!(r.remove(10, 1), 1);
        assert_eq!(r.lpns(10), &[2]);
        assert_eq!(r.remove(10, 2), 0);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn removing_unknown_ppn_panics() {
        ReverseMap::new().remove(5, 1);
    }

    #[test]
    #[should_panic(expected = "not under")]
    fn removing_unknown_lpn_panics() {
        let mut r = ReverseMap::new();
        r.add(5, 1);
        r.remove(5, 2);
    }

    #[test]
    fn take_empties_the_ppn() {
        let mut r = ReverseMap::new();
        r.add(7, 1);
        r.add(7, 2);
        let mut taken = r.take(7);
        taken.sort_unstable();
        assert_eq!(taken, vec![1, 2]);
        assert_eq!(r.count(7), 0);
        assert!(r.take(7).is_empty()); // idempotent on empty
    }

    #[test]
    fn take_into_reuses_the_scratch_buffer() {
        let mut r = ReverseMap::new();
        r.add(7, 1);
        r.add(7, 2);
        r.add(8, 3);
        let mut scratch = Vec::new();
        r.take_into(7, &mut scratch);
        scratch.sort_unstable();
        assert_eq!(scratch, vec![1, 2]);
        assert_eq!(r.count(7), 0);
        r.take_into(8, &mut scratch); // clears the previous contents
        assert_eq!(scratch, vec![3]);
        r.take_into(9, &mut scratch); // empty ppn leaves it empty
        assert!(scratch.is_empty());
        assert_eq!(r.total_refs(), 0);
    }

    #[test]
    fn merge_into_moves_all_references() {
        let mut r = ReverseMap::new();
        r.add(1, 10);
        r.add(1, 11);
        r.add(2, 20);
        assert_eq!(r.merge_into(1, 2), 2);
        assert_eq!(r.count(1), 0);
        assert_eq!(r.count(2), 3);
        assert_eq!(r.total_refs(), 3);
    }

    #[test]
    fn merge_from_empty_is_noop() {
        let mut r = ReverseMap::new();
        r.add(2, 20);
        assert_eq!(r.merge_into(1, 2), 0);
        assert_eq!(r.count(2), 1);
    }

    #[test]
    fn relocate_moves_the_slot_wholesale() {
        let mut r = ReverseMap::new();
        r.add(4, 40);
        r.add(4, 41);
        r.add(5, 50);
        r.relocate(4, 9);
        assert_eq!(r.count(4), 0);
        let mut moved = r.lpns(9).to_vec();
        moved.sort_unstable();
        assert_eq!(moved, vec![40, 41]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_refs(), 3);
        // Single-sharer slots move too.
        r.relocate(5, 4);
        assert_eq!(r.lpns(4), &[50]);
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn relocating_unknown_ppn_panics() {
        ReverseMap::new().relocate(1, 2);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn relocating_onto_occupied_target_panics() {
        let mut r = ReverseMap::new();
        r.add(1, 10);
        r.add(2, 20);
        r.relocate(1, 2);
    }

    #[test]
    fn large_sharer_sets_remove_in_any_order() {
        // Exercises the positional index across swap_remove reshuffles:
        // remove from the middle, the ends, and interleave with re-adds.
        let mut r = ReverseMap::new();
        for l in 0..100 {
            r.add(1, l);
        }
        for l in (0..100).step_by(3) {
            assert!(r.remove(1, l) > 0);
        }
        for l in 0..100u64 {
            if l % 3 == 0 {
                r.add(1, l); // back in, at a fresh position
            }
        }
        assert_eq!(r.count(1), 100);
        let mut left: Vec<u64> = (0..100).collect();
        // Drain in an order unrelated to insertion order.
        while let Some(l) = left.pop() {
            r.remove(1, l);
        }
        assert_eq!(r.count(1), 0);
        assert_eq!(r.total_refs(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_lpn_entries_are_counted_separately() {
        // Shouldn't occur in a consistent FTL, but the structure itself is
        // a multiset and removal takes one occurrence at a time.
        let mut r = ReverseMap::new();
        r.add(3, 9);
        r.add(3, 9);
        assert_eq!(r.count(3), 2);
        assert_eq!(r.remove(3, 9), 1);
        assert_eq!(r.remove(3, 9), 0);
    }
}
