//! LPN → PPN mapping table (page-level FTL).
//!
//! A dense vector keyed by logical page number, `NO_PPN` for unmapped. With
//! deduplication the mapping is many-to-one: several LPNs may point at the
//! same PPN; the companion [`crate::rmap::ReverseMap`] maintains the other
//! direction.

use cagc_flash::{Ppn, NO_PPN};

/// Logical page number (host-visible address space).
pub type Lpn = u64;

/// Dense page-level mapping table.
#[derive(Debug, Clone)]
pub struct MappingTable {
    map: Vec<Ppn>,
    mapped: u64,
}

impl MappingTable {
    /// A table for `logical_pages` LPNs, all unmapped.
    pub fn new(logical_pages: u64) -> Self {
        Self { map: vec![NO_PPN; logical_pages as usize], mapped: 0 }
    }

    /// Number of LPNs addressable.
    pub fn logical_pages(&self) -> u64 {
        self.map.len() as u64
    }

    /// Number of LPNs currently mapped.
    pub fn mapped_count(&self) -> u64 {
        self.mapped
    }

    /// Current PPN of `lpn`, or `None` if unmapped.
    ///
    /// # Panics
    /// Panics if `lpn` is beyond the logical space (trace/config mismatch —
    /// better to fail loudly than silently wrap).
    #[inline]
    pub fn get(&self, lpn: Lpn) -> Option<Ppn> {
        let p = self.map[lpn as usize];
        (p != NO_PPN).then_some(p)
    }

    /// Map `lpn → ppn`, returning the previous PPN if there was one.
    #[inline]
    pub fn set(&mut self, lpn: Lpn, ppn: Ppn) -> Option<Ppn> {
        assert_ne!(ppn, NO_PPN, "cannot map to the NO_PPN sentinel");
        let slot = &mut self.map[lpn as usize];
        let prev = *slot;
        *slot = ppn;
        if prev == NO_PPN {
            self.mapped += 1;
            None
        } else {
            Some(prev)
        }
    }

    /// Unmap `lpn`, returning the previous PPN if there was one.
    #[inline]
    pub fn clear(&mut self, lpn: Lpn) -> Option<Ppn> {
        let slot = &mut self.map[lpn as usize];
        let prev = *slot;
        *slot = NO_PPN;
        if prev == NO_PPN {
            None
        } else {
            self.mapped -= 1;
            Some(prev)
        }
    }

    /// Iterate `(lpn, ppn)` over mapped entries (diagnostics; O(logical)).
    pub fn iter_mapped(&self) -> impl Iterator<Item = (Lpn, Ppn)> + '_ {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != NO_PPN)
            .map(|(l, &p)| (l as Lpn, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unmapped() {
        let t = MappingTable::new(100);
        assert_eq!(t.logical_pages(), 100);
        assert_eq!(t.mapped_count(), 0);
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(99), None);
    }

    #[test]
    fn set_get_clear_round_trip() {
        let mut t = MappingTable::new(10);
        assert_eq!(t.set(3, 77), None);
        assert_eq!(t.get(3), Some(77));
        assert_eq!(t.mapped_count(), 1);
        assert_eq!(t.set(3, 88), Some(77)); // remap returns old
        assert_eq!(t.mapped_count(), 1);
        assert_eq!(t.clear(3), Some(88));
        assert_eq!(t.get(3), None);
        assert_eq!(t.mapped_count(), 0);
        assert_eq!(t.clear(3), None); // double clear is a no-op
    }

    #[test]
    fn many_to_one_mappings_allowed() {
        let mut t = MappingTable::new(10);
        t.set(1, 42);
        t.set(2, 42);
        t.set(3, 42);
        assert_eq!(t.mapped_count(), 3);
        let hits: Vec<_> = t.iter_mapped().filter(|&(_, p)| p == 42).collect();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_space_lpn_panics() {
        MappingTable::new(4).get(4);
    }

    #[test]
    #[should_panic(expected = "NO_PPN")]
    fn mapping_to_sentinel_panics() {
        MappingTable::new(4).set(0, cagc_flash::NO_PPN);
    }
}
