//! GC triggering and accounting.

use cagc_sim::time::Nanos;

/// Watermark-based GC trigger (Table I: watermark 20 %).
///
/// GC starts when the free-block fraction drops below `low` and keeps
/// collecting victims until it recovers above `high` (hysteresis avoids
/// thrashing at the boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcTrigger {
    /// Start collecting below this free fraction.
    pub low: f64,
    /// Stop collecting at/above this free fraction.
    pub high: f64,
}

impl GcTrigger {
    /// A trigger with hysteresis band `[low, high]`.
    ///
    /// # Panics
    /// Panics unless `0 < low <= high < 1`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(0.0 < low && low <= high && high < 1.0, "bad watermarks [{low}, {high}]");
        Self { low, high }
    }

    /// The paper's configuration: start at 20 % free, recover to 25 %.
    pub fn table1() -> Self {
        Self::new(0.20, 0.25)
    }

    /// Should a GC round begin at this free fraction?
    pub fn should_start(&self, free_fraction: f64) -> bool {
        free_fraction < self.low
    }

    /// Once collecting, should another victim be processed?
    pub fn should_continue(&self, free_fraction: f64) -> bool {
        free_fraction < self.high
    }
}

/// Counters describing all GC activity of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// GC rounds (trigger firings).
    pub invocations: u64,
    /// Victim blocks erased (the Fig. 9 metric).
    pub blocks_erased: u64,
    /// Valid pages copied out of victims (the Fig. 10 metric). For CAGC
    /// this counts only pages actually *written* to a new location; dedup
    /// hits that resolve to metadata updates are counted in `dedup_hits`.
    pub pages_migrated: u64,
    /// Valid pages read out of victims (reads happen even on dedup hits).
    pub pages_scanned: u64,
    /// Migration writes avoided because the page's content was already
    /// stored (CAGC only).
    pub dedup_hits: u64,
    /// Pages moved hot → cold because their refcount crossed the threshold.
    pub promotions: u64,
    /// Pages moved cold → hot because their refcount fell to the threshold
    /// or below.
    pub demotions: u64,
    /// Trim-invalidated pages reclaimed by victim erases. Each such page is
    /// a migration GC never had to perform: had the host not trimmed it,
    /// the page would still be valid at collection time and would have been
    /// copied out (counted in `pages_migrated`) before the erase.
    pub trim_reclaimed_pages: u64,
    /// Total simulated time spent inside GC rounds.
    pub busy_ns: Nanos,
}

impl GcStats {
    /// Pages freed net of migration (how much space each erase yielded).
    pub fn pages_reclaimed_per_erase(&self, pages_per_block: u32) -> f64 {
        if self.blocks_erased == 0 {
            return 0.0;
        }
        let total = self.blocks_erased * pages_per_block as u64;
        (total - self.pages_migrated) as f64 / self.blocks_erased as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_watermark_is_20_percent() {
        let t = GcTrigger::table1();
        assert!(!t.should_start(0.21));
        assert!(t.should_start(0.19));
        assert!(t.should_continue(0.24));
        assert!(!t.should_continue(0.25));
    }

    #[test]
    fn hysteresis_band_behaves() {
        let t = GcTrigger::new(0.1, 0.3);
        assert!(!t.should_start(0.15)); // above low: no new round
        assert!(t.should_continue(0.15)); // but an active round continues
    }

    #[test]
    #[should_panic(expected = "bad watermarks")]
    fn inverted_watermarks_rejected() {
        GcTrigger::new(0.5, 0.2);
    }

    #[test]
    #[should_panic(expected = "bad watermarks")]
    fn degenerate_watermarks_rejected() {
        GcTrigger::new(0.0, 0.2);
    }

    #[test]
    fn reclaim_efficiency_math() {
        let s = GcStats { blocks_erased: 10, pages_migrated: 140, ..Default::default() };
        // 10 blocks × 64 pages = 640 raw; 140 rewritten elsewhere.
        assert!((s.pages_reclaimed_per_erase(64) - 50.0).abs() < 1e-12);
        assert_eq!(GcStats::default().pages_reclaimed_per_erase(64), 0.0);
    }
}
