//! Property-based tests for the FTL substrate.

use cagc_ftl::{Allocator, MappingTable, Region, ReverseMap, VictimCandidate, VictimKind,
               VictimSelector};
use cagc_harness::prop::*;
use std::collections::HashMap;

harness_proptest! {
    /// Mapping table + reverse map stay mutually consistent under random
    /// map/remap/unmap traffic; total_refs equals mapped_count.
    #[test]
    fn forward_and_reverse_maps_agree(ops in vec((0u8..2, 0u64..50, 0u64..200), 1..400)) {
        let mut fwd = MappingTable::new(50);
        let mut rev = ReverseMap::new();
        for &(op, lpn, ppn) in &ops {
            match op {
                0 => {
                    // write lpn -> ppn
                    if let Some(old) = fwd.set(lpn, ppn) {
                        rev.remove(old, lpn);
                    }
                    rev.add(ppn, lpn);
                }
                _ => {
                    // trim lpn
                    if let Some(old) = fwd.clear(lpn) {
                        rev.remove(old, lpn);
                    }
                }
            }
            prop_assert_eq!(rev.total_refs(), fwd.mapped_count());
        }
        // Every forward entry appears exactly once in the reverse map.
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for (_, ppn) in fwd.iter_mapped() {
            *counts.entry(ppn).or_default() += 1;
        }
        for (&ppn, &n) in &counts {
            prop_assert_eq!(rev.count(ppn), n);
        }
    }

    /// The allocator never double-hands-out a block, never exceeds device
    /// page capacity per block, and conserves blocks across release cycles.
    #[test]
    fn allocator_conserves_blocks(
        total in 8u32..64,
        ppb in 1u32..16,
        steps in vec((any::<bool>(), any::<bool>()), 1..300),
    ) {
        let reserve = 2u32.min(total - 4);
        let mut a = Allocator::new(total, ppb, reserve);
        let mut pages_in_block: HashMap<u32, u32> = HashMap::new();
        let mut closed: Vec<u32> = Vec::new();

        for &(cold, for_gc) in &steps {
            let region = if cold { Region::Cold } else { Region::Hot };
            if let Some(b) = a.alloc_page(region, for_gc) {
                let n = pages_in_block.entry(b).or_default();
                *n += 1;
                prop_assert!(*n <= ppb, "block {b} over-programmed");
                prop_assert_eq!(a.region_of(b), Some(region));
                if *n == ppb {
                    closed.push(b);
                }
            } else if !closed.is_empty() {
                // Simulate GC: erase and release the oldest closed block.
                let b = closed.remove(0);
                pages_in_block.remove(&b);
                a.release(b);
            }
            // Conservation: free + open + closed-tracked == total.
            let open_count = (0..total).filter(|&b| a.is_open(b)).count() as u32;
            let accounted = a.free_blocks() + open_count
                + closed.len() as u32
                + pages_in_block.keys().filter(|&&b| !a.is_open(b) && !closed.contains(&b)).count() as u32;
            prop_assert_eq!(accounted, total);
        }
    }

    /// All policies return a member of the candidate set.
    #[test]
    fn victim_selection_is_closed_over_candidates(
        n in 1usize..32, seed in any::<u64>(), now in 0u64..1_000_000_000
    ) {
        let cands: Vec<VictimCandidate> = (0..n as u32)
            .map(|b| VictimCandidate {
                block: b,
                valid: (b * 7) % 64,
                invalid: 64 - (b * 7) % 64,
                trimmed: (b * 3) % (64 - (b * 7) % 64 + 1),
                stranded: 0,
                pages: 64,
                erase_count: b % 5,
                last_modified: (b as u64) * 1000,
            })
            .collect();
        for kind in VictimKind::ALL {
            let mut s = VictimSelector::new(kind, seed);
            let pick = s.select(&cands, now).expect("non-empty candidates");
            prop_assert!(cands.iter().any(|c| c.block == pick), "{kind:?} invented a block");
        }
    }

    /// Greedy is optimal in reclaimed-invalid-pages among the candidates.
    #[test]
    fn greedy_maximizes_invalid(seed in any::<u64>(), n in 1usize..40) {
        let cands: Vec<VictimCandidate> = (0..n as u32)
            .map(|b| VictimCandidate {
                block: b,
                valid: 64 - (b.wrapping_mul(13) % 65),
                invalid: b.wrapping_mul(13) % 65,
                trimmed: b.wrapping_mul(5) % (b.wrapping_mul(13) % 65 + 1),
                stranded: 0,
                pages: 64,
                erase_count: 0,
                last_modified: 0,
            })
            .collect();
        let mut s = VictimSelector::new(VictimKind::Greedy, seed);
        let pick = s.select(&cands, 0).unwrap();
        let picked = cands.iter().find(|c| c.block == pick).unwrap();
        let best = cands.iter().map(|c| c.invalid).max().unwrap();
        prop_assert_eq!(picked.invalid, best);
    }
}
