//! Experiment scale presets.

use cagc_flash::UllConfig;
use cagc_workloads::FiuWorkload;

/// How big the repro runs are. All figures are ratios; `EXPERIMENTS.md`
/// records how stable they are across scales.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Device size in GB (Table I shape, scaled).
    pub device_gb: u32,
    /// Timed requests per workload.
    pub requests: usize,
    /// Timed requests for Mail (longer: its high dedup ratio needs more
    /// volume to reach dedup steady state).
    pub mail_requests: usize,
    /// Base PRNG seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub workers: usize,
}

impl Scale {
    /// Fast smoke scale (~15 s for the full figure set).
    pub fn quick() -> Self {
        Self { device_gb: 1, requests: 60_000, mail_requests: 120_000, seed: 7, workers: 0 }
    }

    /// The default reporting scale (used for EXPERIMENTS.md).
    pub fn default_scale() -> Self {
        Self { device_gb: 1, requests: 150_000, mail_requests: 300_000, seed: 7, workers: 0 }
    }

    /// Big: an 8 GB device and 4× the requests. Slower; shows scale
    /// stability of the ratios.
    pub fn full() -> Self {
        Self { device_gb: 8, requests: 600_000, mail_requests: 1_200_000, seed: 7, workers: 0 }
    }

    /// The device configuration at this scale.
    pub fn flash(&self) -> UllConfig {
        UllConfig::scaled_gb(self.device_gb)
    }

    /// Timed requests for a workload.
    pub fn requests_for(&self, w: FiuWorkload) -> usize {
        match w {
            FiuWorkload::Mail => self.mail_requests,
            _ => self.requests,
        }
    }

    /// Calibrated trace footprint (fraction of the logical space the
    /// workload addresses) for the aged-device experiments. The FIU traces
    /// have distinct footprints; these are calibrated so each baseline
    /// runs at the paper's GC intensity (see DESIGN.md §4).
    pub fn footprint_frac(&self, w: FiuWorkload) -> f64 {
        match w {
            FiuWorkload::Homes => 0.97,
            FiuWorkload::WebVm => 0.95,
            FiuWorkload::Mail => 0.95,
        }
    }

    /// Logical pages the aged-device trace for `w` addresses.
    pub fn footprint_pages(&self, w: FiuWorkload) -> u64 {
        (self.flash().logical_pages() as f64 * self.footprint_frac(w)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let q = Scale::quick();
        let d = Scale::default_scale();
        let f = Scale::full();
        assert!(q.requests < d.requests && d.requests < f.requests);
        assert!(f.device_gb > d.device_gb);
    }

    #[test]
    fn mail_runs_longer() {
        let s = Scale::default_scale();
        assert!(s.requests_for(FiuWorkload::Mail) > s.requests_for(FiuWorkload::Homes));
    }

    #[test]
    fn footprints_leave_op_headroom() {
        let s = Scale::default_scale();
        for w in FiuWorkload::ALL {
            let frac = s.footprint_frac(w);
            assert!(frac > 0.9 && frac < 1.0, "{}: {frac}", w.name());
            assert!(s.footprint_pages(w) < s.flash().logical_pages());
        }
    }
}
