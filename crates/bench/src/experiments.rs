//! Regeneration of every table and figure in the paper's evaluation,
//! plus the ablations DESIGN.md calls out.
//!
//! Each function renders a human-readable text block (what `repro` prints)
//! and, where applicable, returns CSV series via [`Artifacts`] so results
//! can be checked into `results/`.

use cagc_core::{run_cells, Scheme, SsdConfig};
use cagc_metrics::{bar_chart, reduction_pct, Table};
use cagc_workloads::{FiuWorkload, TraceProfile};
use cagc_ftl::VictimKind;

use crate::paper;
use crate::scale::Scale;
use cagc_core::RunReport;

/// A rendered experiment: the text block plus named CSV artifacts.
pub struct Artifacts {
    /// Human-readable result block.
    pub text: String,
    /// `(file_name, csv_content)` pairs.
    pub csv: Vec<(String, String)>,
}

impl Artifacts {
    fn text_only(text: String) -> Self {
        Self { text, csv: Vec::new() }
    }
}

/// The aged-device replay grid behind Figs. 9, 10, 11 and 12: every
/// workload × every scheme, on a device whose logical space is nearly full
/// (see `Scale::footprint_frac`).
pub struct AgedResults {
    /// Per workload (paper order), reports in `Scheme::ALL` order
    /// (Inline-Dedupe, Baseline, CAGC).
    pub runs: Vec<(FiuWorkload, Vec<RunReport>)>,
}

impl AgedResults {
    /// Reports for one workload: (inline, baseline, cagc).
    pub fn of(&self, w: FiuWorkload) -> (&RunReport, &RunReport, &RunReport) {
        let reports = &self.runs.iter().find(|(x, _)| *x == w).expect("workload present").1;
        (&reports[0], &reports[1], &reports[2])
    }
}

/// Run the aged grid once (shared by several figures).
pub fn run_aged(scale: &Scale) -> AgedResults {
    let flash = scale.flash();
    let mut cells = Vec::new();
    let mut traces = Vec::new();
    for w in FiuWorkload::ALL {
        traces.push(
            w.synth_config(scale.footprint_pages(w), scale.requests_for(w), scale.seed)
                .generate(),
        );
    }
    for trace in &traces {
        for scheme in Scheme::ALL {
            cells.push((SsdConfig::paper(flash, scheme), trace));
        }
    }
    let reports = run_cells(&cells, scale.workers);
    let mut runs = Vec::new();
    for (i, w) in FiuWorkload::ALL.into_iter().enumerate() {
        runs.push((w, reports[i * 3..i * 3 + 3].to_vec()));
    }
    AgedResults { runs }
}

// ------------------------------------------------------------- Table I

/// Table I: the SSD configuration in force at this scale.
pub fn table1(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let geom = flash.geometry();
    let mut t = Table::new(vec!["Type", "Value", "Type ", "Value "]);
    t.row(vec![
        "Page Size".into(),
        format!("{}B", flash.page_size),
        "Read".into(),
        format!("{}us", flash.timing.read_ns / 1000),
    ]);
    t.row(vec![
        "Block Size".into(),
        format!("{}KB", flash.pages_per_block * flash.page_size / 1024),
        "Write".into(),
        format!("{}us", flash.timing.program_ns / 1000),
    ]);
    t.row(vec![
        "OP Space".into(),
        format!("{:.0}%", flash.op_ratio * 100.0),
        "Erase Delay".into(),
        format!("{:.1}ms", flash.timing.erase_ns as f64 / 1e6),
    ]);
    t.row(vec![
        "Capacity".into(),
        format!("{:.0}GB (paper: 80GB)", flash.physical_bytes() as f64 / (1u64 << 30) as f64),
        "Hash".into(),
        format!("{}us", flash.hash_ns / 1000),
    ]);
    t.row(vec![
        "Workloads".into(),
        "FIU-like synthetic [9]".into(),
        "GC Watermark".into(),
        format!("{:.0}% (of OP pool)", flash.gc_watermark * 100.0),
    ]);
    t.row(vec![
        "Geometry".into(),
        format!(
            "{}ch x {}die x {}pl x {}blk x {}pg",
            geom.channels,
            geom.dies_per_channel,
            geom.planes_per_die,
            geom.blocks_per_plane,
            geom.pages_per_block
        ),
        "Logical".into(),
        format!("{:.2}GB", flash.logical_bytes() as f64 / (1u64 << 30) as f64),
    ]);
    Artifacts::text_only(format!("Table I — SSD configuration\n\n{}", t.render()))
}

// ------------------------------------------------------------ Table II

/// Table II: generate each workload and verify its measured
/// characteristics against the published ones.
pub fn table2(scale: &Scale) -> Artifacts {
    let mut t = Table::new(vec![
        "Trace", "Write Ratio", "(paper)", "Dedup Ratio", "(paper) ", "Aver. Req. Size",
        "(paper)  ",
    ]);
    let mut csv = String::from("workload,write_ratio,paper_write_ratio,dedup_ratio,paper_dedup_ratio,mean_req_kb,paper_mean_req_kb\n");
    for (i, w) in FiuWorkload::ALL.into_iter().enumerate() {
        // Characterize the steady-state request mix (the paper's Table II
        // describes the traces themselves); the prefill phase used to age
        // the device is excluded here.
        let mut cfg = w.synth_config(scale.footprint_pages(w), scale.requests.min(50_000), scale.seed);
        cfg.prefill_fraction = 0.0;
        let trace = cfg.generate();
        let p = TraceProfile::of(&trace);
        let (_, pw, pd, pk) = (paper::TABLE2[i].0, paper::TABLE2[i].1, paper::TABLE2[i].2, paper::TABLE2[i].3);
        t.row(vec![
            w.name().to_string(),
            format!("{:.1}%", p.write_ratio * 100.0),
            format!("{:.1}%", pw * 100.0),
            format!("{:.1}%", p.dedup_ratio * 100.0),
            format!("{:.1}%", pd * 100.0),
            format!("{:.1}KB", p.mean_req_kb),
            format!("{:.1}KB", pk),
        ]);
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.2},{:.2}\n",
            w.name(),
            p.write_ratio,
            pw,
            p.dedup_ratio,
            pd,
            p.mean_req_kb,
            pk
        ));
    }
    Artifacts {
        text: format!(
            "Table II — workload characteristics (measured on generated traces vs paper)\n\n{}",
            t.render()
        ),
        csv: vec![("table2.csv".into(), csv)],
    }
}

// -------------------------------------------------------------- Fig 2

/// Fig. 2 (motivation): normalized response time of Inline-Dedupe vs
/// Baseline on a **fresh** (GC-free) device — the regime of the paper's
/// preliminary Z-NAND experiment.
pub fn fig2(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    // Size each trace so total writes stay far below device capacity:
    // footprint 15% of logical space, volume ≈ 25% of physical pages.
    let budget_pages = flash.geometry().total_pages() / 4;
    let mut traces = Vec::new();
    for w in FiuWorkload::ALL {
        let requests =
            (budget_pages as f64 / (w.write_ratio() * w.mean_req_pages())) as usize;
        let fp = (flash.logical_pages() as f64 * 0.15) as u64;
        let mut cfg = w.synth_config(fp, requests, scale.seed);
        cfg.prefill_fraction = 0.5;
        traces.push(cfg.generate());
    }
    let mut cells = Vec::new();
    for trace in &traces {
        for scheme in [Scheme::Baseline, Scheme::InlineDedup] {
            cells.push((SsdConfig::paper(flash, scheme), trace));
        }
    }
    let reports = run_cells(&cells, scale.workers);

    let mut text = String::from(
        "Fig. 2 — normalized response time, fresh ULL SSD (Baseline vs Inline-Dedupe)\n\
         paper: inline dedup raised response time up to 71.9% (avg 43.1%)\n\n",
    );
    let mut bars = Vec::new();
    let mut csv = String::from("workload,baseline_mean_us,inline_mean_us,normalized\n");
    let mut increases = Vec::new();
    for (i, w) in FiuWorkload::ALL.into_iter().enumerate() {
        let base = &reports[i * 2];
        let inline = &reports[i * 2 + 1];
        assert_eq!(base.gc.invocations, 0, "fig2 must be GC-free");
        let norm = inline.all.mean_ns / base.all.mean_ns;
        increases.push((norm - 1.0) * 100.0);
        bars.push((format!("{} Baseline", w.name()), 1.0));
        bars.push((format!("{} Inline-Dedupe", w.name()), norm));
        csv.push_str(&format!(
            "{},{:.2},{:.2},{:.4}\n",
            w.name(),
            base.all.mean_ns / 1000.0,
            inline.all.mean_ns / 1000.0,
            norm
        ));
    }
    text.push_str(&bar_chart(&bars, 40));
    text.push_str(&format!(
        "\nmeasured increase: avg {:.1}%, max {:.1}%  (paper: avg {:.1}%, max {:.1}%)\n",
        increases.iter().sum::<f64>() / increases.len() as f64,
        increases.iter().cloned().fold(f64::MIN, f64::max),
        paper::FIG2_INLINE_AVG_INCREASE_PCT,
        paper::FIG2_INLINE_MAX_INCREASE_PCT
    ));
    Artifacts { text, csv: vec![("fig2.csv".into(), csv)] }
}

// -------------------------------------------------------------- Fig 6

/// Fig. 6 (motivation): distribution of invalidated pages by the peak
/// reference count of their content, per workload.
pub fn fig6(aged: &AgedResults) -> Artifacts {
    let mut t = Table::new(vec!["Workload", "ref==1", "ref==2", "ref==3", "ref>3"]);
    let mut csv = String::from("workload,ref1,ref2,ref3,ref_gt3\n");
    let mut text = String::from(
        "Fig. 6 — invalidated pages by reference count (Inline-Dedupe run: every page tracked)\n\
         paper: >80% of invalidations from refcount-1 pages; <1% from refcount>3\n\n",
    );
    let mut avg = [0.0f64; 4];
    for w in FiuWorkload::ALL {
        let (inline, _, _) = aged.of(w);
        let b = inline.invalidation_by_refcount;
        let total: u64 = b.iter().sum();
        let f = b.map(|x| if total == 0 { 0.0 } else { x as f64 / total as f64 });
        for (a, v) in avg.iter_mut().zip(f) {
            *a += v / 3.0;
        }
        t.row(vec![
            w.name().to_string(),
            format!("{:.1}%", f[0] * 100.0),
            format!("{:.1}%", f[1] * 100.0),
            format!("{:.1}%", f[2] * 100.0),
            format!("{:.2}%", f[3] * 100.0),
        ]);
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}\n",
            w.name(),
            f[0],
            f[1],
            f[2],
            f[3]
        ));
    }
    t.row(vec![
        "Average".to_string(),
        format!("{:.1}%", avg[0] * 100.0),
        format!("{:.1}%", avg[1] * 100.0),
        format!("{:.1}%", avg[2] * 100.0),
        format!("{:.2}%", avg[3] * 100.0),
    ]);
    text.push_str(&t.render());
    Artifacts { text, csv: vec![("fig6.csv".into(), csv)] }
}

// ---------------------------------------------------- Figs 9 / 10 / 11

fn reduction_figure(
    aged: &AgedResults,
    title: &str,
    paper_pct: &[f64; 3],
    metric: impl Fn(&RunReport) -> f64,
    file: &str,
) -> Artifacts {
    let mut text = format!("{title}\n\n");
    let mut t = Table::new(vec!["Workload", "Baseline", "CAGC", "Reduction", "(paper)"]);
    let mut csv = String::from("workload,baseline,cagc,reduction_pct,paper_reduction_pct\n");
    for (i, w) in FiuWorkload::ALL.into_iter().enumerate() {
        let (_, base, cagc) = aged.of(w);
        let (b, c) = (metric(base), metric(cagc));
        let red = reduction_pct(b, c);
        t.row(vec![
            w.name().to_string(),
            format!("{b:.0}"),
            format!("{c:.0}"),
            format!("{red:.1}%"),
            format!("{:.1}%", paper_pct[i]),
        ]);
        csv.push_str(&format!(
            "{},{:.1},{:.1},{:.2},{:.2}\n",
            w.name(),
            b,
            c,
            red,
            paper_pct[i]
        ));
    }
    text.push_str(&t.render());
    Artifacts { text, csv: vec![(file.into(), csv)] }
}

/// Fig. 9: number of flash blocks erased, Baseline vs CAGC.
pub fn fig9(aged: &AgedResults) -> Artifacts {
    reduction_figure(
        aged,
        "Fig. 9 — flash blocks erased (Baseline vs CAGC)",
        &paper::FIG9_ERASE_REDUCTION_PCT,
        |r| r.gc.blocks_erased as f64,
        "fig9.csv",
    )
}

/// Fig. 10: number of data pages migrated during GC, Baseline vs CAGC.
pub fn fig10(aged: &AgedResults) -> Artifacts {
    reduction_figure(
        aged,
        "Fig. 10 — data pages migrated during GC (Baseline vs CAGC)",
        &paper::FIG10_MIGRATION_REDUCTION_PCT,
        |r| r.gc.pages_migrated as f64,
        "fig10.csv",
    )
}

/// Fig. 11: normalized mean response time during GC periods, all three
/// schemes.
pub fn fig11(aged: &AgedResults) -> Artifacts {
    let mut text = String::from(
        "Fig. 11 — normalized mean response time during GC periods\n\
         (normalized to Baseline; paper reductions for CAGC: 33.6% / 29.6% / 70.1%)\n\n",
    );
    let mut bars = Vec::new();
    let mut csv =
        String::from("workload,scheme,mean_during_gc_us,normalized,paper_cagc_reduction_pct\n");
    for (i, w) in FiuWorkload::ALL.into_iter().enumerate() {
        let (inline, base, cagc) = aged.of(w);
        let bmean = base.gc_period_mean_ns();
        for r in [inline, base, cagc] {
            let norm = r.gc_period_mean_ns() / bmean;
            bars.push((format!("{} {}", w.name(), r.scheme), norm));
            csv.push_str(&format!(
                "{},{},{:.2},{:.4},{:.1}\n",
                w.name(),
                r.scheme,
                r.gc_period_mean_ns() / 1000.0,
                norm,
                paper::FIG11_RESPONSE_REDUCTION_PCT[i]
            ));
        }
    }
    text.push_str(&bar_chart(&bars, 40));
    for (i, w) in FiuWorkload::ALL.into_iter().enumerate() {
        let (_, base, cagc) = aged.of(w);
        text.push_str(&format!(
            "{}: CAGC reduces GC-period response time by {:.1}% (paper: {:.1}%)\n",
            w.name(),
            reduction_pct(base.gc_period_mean_ns(), cagc.gc_period_mean_ns()),
            paper::FIG11_RESPONSE_REDUCTION_PCT[i]
        ));
    }
    Artifacts { text, csv: vec![("fig11.csv".into(), csv)] }
}

// ------------------------------------------------------------- Fig 12

/// Fig. 12: response-time CDF, Baseline vs CAGC, per workload.
pub fn fig12(aged: &AgedResults) -> Artifacts {
    let mut text = String::from("Fig. 12 — response-time CDF (Baseline vs CAGC)\n\n");
    let mut csvs = Vec::new();
    for w in FiuWorkload::ALL {
        let (_, base, cagc) = aged.of(w);
        let mut csv = String::from("scheme,latency_us,cum_fraction\n");
        for (name, r) in [("Baseline", base), ("CAGC", cagc)] {
            for p in r.cdf.downsample(64) {
                csv.push_str(&format!(
                    "{name},{:.2},{:.5}\n",
                    p.value_ns as f64 / 1000.0,
                    p.fraction
                ));
            }
        }
        let b80 = base.cdf.value_at(0.80) as f64 / 1000.0;
        let c80 = cagc.cdf.value_at(0.80) as f64 / 1000.0;
        let b99 = base.cdf.value_at(0.99) as f64 / 1000.0;
        let c99 = cagc.cdf.value_at(0.99) as f64 / 1000.0;
        text.push_str(&format!(
            "{:>7}: 80% of requests within  CAGC {:>8.1}us | Baseline {:>8.1}us\n\
             {:>7}  99% of requests within  CAGC {:>8.1}us | Baseline {:>8.1}us\n",
            w.name(),
            c80,
            b80,
            "",
            c99,
            b99
        ));
        csvs.push((format!("fig12_{}.csv", w.name().to_lowercase().replace('-', "_")), csv));
    }
    text.push_str("\n(full curves in results/fig12_*.csv)\n");
    Artifacts { text, csv: csvs }
}

// ------------------------------------------------------------- Fig 13

/// Fig. 13: CAGC's reductions under Random / Greedy / Cost-Benefit victim
/// selection — (a) blocks erased, (b) pages migrated, (c) response time.
pub fn fig13(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let mut traces = Vec::new();
    for w in FiuWorkload::ALL {
        traces.push(
            w.synth_config(scale.footprint_pages(w), scale.requests_for(w), scale.seed)
                .generate(),
        );
    }
    let mut cells = Vec::new();
    for trace in &traces {
        for policy in VictimKind::ALL {
            for scheme in [Scheme::Baseline, Scheme::Cagc] {
                let mut cfg = SsdConfig::paper(flash, scheme);
                cfg.victim = policy;
                cells.push((cfg, trace));
            }
        }
    }
    let reports = run_cells(&cells, scale.workers);

    let mut text = String::from(
        "Fig. 13 — CAGC's reduction vs Baseline under different victim-selection policies\n\n",
    );
    let mut csv = String::from(
        "workload,policy,erase_reduction_pct,migration_reduction_pct,response_reduction_pct\n",
    );
    let mut t = Table::new(vec![
        "Workload", "Policy", "Blocks erased", "Pages migrated", "Response time",
    ]);
    let mut idx = 0;
    for w in FiuWorkload::ALL {
        for policy in VictimKind::ALL {
            let base = &reports[idx];
            let cagc = &reports[idx + 1];
            idx += 2;
            let er = reduction_pct(base.gc.blocks_erased as f64, cagc.gc.blocks_erased as f64);
            let mr = reduction_pct(base.gc.pages_migrated as f64, cagc.gc.pages_migrated as f64);
            let rr = reduction_pct(base.gc_period_mean_ns(), cagc.gc_period_mean_ns());
            t.row(vec![
                w.name().to_string(),
                policy.name().to_string(),
                format!("{er:.1}%"),
                format!("{mr:.1}%"),
                format!("{rr:.1}%"),
            ]);
            csv.push_str(&format!(
                "{},{},{er:.2},{mr:.2},{rr:.2}\n",
                w.name(),
                policy.name()
            ));
        }
    }
    text.push_str(&t.render());
    text.push_str(
        "\n(values are % reductions, CAGC vs Baseline; paper: CAGC improves all three \
         metrics under all three policies, bars 10-90%)\n",
    );
    Artifacts { text, csv: vec![("fig13.csv".into(), csv)] }
}

// ----------------------------------------------------------- Ablations

/// Ablation: CAGC without refcount-based placement (everything hot).
pub fn ablate_placement(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let mut text = String::from(
        "Ablation — contribution of refcount-based hot/cold placement (Sec. III-C)\n\n",
    );
    let mut t = Table::new(vec![
        "Workload", "Metric", "Baseline", "CAGC (dedup only)", "CAGC (full)",
    ]);
    let mut csv = String::from("workload,variant,blocks_erased,pages_migrated,gc_mean_us\n");
    for w in FiuWorkload::ALL {
        let trace = w
            .synth_config(scale.footprint_pages(w), scale.requests_for(w), scale.seed)
            .generate();
        let mut noplace = SsdConfig::paper(flash, Scheme::Cagc);
        noplace.placement = false;
        let cells = vec![
            (SsdConfig::paper(flash, Scheme::Baseline), &trace),
            (noplace, &trace),
            (SsdConfig::paper(flash, Scheme::Cagc), &trace),
        ];
        let reps = run_cells(&cells, scale.workers);
        t.row(vec![
            w.name().to_string(),
            "blocks erased".into(),
            reps[0].gc.blocks_erased.to_string(),
            reps[1].gc.blocks_erased.to_string(),
            reps[2].gc.blocks_erased.to_string(),
        ]);
        t.row(vec![
            String::new(),
            "pages migrated".into(),
            reps[0].gc.pages_migrated.to_string(),
            reps[1].gc.pages_migrated.to_string(),
            reps[2].gc.pages_migrated.to_string(),
        ]);
        for (variant, r) in
            [("baseline", &reps[0]), ("dedup_only", &reps[1]), ("full", &reps[2])]
        {
            csv.push_str(&format!(
                "{},{variant},{},{},{:.2}\n",
                w.name(),
                r.gc.blocks_erased,
                r.gc.pages_migrated,
                r.gc_period_mean_ns() / 1000.0
            ));
        }
    }
    text.push_str(&t.render());
    Artifacts { text, csv: vec![("ablate_placement.csv".into(), csv)] }
}

/// Ablation: hash/erase overlap (Sec. III-B) vs serialized GC hashing.
pub fn ablate_overlap(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let mut text = String::from(
        "Ablation — hash pipelining in GC (Sec. III-B): overlapped vs serialized\n\n",
    );
    let mut t = Table::new(vec![
        "Workload", "GC busy (overlap)", "GC busy (serial)", "GC-period mean (overlap)",
        "GC-period mean (serial)",
    ]);
    let mut csv = String::from("workload,variant,gc_busy_ms,gc_mean_us\n");
    for w in FiuWorkload::ALL {
        let trace = w
            .synth_config(scale.footprint_pages(w), scale.requests_for(w), scale.seed)
            .generate();
        let mut serial = SsdConfig::paper(flash, Scheme::Cagc);
        serial.overlap_hash = false;
        let cells = vec![
            (SsdConfig::paper(flash, Scheme::Cagc), &trace),
            (serial, &trace),
        ];
        let reps = run_cells(&cells, scale.workers);
        t.row(vec![
            w.name().to_string(),
            format!("{:.1}ms", reps[0].gc.busy_ns as f64 / 1e6),
            format!("{:.1}ms", reps[1].gc.busy_ns as f64 / 1e6),
            format!("{:.1}us", reps[0].gc_period_mean_ns() / 1000.0),
            format!("{:.1}us", reps[1].gc_period_mean_ns() / 1000.0),
        ]);
        for (variant, r) in [("overlap", &reps[0]), ("serial", &reps[1])] {
            csv.push_str(&format!(
                "{},{variant},{:.3},{:.2}\n",
                w.name(),
                r.gc.busy_ns as f64 / 1e6,
                r.gc_period_mean_ns() / 1000.0
            ));
        }
    }
    text.push_str(&t.render());
    Artifacts { text, csv: vec![("ablate_overlap.csv".into(), csv)] }
}

/// Ablation: cold-region refcount threshold sweep.
pub fn ablate_threshold(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let thresholds = [1u32, 2, 4, 8];
    let mut text =
        String::from("Ablation — cold-region refcount threshold (Sec. III-C, default 1)\n\n");
    let mut t = Table::new(vec![
        "Workload", "Threshold", "Blocks erased", "Pages migrated", "Promotions",
    ]);
    let mut csv = String::from("workload,threshold,blocks_erased,pages_migrated,promotions\n");
    for w in FiuWorkload::ALL {
        let trace = w
            .synth_config(scale.footprint_pages(w), scale.requests_for(w), scale.seed)
            .generate();
        let cells: Vec<_> = thresholds
            .iter()
            .map(|&th| {
                let mut cfg = SsdConfig::paper(flash, Scheme::Cagc);
                cfg.cold_threshold = th;
                (cfg, &trace)
            })
            .collect();
        let reps = run_cells(&cells, scale.workers);
        for (th, r) in thresholds.iter().zip(&reps) {
            t.row(vec![
                w.name().to_string(),
                th.to_string(),
                r.gc.blocks_erased.to_string(),
                r.gc.pages_migrated.to_string(),
                r.gc.promotions.to_string(),
            ]);
            csv.push_str(&format!(
                "{},{th},{},{},{}\n",
                w.name(),
                r.gc.blocks_erased,
                r.gc.pages_migrated,
                r.gc.promotions
            ));
        }
    }
    text.push_str(&t.render());
    Artifacts { text, csv: vec![("ablate_threshold.csv".into(), csv)] }
}

/// Extension study: GC cost vs space utilization. Dedup's GC benefit is
/// strongly non-linear in how full the device runs (the effect behind the
/// spread of Fig. 9's bars); this sweep measures erases and WAF for
/// Baseline and CAGC across footprints.
pub fn sweep_utilization(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let fracs = [0.70, 0.80, 0.90, 0.95, 0.97];
    let mut text = String::from(
        "Extension — GC cost vs space utilization (Web-vm characteristics)\n\n",
    );
    let mut t = Table::new(vec![
        "Footprint", "Scheme", "Blocks erased", "WAF", "GC-period mean",
    ]);
    let mut csv = String::from("footprint,scheme,blocks_erased,waf,gc_mean_us\n");
    let requests = scale.requests.min(100_000);
    for &frac in &fracs {
        let fp = (flash.logical_pages() as f64 * frac) as u64;
        let trace = FiuWorkload::WebVm.synth_config(fp, requests, scale.seed).generate();
        let cells = vec![
            (SsdConfig::paper(flash, Scheme::Baseline), &trace),
            (SsdConfig::paper(flash, Scheme::Cagc), &trace),
        ];
        let reps = run_cells(&cells, scale.workers);
        for r in &reps {
            t.row(vec![
                format!("{:.0}%", frac * 100.0),
                r.scheme.clone(),
                r.gc.blocks_erased.to_string(),
                format!("{:.3}", r.waf()),
                format!("{:.1}us", r.gc_period_mean_ns() / 1000.0),
            ]);
            csv.push_str(&format!(
                "{frac},{},{},{:.4},{:.2}\n",
                r.scheme,
                r.gc.blocks_erased,
                r.waf(),
                r.gc_period_mean_ns() / 1000.0
            ));
        }
    }
    text.push_str(&t.render());
    text.push_str(
        "\nBaseline GC cost grows sharply toward full devices; CAGC flattens the\n\
         curve because deduplication shrinks the live data the collector must carry.\n",
    );
    Artifacts { text, csv: vec![("sweep_utilization.csv".into(), csv)] }
}

/// Extension study: wear totals and wear evenness. Sec. II-C notes that
/// cold-data separation can skew wear under greedy selection — CAGC's
/// cold region is rarely erased, concentrating erases on hot blocks.
/// This measures both total wear (mean erase count, endurance) and its
/// spread (stddev, evenness) per scheme and policy.
pub fn wear_study(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let mut text = String::from(
        "Extension — wear totals and evenness (Sec. II-C's wear-leveling concern)\n\n",
    );
    let mut t = Table::new(vec![
        "Workload", "Policy", "Scheme", "Erase mean", "Erase max", "Erase stddev",
    ]);
    let mut csv =
        String::from("workload,policy,scheme,erase_mean,erase_max,erase_stddev\n");
    let requests = scale.requests.min(100_000);
    for w in [FiuWorkload::Mail, FiuWorkload::WebVm] {
        let trace =
            w.synth_config(scale.footprint_pages(w), requests, scale.seed).generate();
        for policy in [VictimKind::Greedy, VictimKind::CostBenefit] {
            let mut cells = Vec::new();
            for scheme in [Scheme::Baseline, Scheme::Cagc] {
                let mut cfg = SsdConfig::paper(flash, scheme);
                cfg.victim = policy;
                cells.push((cfg, &trace));
            }
            let reps = run_cells(&cells, scale.workers);
            for r in &reps {
                t.row(vec![
                    w.name().to_string(),
                    policy.name().to_string(),
                    r.scheme.clone(),
                    format!("{:.2}", r.wear.2),
                    r.wear.1.to_string(),
                    format!("{:.2}", r.wear_stddev),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{:.3},{},{:.3}\n",
                    w.name(),
                    policy.name(),
                    r.scheme,
                    r.wear.2,
                    r.wear.1,
                    r.wear_stddev
                ));
            }
        }
    }
    text.push_str(&t.render());
    text.push_str(
        "\nCAGC cuts total wear (mean erase count) roughly in half — the endurance\n\
         win implied by Fig. 9 — and, in these runs, also narrows the per-block\n\
         spread. The skew Sec. II-C worries about (a never-erased cold region) did\n\
         not dominate here; cost-benefit selection keeps the spread tightest.\n",
    );
    Artifacts { text, csv: vec![("wear_study.csv".into(), csv)] }
}

/// Extension comparison: the inline-dedup design space (the paper's
/// Sec. I/V discusses CAFTL's sampling/pre-hash mitigation). Fresh-device
/// latency (the Fig. 2 axis) and dedup coverage for Inline-Dedupe vs the
/// CAFTL-style Inline-Sampled variant vs CAGC.
pub fn compare_inline(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let budget_pages = flash.geometry().total_pages() / 4;
    let mut text = String::from(
        "Extension — inline dedup variants on a fresh ULL device\n\
         (Inline-Sampled = CAFTL-style pre-hash screening, ~CAFTL [2] in the paper)\n\n",
    );
    let mut t = Table::new(vec![
        "Workload", "Scheme", "Mean resp (norm)", "Flash programs", "Dedup hits",
    ]);
    let mut csv = String::from("workload,scheme,mean_us,normalized,programs,dedup_hits\n");
    for w in FiuWorkload::ALL {
        let requests =
            (budget_pages as f64 / (w.write_ratio() * w.mean_req_pages())) as usize;
        let fp = (flash.logical_pages() as f64 * 0.15) as u64;
        let mut cfg = w.synth_config(fp, requests, scale.seed);
        cfg.prefill_fraction = 0.5;
        let trace = cfg.generate();
        let schemes =
            [Scheme::Baseline, Scheme::InlineDedup, Scheme::InlineSampled, Scheme::Cagc];
        let cells: Vec<_> =
            schemes.iter().map(|&s| (SsdConfig::paper(flash, s), &trace)).collect();
        let reports = run_cells(&cells, scale.workers);
        let base_mean = reports[0].all.mean_ns;
        for r in &reports {
            let norm = r.all.mean_ns / base_mean;
            t.row(vec![
                w.name().to_string(),
                r.scheme.clone(),
                format!("{:.1}us ({norm:.2}x)", r.all.mean_ns / 1000.0),
                r.total_programs.to_string(),
                r.index.hits.to_string(),
            ]);
            csv.push_str(&format!(
                "{},{},{:.2},{:.4},{},{}\n",
                w.name(),
                r.scheme,
                r.all.mean_ns / 1000.0,
                norm,
                r.total_programs,
                r.index.hits
            ));
        }
    }
    text.push_str(&t.render());
    text.push_str(
        "\nInline-Sampled recovers most of Inline-Dedupe's latency loss by skipping\n\
         fingerprints for first sightings, at the cost of storing one extra copy per\n\
         duplicated content; CAGC pays nothing on the write path at all.\n",
    );
    Artifacts { text, csv: vec![("compare_inline.csv".into(), csv)] }
}

/// Extension ablation: idle-period background GC (Sec. III-B notes SSDs
/// use idle periods for GC; the paper's evaluation triggers on the
/// watermark only). Measures how much foreground interference background
/// collection removes for Baseline and CAGC.
pub fn ablate_idle_gc(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let mut text = String::from(
        "Extension — idle-period background GC (off = paper's watermark-only trigger)\n\n",
    );
    let mut t = Table::new(vec![
        "Workload", "Scheme", "Idle GC", "GC-period mean", "p99", "Blocks erased",
    ]);
    let mut csv =
        String::from("workload,scheme,idle_gc,gc_mean_us,p99_us,blocks_erased\n");
    for w in FiuWorkload::ALL {
        let trace = w
            .synth_config(scale.footprint_pages(w), scale.requests_for(w), scale.seed)
            .generate();
        let mut cells = Vec::new();
        for scheme in [Scheme::Baseline, Scheme::Cagc] {
            for idle in [false, true] {
                let mut cfg = SsdConfig::paper(flash, scheme);
                cfg.idle_gc = idle;
                cells.push((cfg, &trace));
            }
        }
        let reps = run_cells(&cells, scale.workers);
        for (i, r) in reps.iter().enumerate() {
            let idle = i % 2 == 1;
            t.row(vec![
                w.name().to_string(),
                r.scheme.clone(),
                if idle { "on" } else { "off" }.to_string(),
                format!("{:.1}us", r.gc_period_mean_ns() / 1000.0),
                format!("{:.1}us", r.all.p99_ns as f64 / 1000.0),
                r.gc.blocks_erased.to_string(),
            ]);
            csv.push_str(&format!(
                "{},{},{},{:.2},{:.2},{}\n",
                w.name(),
                r.scheme,
                idle,
                r.gc_period_mean_ns() / 1000.0,
                r.all.p99_ns as f64 / 1000.0,
                r.gc.blocks_erased
            ));
        }
    }
    text.push_str(&t.render());
    Artifacts { text, csv: vec![("ablate_idle_gc.csv".into(), csv)] }
}

/// Ablation: GC watermark sweep (Table I default: 20 % of the OP pool).
pub fn ablate_watermark(scale: &Scale) -> Artifacts {
    let watermarks = [0.10, 0.20, 0.30];
    let mut text = String::from("Ablation — GC trigger watermark (fraction of OP pool)\n\n");
    let mut t = Table::new(vec![
        "Workload", "Watermark", "Scheme", "Blocks erased", "GC-period mean",
    ]);
    let mut csv = String::from("workload,watermark,scheme,blocks_erased,gc_mean_us\n");
    for w in FiuWorkload::ALL {
        let trace = w
            .synth_config(scale.footprint_pages(w), scale.requests_for(w), scale.seed)
            .generate();
        for &wm in &watermarks {
            let mut flash = scale.flash();
            flash.gc_watermark = wm;
            let cells = vec![
                (SsdConfig::paper(flash, Scheme::Baseline), &trace),
                (SsdConfig::paper(flash, Scheme::Cagc), &trace),
            ];
            let reps = run_cells(&cells, scale.workers);
            for r in &reps {
                t.row(vec![
                    w.name().to_string(),
                    format!("{:.0}%", wm * 100.0),
                    r.scheme.clone(),
                    r.gc.blocks_erased.to_string(),
                    format!("{:.1}us", r.gc_period_mean_ns() / 1000.0),
                ]);
                csv.push_str(&format!(
                    "{},{wm},{},{},{:.2}\n",
                    w.name(),
                    r.scheme,
                    r.gc.blocks_erased,
                    r.gc_period_mean_ns() / 1000.0
                ));
            }
        }
    }
    text.push_str(&t.render());
    Artifacts { text, csv: vec![("ablate_watermark.csv".into(), csv)] }
}

/// Extension study — trim sensitivity (Frankie et al.: trim acts as
/// dynamic overprovisioning). A Web-vm-like stream is trim-intensified at
/// several fractions with [`cagc_workloads::inject_trims`], then each
/// point is replayed twice: honoring the hints (`honor_trim = true`, the
/// default) and ignoring them (`honor_trim = false`, a trim-blind device).
/// The gap between the two arms is the write-amplification and erase
/// headroom the hints buy; it widens with trim intensity.
pub fn sweep_trim(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    let fractions = [0.0, 0.05, 0.10, 0.20, 0.35];
    let mut text = String::from(
        "Extension — trim sensitivity (trim as dynamic overprovisioning)\n\
         (each workload point replayed honoring vs ignoring the same trim stream)\n\n",
    );
    let mut t = Table::new(vec![
        "Trim frac", "Scheme", "Honored", "Blocks erased", "Pages migrated",
        "Trim-reclaimed", "WAF",
    ]);
    let mut csv = String::from(
        "trim_fraction,scheme,honor_trim,blocks_erased,pages_migrated,trim_reclaimed_pages,waf\n",
    );
    let requests = scale.requests.min(60_000);
    let base = FiuWorkload::WebVm
        .synth_config(scale.footprint_pages(FiuWorkload::WebVm), requests, scale.seed)
        .generate();
    for &frac in &fractions {
        let trace = cagc_workloads::inject_trims(&base, frac, 6, scale.seed);
        let mut cells = Vec::new();
        for scheme in [Scheme::Baseline, Scheme::Cagc] {
            for honor in [true, false] {
                let mut cfg = SsdConfig::paper(flash, scheme);
                cfg.honor_trim = honor;
                cells.push((cfg, &trace));
            }
        }
        let reps = run_cells(&cells, scale.workers);
        for (i, r) in reps.iter().enumerate() {
            let honor = i % 2 == 0;
            t.row(vec![
                format!("{:.0}%", frac * 100.0),
                r.scheme.clone(),
                if honor { "yes" } else { "no" }.to_string(),
                r.gc.blocks_erased.to_string(),
                r.gc.pages_migrated.to_string(),
                r.gc.trim_reclaimed_pages.to_string(),
                format!("{:.3}", r.waf()),
            ]);
            csv.push_str(&format!(
                "{frac},{},{honor},{},{},{},{:.4}\n",
                r.scheme,
                r.gc.blocks_erased,
                r.gc.pages_migrated,
                r.gc.trim_reclaimed_pages,
                r.waf()
            ));
        }
    }
    text.push_str(&t.render());
    text.push_str(
        "\nHonoring trims strictly dominates ignoring them, and the gap widens with\n\
         trim intensity: every trimmed page is garbage the collector reclaims for\n\
         free instead of migrating — exactly the dynamic-overprovisioning effect\n\
         Frankie et al. analyze. See docs/TRIM.md for the data path.\n",
    );
    Artifacts { text, csv: vec![("sweep_trim.csv".into(), csv)] }
}

/// Extension study — fault sensitivity. A Web-vm-like stream is replayed
/// under rising program/erase/read-ECC fault rates (seeded, deterministic;
/// see docs/FAULTS.md); every fault is absorbed by the FTL's recovery
/// policies — program retries on fresh blocks, bad-block retirement on
/// erase failure, ECC re-reads with a heroic-decode fallback — so the
/// figure of merit is what that robustness *costs*: extra programs from
/// retries, capacity lost to retirement, and latency from backoffs and
/// re-reads.
pub fn sweep_faults(scale: &Scale) -> Artifacts {
    let flash = scale.flash();
    // (program, erase, read-ECC) failure probabilities per attempt. The
    // top point is far beyond healthy NAND; it bounds the envelope.
    let rates = [0.0, 1e-4, 1e-3, 5e-3, 2e-2];
    let mut text = String::from(
        "Extension — fault sensitivity (injected program/erase/read-ECC failures)\n\
         (all faults absorbed by FTL policy; columns show what absorption costs)\n\n",
    );
    let mut t = Table::new(vec![
        "Fault rate", "Scheme", "Prog fails", "Erase fails", "ECC errs",
        "Retired", "Forced", "WAF", "Mean us", "P99 us",
    ]);
    let mut csv = String::from(
        "fault_rate,scheme,program_failures,erase_failures,read_ecc_errors,\
         blocks_retired,program_retries,forced_programs,read_retries,ecc_decodes,\
         writes_rejected,waf,mean_us,p99_us\n",
    );
    let requests = scale.requests.min(60_000);
    let trace = FiuWorkload::WebVm
        .synth_config(scale.footprint_pages(FiuWorkload::WebVm), requests, scale.seed)
        .generate();
    for &rate in &rates {
        let mut cells = Vec::new();
        for scheme in [Scheme::Baseline, Scheme::Cagc] {
            let mut cfg = SsdConfig::paper(flash, scheme);
            cfg.faults = cagc_flash::FaultConfig {
                program_fail_prob: rate,
                erase_fail_prob: rate / 10.0,
                read_ecc_prob: rate,
                seed: scale.seed,
                ..cagc_flash::FaultConfig::none()
            };
            cells.push((cfg, &trace));
        }
        let reps = run_cells(&cells, scale.workers);
        for r in &reps {
            let f = &r.faults;
            t.row(vec![
                format!("{rate}"),
                r.scheme.clone(),
                f.program_failures.to_string(),
                f.erase_failures.to_string(),
                f.read_ecc_errors.to_string(),
                f.blocks_retired.to_string(),
                f.forced_programs.to_string(),
                format!("{:.3}", r.waf()),
                format!("{:.1}", r.all.mean_ns / 1_000.0),
                format!("{:.1}", r.all.p99_ns as f64 / 1_000.0),
            ]);
            csv.push_str(&format!(
                "{rate},{},{},{},{},{},{},{},{},{},{},{:.4},{:.2},{:.2}\n",
                r.scheme,
                f.program_failures,
                f.erase_failures,
                f.read_ecc_errors,
                f.blocks_retired,
                f.program_retries,
                f.forced_programs,
                f.read_retries,
                f.ecc_decodes,
                f.writes_rejected,
                r.waf(),
                r.all.mean_ns / 1_000.0,
                r.all.p99_ns as f64 / 1_000.0,
            ));
        }
    }
    text.push_str(&t.render());
    text.push_str(
        "\nFault handling is pay-as-you-go: the zero-rate row is bit-identical to a\n\
         fault-free build, and rising rates surface as retry programs (WAF) and\n\
         retry/backoff latency rather than as lost writes — no row ever loses\n\
         acknowledged data. Erase failures permanently retire blocks; at these\n\
         rates the capacity loss stays far from the read-only floor. See\n\
         docs/FAULTS.md for the fault model and recovery policies.\n",
    );
    Artifacts { text, csv: vec![("sweep_faults.csv".into(), csv)] }
}

// ------------------------------------------- Extension: queue-depth sweep

/// Extension study — queue-depth sensitivity through the NVMe-style
/// multi-queue host interface (`cagc-host`). A GC-heavy Mail-like stream
/// is replayed **closed-loop** (fio `iodepth` semantics: the host keeps
/// exactly QD commands outstanding) at rising depths, with the device's
/// preemptible GC off and on. Host-observed latency — submission to
/// completion interrupt — therefore includes every queueing effect the
/// synchronous replay cannot see: commands stuck behind a whole-victim GC
/// round stack up with QD, which is exactly where sliced GC earns its
/// keep.
///
/// The QD=1 / preempt-off cell doubles as the interface's anchor: it is
/// asserted byte-identical (device-side report) to the sequential
/// `t = process(at = t)` chain, so every other cell differs from the
/// golden synchronous path only by what the queues add.
pub fn sweep_qd(scale: &Scale, resilient: bool) -> Artifacts {
    use cagc_core::Ssd;
    use cagc_harness::pool::map_ordered;
    use cagc_harness::ToJson;
    use cagc_host::{HostConfig, HostInterface, HostReport};
    use cagc_workloads::Request;

    let flash = scale.flash();
    let requests = scale.requests.min(60_000);
    let trace = FiuWorkload::Mail
        .synth_config(scale.footprint_pages(FiuWorkload::Mail), requests, scale.seed)
        .generate();

    let depths: [u32; 6] = [1, 2, 4, 8, 16, 32];
    let cells: Vec<(u32, bool)> = depths
        .iter()
        .flat_map(|&qd| [(qd, false), (qd, true)])
        .collect();

    let device = |preempt: bool| {
        let mut cfg = SsdConfig::paper(flash, Scheme::Cagc);
        cfg.gc_preempt = preempt;
        cfg.gc_slice_pages = 8;
        cfg
    };
    let run_cell = |&(qd, preempt): &(u32, bool)| -> HostReport {
        let mut host_cfg = HostConfig::passthrough();
        host_cfg.queue_depth = qd;
        host_cfg.gc_pump = preempt;
        if resilient {
            // Arm the full resilience policy (deadline well above the
            // fault-free tail). On a fault-free device it must be
            // invisible: verify.sh gates that this sweep's CSVs stay
            // byte-identical with and without --resilient.
            host_cfg = host_cfg.with_resilience(1_000_000_000, 3, 50_000, 10_000, scale.seed);
        }
        let mut host = HostInterface::new(Ssd::new(device(preempt)), host_cfg);
        let report = host.replay_closed_loop(&trace);
        host.ssd().audit().expect("audit after sweep-qd cell");
        report
    };
    let reports = map_ordered(&cells, scale.workers, run_cell);

    // Anchor: QD=1 preempt-off is the sequential synchronous chain.
    let mut reference = Ssd::new(device(false));
    let mut t = 0;
    for r in &trace.requests {
        t = reference.process(&Request { at_ns: t, ..r.clone() });
    }
    let want = reference.report(&trace.name).to_json().render();
    let qd1 = &reports[cells.iter().position(|&c| c == (1, false)).expect("cell present")];
    assert_eq!(
        qd1.device.to_json().render(),
        want,
        "QD=1 preempt-off must be byte-identical to the synchronous chain"
    );

    let mut text = String::from(
        "Extension — queue-depth sensitivity (closed-loop, multi-queue host interface)\n\
         (host-observed read latency: submission to completion interrupt)\n\n\
         QD=1 equivalence OK (device report byte-identical to synchronous chain)\n\n",
    );
    let us = |ns: u64| ns as f64 / 1_000.0;
    let mut tab = Table::new(vec![
        "QD", "Preempt", "Read p50 us", "p95 us", "p99 us", "p99.9 us", "max us",
        "Write p99 us", "Mean us",
    ]);
    let mut csv = String::from(
        "workload,queue_pairs,queue_depth,preempt,reads_p50_us,reads_p95_us,reads_p99_us,\
         reads_p999_us,reads_max_us,writes_p99_us,all_mean_us,backlogged,irqs,pump_slices,\
         blocks_erased,waf\n",
    );
    for (&(qd, preempt), r) in cells.iter().zip(&reports) {
        tab.row(vec![
            qd.to_string(),
            if preempt { "on" } else { "off" }.to_string(),
            format!("{:.1}", us(r.reads.p50_ns)),
            format!("{:.1}", us(r.reads.p95_ns)),
            format!("{:.1}", us(r.reads.p99_ns)),
            format!("{:.1}", us(r.reads.p999_ns)),
            format!("{:.1}", us(r.reads.max_ns)),
            format!("{:.1}", us(r.writes.p99_ns)),
            format!("{:.1}", r.all.mean_ns / 1_000.0),
        ]);
        csv.push_str(&format!(
            "{},1,{qd},{preempt},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{:.4}\n",
            trace.name,
            us(r.reads.p50_ns),
            us(r.reads.p95_ns),
            us(r.reads.p99_ns),
            us(r.reads.p999_ns),
            us(r.reads.max_ns),
            us(r.writes.p99_ns),
            r.all.mean_ns / 1_000.0,
            r.backlogged,
            r.irqs,
            r.pump_slices,
            r.device.gc.blocks_erased,
            r.device.waf(),
        ));
    }
    text.push_str(&tab.render());

    // Fig. 12-style tail curves where the preemption gap lives: QD=8.
    let mut cdf_csv = String::from("source,queue_depth,preempt,latency_us,cum_frac\n");
    for (&(qd, preempt), r) in cells.iter().zip(&reports) {
        if qd != 8 {
            continue;
        }
        for p in r.read_cdf.downsample(96) {
            cdf_csv.push_str(&format!(
                "closed-loop,{qd},{preempt},{:.3},{:.6}\n",
                us(p.value_ns),
                p.fraction
            ));
        }
    }

    text.push_str(
        "\nRead p99 climbs with queue depth — deeper queues stack more commands\n\
         behind every GC round — and preemptible GC claws the extreme tail back:\n\
         at QD >= 8 the p99.9 read latency drops versus whole-victim GC because a\n\
         queued read waits for at most one migration quantum (gc_slice_pages)\n\
         instead of a full victim migration + erase. Medians are untouched; the\n\
         knob is tail-only, exactly as intended. See docs/HOST_INTERFACE.md.\n",
    );
    Artifacts {
        text,
        csv: vec![
            ("sweep_qd.csv".into(), csv),
            ("gc_preempt_cdf.csv".into(), cdf_csv),
        ],
    }
}

/// Extension — fleet-scale multi-tenant simulation: N devices, each
/// serving a tenant blend, fanned out over the deterministic dynamic
/// scheduler (`cagc_harness::pool::map_ordered_dynamic_chunked`).
///
/// Four artifacts:
///
/// * `sweep_fleet.csv` — per-mix WAF / dedup / erase rollups over a
///   (fleet size × scheme) grid of direct-replay fleets;
/// * `fleet_qos.csv` — per-(mix, tenant) end-to-end latency percentiles
///   from the largest CAGC fleet replayed through the NVMe-style
///   multi-queue host interface (`cagc_host`);
/// * `fleet_timeline.csv` — the observability plane's time-resolved view
///   of a host-mode CAGC fleet with telemetry and SLO tracking armed:
///   per-device gauge series (namespaced `dev{id}/…`), exact `fleet/…`
///   merges, and per-tenant SLO violation-rate series
///   (`slo/{mix}/{tenant}`);
/// * an **acceptance gate** (asserted, and printed for the CI log):
///   measured steady-state WAF under uniform random traffic must track
///   the Li/Lee/Lui mean-field greedy-cleaning curve
///   (`cagc_fleet::analytic`) within tolerance, averaged over a small
///   fleet of independently seeded devices.
///
/// Every fleet run is byte-identical across worker counts (the property
/// `scripts/verify.sh` gates by comparing `--workers 1` against machine
/// parallelism); `--workers` sets the fan-out width.
pub fn sweep_fleet(scale: &Scale) -> Artifacts {
    use cagc_fleet::analytic::{uniform_validation, waf_fifo, waf_greedy, UniformValidation};
    use cagc_fleet::{run_fleet, FleetConfig, FleetTelemetryConfig, SloConfig, TenantMix};

    // The fleet grid runs tiny devices: fleet effects are cross-device,
    // and per-mix ratios are stable in device size (EXPERIMENTS.md).
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    let quick = scale.requests <= 60_000;
    let (fleet_sizes, requests_per_tenant): (&[usize], usize) =
        if quick { (&[4, 8], 300) } else { (&[8, 16, 32], 1_500) };

    let base = FleetConfig {
        devices: 0, // per cell
        mixes: TenantMix::all(),
        scheme: Scheme::Cagc, // per cell
        flash,
        requests_per_tenant,
        footprint_frac: 0.90,
        seed: scale.seed,
        // 3 groups against 4 mixes: coprime cycles, so same-mix devices
        // differ (group = d % 3 is not a function of mix = d % 4).
        seed_groups: 3,
        workers: scale.workers,
        chunk: 1,
        host_queues: None,
        faults: cagc_flash::FaultConfig::none(),
        gc_preempt: false,
        read_only_floor_blocks: None,
        telemetry: None, // armed only in the observability cell
        slo: None,
    };

    let mut text = String::from(
        "Extension — fleet-scale multi-tenant simulation\n\
         (N devices x per-tenant namespace blends, deterministic dynamic fan-out)\n\n",
    );
    let mut csv = String::from(
        "fleet_devices,scheme,mix,devices,waf,dedup_hit_rate,erases,host_pages,\
         gc_migrations,distinct_traces\n",
    );
    let mut tab = Table::new(vec![
        "Fleet", "Scheme", "Mix", "Devs", "WAF", "Dedup hit", "Erases",
    ]);
    let mut qos_csv = None;
    for &devices in fleet_sizes {
        for scheme in Scheme::ALL {
            let cfg = FleetConfig { devices, scheme, ..base.clone() };
            let rep = run_fleet(&cfg);
            for m in &rep.by_mix {
                tab.row(vec![
                    devices.to_string(),
                    scheme.name().to_string(),
                    m.mix.clone(),
                    m.devices.to_string(),
                    format!("{:.4}", m.totals.waf()),
                    format!("{:.4}", m.totals.dedup_hit_rate()),
                    m.totals.total_erases.to_string(),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{},{:.4},{:.4},{},{},{},{}\n",
                    devices,
                    scheme.name(),
                    m.mix,
                    m.devices,
                    m.totals.waf(),
                    m.totals.dedup_hit_rate(),
                    m.totals.total_erases,
                    m.totals.host_pages_written,
                    m.totals.pages_migrated,
                    rep.distinct_traces,
                ));
            }
            // QoS artifact: the largest CAGC fleet, replayed end-to-end
            // through the NVMe-style multi-queue host interface so tenant
            // latency includes queueing, not just device service time.
            if scheme == Scheme::Cagc && devices == *fleet_sizes.last().expect("non-empty") {
                let host_cfg = FleetConfig { host_queues: Some((2, 8)), ..cfg.clone() };
                let host_rep = run_fleet(&host_cfg);
                text.push_str(&host_rep.render());
                text.push_str("\n\n");
                qos_csv = Some(host_rep.qos_csv());
            }
        }
    }
    // Observability cell: the smallest CAGC fleet, host-mode, with the
    // fleet observability plane armed — gauges-only telemetry per device
    // (namespaced and merged into the fleet timeline) plus per-tenant
    // SLO tracking against a 100 ms host-observed objective. The plane
    // cannot perturb the simulation (gated in cagc-fleet and by
    // scripts/verify.sh), so the grid's artifacts above are
    // byte-identical to an unobserved sweep; fleet_timeline.csv adds the
    // time-resolved view.
    let obs_cfg = FleetConfig {
        devices: fleet_sizes[0],
        scheme: Scheme::Cagc,
        host_queues: Some((2, 8)),
        telemetry: Some(FleetTelemetryConfig::gauges_only(100_000_000, 1)),
        slo: Some(SloConfig::uniform(100_000_000, 900, 100_000_000)),
        ..base.clone()
    };
    let obs_rep = run_fleet(&obs_cfg);
    text.push_str("Observability cell (host-mode CAGC fleet, gauges + per-tenant SLO armed):\n");
    text.push_str(&obs_rep.render());
    text.push_str("\n\n");
    let timeline_csv = obs_rep.timeline_csv();

    text.push_str(&tab.render());

    // Acceptance gate: a small fleet of independently seeded devices
    // under the analytic model's regime (uniform random single-page
    // overwrites, greedy victims, no dedup) must land on the mean-field
    // greedy curve. FIFO bounds it from above.
    let writes = if quick { 24_000 } else { 60_000 };
    let tolerance = if quick { 0.12 } else { 0.10 };
    let vals: Vec<UniformValidation> = (0..3)
        .map(|d| uniform_validation(flash, 0.95, writes, scale.seed.wrapping_add(d)))
        .collect();
    let measured = vals.iter().map(|v| v.measured).sum::<f64>() / vals.len() as f64;
    let rho = vals[0].rho;
    let (greedy, fifo) = (vals[0].greedy, vals[0].fifo);
    let rel_err = (measured - greedy).abs() / greedy;
    text.push_str(&format!(
        "\n\nAnalytic acceptance (Li/Lee/Lui mean-field, uniform random traffic):\n\
         \x20 rho {rho:.4}  measured WAF {measured:.3} (3-device fleet)  \
         greedy model {greedy:.3}  fifo model {fifo:.3}\n\
         \x20 fleet WAF tracks analytic greedy curve: rel err {:.1}% (tolerance {:.0}%) OK\n",
        rel_err * 100.0,
        tolerance * 100.0,
    ));
    assert!(
        rel_err < tolerance,
        "fleet WAF {measured:.3} strays from analytic greedy {greedy:.3} \
         (rel err {:.1}% > {:.0}%)",
        rel_err * 100.0,
        tolerance * 100.0,
    );
    assert!(measured < fifo * 1.10, "greedy cleaning must not exceed the FIFO bound");
    debug_assert!(waf_greedy(rho, 32) < waf_fifo(rho));

    text.push_str(
        "\nDedup-rich mixes (mail-heavy) hold the lowest WAF under CAGC — cross-\n\
         tenant duplicate writes dedupe inside a device — while noisy-neighbor\n\
         fleets erase the most per host page. Per-tenant latency percentiles\n\
         (fleet_qos.csv) come from the host-interface replay of the largest\n\
         CAGC fleet; see docs/FLEET.md.\n",
    );
    Artifacts {
        text,
        csv: vec![
            ("sweep_fleet.csv".into(), csv),
            ("fleet_qos.csv".into(), qos_csv.expect("CAGC cell ran at the largest fleet size")),
            (
                "fleet_timeline.csv".into(),
                timeline_csv.expect("the observability cell was armed"),
            ),
        ],
    }
}

/// Extension — chaos campaign: fault intensity × scheme × GC preemption
/// over fleets of deliberately tiny (32-block) devices whose read-only
/// floor spans the whole device, so a single retired block degrades the
/// cell and the remaining traffic drains as attributed failures.
///
/// Two asserted gates, printed for the CI log:
///
/// * **pay-as-you-go** — the zero-intensity column is byte-identical to
///   the same fleet with [`cagc_flash::FaultConfig::none`]: an armed but
///   silent fault plan must not perturb a single byte;
/// * **degradation** — every harsh-intensity cell degrades at least one
///   device and attributes its tenants' failed ops.
///
/// `sweep_chaos.csv` is byte-identical across worker counts (gated by
/// `scripts/verify.sh` like the fleet sweep).
pub fn sweep_chaos(scale: &Scale) -> Artifacts {
    use cagc_fleet::{run_fleet, FleetConfig, TenantMix};
    use cagc_harness::ToJson;

    let quick = scale.requests <= 60_000;
    let (devices, requests_per_tenant) = if quick { (4usize, 400usize) } else { (8, 800) };

    // Micro device: GC churns within a few hundred requests, so erase
    // failures land while the replay is still short (docs/FAULTS.md).
    let flash = cagc_flash::UllConfig {
        channels: 1,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 16,
        pages_per_block: 8,
        page_size: 4096,
        op_ratio: 0.12,
        gc_watermark: 0.20,
        hash_ns: 14_000,
        timing: cagc_flash::Timing::ull(),
    };
    let base = FleetConfig {
        devices,
        mixes: vec![TenantMix::balanced(), TenantMix::noisy_neighbor()],
        scheme: Scheme::Cagc, // per cell
        flash,
        requests_per_tenant,
        footprint_frac: 0.90,
        seed: scale.seed,
        seed_groups: 2,
        workers: scale.workers,
        chunk: 1,
        host_queues: None,
        faults: cagc_flash::FaultConfig::none(), // per cell
        gc_preempt: false,                       // per cell
        // The whole device: the first retirement trips read-only, long
        // before repeated erase failures can bleed the GC reserve dry.
        read_only_floor_blocks: Some(flash.geometry().total_blocks()),
        telemetry: None,
        slo: None,
    };

    // Erase-failure probability is the intensity axis; correctable ECC
    // noise and the unrecoverable escalation ride along at fixed rates.
    let intensities: [(&str, f64); 3] = [("none", 0.0), ("mild", 0.0005), ("harsh", 0.01)];
    let cell = |intensity: f64, scheme: Scheme, gc_preempt: bool| FleetConfig {
        scheme,
        gc_preempt,
        faults: cagc_flash::FaultConfig {
            erase_fail_prob: intensity,
            read_ecc_prob: if intensity > 0.0 { 0.02 } else { 0.0 },
            unrecoverable_prob: if intensity > 0.0 { 0.3 } else { 0.0 },
            seed: scale.seed.wrapping_add(0xC4A0),
            ..cagc_flash::FaultConfig::none()
        },
        ..base.clone()
    };

    let mut text = String::from(
        "Extension — chaos campaign (fault intensity x scheme x GC preemption)\n\
         (micro-device fleets; read-only floor = whole device, so the first\n\
         \x20retired block degrades the cell and drains its tenants)\n\n",
    );
    let mut csv = String::from(
        "intensity,erase_fail_prob,scheme,preempt,devices,degraded_devices,\
         surviving_devices,failed_ops,first_degradation_ns,fleet_waf,survivor_waf,\
         total_erases\n",
    );
    let mut tab = Table::new(vec![
        "Intensity", "Scheme", "Preempt", "Degraded", "Failed ops", "WAF", "Survivor WAF",
    ]);
    let mut harsh_all_degrade = true;
    for &(label, p) in &intensities {
        for scheme in Scheme::ALL {
            for preempt in [false, true] {
                let rep = run_fleet(&cell(p, scheme, preempt));
                if label == "none" {
                    // Pay-as-you-go: an armed-but-silent plan (zero
                    // probabilities, nonzero seed) must not perturb a
                    // single byte vs. a fault-free fleet.
                    let clean = run_fleet(&FleetConfig {
                        scheme,
                        gc_preempt: preempt,
                        ..base.clone()
                    });
                    assert_eq!(
                        rep.to_json().render(),
                        clean.to_json().render(),
                        "zero-intensity chaos cell must match the fault-free fleet"
                    );
                    assert_eq!(rep.degraded_devices, 0);
                    assert_eq!(rep.failed_ops, 0);
                }
                if label == "harsh" && rep.degraded_devices == 0 {
                    harsh_all_degrade = false;
                }
                let survivors = rep.fleet.runs - rep.degraded_devices;
                let survivor_waf =
                    if survivors > 0 { rep.survivor_totals.waf() } else { f64::NAN };
                tab.row(vec![
                    label.to_string(),
                    scheme.name().to_string(),
                    if preempt { "on" } else { "off" }.to_string(),
                    format!("{}/{}", rep.degraded_devices, rep.fleet.runs),
                    rep.failed_ops.to_string(),
                    format!("{:.4}", rep.waf()),
                    format!("{survivor_waf:.4}"),
                ]);
                csv.push_str(&format!(
                    "{label},{p},{},{preempt},{},{},{survivors},{},{},{:.4},{survivor_waf:.4},{}\n",
                    scheme.name(),
                    rep.fleet.runs,
                    rep.degraded_devices,
                    rep.failed_ops,
                    rep.first_degradation_ns.unwrap_or(0),
                    rep.waf(),
                    rep.fleet.total_erases,
                ));
            }
        }
    }
    assert!(
        harsh_all_degrade,
        "every harsh-intensity cell must degrade at least one device"
    );
    text.push_str(&tab.render());
    text.push_str(
        "\nchaos gate OK: zero-fault cells byte-identical to the fault-free fleet,\n\
         every harsh cell degrades at least one device with tenant attribution.\n\
         Degraded cells reject writes as write-protected (NVMe 0x120) while\n\
         surviving devices keep serving; see docs/FAULTS.md.\n",
    );
    Artifacts { text, csv: vec![("sweep_chaos.csv".into(), csv)] }
}
