//! Compare a fresh `BENCH_*.json` against a committed baseline and fail
//! on regression — the performance gate `scripts/verify.sh` runs after the
//! correctness gates (see docs/PERFORMANCE.md for the policy).
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--tolerance-pct N]
//!             [--speedup-ref FILE --speedup-ref-name NAME
//!              --speedup-bench NAME --speedup-min X]
//! ```
//!
//! Every benchmark present in the baseline must exist in the fresh run and
//! its fresh median must not exceed the baseline median by more than the
//! tolerance (default 20 %, overridable with `--tolerance-pct` or the
//! `CAGC_BENCH_TOLERANCE_PCT` environment variable — raise it on noisy
//! shared machines). Fresh benchmarks missing from the baseline are listed
//! but never fail the check, so adding a benchmark does not require
//! regenerating the baseline in the same change. Being *faster* than the
//! baseline is always fine.
//!
//! The optional speedup clause asserts a *floor on improvement* rather
//! than a ceiling on regression: the fresh median of `--speedup-bench`
//! must be at least `--speedup-min` times faster than the median recorded
//! for `--speedup-ref-name` inside `--speedup-ref` (a committed reference
//! JSON, e.g. the pre-overhaul measurement). This is how the ≥5× hot-path
//! overhaul result stays locked in like a correctness property.

use cagc_harness::Json;
use std::process::ExitCode;

/// One benchmark row from a `BENCH_*.json` artifact.
struct Row {
    name: String,
    median_ns: f64,
}

fn die(msg: &str) -> ! {
    eprintln!("bench_check: {msg}");
    std::process::exit(2);
}

fn load_rows(path: &str) -> Vec<Row> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let Json::Obj(fields) = doc else { die(&format!("{path}: not a JSON object")) };
    let results = fields
        .iter()
        .find(|(k, _)| k == "results")
        .map(|(_, v)| v)
        .unwrap_or_else(|| die(&format!("{path}: no `results` array")));
    let Json::Arr(items) = results else { die(&format!("{path}: `results` is not an array")) };
    items
        .iter()
        .map(|item| {
            let Json::Obj(f) = item else { die(&format!("{path}: result row is not an object")) };
            let get = |key: &str| f.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let name = match get("name") {
                Some(Json::Str(s)) => s.clone(),
                _ => die(&format!("{path}: result row without a string `name`")),
            };
            let median_ns = match get("median_ns") {
                Some(Json::F64(v)) => *v,
                Some(Json::U64(v)) => *v as f64,
                Some(Json::I64(v)) => *v as f64,
                _ => die(&format!("{path}: `{name}` has no numeric `median_ns`")),
            };
            Row { name, median_ns }
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

struct Args {
    baseline: String,
    fresh: String,
    tolerance_pct: f64,
    speedup_ref: Option<String>,
    speedup_ref_name: Option<String>,
    speedup_bench: Option<String>,
    speedup_min: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: String::new(),
        fresh: String::new(),
        tolerance_pct: std::env::var("CAGC_BENCH_TOLERANCE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20.0),
        speedup_ref: None,
        speedup_ref_name: None,
        speedup_bench: None,
        speedup_min: None,
    };
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next().unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--tolerance-pct" => {
                let v = flag_value("--tolerance-pct");
                args.tolerance_pct =
                    v.parse().unwrap_or_else(|_| die(&format!("bad --tolerance-pct {v}")));
            }
            "--speedup-ref" => args.speedup_ref = Some(flag_value("--speedup-ref")),
            "--speedup-ref-name" => {
                args.speedup_ref_name = Some(flag_value("--speedup-ref-name"));
            }
            "--speedup-bench" => args.speedup_bench = Some(flag_value("--speedup-bench")),
            "--speedup-min" => {
                let v = flag_value("--speedup-min");
                args.speedup_min =
                    Some(v.parse().unwrap_or_else(|_| die(&format!("bad --speedup-min {v}"))));
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let [baseline, fresh] = positional.try_into().unwrap_or_else(|p: Vec<String>| {
        die(&format!("expected <baseline.json> <fresh.json>, got {} positionals", p.len()))
    });
    args.baseline = baseline;
    args.fresh = fresh;
    let speedup_parts = [
        args.speedup_ref.is_some(),
        args.speedup_ref_name.is_some(),
        args.speedup_bench.is_some(),
        args.speedup_min.is_some(),
    ];
    if speedup_parts.iter().any(|&s| s) && !speedup_parts.iter().all(|&s| s) {
        die("--speedup-ref, --speedup-ref-name, --speedup-bench and --speedup-min go together");
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let baseline = load_rows(&args.baseline);
    let fresh = load_rows(&args.fresh);
    let fresh_median = |name: &str| fresh.iter().find(|r| r.name == name).map(|r| r.median_ns);

    let mut failures = 0usize;
    println!(
        "{:<42} {:>12} {:>12} {:>8}  within ±{}%?",
        "benchmark", "baseline", "fresh", "delta", args.tolerance_pct
    );
    for b in &baseline {
        let Some(f) = fresh_median(&b.name) else {
            println!("{:<42} {:>12} {:>12} {:>8}  FAIL (missing from fresh run)",
                b.name, fmt_ns(b.median_ns), "-", "-");
            failures += 1;
            continue;
        };
        let delta_pct = (f - b.median_ns) / b.median_ns * 100.0;
        let ok = delta_pct <= args.tolerance_pct;
        println!(
            "{:<42} {:>12} {:>12} {:>+7.1}%  {}",
            b.name,
            fmt_ns(b.median_ns),
            fmt_ns(f),
            delta_pct,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    for f in &fresh {
        if !baseline.iter().any(|b| b.name == f.name) {
            println!("{:<42} {:>12} {:>12}       new  (not in baseline; not checked)",
                f.name, "-", fmt_ns(f.median_ns));
        }
    }

    if let (Some(ref_file), Some(ref_name), Some(bench), Some(min)) =
        (&args.speedup_ref, &args.speedup_ref_name, &args.speedup_bench, args.speedup_min)
    {
        let refs = load_rows(ref_file);
        let ref_median = refs
            .iter()
            .find(|r| &r.name == ref_name)
            .unwrap_or_else(|| die(&format!("{ref_file}: no benchmark named {ref_name}")))
            .median_ns;
        let f = fresh_median(bench)
            .unwrap_or_else(|| die(&format!("{}: no benchmark named {bench}", args.fresh)));
        let speedup = ref_median / f;
        let ok = speedup >= min;
        println!(
            "speedup: {} ({}) vs {} ({}) = {:.2}x, floor {:.2}x  {}",
            bench,
            fmt_ns(f),
            ref_name,
            fmt_ns(ref_median),
            speedup,
            min,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_check: {failures} failure(s). If this machine is noisy, re-run or raise \
             CAGC_BENCH_TOLERANCE_PCT (see docs/PERFORMANCE.md)."
        );
        return ExitCode::FAILURE;
    }
    println!("bench_check: OK");
    ExitCode::SUCCESS
}
