//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale quick|default|full] [--seed N] [--out DIR] [--workers N]
//!       [--trace PATH] [--trace-sample N] [--resilient] [--preempt]
//!       [--diff A B] [--smoke] CMD...
//!
//! CMD: table1 table2 fig2 fig6 fig9 fig10 fig11 fig12 fig13
//!      ablate-placement ablate-overlap ablate-threshold ablate-watermark
//!      compare-inline sweep-utilization sweep-trim sweep-faults sweep-qd
//!      sweep-fleet sweep-chaos wear
//!      smoke      (one seeded GC-heavy CAGC replay; with --trace, emits
//!                  a Chrome trace + JSONL event log — see docs/OBSERVABILITY.md)
//!      inspect    (trace analytics: span profile, GC-cycle anatomy, and
//!                  flamegraph from --trace PATH.jsonl or a fresh seeded
//!                  replay; --diff A B reports per-GC-phase time deltas
//!                  between two JSONL traces)
//!      all        (tables + every figure)
//!      ablations  (every ablation and extension study)
//! ```
//!
//! Text results go to stdout; CSV series are written under `--out`
//! (default `results/`). `--smoke` is shorthand for the `smoke` command;
//! `--trace-sample N` records every Nth host request's spans (GC, fault
//! and gauge activity is always recorded). `--preempt` runs the seeded
//! smoke/inspect replay with preemptible (sliced) GC. `--resilient` arms
//! the host retry/deadline policy in `sweep-qd` — on fault-free devices
//! it must change nothing (the byte-identity gate `scripts/verify.sh`
//! runs).

use cagc_bench::experiments as exp;
use cagc_bench::{Artifacts, Scale};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale quick|default|full] [--seed N] [--out DIR] [--workers N]\n\
         \x20            [--trace PATH] [--trace-sample N] [--resilient] [--preempt]\n\
         \x20            [--diff A B] [--smoke] CMD...\n\
         CMD: table1 table2 fig2 fig6 fig9 fig10 fig11 fig12 fig13\n\
         \x20    ablate-placement ablate-overlap ablate-threshold ablate-watermark ablate-idle-gc\n\
         \x20    compare-inline sweep-utilization sweep-trim sweep-faults sweep-qd sweep-fleet\n\
         \x20    sweep-chaos wear\n\
         \x20    smoke | inspect | all | ablations"
    );
    std::process::exit(2);
}

/// The `smoke` command: one seeded, GC-heavy CAGC replay on the tiny
/// device. With `--trace` it emits the two deterministic trace artifacts
/// (Chrome trace-event JSON at `path`, JSONL next to it) and proves the
/// Chrome document round-trips through the harness JSON parser before
/// anything touches disk.
fn smoke(scale: &Scale, trace_out: Option<&std::path::Path>, sample: u64, preempt: bool) {
    let mut ssd = smoke_device(scale, trace_out.is_some(), sample, preempt);
    let trace = smoke_trace(scale);
    let report = ssd.replay(&trace);
    println!("{}", report.render());
    if let Some(path) = trace_out {
        let chrome = ssd.chrome_trace().render();
        let parsed = cagc_harness::Json::parse(&chrome).expect("emitted trace must parse");
        assert_eq!(parsed.render(), chrome, "harness parser round-trip");
        std::fs::write(path, &chrome).expect("write Chrome trace");
        let jsonl_path = path.with_extension("jsonl");
        std::fs::write(&jsonl_path, ssd.trace_jsonl()).expect("write JSONL log");
        println!(
            "  trace: {} events recorded, {} dropped, parser round-trip OK",
            ssd.tracer().events().len(),
            ssd.tracer().dropped_events()
        );
        println!("  -> {}", path.display());
        println!("  -> {}", jsonl_path.display());
    }
}

/// The shared seeded workload behind `smoke` and `inspect`.
fn smoke_trace(scale: &Scale) -> cagc_workloads::Trace {
    use cagc_workloads::FiuWorkload;
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    FiuWorkload::Mail
        .synth_config((flash.logical_pages() as f64 * 0.9) as u64, 6_000, scale.seed)
        .generate()
}

/// The shared seeded device behind `smoke` and `inspect`.
fn smoke_device(scale: &Scale, traced: bool, sample: u64, preempt: bool) -> cagc_core::Ssd {
    use cagc_core::{Scheme, Ssd, SsdConfig, TraceConfig};
    let _ = scale;
    let mut cfg = SsdConfig::tiny(Scheme::Cagc);
    cfg.gc_preempt = preempt;
    let mut ssd = Ssd::new(cfg);
    if traced {
        ssd.enable_tracing(TraceConfig { sample, ..TraceConfig::default() });
    }
    ssd
}

/// The `inspect` command: in-tree trace analytics. With `--diff A B` it
/// compares two JSONL traces phase by phase (GC-anatomy deltas); with
/// `--trace PATH` it analyzes `PATH` (the JSONL the `smoke` command
/// writes); with neither it runs the seeded smoke replay (honoring
/// `--preempt`) and analyzes it live — the live span stream and its
/// JSONL round-trip are byte-equivalent (tested in `cagc-trace`).
fn inspect(
    scale: &Scale,
    out_dir: &std::path::Path,
    trace_in: Option<&std::path::Path>,
    diff: Option<(&std::path::Path, &std::path::Path)>,
    preempt: bool,
    sample: u64,
) {
    use cagc_trace::{from_tracer, parse_jsonl, GcAnatomy, ParsedTrace, SpanProfile};

    fn load(path: &std::path::Path) -> ParsedTrace {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        parse_jsonl(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
    }

    if let Some((a, b)) = diff {
        let an_a = GcAnatomy::from_spans(&load(a).spans);
        let an_b = GcAnatomy::from_spans(&load(b).spans);
        let csv = an_a.diff_csv(&an_b);
        println!("GC anatomy diff (A = {}, B = {}):", a.display(), b.display());
        print!("{csv}");
        let path = out_dir.join("inspect_diff.csv");
        std::fs::write(&path, &csv).expect("write diff CSV");
        println!("  -> {}", path.display());
        return;
    }

    let parsed = match trace_in {
        Some(p) => load(p),
        None => {
            let mut ssd = smoke_device(scale, true, sample, preempt);
            let _ = ssd.replay(&smoke_trace(scale));
            from_tracer(ssd.tracer())
        }
    };
    if parsed.dropped_events > 0 {
        println!(
            "WARNING: {} events were dropped at the tracer cap — the profile and \
             anatomy below are truncated",
            parsed.dropped_events
        );
    }
    let profile = SpanProfile::from_spans(&parsed.spans);
    let anatomy = GcAnatomy::from_spans(&parsed.spans);
    println!("{}", profile.render());
    println!("{}", anatomy.render());
    for (name, content) in [
        ("inspect_profile.csv", profile.to_csv()),
        ("inspect_anatomy.csv", anatomy.to_csv()),
        ("inspect_flame.txt", profile.flamegraph()),
    ] {
        let path = out_dir.join(name);
        std::fs::write(&path, &content).expect("write inspect artifact");
        println!("  -> {}", path.display());
    }
}

fn main() {
    let mut args: VecDeque<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_scale();
    let mut out_dir = PathBuf::from("results");
    let mut cmds: Vec<String> = Vec::new();
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_sample: u64 = 1;
    let mut resilient = false;
    let mut preempt = false;
    let mut diff: Option<(PathBuf, PathBuf)> = None;

    while let Some(a) = args.pop_front() {
        match a.as_str() {
            "--resilient" => resilient = true,
            "--preempt" => preempt = true,
            "--diff" => {
                let a = PathBuf::from(args.pop_front().unwrap_or_else(|| usage()));
                let b = PathBuf::from(args.pop_front().unwrap_or_else(|| usage()));
                diff = Some((a, b));
            }
            "--trace" => {
                trace_out = Some(PathBuf::from(args.pop_front().unwrap_or_else(|| usage())))
            }
            "--trace-sample" => {
                trace_sample = args
                    .pop_front()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--smoke" => cmds.push("smoke".to_string()),
            "--scale" => match args.pop_front().as_deref() {
                Some("quick") => scale = Scale::quick(),
                Some("default") => scale = Scale::default_scale(),
                Some("full") => scale = Scale::full(),
                other => {
                    eprintln!("unknown scale {other:?}");
                    usage()
                }
            },
            "--seed" => {
                scale.seed = args
                    .pop_front()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--workers" => {
                scale.workers = args
                    .pop_front()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_dir = PathBuf::from(args.pop_front().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            cmd if !cmd.starts_with('-') => cmds.push(cmd.to_string()),
            _ => usage(),
        }
    }
    if cmds.is_empty() {
        usage();
    }

    // Expand meta-commands.
    let mut expanded = Vec::new();
    for c in cmds {
        match c.as_str() {
            "all" => expanded.extend(
                ["table1", "table2", "fig2", "fig6", "fig9", "fig10", "fig11", "fig12", "fig13"]
                    .map(String::from),
            ),
            "ablations" => expanded.extend(
                ["ablate-placement", "ablate-overlap", "ablate-threshold", "ablate-watermark", "ablate-idle-gc", "compare-inline", "sweep-utilization", "sweep-trim", "sweep-faults", "sweep-qd", "sweep-fleet", "sweep-chaos", "wear"]
                    .map(String::from),
            ),
            _ => expanded.push(c),
        }
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    println!(
        "# CAGC repro | device {}GB | requests {} (Mail {}) | seed {}\n",
        scale.device_gb, scale.requests, scale.mail_requests, scale.seed
    );

    // The aged grid is shared by fig6/9/10/11/12: run it lazily, once.
    let mut aged: Option<exp::AgedResults> = None;
    fn ensure_aged<'a>(
        aged: &'a mut Option<exp::AgedResults>,
        scale: &Scale,
    ) -> &'a exp::AgedResults {
        if aged.is_none() {
            let t = Instant::now();
            eprintln!("[aged grid: 3 workloads x 3 schemes ...]");
            *aged = Some(exp::run_aged(scale));
            eprintln!("[aged grid done in {:.1?}]", t.elapsed());
        }
        aged.as_ref().expect("just set")
    }

    for cmd in &expanded {
        let t = Instant::now();
        if cmd == "smoke" {
            smoke(&scale, trace_out.as_deref(), trace_sample, preempt);
            println!("  [smoke in {:.1?}]\n", t.elapsed());
            continue;
        }
        if cmd == "inspect" {
            inspect(
                &scale,
                &out_dir,
                trace_out.as_deref(),
                diff.as_ref().map(|(a, b)| (a.as_path(), b.as_path())),
                preempt,
                trace_sample,
            );
            println!("  [inspect in {:.1?}]\n", t.elapsed());
            continue;
        }
        let art: Artifacts = match cmd.as_str() {
            "table1" => exp::table1(&scale),
            "table2" => exp::table2(&scale),
            "fig2" => exp::fig2(&scale),
            "fig6" => exp::fig6(ensure_aged(&mut aged, &scale)),
            "fig9" => exp::fig9(ensure_aged(&mut aged, &scale)),
            "fig10" => exp::fig10(ensure_aged(&mut aged, &scale)),
            "fig11" => exp::fig11(ensure_aged(&mut aged, &scale)),
            "fig12" => exp::fig12(ensure_aged(&mut aged, &scale)),
            "fig13" => exp::fig13(&scale),
            "ablate-placement" => exp::ablate_placement(&scale),
            "ablate-overlap" => exp::ablate_overlap(&scale),
            "ablate-threshold" => exp::ablate_threshold(&scale),
            "ablate-watermark" => exp::ablate_watermark(&scale),
            "ablate-idle-gc" => exp::ablate_idle_gc(&scale),
            "compare-inline" => exp::compare_inline(&scale),
            "sweep-utilization" => exp::sweep_utilization(&scale),
            "sweep-trim" => exp::sweep_trim(&scale),
            "sweep-faults" => exp::sweep_faults(&scale),
            "sweep-qd" => exp::sweep_qd(&scale, resilient),
            "sweep-fleet" => exp::sweep_fleet(&scale),
            "sweep-chaos" => exp::sweep_chaos(&scale),
            "wear" => exp::wear_study(&scale),
            other => {
                eprintln!("unknown command `{other}`");
                usage()
            }
        };
        println!("{}", art.text);
        for (name, csv) in &art.csv {
            let path = out_dir.join(name);
            std::fs::write(&path, csv).expect("write CSV artifact");
            println!("  -> {}", path.display());
        }
        println!("  [{cmd} in {:.1?}]\n", t.elapsed());
    }
}
