//! # cagc-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (Tables
//! I–II, Figs. 2, 6, 9, 10, 11, 12, 13) plus the ablations DESIGN.md calls
//! out. Used by the `repro` binary and the Criterion benches.
//!
//! ```bash
//! cargo run --release -p cagc-bench --bin repro -- all
//! cargo run --release -p cagc-bench --bin repro -- fig9 --scale quick
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod experiments;
pub mod paper;
pub mod scale;

pub use experiments::{run_aged, AgedResults, Artifacts};
pub use scale::Scale;
