//! The paper's published numbers, for side-by-side comparison.
//!
//! Workload order everywhere: Homes, Web-vm, Mail (the order of the
//! paper's figures).

/// Fig. 9: % reduction in flash blocks erased, CAGC vs Baseline.
pub const FIG9_ERASE_REDUCTION_PCT: [f64; 3] = [23.3, 48.3, 86.6];

/// Fig. 10: % reduction in pages migrated during GC, CAGC vs Baseline.
pub const FIG10_MIGRATION_REDUCTION_PCT: [f64; 3] = [35.1, 47.9, 85.9];

/// Fig. 11: % reduction in mean response time during GC periods,
/// CAGC vs Baseline.
pub const FIG11_RESPONSE_REDUCTION_PCT: [f64; 3] = [33.6, 29.6, 70.1];

/// Fig. 2 (motivation): inline dedup raised response time by up to 71.9 %
/// (avg 43.1 %) on a real Z-NAND SSD.
pub const FIG2_INLINE_MAX_INCREASE_PCT: f64 = 71.9;
/// Fig. 2 average increase.
pub const FIG2_INLINE_AVG_INCREASE_PCT: f64 = 43.1;

/// Fig. 6: >80 % of invalidated pages had refcount 1; <1 % had refcount >3.
pub const FIG6_REF1_MIN_FRAC: f64 = 0.80;
/// Fig. 6 bound for the >3 bucket.
pub const FIG6_REFGT3_MAX_FRAC: f64 = 0.01;

/// Table II: (name, write ratio, dedup ratio, mean request KB).
pub const TABLE2: [(&str, f64, f64, f64); 3] = [
    ("Homes", 0.805, 0.300, 13.1),
    ("Web-vm", 0.785, 0.493, 40.8),
    ("Mail", 0.698, 0.893, 14.8),
];

#[cfg(test)]
mod tests {
    #[test]
    #[allow(clippy::assertions_on_constants)] // transcription sanity checks
    fn reference_arrays_are_consistent() {
        // Mail shows the largest improvement in every figure.
        assert!(super::FIG9_ERASE_REDUCTION_PCT[2] > super::FIG9_ERASE_REDUCTION_PCT[0]);
        assert!(super::FIG10_MIGRATION_REDUCTION_PCT[2] > super::FIG10_MIGRATION_REDUCTION_PCT[0]);
        assert!(super::FIG11_RESPONSE_REDUCTION_PCT[2] > super::FIG11_RESPONSE_REDUCTION_PCT[0]);
    }
}
