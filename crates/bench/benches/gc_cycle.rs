//! Cost of one GC victim collection per scheme, on an identically aged
//! device: the simulator-side work behind every point of Figs. 9-13.

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_workloads::FiuWorkload;
use cagc_harness::bench::{BatchSize, Bench, BenchmarkId};

/// Build an aged SSD: replay enough traffic that the device is fragmented
/// and victims are realistic.
fn aged_ssd(scheme: Scheme) -> Ssd {
    let cfg = SsdConfig::tiny(scheme);
    let footprint = (cfg.flash.logical_pages() as f64 * 0.9) as u64;
    let trace = FiuWorkload::WebVm.synth_config(footprint, 12_000, 3).generate();
    let mut ssd = Ssd::new(cfg);
    ssd.replay(&trace);
    ssd
}

fn bench_gc_cycle(c: &mut Bench) {
    let mut g = c.benchmark_group("gc_collect_one_victim");
    g.sample_size(20);
    for scheme in Scheme::ALL {
        let ssd = aged_ssd(scheme);
        g.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &ssd, |b, ssd| {
            let mut t = 1u64 << 40;
            b.iter_batched(
                || ssd.clone(),
                |mut ssd| {
                    t += 10_000_000;
                    ssd.force_gc(t)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

cagc_harness::harness_bench_main!(bench_gc_cycle);
