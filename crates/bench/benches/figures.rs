//! One bench per paper table/figure: the core simulation loop behind each
//! experiment, at a reduced size so `cargo bench` stays in CI budgets.
//! (Full-scale regeneration is `cargo run --release -p cagc-bench --bin
//! repro -- all`.)

use cagc_core::{run_cell, Scheme, SsdConfig};
use cagc_flash::UllConfig;
use cagc_ftl::VictimKind;
use cagc_workloads::{FiuWorkload, TraceProfile};
use cagc_harness::bench::{Bench, BenchmarkId};

fn tiny() -> UllConfig {
    UllConfig::tiny_for_tests()
}

fn aged_trace(w: FiuWorkload, requests: usize) -> cagc_workloads::Trace {
    let footprint = (tiny().logical_pages() as f64 * 0.95) as u64;
    w.synth_config(footprint, requests, 7).generate()
}

/// Table II: the trace generator + analyzer pipeline.
fn bench_table2(c: &mut Bench) {
    c.bench_function("table2_generate_and_profile", |b| {
        b.iter(|| {
            let t = aged_trace(FiuWorkload::Mail, 5_000);
            TraceProfile::of(std::hint::black_box(&t))
        })
    });
}

/// Fig. 2 core loop: fresh-device replay, Baseline vs Inline-Dedupe.
fn bench_fig2(c: &mut Bench) {
    let footprint = (tiny().logical_pages() as f64 * 0.15) as u64;
    let mut cfg = FiuWorkload::Homes.synth_config(footprint, 1_000, 7);
    cfg.prefill_fraction = 0.5;
    let trace = cfg.generate();
    let mut g = c.benchmark_group("fig2_fresh_replay");
    for scheme in [Scheme::Baseline, Scheme::InlineDedup] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &trace, |b, t| {
            b.iter(|| run_cell(SsdConfig::tiny(scheme), std::hint::black_box(t)))
        });
    }
    g.finish();
}

/// Figs. 6/9/10/11/12 core loop: aged replay per scheme (Fig. 6 reads the
/// refcount stats, 9/10 the GC counters, 11/12 the latency records of the
/// same runs).
fn bench_aged_replay(c: &mut Bench) {
    let trace = aged_trace(FiuWorkload::Mail, 6_000);
    let mut g = c.benchmark_group("fig9_10_11_12_aged_replay_mail");
    g.sample_size(10);
    for scheme in Scheme::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &trace, |b, t| {
            b.iter(|| run_cell(SsdConfig::tiny(scheme), std::hint::black_box(t)))
        });
    }
    g.finish();
}

/// Fig. 13 core loop: CAGC under each victim policy.
fn bench_fig13(c: &mut Bench) {
    let trace = aged_trace(FiuWorkload::WebVm, 6_000);
    let mut g = c.benchmark_group("fig13_policy_replay_webvm");
    g.sample_size(10);
    for policy in VictimKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(policy.name()), &trace, |b, t| {
            b.iter(|| {
                let mut cfg = SsdConfig::tiny(Scheme::Cagc);
                cfg.victim = policy;
                run_cell(cfg, std::hint::black_box(t))
            })
        });
    }
    g.finish();
}

cagc_harness::harness_bench_main!(bench_table2, bench_fig2, bench_aged_replay, bench_fig13);
