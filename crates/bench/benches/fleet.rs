//! Fleet fan-out scaling: the committed baseline behind
//! `results/BENCH_fleet.json` (gated by `scripts/verify.sh` via
//! `bench_check`).
//!
//! One deliberately *skewed* 64-device fleet — the first 8 devices serve
//! a six-tenant "hot" blend (~6x the replay work of the single-tenant
//! "cold" blend on the other 56) — replayed three ways:
//!
//! * `replay_w1` — serial reference (one worker);
//! * `replay_w8_static` — 8 workers over the *static* contiguous-chunk
//!   pool (`pool::map_ordered`): every hot device lands in the first
//!   chunk, so one worker drags the makespan;
//! * `replay_w8_dynamic` — 8 workers over the deterministic dynamic
//!   scheduler (`pool::map_ordered_dynamic`): workers claim small chunks
//!   from a shared cursor, so the hot devices spread across the pool.
//!
//! On a machine with >= 8 cores, dynamic beats static on this shape and
//! `replay_w1 / replay_w8_dynamic` shows the fan-out speedup
//! (`verify.sh` enforces the >= 5x floor only there; single-core CI
//! boxes still byte-check determinism, and the machine-independent
//! makespan bound is asserted in `crates/harness/tests/dynamic_pool.rs`).
//! All three produce byte-identical `FleetReport`s — asserted here once
//! before sampling begins.

use cagc_core::Scheme;
use cagc_fleet::{run_fleet, FleetConfig, TenantMix, TenantSpec};
use cagc_harness::bench::Bench;
use cagc_harness::ToJson;
use cagc_workloads::FiuWorkload;

/// 64 devices, hot-first: mix list as long as the fleet so the skew is
/// positional (round-robin would re-balance it).
fn skewed_fleet() -> FleetConfig {
    let hot = TenantMix {
        name: "hot",
        tenants: (0..6)
            .map(|i| {
                TenantSpec::new(if i % 2 == 0 { FiuWorkload::Mail } else { FiuWorkload::Homes })
            })
            .collect(),
    };
    let cold = TenantMix { name: "cold", tenants: vec![TenantSpec::new(FiuWorkload::WebVm)] };
    let mixes: Vec<TenantMix> =
        (0..64).map(|d| if d < 8 { hot.clone() } else { cold.clone() }).collect();
    FleetConfig {
        devices: 64,
        mixes,
        scheme: Scheme::Cagc,
        flash: cagc_flash::UllConfig::tiny_for_tests(),
        requests_per_tenant: 400,
        footprint_frac: 0.90,
        seed: 7,
        seed_groups: 2,
        workers: 1,
        chunk: 1,
        host_queues: None,
        faults: cagc_flash::FaultConfig::none(),
        gc_preempt: false,
        read_only_floor_blocks: None,
        telemetry: None,
        slo: None,
    }
}

fn bench_fleet(c: &mut Bench) {
    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);

    let base = skewed_fleet();
    let at = |workers: usize, chunk: usize| FleetConfig { workers, chunk, ..base.clone() };

    // Determinism anchor: every scheduling shape below must yield the
    // same bytes, or the scaling numbers compare different computations.
    let want = run_fleet(&at(1, 1)).to_json().render();
    for (w, chunk) in [(8, 1), (8, 64 / 8)] {
        assert_eq!(
            run_fleet(&at(w, chunk)).to_json().render(),
            want,
            "fleet report must be byte-identical at {w} workers (chunk {chunk})"
        );
    }

    g.bench_function("replay_w1", |b| b.iter(|| run_fleet(&at(1, 1))));
    // Static pool shape: one contiguous chunk per worker (chunk = n/w),
    // the same split `pool::map_ordered` would make.
    g.bench_function("replay_w8_static", |b| b.iter(|| run_fleet(&at(8, 64 / 8))));
    g.bench_function("replay_w8_dynamic", |b| b.iter(|| run_fleet(&at(8, 1))));

    g.finish();
}

cagc_harness::harness_bench_main!(bench_fleet);
