//! Tracing overhead on the GC-cycle replay: the pay-as-you-go invariant,
//! quantified (`BENCH_trace.json`, one sample checked into `results/`).
//!
//! Three modes over the same seeded GC-heavy CAGC replay: tracing
//! disabled (the default no-op sink), sampled (every 64th host request's
//! spans), and full. Disabled must sit within noise of a build that never
//! heard of tracing; full pays for event pushes and gauge windowing.

use cagc_core::{Scheme, Ssd, SsdConfig, TraceConfig};
use cagc_harness::bench::Bench;
use cagc_workloads::{FiuWorkload, Trace};

fn gc_heavy_trace() -> Trace {
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    FiuWorkload::Mail
        .synth_config((flash.logical_pages() as f64 * 0.9) as u64, 6_000, 9)
        .generate()
}

fn bench_trace_overhead(c: &mut Bench) {
    let trace = gc_heavy_trace();
    let mut g = c.benchmark_group("gc_cycle_replay_tracing");
    g.sample_size(10);
    let modes: [(&str, Option<TraceConfig>); 3] = [
        ("disabled", None),
        ("sampled_1_in_64", Some(TraceConfig { sample: 64, ..TraceConfig::default() })),
        ("full", Some(TraceConfig::default())),
    ];
    for (label, cfg) in modes {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut ssd = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
                if let Some(cfg) = cfg.clone() {
                    ssd.enable_tracing(cfg);
                }
                ssd.replay(&trace)
            })
        });
    }
    g.finish();
}

cagc_harness::harness_bench_main!(bench_trace_overhead);
