//! Hot-path replay throughput: the CI-gated performance baseline
//! (`BENCH_hotpath.json`, one sample committed under `results/`, compared
//! against fresh runs by `scripts/verify.sh` via the `bench_check` binary).
//!
//! Two GC-heavy CAGC replays, both fully deterministic:
//!
//! * `gc_heavy_replay` — the tiny-device workload, **identical** to the
//!   `gc_cycle_replay_tracing/disabled` case of `benches/trace.rs`, so its
//!   median is directly comparable to `results/BENCH_trace.json`'s
//!   pre-overhaul 8.3 ms figure;
//! * `gc_heavy_replay_1gb` — the same Mail workload scaled to a 1 GB
//!   device (8 ch × 4 dies, 4096 blocks, ≈8300 GC rounds), where the
//!   overhaul's asymptotic wins (O(1) victim selection vs O(blocks),
//!   O(1) reverse-map churn vs O(sharers)) dominate. Measured seed
//!   baseline and methodology: docs/PERFORMANCE.md.

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_harness::bench::Bench;
use cagc_workloads::{FiuWorkload, Trace};

fn gc_heavy_trace(flash: &cagc_flash::UllConfig, requests: usize) -> Trace {
    FiuWorkload::Mail
        .synth_config((flash.logical_pages() as f64 * 0.9) as u64, requests, 9)
        .generate()
}

fn bench_hotpath(c: &mut Bench) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);

    let tiny = cagc_flash::UllConfig::tiny_for_tests();
    let tiny_trace = gc_heavy_trace(&tiny, 6_000);
    g.bench_function("gc_heavy_replay", |b| {
        b.iter(|| {
            let mut ssd = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
            ssd.replay(&tiny_trace)
        })
    });

    let gb = cagc_flash::UllConfig::scaled_gb(1);
    let gb_trace = gc_heavy_trace(&gb, 200_000);
    g.bench_function("gc_heavy_replay_1gb", |b| {
        b.iter(|| {
            let mut ssd = Ssd::new(SsdConfig::paper(gb, Scheme::Cagc));
            ssd.replay(&gb_trace)
        })
    });

    g.finish();
}

cagc_harness::harness_bench_main!(bench_hotpath);
