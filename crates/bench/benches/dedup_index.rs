//! Fingerprint-index microbenchmarks: the FTL-resident metadata operations
//! on the write path (Inline-Dedupe) and GC path (CAGC).

use cagc_dedup::{ContentId, Fingerprint, FingerprintIndex};
use cagc_harness::bench::{BatchSize, Bench, BenchmarkId};

fn populated(n: u64) -> (FingerprintIndex, Vec<Fingerprint>) {
    let mut ix = FingerprintIndex::new();
    let mut fps = Vec::with_capacity(n as usize);
    for i in 0..n {
        let fp = Fingerprint::of_content(ContentId(i));
        ix.insert(fp, i, (i % 4 + 1) as u32);
        fps.push(fp);
    }
    (ix, fps)
}

fn bench_lookup(c: &mut Bench) {
    let mut g = c.benchmark_group("index_lookup");
    for n in [1_000u64, 100_000, 1_000_000] {
        let (mut ix, fps) = populated(n);
        let miss = Fingerprint::of_content(ContentId(n + 1));
        g.bench_with_input(BenchmarkId::new("hit", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 997) % fps.len();
                ix.lookup(std::hint::black_box(&fps[i]))
            })
        });
        g.bench_with_input(BenchmarkId::new("miss", n), &n, |b, _| {
            b.iter(|| ix.lookup(std::hint::black_box(&miss)))
        });
    }
    g.finish();
}

fn bench_insert_release(c: &mut Bench) {
    let mut g = c.benchmark_group("index_mutation");
    g.bench_function("insert_then_release_100k_base", |b| {
        let (ix, _) = populated(100_000);
        let fp = Fingerprint::of_content(ContentId(999_999_999));
        b.iter_batched(
            || ix.clone(),
            |mut ix| {
                ix.insert(fp, u64::MAX - 1, 1);
                ix.release_ppn(u64::MAX - 1)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("relocate_100k_base", |b| {
        let (ix, _) = populated(100_000);
        b.iter_batched(
            || ix.clone(),
            |mut ix| {
                ix.relocate(500, u64::MAX - 1);
                ix
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

cagc_harness::harness_bench_main!(bench_lookup, bench_insert_release);
