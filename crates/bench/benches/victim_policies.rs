//! Victim-selection cost per policy and candidate-set size — the per-GC
//! overhead the FTL pays before any flash work happens.

use cagc_ftl::{VictimCandidate, VictimKind, VictimSelector};
use cagc_harness::bench::{Bench, BenchmarkId};

fn candidates(n: u32) -> Vec<VictimCandidate> {
    (0..n)
        .map(|b| VictimCandidate {
            block: b,
            valid: b.wrapping_mul(31) % 65,
            invalid: 64 - b.wrapping_mul(31) % 65,
            trimmed: b.wrapping_mul(17) % (64 - b.wrapping_mul(31) % 65 + 1),
            stranded: 0,
            pages: 64,
            erase_count: b % 13,
            last_modified: (b as u64).wrapping_mul(7_919_000),
        })
        .collect()
}

fn bench_policies(c: &mut Bench) {
    let mut g = c.benchmark_group("victim_select");
    for n in [256u32, 4_096, 32_768] {
        let cands = candidates(n);
        for kind in VictimKind::EXTENDED {
            g.bench_with_input(
                BenchmarkId::new(kind.name(), n),
                &cands,
                |b, cands| {
                    let mut sel = VictimSelector::new(kind, 7);
                    let mut now = 0u64;
                    b.iter(|| {
                        now += 1_000_000;
                        sel.select(std::hint::black_box(cands), now)
                    })
                },
            );
        }
    }
    g.finish();
}

cagc_harness::harness_bench_main!(bench_policies);
