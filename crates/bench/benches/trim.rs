//! Trim-intensity sweep: full replay of the same seeded workload at
//! several injected trim fractions, honoring vs ignoring the hints. The
//! recorded time is the simulator-side cost of a whole replay; the
//! artifact's parameter axis is the Frankie-style overprovisioning curve
//! (`BENCH_trim.json`, one sample checked into `results/`).

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_harness::bench::{BatchSize, Bench, BenchmarkId};
use cagc_workloads::{inject_trims, FiuWorkload, Trace};

/// The base stream every point derives from (tiny device so a full replay
/// stays micro-benchmark sized).
fn base_trace() -> Trace {
    let cfg = SsdConfig::tiny(Scheme::Baseline);
    let footprint = (cfg.flash.logical_pages() as f64 * 0.85) as u64;
    FiuWorkload::WebVm.synth_config(footprint, 6_000, 7).generate()
}

fn bench_trim_sweep(c: &mut Bench) {
    let base = base_trace();
    let mut g = c.benchmark_group("trim_sweep_replay");
    g.sample_size(10);
    for frac in [0u32, 10, 20, 35] {
        let trace = inject_trims(&base, frac as f64 / 100.0, 6, 7);
        for honor in [true, false] {
            let label = format!("trim{frac}pct_{}", if honor { "honored" } else { "ignored" });
            g.bench_with_input(BenchmarkId::from_parameter(&label), &trace, |b, trace| {
                b.iter_batched(
                    || {
                        let mut cfg = SsdConfig::tiny(Scheme::Cagc);
                        cfg.honor_trim = honor;
                        Ssd::new(cfg)
                    },
                    |mut ssd| ssd.replay(trace),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

cagc_harness::harness_bench_main!(bench_trim_sweep);
