//! Fingerprint hashing microbenchmarks.
//!
//! Table I models the per-page fingerprint at 14 µs — these benches measure
//! what our software SHA implementations actually cost on the host CPU for
//! a 4 KiB page, serial and parallel, which grounds that parameter.

use cagc_dedup::{ContentId, Fingerprint, ParallelHasher, Sha1, Sha256};
use cagc_harness::bench::{Bench, BenchmarkId, Throughput};

fn bench_hash_page(c: &mut Bench) {
    let page = ContentId(42).synth_bytes(4096);
    let mut g = c.benchmark_group("hash_4k_page");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha1", |b| b.iter(|| Sha1::digest(std::hint::black_box(&page))));
    g.bench_function("sha256", |b| b.iter(|| Sha256::digest(std::hint::black_box(&page))));
    g.bench_function("fingerprint_of_content", |b| {
        b.iter(|| Fingerprint::of_content(std::hint::black_box(ContentId(42))))
    });
    g.finish();
}

fn bench_parallel_hash(c: &mut Bench) {
    // A victim block's worth of pages (64), hashed with various worker
    // counts — the data path the 14 µs hash engine abstracts.
    let pages: Vec<Vec<u8>> = (0..64).map(|i| ContentId(i).synth_bytes(4096)).collect();
    let mut g = c.benchmark_group("hash_victim_block_64_pages");
    g.throughput(Throughput::Bytes(64 * 4096));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let hasher = ParallelHasher::new(w);
            b.iter(|| hasher.hash_pages(std::hint::black_box(&pages)))
        });
    }
    g.finish();
}

cagc_harness::harness_bench_main!(bench_hash_page, bench_parallel_hash);
