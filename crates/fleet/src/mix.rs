//! Named tenant blends: which workloads share a device, at what rate.

use cagc_workloads::FiuWorkload;

/// One tenant slot in a mix: a workload model and its arrival-rate
/// factor. The factor multiplies interarrival gaps (`mixer::scale_rate`
/// semantics): 0.5 arrives twice as fast, 2.0 half as fast.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Workload model for this tenant's namespace.
    pub workload: FiuWorkload,
    /// Arrival-time multiplier (must be positive).
    pub rate_factor: f64,
}

impl TenantSpec {
    /// A tenant at the workload's native rate.
    pub fn new(workload: FiuWorkload) -> Self {
        Self { workload, rate_factor: 1.0 }
    }

    /// A tenant with a scaled arrival rate.
    pub fn at_rate(workload: FiuWorkload, rate_factor: f64) -> Self {
        assert!(rate_factor > 0.0, "rate factor must be positive");
        Self { workload, rate_factor }
    }
}

/// A named multi-tenant blend assigned to a device.
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// Mix name (carried into reports and CSV rows).
    pub name: &'static str,
    /// The tenants sharing the device, in namespace order.
    pub tenants: Vec<TenantSpec>,
}

impl TenantMix {
    /// One tenant of each FIU workload at native rate — the neutral
    /// reference blend.
    pub fn balanced() -> Self {
        Self {
            name: "balanced",
            tenants: FiuWorkload::ALL.iter().map(|&w| TenantSpec::new(w)).collect(),
        }
    }

    /// Two mail tenants (one at double rate) plus a file server — the
    /// dedup-rich blend where CAGC's content-awareness matters most.
    pub fn mail_heavy() -> Self {
        Self {
            name: "mail-heavy",
            tenants: vec![
                TenantSpec::at_rate(FiuWorkload::Mail, 0.5),
                TenantSpec::new(FiuWorkload::Mail),
                TenantSpec::new(FiuWorkload::Homes),
            ],
        }
    }

    /// Two web-vm tenants driving large sequential-ish requests plus a
    /// slow file server — the bandwidth-heavy blend.
    pub fn web_burst() -> Self {
        Self {
            name: "web-burst",
            tenants: vec![
                TenantSpec::at_rate(FiuWorkload::WebVm, 0.5),
                TenantSpec::new(FiuWorkload::WebVm),
                TenantSpec::at_rate(FiuWorkload::Homes, 1.5),
            ],
        }
    }

    /// One mail tenant at 8x rate next to two quiet file servers — the
    /// noisy-neighbor shape that skews per-device runtimes and exercises
    /// the dynamic scheduler.
    pub fn noisy_neighbor() -> Self {
        Self {
            name: "noisy-neighbor",
            tenants: vec![
                TenantSpec::at_rate(FiuWorkload::Mail, 0.125),
                TenantSpec::at_rate(FiuWorkload::Homes, 2.0),
                TenantSpec::at_rate(FiuWorkload::Homes, 2.0),
            ],
        }
    }

    /// Every preset, in sweep order.
    pub fn all() -> Vec<TenantMix> {
        vec![Self::balanced(), Self::mail_heavy(), Self::web_burst(), Self::noisy_neighbor()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_wellformed() {
        for mix in TenantMix::all() {
            assert!(!mix.tenants.is_empty(), "{} has no tenants", mix.name);
            for t in &mix.tenants {
                assert!(t.rate_factor > 0.0);
            }
        }
        let names: Vec<_> = TenantMix::all().iter().map(|m| m.name).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "mix names must be unique");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        TenantSpec::at_rate(FiuWorkload::Mail, 0.0);
    }
}
