//! The fleet fan-out: compose device specs, schedule them dynamically,
//! aggregate the results.

use cagc_core::Scheme;
use cagc_flash::{FaultConfig, UllConfig};
use cagc_harness::pool::map_ordered_dynamic_chunked;

use crate::device::{simulate_device, DeviceSpec, TenantTrace};
use crate::library::TraceLibrary;
use crate::mix::TenantMix;
use crate::observe::FleetTelemetryConfig;
use crate::report::FleetReport;
use crate::slo::SloConfig;

/// Everything that determines a fleet run. Two equal configs produce
/// byte-identical [`FleetReport`]s at any worker count.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of devices in the fleet.
    pub devices: usize,
    /// Tenant mixes; device `d` serves `mixes[d % mixes.len()]`.
    pub mixes: Vec<TenantMix>,
    /// FTL scheme every device runs.
    pub scheme: Scheme,
    /// Device shape and timing.
    pub flash: UllConfig,
    /// Timed requests generated per tenant stream.
    pub requests_per_tenant: usize,
    /// Fraction of each device's logical space the tenants share
    /// (split evenly between a mix's tenants).
    pub footprint_frac: f64,
    /// Base PRNG seed.
    pub seed: u64,
    /// Distinct trace variants per tenant slot: device `d` draws from
    /// seed group `d % seed_groups`, so devices differ while trace
    /// memory stays bounded by `mixes × slots × seed_groups` — never by
    /// the device count.
    pub seed_groups: usize,
    /// Worker threads for the fan-out (0 = machine parallelism).
    pub workers: usize,
    /// Devices claimed per scheduler grab. 1 maximizes balance; larger
    /// chunks amortize claiming on huge fleets.
    pub chunk: usize,
    /// `Some((queue_pairs, queue_depth))` replays every device through
    /// the NVMe-style host interface (host-observed tenant latency);
    /// `None` feeds FTLs directly.
    pub host_queues: Option<(u32, u32)>,
    /// Fault-plan template applied to every device; each device gets its
    /// own plan seed derived from the template seed and the device index,
    /// so faults land independently across the fleet. An inactive
    /// template ([`FaultConfig::none`]) keeps every cell byte-identical
    /// to a fault-free fleet.
    pub faults: FaultConfig,
    /// Run every device with preemptible (sliced) GC.
    pub gc_preempt: bool,
    /// Per-device read-only floor override (`None` keeps the device
    /// default); see [`DeviceSpec::read_only_floor_blocks`].
    pub read_only_floor_blocks: Option<u32>,
    /// Arm every device's telemetry (gauge registries, optionally span
    /// profiles) and roll them up into the fleet timeline and merged
    /// profile. `None` keeps the report byte-identical to an unobserved
    /// fleet.
    pub telemetry: Option<FleetTelemetryConfig>,
    /// Track per-tenant latency SLOs on every device and roll the
    /// ledgers up per (mix, tenant). `None` records nothing.
    pub slo: Option<SloConfig>,
}

impl FleetConfig {
    /// A small fleet on the tiny test device — fast enough for unit
    /// tests and the CI smoke gate.
    pub fn small_test() -> Self {
        Self {
            devices: 6,
            mixes: vec![TenantMix::balanced(), TenantMix::noisy_neighbor()],
            scheme: Scheme::Cagc,
            flash: UllConfig::tiny_for_tests(),
            requests_per_tenant: 300,
            footprint_frac: 0.90,
            seed: 7,
            seed_groups: 2,
            workers: 1,
            chunk: 1,
            host_queues: None,
            faults: FaultConfig::none(),
            gc_preempt: false,
            read_only_floor_blocks: None,
            telemetry: None,
            slo: None,
        }
    }
}

/// Build the per-device specs: intern every tenant trace in the
/// [`TraceLibrary`] and hand out shared `Arc` handles. Runs serially —
/// trace generation is deterministic and its order must not depend on
/// scheduling.
fn build_specs(cfg: &FleetConfig, lib: &mut TraceLibrary) -> Vec<DeviceSpec> {
    let logical = cfg.flash.logical_pages();
    (0..cfg.devices)
        .map(|d| {
            let mix = &cfg.mixes[d % cfg.mixes.len()];
            let group = (d % cfg.seed_groups.max(1)) as u64;
            let per_tenant_pages =
                (logical as f64 * cfg.footprint_frac / mix.tenants.len() as f64) as u64;
            let tenants = mix
                .tenants
                .iter()
                .enumerate()
                .map(|(slot, ts)| TenantTrace {
                    label: format!("{}[{slot}]", ts.workload.name()),
                    trace: lib.get(
                        ts.workload,
                        per_tenant_pages,
                        cfg.requests_per_tenant,
                        // Distinct seed per (group, slot): devices in
                        // different groups see different streams, while
                        // same-group devices share the same Arcs.
                        cfg.seed.wrapping_add(group * 1009 + slot as u64 * 523),
                        ts.rate_factor,
                    ),
                })
                .collect();
            // Derive an independent fault-plan seed per device: the
            // template decides *what* can fail, the device index decides
            // *where* the dice land. Inactive templates draw nothing, so
            // the derivation cannot perturb fault-free fleets.
            let mut faults = cfg.faults.clone();
            faults.seed = faults.seed.wrapping_add((d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            DeviceSpec {
                id: d as u32,
                mix_name: mix.name.to_string(),
                scheme: cfg.scheme,
                flash: cfg.flash,
                tenants,
                host_queues: cfg.host_queues,
                faults,
                gc_preempt: cfg.gc_preempt,
                read_only_floor_blocks: cfg.read_only_floor_blocks,
                telemetry: cfg.telemetry.clone(),
                slo: cfg.slo.clone(),
            }
        })
        .collect()
}

/// Run the whole fleet: every device cell is a pure function of its
/// spec, scheduled over the deterministic dynamic pool (small chunks
/// claimed from a shared cursor), results collected in device order and
/// rolled up. Output is byte-identical at every worker count.
///
/// # Panics
/// Panics on an empty fleet, empty mix list, a footprint outside
/// `(0, 1]`, or a zero-sized host queue shape — checked up front so a
/// bad config fails here with a clear message, not inside a worker
/// thread mid-fan-out.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    assert!(cfg.devices > 0, "empty fleet");
    assert!(!cfg.mixes.is_empty(), "no tenant mixes");
    if let Some((pairs, depth)) = cfg.host_queues {
        assert!(pairs > 0 && depth > 0, "host queue shape {pairs}x{depth} must be non-zero");
    }
    assert!(
        cfg.footprint_frac > 0.0 && cfg.footprint_frac <= 1.0,
        "footprint fraction {} outside (0, 1]",
        cfg.footprint_frac
    );
    let mut lib = TraceLibrary::new();
    let specs = build_specs(cfg, &mut lib);
    let reports =
        map_ordered_dynamic_chunked(&specs, cfg.workers, cfg.chunk.max(1), simulate_device);
    FleetReport::aggregate(reports, lib.distinct())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        use cagc_harness::ToJson;
        let mut cfg = FleetConfig::small_test();
        let baseline = run_fleet(&cfg).to_json().render();
        for workers in [2usize, 3, 8] {
            cfg.workers = workers;
            cfg.chunk = if workers == 3 { 2 } else { 1 };
            let got = run_fleet(&cfg).to_json().render();
            assert_eq!(got, baseline, "workers={workers} changed the fleet report");
        }
    }

    #[test]
    fn trace_memory_scales_with_mixes_not_devices() {
        let mut cfg = FleetConfig::small_test();
        let mut lib_small = TraceLibrary::new();
        let _ = build_specs(&cfg, &mut lib_small);
        cfg.devices *= 4;
        let mut lib_big = TraceLibrary::new();
        let specs_big = build_specs(&cfg, &mut lib_big);
        assert_eq!(
            lib_small.distinct(),
            lib_big.distinct(),
            "4x devices must not generate new traces"
        );
        // Same-group devices share the same allocation, not a copy.
        let a = &specs_big[0].tenants[0].trace;
        let b = &specs_big[cfg.mixes.len() * cfg.seed_groups].tenants[0].trace;
        assert!(Arc::ptr_eq(a, b), "same (mix, group, slot) must share one Arc");
    }

    /// A chaos fleet on a deliberately tiny 32-block device: heavy erase
    /// failures with the read-only floor spanning the whole device, so
    /// the first retirement degrades a cell within a few hundred
    /// requests.
    fn chaos_test() -> FleetConfig {
        FleetConfig {
            devices: 4,
            flash: UllConfig {
                channels: 1,
                dies_per_channel: 2,
                planes_per_die: 1,
                blocks_per_plane: 16,
                pages_per_block: 8,
                page_size: 4096,
                op_ratio: 0.12,
                gc_watermark: 0.20,
                hash_ns: 14_000,
                timing: cagc_flash::Timing::ull(),
            },
            requests_per_tenant: 400,
            faults: FaultConfig {
                // Tuned so the per-device derived seeds leave at least
                // one device of the four fault-free (a survivor for the
                // rollup assertions) while the rest degrade.
                erase_fail_prob: 0.002,
                read_ecc_prob: 0.02,
                unrecoverable_prob: 0.3,
                seed: 99,
                ..FaultConfig::none()
            },
            read_only_floor_blocks: Some(32),
            ..FleetConfig::small_test()
        }
    }

    #[test]
    fn faulty_fleet_degrades_gracefully_with_attribution() {
        let rep = run_fleet(&chaos_test());
        assert!(
            rep.degraded_devices >= 1,
            "chaos plan must degrade at least one device, got {}",
            rep.degraded_devices
        );
        assert!(rep.degraded_devices < rep.devices.len() as u64, "some devices must survive");
        assert!(rep.failed_ops > 0, "degraded devices must fail tenant ops");
        assert_eq!(
            rep.failed_ops,
            rep.devices.iter().map(|d| d.failed_ops).sum::<u64>(),
            "fleet failed-op count is the sum of its devices'"
        );
        assert!(rep.first_degradation_ns.is_some());
        // Survivor rollups exclude read-only devices.
        assert!(rep.survivor_totals.runs == rep.fleet.runs - rep.degraded_devices);
        assert!(rep.survivor_totals.runs > 0);
        assert!(rep.survivor_totals.host_pages_written < rep.fleet.host_pages_written);
        // Degraded devices keep their tenant attribution.
        let degraded = rep.devices.iter().find(|d| d.read_only).unwrap();
        assert_eq!(
            degraded.failed_ops,
            degraded.tenants.iter().map(|t| t.failed_ops).sum::<u64>()
        );
    }

    #[test]
    fn faulty_fleet_is_byte_identical_across_worker_counts() {
        use cagc_harness::ToJson;
        let mut cfg = chaos_test();
        let baseline = run_fleet(&cfg).to_json().render();
        assert!(baseline.contains("degradation") || baseline.contains("degraded_devices"));
        for workers in [2usize, 5] {
            cfg.workers = workers;
            let got = run_fleet(&cfg).to_json().render();
            assert_eq!(got, baseline, "workers={workers} changed the chaos fleet report");
        }
    }

    /// A fully-observed fleet (span-recording telemetry + SLO tracking)
    /// must stay byte-identical at every worker count: the timeline CSV,
    /// the merged profile, and the SLO rollups are pure folds in device
    /// order.
    #[test]
    fn observed_fleet_is_byte_identical_across_worker_counts() {
        use cagc_harness::ToJson;
        let mut cfg = FleetConfig::small_test();
        cfg.telemetry = Some(FleetTelemetryConfig::traced(1_000_000, 1));
        cfg.slo = Some(SloConfig::uniform(200_000, 900, 1_000_000));
        let base = run_fleet(&cfg);
        let base_json = base.to_json().render();
        let base_csv = base.timeline_csv().expect("observed fleet must emit a timeline");
        let base_flame = base.profile.as_ref().unwrap().flamegraph();
        assert!(base_json.contains("\"observability\"") && base_json.contains("\"slo\""));
        assert!(base_csv.contains("dev000/") && base_csv.contains("fleet/"));
        assert!(base_csv.contains("slo/"));
        for workers in [2usize, 5] {
            cfg.workers = workers;
            let got = run_fleet(&cfg);
            assert_eq!(got.to_json().render(), base_json, "workers={workers} changed the report");
            assert_eq!(got.timeline_csv().unwrap(), base_csv, "workers={workers} changed the CSV");
            assert_eq!(
                got.profile.as_ref().unwrap().flamegraph(),
                base_flame,
                "workers={workers} changed the merged profile"
            );
        }
    }

    /// Telemetry and SLO tracking must not perturb the simulation: the
    /// core rollups of an observed fleet match the unobserved one, and
    /// an unobserved fleet emits no observability artifacts at all.
    #[test]
    fn observability_leaves_core_rollups_untouched() {
        use cagc_harness::ToJson;
        let cfg = FleetConfig::small_test();
        let plain = run_fleet(&cfg);
        let mut ocfg = cfg.clone();
        ocfg.telemetry = Some(FleetTelemetryConfig::gauges_only(1_000_000, 1));
        ocfg.slo = Some(SloConfig::uniform(200_000, 900, 1_000_000));
        let observed = run_fleet(&ocfg);
        assert_eq!(plain.fleet.total_programs, observed.fleet.total_programs);
        assert_eq!(plain.fleet.total_erases, observed.fleet.total_erases);
        assert_eq!(plain.by_tenant.len(), observed.by_tenant.len());
        for (a, b) in plain.by_tenant.iter().zip(&observed.by_tenant) {
            assert_eq!(a.lat().p99_ns, b.lat().p99_ns, "SLO tracking changed {}", a.tenant);
        }
        // Pay-as-you-go: the unobserved report has no trace of the plane.
        assert!(plain.timeline.is_none() && plain.profile.is_none() && plain.slo.is_none());
        assert!(plain.timeline_csv().is_none());
        let j = plain.to_json().render();
        assert!(!j.contains("\"observability\"") && !j.contains("\"slo\""));
        assert!(!plain.render().contains("observability:"));
        // …while the observed one carries the rollups.
        assert!(observed.timeline.is_some());
        assert!(observed.slo.as_ref().is_some_and(|s| !s.is_empty()));
        assert!(observed.render().contains("observability:"));
        assert!(observed.render().contains("slo "));
    }

    #[test]
    fn device_assignment_round_robins_mixes() {
        let cfg = FleetConfig::small_test();
        let rep = run_fleet(&cfg);
        assert_eq!(rep.devices.len(), cfg.devices);
        for (d, dev) in rep.devices.iter().enumerate() {
            assert_eq!(dev.device as usize, d);
            assert_eq!(dev.mix, cfg.mixes[d % cfg.mixes.len()].name);
        }
        assert!(rep.fleet.runs == cfg.devices as u64);
        assert!(rep.waf() > 0.0);
    }
}
