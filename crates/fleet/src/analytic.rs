//! Mean-field write-amplification models for uniform random traffic.
//!
//! Li, Lee & Lui's stochastic large-scale SSD model (PAPERS.md; in the
//! same family as Desnoyers' and Bux & Iliadis' analyses) predicts the
//! steady-state write amplification of a device under uniform random
//! single-page overwrites as a function of the utilization `ρ` (user
//! pages / pages in circulation — see [`device_rho`]):
//!
//! - **FIFO cleaning** admits the closed-form fixed point
//!   `1 − 1/A = exp(−1/(A·ρ))`, solved here by bisection.
//! - **Greedy cleaning** (always erase the block with fewest valid
//!   pages — what `VictimKind::Greedy` implements) has no closed form;
//!   [`waf_greedy`] iterates the mean-field block-occupancy dynamics to
//!   its steady state.
//!
//! These are *fleet-scale* predictions: they hold in the limit of many
//! blocks, which is exactly the regime a fleet aggregate approaches.
//! [`uniform_validation`] replays uniform random traffic on a real
//! simulated device and returns measured-vs-analytic WAF so the repro
//! harness can gate the simulator against the model.

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_flash::UllConfig;
use cagc_workloads::SynthConfig;

/// Analytic FIFO write amplification at utilization `rho`, from the
/// fixed point `1 − 1/A = exp(−1/(A·ρ))`.
///
/// # Panics
/// Panics unless `0 < rho < 1`.
pub fn waf_fifo(rho: f64) -> f64 {
    assert!(rho > 0.0 && rho < 1.0, "rho {rho} outside (0, 1)");
    // f(A) = 1 − 1/A − exp(−1/(A·ρ)) is negative at A→1⁺ and positive
    // as A→∞; bisect the sign change.
    let f = |a: f64| 1.0 - 1.0 / a - (-1.0 / (a * rho)).exp();
    let (mut lo, mut hi) = (1.0 + 1e-9, 1e6);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Analytic greedy write amplification at utilization `rho` for blocks
/// of `b` pages, by iterating the mean-field occupancy dynamics.
///
/// The state is the (continuous) number of data blocks at each valid
/// count `0..=b`. Each GC cycle erases one block's worth of the lowest
/// occupied levels (greedy victims), rewrites its `v` valid pages, and
/// serves `b − v` host writes; every host write invalidates a uniformly
/// random valid page, draining level `j` in proportion to `j·x[j]`.
/// The refilled frontier block re-enters at level `b`. Steady-state
/// WAF is `b / (b − v̄)` over the converged tail.
///
/// # Panics
/// Panics unless `0 < rho < 1` and `b ≥ 2`.
pub fn waf_greedy(rho: f64, b: usize) -> f64 {
    assert!(rho > 0.0 && rho < 1.0, "rho {rho} outside (0, 1)");
    assert!(b >= 2, "pages per block must be >= 2");
    const BLOCKS: f64 = 1_000.0;
    let user_pages = rho * BLOCKS * b as f64;
    let mut x = vec![0.0f64; b + 1];
    x[b] = user_pages / b as f64; // the prefilled footprint, exactly full

    // Fill phase: before GC ever runs, host overwrites consume the spare
    // blocks — each block's worth of writes invalidates b uniformly
    // random valid pages, spreading the occupancy distribution downward.
    // (Without this transient the all-full state is a degenerate fixed
    // point: the greedy victim would carry b valid pages forever.)
    let spare_blocks = (BLOCKS - user_pages / b as f64).floor() as usize;
    for _ in 0..spare_blocks {
        invalidate(&mut x, b as f64);
        x[b] += 1.0;
    }

    let total_cycles = 120 * BLOCKS as usize;
    let measure_from = 100 * BLOCKS as usize;
    let mut wa_sum = 0.0;
    let mut wa_n = 0u64;
    for cycle in 0..total_cycles {
        // Greedy victim: one block of mass from the lowest occupied
        // levels (fractional blocks span adjacent levels).
        let mut need = 1.0f64;
        let mut migrated = 0.0f64;
        for (j, xj) in x.iter_mut().enumerate() {
            if need <= 0.0 {
                break;
            }
            let take = xj.min(need);
            *xj -= take;
            migrated += take * j as f64;
            need -= take;
        }
        let host_writes = b as f64 - migrated;
        invalidate(&mut x, host_writes);
        // The GC frontier block closes full: v migrated + (b−v) fresh.
        x[b] += 1.0;
        if cycle >= measure_from {
            wa_sum += b as f64 / host_writes;
            wa_n += 1;
        }
    }
    wa_sum / wa_n as f64
}

/// Apply `writes` uniformly random overwrites to the occupancy state:
/// level `j` loses block mass to level `j − 1` in proportion to its
/// share `j·x[j]` of the valid pages.
fn invalidate(x: &mut [f64], writes: f64) {
    let b = x.len() - 1;
    let weight: f64 = x.iter().enumerate().map(|(j, xj)| j as f64 * xj).sum();
    if weight <= 0.0 {
        return;
    }
    // Flows must come from a snapshot of the state: applying them
    // in-place while iterating lets mass cascade several levels per call
    // and breaks valid-page conservation (the drift compounds into a
    // degenerate all-invalid fixed point over ~10⁵ cycles).
    let flows: Vec<f64> =
        (0..=b).map(|j| (writes * (j as f64 * x[j]) / weight).min(x[j])).collect();
    for j in 1..=b {
        x[j] -= flows[j];
        x[j - 1] += flows[j];
    }
}

/// The model's utilization for a *simulated* device: footprint pages
/// over the pages actually in circulation.
///
/// The mean-field model keeps every block in the write/clean loop, but
/// the FTL's hysteresis loop does not: GC triggers at `gc_low` and
/// collects up to `gc_high`, so on average a `(gc_low + gc_high) / 2`
/// fraction of the blocks sits in the free pool and never holds data.
/// Those blocks are dead capacity from the model's point of view;
/// ignoring them understates ρ and the predicted WAF by 20–30 % on
/// small devices.
pub fn device_rho(flash: &UllConfig, footprint_frac: f64) -> f64 {
    let cfg = SsdConfig::paper(*flash, Scheme::Baseline);
    let total_blocks = flash.geometry().total_blocks() as f64;
    let avg_free_blocks = 0.5 * (cfg.gc_low + cfg.gc_high) * total_blocks;
    let circulating_pages = (total_blocks - avg_free_blocks) * flash.pages_per_block as f64;
    flash.logical_pages() as f64 * footprint_frac / circulating_pages
}

/// Measured vs. analytic WAF for one uniform-random-traffic run.
#[derive(Debug, Clone, Copy)]
pub struct UniformValidation {
    /// Device utilization the run was set up at.
    pub rho: f64,
    /// WAF measured over the steady-state half of the run.
    pub measured: f64,
    /// Analytic greedy prediction at `rho` (the simulator uses greedy
    /// victim selection, so this is the curve it should track).
    pub greedy: f64,
    /// Analytic FIFO prediction at `rho` (upper reference curve).
    pub fifo: f64,
}

impl UniformValidation {
    /// Relative error of the measurement against the greedy curve.
    pub fn rel_err(&self) -> f64 {
        (self.measured - self.greedy).abs() / self.greedy
    }
}

/// Replay uniform random single-page write-only traffic (the analytic
/// model's regime: no locality, no dedup, no trims, fully prefilled
/// footprint) on a `Baseline` device and measure steady-state WAF over
/// the second half of the timed writes.
///
/// # Panics
/// Panics unless `0 < footprint_frac <= 1` and `writes >= 2`.
pub fn uniform_validation(
    flash: UllConfig,
    footprint_frac: f64,
    writes: usize,
    seed: u64,
) -> UniformValidation {
    assert!(footprint_frac > 0.0 && footprint_frac <= 1.0);
    assert!(writes >= 2);
    let logical = (flash.logical_pages() as f64 * footprint_frac) as u64;
    let trace = SynthConfig {
        name: "uniform".into(),
        requests: writes,
        logical_pages: logical,
        write_ratio: 1.0,
        dedup_ratio: 0.0,
        mean_req_pages: 1.0,
        max_req_pages: 1,
        lpn_theta: 0.0, // exact uniform LPN choice
        content_theta: 0.0,
        trim_ratio: 0.0,
        mean_interarrival_ns: 30_000,
        burst_mean: 1.0,
        burst_gap_ns: 0,
        prefill_fraction: 1.0,
        prefill_gap_ns_per_page: 35_000,
        seed,
    }
    .generate();

    let mut ssd = Ssd::new(SsdConfig::paper(flash, Scheme::Baseline));
    // Warmup: prefill plus the first half of the timed writes, so the
    // block-occupancy distribution reaches its greedy steady state
    // before the measured window opens.
    let warm = trace.requests.len() - writes / 2;
    for r in &trace.requests[..warm] {
        ssd.process(r);
    }
    let before = ssd.report("uniform");
    for r in &trace.requests[warm..] {
        ssd.process(r);
    }
    let after = ssd.report("uniform");

    let programs = after.total_programs - before.total_programs;
    let host = after.host_pages_written - before.host_pages_written;
    let measured = if host == 0 { 0.0 } else { programs as f64 / host as f64 };
    let rho = device_rho(&flash, footprint_frac);
    UniformValidation {
        rho,
        measured,
        greedy: waf_greedy(rho, flash.pages_per_block as usize),
        fifo: waf_fifo(rho),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_matches_literature_fixed_point() {
        // Desnoyers/Li-Lee-Lui report A ≈ 5.18 at ρ = 0.9.
        assert!((waf_fifo(0.9) - 5.179).abs() < 0.05, "got {}", waf_fifo(0.9));
        // And the defining equation holds at the returned root.
        for rho in [0.7, 0.8, 0.9, 0.95] {
            let a = waf_fifo(rho);
            assert!((1.0 - 1.0 / a - (-1.0 / (a * rho)).exp()).abs() < 1e-6);
        }
    }

    #[test]
    fn curves_are_monotone_and_ordered() {
        let mut prev_f = 1.0;
        let mut prev_g = 1.0;
        for rho in [0.70, 0.80, 0.85, 0.90, 0.95] {
            let f = waf_fifo(rho);
            let g = waf_greedy(rho, 32);
            assert!(f > prev_f && g > prev_g, "WA grows with utilization");
            assert!(g < f, "greedy beats FIFO at rho={rho}: {g} vs {f}");
            assert!(g > 1.0);
            prev_f = f;
            prev_g = g;
        }
        // Bigger blocks clean worse under greedy at equal utilization.
        assert!(waf_greedy(0.9, 64) > waf_greedy(0.9, 32));
    }

    #[test]
    fn simulator_tracks_greedy_curve_on_tiny_device() {
        // Finite-size smoke check on the 256-block test device; the repro
        // harness gates a 3-seed fleet at release scale (`sweep-fleet`).
        let v = uniform_validation(UllConfig::tiny_for_tests(), 0.95, 24_000, 7);
        assert!(v.measured > 1.5, "GC must be amplifying: {}", v.measured);
        assert!(
            v.rel_err() < 0.10,
            "measured {} vs greedy {} at rho {} (fifo {})",
            v.measured,
            v.greedy,
            v.rho,
            v.fifo
        );
    }
}

