//! Per-tenant SLO tracking: configurable latency objectives with
//! rolling compliance windows and burn-rate counters.
//!
//! An SLO here is "at least `goal_permille` of a tenant's requests
//! complete within `target_ns`". Violations are recorded as a 0/1
//! indicator series into [`TimeSeries`] windows at each request's
//! completion time, so a window's mean *is* its violation rate and
//! windows merge exactly across devices (integer accumulators, device
//! order) — the fleet-level compliance view is byte-deterministic at
//! any worker count.
//!
//! The burn rate is the classic SRE ratio: observed violation rate over
//! the error budget (`1 - goal`). Burn 1000 (milli) means the tenant is
//! consuming its budget exactly as fast as the objective allows; 2000
//! means twice as fast.

use cagc_harness::{Json, ToJson};
use cagc_metrics::TimeSeries;

/// Fleet-wide SLO policy.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Rolling compliance window width (simulated ns).
    pub window_ns: u64,
    /// Fraction of requests that must meet the target, in permille
    /// (e.g. `990` = 99.0%).
    pub goal_permille: u64,
    /// Latency objective applied to tenants without an override.
    pub default_target_ns: u64,
    /// Per-tenant overrides, matched by tenant label (`"Mail[0]"`).
    pub targets: Vec<(String, u64)>,
}

impl SloConfig {
    /// A single-objective policy: every tenant gets `target_ns` at
    /// `goal_permille`, windowed at `window_ns`.
    pub fn uniform(target_ns: u64, goal_permille: u64, window_ns: u64) -> Self {
        assert!(goal_permille < 1000, "a 100% goal leaves no error budget");
        assert!(window_ns > 0, "zero-width compliance window");
        Self { window_ns, goal_permille, default_target_ns: target_ns, targets: Vec::new() }
    }

    /// The latency objective for a tenant label.
    pub fn target_for(&self, tenant: &str) -> u64 {
        self.targets
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(self.default_target_ns, |&(_, ns)| ns)
    }
}

/// One tenant's SLO ledger on one device (raw, mergeable).
#[derive(Debug, Clone)]
pub struct TenantSloTrack {
    /// Tenant label.
    pub tenant: String,
    /// Latency objective applied.
    pub target_ns: u64,
    /// Compliance goal, in permille.
    pub goal_permille: u64,
    /// Requests observed.
    pub requests: u64,
    /// Requests over target.
    pub violations: u64,
    /// 0/1 violation indicator per completion, windowed.
    pub series: TimeSeries,
}

impl TenantSloTrack {
    /// A fresh ledger for `tenant` under `cfg`.
    pub fn new(tenant: &str, cfg: &SloConfig) -> Self {
        Self {
            tenant: tenant.to_string(),
            target_ns: cfg.target_for(tenant),
            goal_permille: cfg.goal_permille,
            requests: 0,
            violations: 0,
            series: TimeSeries::new(cfg.window_ns),
        }
    }

    /// Record one completion at `end_ns` with end-to-end `latency_ns`.
    pub fn record(&mut self, end_ns: u64, latency_ns: u64) {
        let violated = u64::from(latency_ns > self.target_ns);
        self.requests += 1;
        self.violations += violated;
        self.series.record(end_ns, violated);
    }

    /// Fold another device's ledger for the same tenant into this one.
    pub fn merge(&mut self, other: &TenantSloTrack) {
        self.requests += other.requests;
        self.violations += other.violations;
        self.series.merge(&other.series);
    }

    /// Overall violation rate, permille.
    pub fn violation_permille(&self) -> u64 {
        (self.violations * 1000).checked_div(self.requests).unwrap_or(0)
    }

    /// Overall compliance, permille.
    pub fn compliance_permille(&self) -> u64 {
        1000 - self.violation_permille()
    }

    /// Error-budget burn rate, milli (1000 = burning exactly at budget).
    pub fn burn_rate_milli(&self) -> u64 {
        let budget = (1000 - self.goal_permille).max(1);
        self.violation_permille() * 1000 / budget
    }

    /// Worst rolling window's violation rate, permille. The indicator
    /// values are 0/1, so a window's `mean × count` recovers its exact
    /// violation count.
    pub fn worst_window_permille(&self) -> u64 {
        self.series
            .windows()
            .iter()
            .map(|w| {
                let violations = (w.mean * w.count as f64).round() as u64;
                violations * 1000 / w.count.max(1)
            })
            .max()
            .unwrap_or(0)
    }

    /// Does the overall rate meet the objective?
    pub fn met(&self) -> bool {
        self.compliance_permille() >= self.goal_permille
    }
}

impl ToJson for TenantSloTrack {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tenant", Json::Str(self.tenant.clone())),
            ("target_ns", Json::U64(self.target_ns)),
            ("goal_permille", Json::U64(self.goal_permille)),
            ("requests", Json::U64(self.requests)),
            ("violations", Json::U64(self.violations)),
            ("compliance_permille", Json::U64(self.compliance_permille())),
            ("burn_rate_milli", Json::U64(self.burn_rate_milli())),
            ("worst_window_permille", Json::U64(self.worst_window_permille())),
            ("met", Json::Bool(self.met())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            window_ns: 1_000,
            goal_permille: 900,
            default_target_ns: 100,
            targets: vec![("Gold".into(), 50)],
        }
    }

    #[test]
    fn targets_resolve_with_overrides() {
        let c = cfg();
        assert_eq!(c.target_for("Gold"), 50);
        assert_eq!(c.target_for("Mail[0]"), 100);
        assert_eq!(SloConfig::uniform(250_000, 990, 1_000_000).target_for("x"), 250_000);
    }

    #[test]
    #[should_panic(expected = "error budget")]
    fn perfect_goal_is_rejected() {
        SloConfig::uniform(1, 1000, 1);
    }

    #[test]
    fn ledger_counts_violations_and_windows() {
        let mut t = TenantSloTrack::new("Mail[0]", &cfg());
        // Window 0: 1 of 2 violated; window 2: 1 of 1 violated.
        t.record(100, 80);
        t.record(900, 150);
        t.record(2_500, 400);
        assert_eq!(t.requests, 3);
        assert_eq!(t.violations, 2);
        assert_eq!(t.violation_permille(), 666);
        assert_eq!(t.compliance_permille(), 334);
        // Budget is 100‰; violating 666‰ burns 6.66x.
        assert_eq!(t.burn_rate_milli(), 6_660);
        assert_eq!(t.worst_window_permille(), 1000);
        assert!(!t.met());
    }

    #[test]
    fn merge_is_exact() {
        let c = cfg();
        let mut a = TenantSloTrack::new("Mail[0]", &c);
        a.record(100, 10);
        a.record(200, 10);
        let mut b = TenantSloTrack::new("Mail[0]", &c);
        b.record(150, 500);
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.violations, 1);
        assert_eq!(a.violation_permille(), 333);
        assert_eq!(a.worst_window_permille(), 333);
        assert!(!a.met());
        let mut clean = TenantSloTrack::new("Mail[0]", &c);
        clean.record(10, 5);
        assert!(clean.met());
        assert!(clean.to_json().render().contains("\"met\":true"));
    }
}
