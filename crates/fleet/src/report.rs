//! Fleet-wide aggregation: per-mix and per-tenant rollups, JSON/CSV
//! export.
//!
//! Everything here is computed by folding device reports **in device
//! order**, so the aggregate — like the per-device results it is built
//! from — is byte-identical across worker counts. Ratios are recomputed
//! from summed counters ([`TrafficTotals`] semantics), and tenant
//! latency is aggregated by merging the full per-device histograms, not
//! by averaging summaries.

use cagc_core::{LatencySummary, TrafficTotals};
use cagc_harness::{Json, ToJson};
use cagc_metrics::Histogram;
use cagc_sim::time::Nanos;
use cagc_trace::SpanProfile;

use crate::device::DeviceReport;
use crate::observe::{self, DeviceObservability, FleetTimeline};
use crate::slo::TenantSloTrack;

/// Rollup over every device serving one tenant mix.
#[derive(Debug, Clone)]
pub struct MixSummary {
    /// Mix name.
    pub mix: String,
    /// Devices serving this mix.
    pub devices: u64,
    /// Summed traffic counters across those devices.
    pub totals: TrafficTotals,
    /// Earliest first-retirement time across those devices, if any.
    pub earliest_retirement_ns: Option<Nanos>,
    /// Devices of this mix that ended the run read-only.
    pub degraded_devices: u64,
}

impl ToJson for MixSummary {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = Vec::from([
            ("mix", Json::Str(self.mix.clone())),
            ("devices", Json::U64(self.devices)),
            ("waf", Json::F64(self.totals.waf())),
            ("dedup_hit_rate", Json::F64(self.totals.dedup_hit_rate())),
            ("totals", self.totals.to_json()),
        ]);
        if let Some(ns) = self.earliest_retirement_ns {
            fields.push(("earliest_retirement_ns", Json::U64(ns)));
        }
        if self.degraded_devices > 0 {
            fields.push(("degraded_devices", Json::U64(self.degraded_devices)));
        }
        Json::obj(fields)
    }
}

/// Rollup over one tenant slot of one mix, across every device serving
/// that mix.
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// Mix name.
    pub mix: String,
    /// Tenant label within the mix (e.g. `"Mail[0]"`).
    pub tenant: String,
    /// Devices contributing.
    pub devices: u64,
    /// Requests across devices.
    pub requests: u64,
    /// Pages written across devices.
    pub pages_written: u64,
    /// Pages read across devices.
    pub pages_read: u64,
    /// Requests that completed with an error status or were dropped by a
    /// device failure, across devices (degradation attribution).
    pub failed_ops: u64,
    /// Merged latency distribution across devices.
    pub hist: Histogram,
}

impl TenantSummary {
    /// Latency summary of the merged distribution.
    pub fn lat(&self) -> LatencySummary {
        LatencySummary::of(&self.hist)
    }
}

impl ToJson for TenantSummary {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("mix", Json::Str(self.mix.clone())),
            ("tenant", Json::Str(self.tenant.clone())),
            ("devices", Json::U64(self.devices)),
            ("requests", Json::U64(self.requests)),
            ("pages_written", Json::U64(self.pages_written)),
            ("pages_read", Json::U64(self.pages_read)),
        ];
        if self.failed_ops > 0 {
            fields.push(("failed_ops", Json::U64(self.failed_ops)));
        }
        fields.push(("lat", self.lat().to_json()));
        Json::obj(fields)
    }
}

/// One (mix, tenant) SLO rollup: every device's ledger for that tenant
/// merged exactly (integer accumulators, device order).
#[derive(Debug, Clone)]
pub struct TenantSloSummary {
    /// Mix name.
    pub mix: String,
    /// The merged ledger (objective, counters, windowed indicator).
    pub track: TenantSloTrack,
}

impl ToJson for TenantSloSummary {
    fn to_json(&self) -> Json {
        match self.track.to_json() {
            Json::Obj(mut fields) => {
                fields.insert(0, ("mix".to_string(), Json::Str(self.mix.clone())));
                Json::Obj(fields)
            }
            other => other,
        }
    }
}

/// The full fleet result: per-device reports plus the rollups.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-device results, in device order.
    pub devices: Vec<DeviceReport>,
    /// Fleet-wide summed traffic counters.
    pub fleet: TrafficTotals,
    /// Per-mix rollups, in first-appearance (device) order.
    pub by_mix: Vec<MixSummary>,
    /// Per-(mix, tenant) rollups, in first-appearance order.
    pub by_tenant: Vec<TenantSummary>,
    /// Distinct traces the run generated (the shared-memory footprint).
    pub distinct_traces: usize,
    /// Devices that retired at least one block.
    pub retired_devices: u64,
    /// Earliest first-retirement time across the fleet, if any device
    /// retired a block.
    pub earliest_retirement_ns: Option<Nanos>,
    /// Devices that ended the run degraded to read-only.
    pub degraded_devices: u64,
    /// Earliest tenant-visible degradation (first write-protected
    /// completion) across the fleet, if any device degraded.
    pub first_degradation_ns: Option<Nanos>,
    /// Requests across the fleet that completed with an error status or
    /// were dropped by a device failure.
    pub failed_ops: u64,
    /// Summed traffic counters over the surviving (non-read-only)
    /// devices — what capacity the fleet still has after degradation.
    pub survivor_totals: TrafficTotals,
    /// Time-resolved fleet view (per-device gauges namespaced
    /// `dev{id:03}/…`, exact `fleet/…` merges, degraded-device step).
    /// Only observed fleets carry it.
    pub timeline: Option<FleetTimeline>,
    /// Merged span profile across every traced device. Only fleets with
    /// span-recording telemetry carry it.
    pub profile: Option<SpanProfile>,
    /// Per-(mix, tenant) SLO rollups, first-appearance order. Only
    /// SLO-tracking fleets carry it.
    pub slo: Option<Vec<TenantSloSummary>>,
}

impl FleetReport {
    /// Fold per-device reports into the fleet rollups. Deterministic:
    /// pure fold in device order.
    pub fn aggregate(devices: Vec<DeviceReport>, distinct_traces: usize) -> Self {
        let mut fleet = TrafficTotals::default();
        let mut by_mix: Vec<MixSummary> = Vec::new();
        let mut by_tenant: Vec<TenantSummary> = Vec::new();
        let mut retired_devices = 0u64;
        let mut earliest: Option<Nanos> = None;
        let mut degraded_devices = 0u64;
        let mut first_degradation: Option<Nanos> = None;
        let mut failed_ops = 0u64;
        let mut survivor_totals = TrafficTotals::default();
        for dev in &devices {
            merge_totals(&mut fleet, &dev.totals);
            if let Some(ns) = dev.first_retirement_ns {
                retired_devices += 1;
                earliest = Some(earliest.map_or(ns, |e: Nanos| e.min(ns)));
            }
            if dev.read_only {
                degraded_devices += 1;
            } else {
                merge_totals(&mut survivor_totals, &dev.totals);
            }
            if let Some(ns) = dev.degraded_at_ns {
                first_degradation = Some(first_degradation.map_or(ns, |e: Nanos| e.min(ns)));
            }
            failed_ops += dev.failed_ops;
            let mix = match by_mix.iter_mut().find(|m| m.mix == dev.mix) {
                Some(m) => m,
                None => {
                    by_mix.push(MixSummary {
                        mix: dev.mix.clone(),
                        devices: 0,
                        totals: TrafficTotals::default(),
                        earliest_retirement_ns: None,
                        degraded_devices: 0,
                    });
                    by_mix.last_mut().unwrap()
                }
            };
            mix.devices += 1;
            merge_totals(&mut mix.totals, &dev.totals);
            if let Some(ns) = dev.first_retirement_ns {
                mix.earliest_retirement_ns =
                    Some(mix.earliest_retirement_ns.map_or(ns, |e| e.min(ns)));
            }
            if dev.read_only {
                mix.degraded_devices += 1;
            }
            for t in &dev.tenants {
                let entry = match by_tenant
                    .iter_mut()
                    .find(|s| s.mix == dev.mix && s.tenant == t.tenant)
                {
                    Some(s) => s,
                    None => {
                        by_tenant.push(TenantSummary {
                            mix: dev.mix.clone(),
                            tenant: t.tenant.clone(),
                            devices: 0,
                            requests: 0,
                            pages_written: 0,
                            pages_read: 0,
                            failed_ops: 0,
                            hist: Histogram::new(),
                        });
                        by_tenant.last_mut().unwrap()
                    }
                };
                entry.devices += 1;
                entry.requests += t.requests;
                entry.pages_written += t.pages_written;
                entry.pages_read += t.pages_read;
                entry.failed_ops += t.failed_ops;
                entry.hist.merge(&t.hist);
            }
        }
        // Observability rollups: pure folds over the per-device
        // captures, in device order.
        let obs_devices: Vec<(u32, &DeviceObservability)> =
            devices.iter().filter_map(|d| d.obs.as_ref().map(|o| (d.device, o))).collect();
        let degraded_instants: Vec<u64> =
            devices.iter().filter_map(|d| d.degraded_at_ns).collect();
        let timeline = FleetTimeline::build(&obs_devices, &degraded_instants);
        let mut profile: Option<SpanProfile> = None;
        for (_, o) in &obs_devices {
            if let Some(p) = &o.profile {
                match &mut profile {
                    Some(m) => m.merge(p),
                    None => profile = Some(p.clone()),
                }
            }
        }
        let mut slo_rollup: Vec<TenantSloSummary> = Vec::new();
        let mut slo_armed = false;
        for dev in &devices {
            if let Some(tracks) = &dev.slo {
                slo_armed = true;
                for t in tracks {
                    match slo_rollup
                        .iter_mut()
                        .find(|s| s.mix == dev.mix && s.track.tenant == t.tenant)
                    {
                        Some(s) => s.track.merge(t),
                        None => slo_rollup
                            .push(TenantSloSummary { mix: dev.mix.clone(), track: t.clone() }),
                    }
                }
            }
        }
        Self {
            devices,
            fleet,
            by_mix,
            by_tenant,
            distinct_traces,
            retired_devices,
            earliest_retirement_ns: earliest,
            degraded_devices,
            first_degradation_ns: first_degradation,
            failed_ops,
            survivor_totals,
            timeline,
            profile,
            slo: slo_armed.then_some(slo_rollup),
        }
    }

    /// Events dropped across every observed device's tracer.
    pub fn dropped_events(&self) -> u64 {
        self.devices.iter().filter_map(|d| d.obs.as_ref()).map(|o| o.dropped_events).sum()
    }

    /// The time-resolved observability artifact: every timeline series
    /// plus one `slo/{mix}/{tenant}` violation-rate series per SLO
    /// rollup, one row per non-empty window. `None` when neither
    /// telemetry nor SLO tracking was armed.
    pub fn timeline_csv(&self) -> Option<String> {
        if self.timeline.is_none() && self.slo.is_none() {
            return None;
        }
        let mut out = String::from("series,start_ns,count,mean,max\n");
        if let Some(tl) = &self.timeline {
            for (name, ts) in &tl.series {
                observe::push_csv_rows(&mut out, name, ts);
            }
        }
        if let Some(slo) = &self.slo {
            for s in slo {
                let name = format!("slo/{}/{}", s.mix, s.track.tenant);
                observe::push_csv_rows(&mut out, &name, &s.track.series);
            }
        }
        Some(out)
    }

    /// Fleet-wide write amplification (summed counters).
    pub fn waf(&self) -> f64 {
        self.fleet.waf()
    }

    /// Fleet-wide dedup hit rate (summed counters).
    pub fn dedup_hit_rate(&self) -> f64 {
        self.fleet.dedup_hit_rate()
    }

    /// Per-device CSV: one row per device, exact integer ns.
    pub fn device_csv(&self) -> String {
        let mut out = String::from(
            "device,mix,scheme,waf,dedup_hit_rate,erases,host_pages,p50_ns,p99_ns,p999_ns,end_ns\n",
        );
        for d in &self.devices {
            out.push_str(&format!(
                "{},{},{},{:.4},{:.4},{},{},{},{},{},{}\n",
                d.device,
                d.mix,
                d.scheme,
                d.waf(),
                d.dedup_hit_rate(),
                d.erases,
                d.totals.host_pages_written,
                d.lat.p50_ns,
                d.lat.p99_ns,
                d.lat.p999_ns,
                d.end_ns,
            ));
        }
        out
    }

    /// Per-tenant QoS CSV: one row per (mix, tenant), latency from the
    /// merged cross-device distribution.
    pub fn qos_csv(&self) -> String {
        let mut out = String::from(
            "mix,tenant,devices,requests,pages_written,p50_ns,p90_ns,p99_ns,p999_ns,max_ns\n",
        );
        for t in &self.by_tenant {
            let lat = t.lat();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                t.mix,
                t.tenant,
                t.devices,
                t.requests,
                t.pages_written,
                lat.p50_ns,
                lat.p90_ns,
                lat.p99_ns,
                lat.p999_ns,
                lat.max_ns,
            ));
        }
        out
    }

    /// Short human summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet: {} devices, {} mixes, {} distinct traces\n\
             \x20 waf {:.4}, dedup hit rate {:.4}, {} erases, {} host pages",
            self.devices.len(),
            self.by_mix.len(),
            self.distinct_traces,
            self.waf(),
            self.dedup_hit_rate(),
            self.fleet.total_erases,
            self.fleet.host_pages_written,
        );
        if let Some(ns) = self.earliest_retirement_ns {
            out.push_str(&format!(
                "\n\x20 lifetime: {} devices retired a block, earliest at {ns} ns",
                self.retired_devices
            ));
        }
        if self.degraded_devices > 0 || self.failed_ops > 0 {
            let surviving = self.devices.len() as u64 - self.degraded_devices;
            out.push_str(&format!(
                "\n\x20 degradation: {} devices read-only ({} surviving), {} failed ops",
                self.degraded_devices, surviving, self.failed_ops
            ));
            if let Some(ns) = self.first_degradation_ns {
                out.push_str(&format!(", first at {ns} ns"));
            }
        }
        for m in &self.by_mix {
            out.push_str(&format!(
                "\n\x20 mix {:<16} {} devs  waf {:.4}  dedup {:.4}",
                m.mix,
                m.devices,
                m.totals.waf(),
                m.totals.dedup_hit_rate()
            ));
        }
        // Pay-as-you-go: unobserved fleets print none of these lines.
        if let Some(tl) = &self.timeline {
            let fleet_series = tl.series.iter().filter(|(n, _)| n.starts_with("fleet/")).count();
            out.push_str(&format!(
                "\n\x20 observability: {} timeline series ({} fleet-merged), {} events dropped",
                tl.series.len(),
                fleet_series,
                self.dropped_events()
            ));
            if let Some(p) = &self.profile {
                out.push_str(&format!(", {} profile buckets", p.rows().len()));
            }
        }
        if let Some(slo) = &self.slo {
            for s in slo {
                let t = &s.track;
                out.push_str(&format!(
                    "\n\x20 slo {}/{}: {}/1000 compliant (goal {}), burn {}m, worst window {}/1000 — {}",
                    s.mix,
                    t.tenant,
                    t.compliance_permille(),
                    t.goal_permille,
                    t.burn_rate_milli(),
                    t.worst_window_permille(),
                    if t.met() { "met" } else { "VIOLATED" }
                ));
            }
        }
        out
    }
}

impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = Vec::from([
            ("devices", Json::U64(self.devices.len() as u64)),
            ("distinct_traces", Json::U64(self.distinct_traces as u64)),
            ("waf", Json::F64(self.waf())),
            ("dedup_hit_rate", Json::F64(self.dedup_hit_rate())),
            ("fleet", self.fleet.to_json()),
            ("by_mix", Json::Arr(self.by_mix.iter().map(|m| m.to_json()).collect())),
            ("by_tenant", Json::Arr(self.by_tenant.iter().map(|t| t.to_json()).collect())),
        ]);
        // Pay-as-you-go: fault-free fleets carry no lifetime section.
        if self.earliest_retirement_ns.is_some() || self.retired_devices > 0 {
            fields.push(("retired_devices", Json::U64(self.retired_devices)));
            if let Some(ns) = self.earliest_retirement_ns {
                fields.push(("earliest_retirement_ns", Json::U64(ns)));
            }
        }
        // Degradation section: only fleets that actually degraded (or
        // failed ops) pay for it.
        if self.degraded_devices > 0 || self.failed_ops > 0 {
            fields.push(("degraded_devices", Json::U64(self.degraded_devices)));
            fields.push((
                "surviving_devices",
                Json::U64(self.devices.len() as u64 - self.degraded_devices),
            ));
            if let Some(ns) = self.first_degradation_ns {
                fields.push(("first_degradation_ns", Json::U64(ns)));
            }
            fields.push(("failed_ops", Json::U64(self.failed_ops)));
            fields.push(("survivor_totals", self.survivor_totals.to_json()));
        }
        // Observability section: only observed fleets pay for it. The
        // full gauge windows live in the timeline CSV artifact; the JSON
        // carries the compact summary plus the merged profile.
        if self.timeline.is_some() || self.profile.is_some() {
            let mut o: Vec<(&'static str, Json)> = Vec::new();
            o.push(("dropped_events", Json::U64(self.dropped_events())));
            if let Some(tl) = &self.timeline {
                o.push(("timeline", tl.to_json()));
            }
            if let Some(p) = &self.profile {
                o.push(("profile", p.to_json()));
            }
            fields.push(("observability", Json::obj(o)));
        }
        if let Some(slo) = &self.slo {
            fields.push(("slo", Json::Arr(slo.iter().map(|s| s.to_json()).collect())));
        }
        fields
            .push(("per_device", Json::Arr(self.devices.iter().map(|d| d.to_json()).collect())));
        Json::obj(fields)
    }
}

/// Sum `src` into `dst` field-by-field (TrafficTotals has no Add impl to
/// keep it a plain counter bag; runs accumulate, everything else sums).
fn merge_totals(dst: &mut TrafficTotals, src: &TrafficTotals) {
    dst.runs += src.runs;
    dst.host_pages_written += src.host_pages_written;
    dst.user_programs += src.user_programs;
    dst.total_programs += src.total_programs;
    dst.total_erases += src.total_erases;
    dst.dedup_lookups += src.dedup_lookups;
    dst.dedup_hits += src.dedup_hits;
    dst.gc_invocations += src.gc_invocations;
    dst.pages_migrated += src.pages_migrated;
}
