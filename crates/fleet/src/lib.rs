//! # cagc-fleet — fleet-scale multi-tenant simulation
//!
//! A production deployment is thousands of SSDs serving millions of
//! users, not the one device the paper evaluates. This crate simulates a
//! *fleet*: N independent devices, each serving a blend of per-tenant
//! namespaces composed from the FIU-style workload models
//! (`cagc_workloads`), fanned out over the deterministic dynamic
//! scheduler in `cagc_harness::pool` and rolled up into a
//! [`FleetReport`] with per-tenant QoS, per-device lifetime, and
//! fleet-wide traffic aggregates.
//!
//! ## Architecture
//!
//! - [`mix`] — named tenant blends (which workloads share a device, at
//!   what relative arrival rate).
//! - [`library`] — the [`library::TraceLibrary`]: each distinct tenant
//!   trace is generated once and shared as an `Arc<Trace>` across every
//!   device that replays it, so fleet memory scales with *distinct
//!   mixes*, not devices × trace size.
//! - [`device`] — one device cell: a streaming k-way merge of the
//!   tenant traces (same order as `mixer::interleave_n`, nothing
//!   materialized) into `Ssd::process`, or a multi-queue NVMe-style
//!   replay via `cagc_host` when queue pairs are configured.
//! - [`fleet`] — the fan-out: device cells are pure functions of their
//!   spec, scheduled with `map_ordered_dynamic_chunked`, so the
//!   [`FleetReport`] is byte-identical at every worker count.
//! - [`analytic`] — Li/Lee/Lui-style mean-field write-amplification
//!   curves (FIFO and greedy cleaning) the measured fleet WAF is
//!   validated against under uniform random traffic.
//!
//! Determinism contract: `run_fleet` with the same [`FleetConfig`]
//! produces the same report — bit for bit, across worker counts and
//! machines. The repro harness gates this in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analytic;
pub mod device;
pub mod fleet;
pub mod library;
pub mod mix;
pub mod observe;
pub mod report;
pub mod slo;

pub use device::{simulate_device, DeviceReport, DeviceSpec, TenantReport, TenantTrace};
pub use fleet::{run_fleet, FleetConfig};
pub use library::TraceLibrary;
pub use mix::{TenantMix, TenantSpec};
pub use observe::{DeviceObservability, FleetTelemetryConfig, FleetTimeline};
pub use report::FleetReport;
pub use slo::{SloConfig, TenantSloTrack};
