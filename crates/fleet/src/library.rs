//! Shared tenant-trace storage: generate once, share everywhere.
//!
//! A fleet run replays the same tenant blends on many devices. Traces
//! are by far the largest allocation in a run (tens of MB each at
//! reporting scale), so the library interns them: each distinct
//! `(workload, pages, requests, seed, rate)` tuple is generated exactly
//! once and handed out as an [`Arc<Trace>`]. Fleet memory therefore
//! scales with the number of *distinct tenant variants*, not with
//! devices × trace size — the property `fleet::tests` asserts by
//! pointer identity.

use std::sync::Arc;

use cagc_workloads::{mixer, FiuWorkload, Trace};

/// Interning key: every generator input that affects the trace bytes.
/// The rate factor is stored in millis so the key stays `Eq`-able.
type Key = (u8, u64, usize, u64, u64);

/// Deduplicating store of generated tenant traces.
#[derive(Debug, Default)]
pub struct TraceLibrary {
    entries: Vec<(Key, Arc<Trace>)>,
}

impl TraceLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// The trace for a tenant variant, generating it on first request.
    /// Same arguments, same `Arc` — callers clone the handle, never the
    /// trace.
    pub fn get(
        &mut self,
        workload: FiuWorkload,
        logical_pages: u64,
        requests: usize,
        seed: u64,
        rate_factor: f64,
    ) -> Arc<Trace> {
        assert!(rate_factor > 0.0, "rate factor must be positive");
        let key: Key =
            (workload as u8, logical_pages, requests, seed, (rate_factor * 1000.0).round() as u64);
        if let Some((_, t)) = self.entries.iter().find(|(k, _)| *k == key) {
            return Arc::clone(t);
        }
        let base = workload.synth_config(logical_pages, requests, seed).generate();
        let trace =
            if rate_factor == 1.0 { base } else { mixer::scale_rate(&base, rate_factor) };
        let trace = Arc::new(trace);
        self.entries.push((key, Arc::clone(&trace)));
        trace
    }

    /// Number of distinct traces generated so far.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_by_full_key() {
        let mut lib = TraceLibrary::new();
        let a = lib.get(FiuWorkload::Mail, 2_000, 50, 7, 1.0);
        let b = lib.get(FiuWorkload::Mail, 2_000, 50, 7, 1.0);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one trace");
        assert_eq!(lib.distinct(), 1);

        // Any key component change produces a distinct trace.
        let c = lib.get(FiuWorkload::Mail, 2_000, 50, 8, 1.0);
        let d = lib.get(FiuWorkload::Mail, 2_000, 50, 7, 0.5);
        let e = lib.get(FiuWorkload::Homes, 2_000, 50, 7, 1.0);
        assert!(!Arc::ptr_eq(&a, &c) && !Arc::ptr_eq(&a, &d) && !Arc::ptr_eq(&a, &e));
        assert_eq!(lib.distinct(), 4);
    }

    #[test]
    fn rate_factor_rescales_arrivals() {
        let mut lib = TraceLibrary::new();
        let native = lib.get(FiuWorkload::Homes, 2_000, 50, 7, 1.0);
        let fast = lib.get(FiuWorkload::Homes, 2_000, 50, 7, 0.5);
        let last = native.requests.last().unwrap().at_ns;
        let fast_last = fast.requests.last().unwrap().at_ns;
        assert!(fast_last < last, "0.5x factor must compress the timeline");
    }
}
