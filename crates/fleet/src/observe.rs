//! The fleet observability plane: per-device telemetry capture and the
//! fleet-level timeline it merges into.
//!
//! Each armed device runs its own [`cagc_trace::Tracer`] (gauges-only by
//! default — no per-event allocation) and hands its gauge registry back
//! with the device report. The fleet layer then namespaces every series
//! as `dev{id:03}/{gauge}` — bare gauge names are `&'static str` and
//! would alias across N devices — and folds the raw integer
//! accumulators into merged `fleet/{gauge}` series via
//! [`TimeSeries::merge`], plus a derived `fleet/degraded_devices`
//! step series from the devices' degradation instants. Everything is a
//! pure fold in device order: byte-identical at any worker count.

use cagc_harness::{Json, ToJson};
use cagc_metrics::TimeSeries;
use cagc_trace::{SpanProfile, TraceConfig};

/// Per-device telemetry knobs for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetTelemetryConfig {
    /// Gauge aggregation window width (simulated ns).
    pub window_ns: u64,
    /// Sample every `sample`-th host request's gauges (1 = all).
    pub sample: u64,
    /// Also record span/instant events and derive a per-device
    /// [`SpanProfile`] (merged fleet-wide). Costs event memory per
    /// device; gauges-only mode allocates no events at all.
    pub record_spans: bool,
    /// Event cap per device when `record_spans` is on.
    pub max_events: usize,
}

impl FleetTelemetryConfig {
    /// Gauges-only telemetry: windowed registries, no events.
    pub fn gauges_only(window_ns: u64, sample: u64) -> Self {
        Self { window_ns, sample, record_spans: false, max_events: 0 }
    }

    /// Full tracing per device (events + gauges), default cap.
    pub fn traced(window_ns: u64, sample: u64) -> Self {
        Self { window_ns, sample, record_spans: true, max_events: 1 << 20 }
    }

    /// The per-device tracer configuration.
    pub fn trace_config(&self) -> TraceConfig {
        TraceConfig {
            sample: self.sample,
            max_events: if self.record_spans { self.max_events } else { 0 },
            counter_window_ns: self.window_ns,
            record_spans: self.record_spans,
        }
    }
}

/// What one armed device hands back with its report.
#[derive(Debug, Clone)]
pub struct DeviceObservability {
    /// Gauge window width (ns).
    pub window_ns: u64,
    /// The device's gauge series, registration order, bare names.
    pub gauges: Vec<(String, TimeSeries)>,
    /// Events the device's tracer dropped at its cap.
    pub dropped_events: u64,
    /// Span profile of the device's recording (only with
    /// [`FleetTelemetryConfig::record_spans`]).
    pub profile: Option<SpanProfile>,
}

/// Fleet-level time-resolved view: every device's gauges, namespaced,
/// plus the exact cross-device merges.
#[derive(Debug, Clone)]
pub struct FleetTimeline {
    /// Gauge window width (ns).
    pub window_ns: u64,
    /// `(series name, series)` in emission order: per-device series
    /// (device order, registration order within a device), then merged
    /// `fleet/{gauge}` series (first-appearance order), then derived
    /// fleet series.
    pub series: Vec<(String, TimeSeries)>,
}

impl FleetTimeline {
    /// Build the timeline from per-device observability captures (device
    /// order) and the devices' degradation instants.
    pub fn build(
        devices: &[(u32, &DeviceObservability)],
        degraded_at_ns: &[u64],
    ) -> Option<FleetTimeline> {
        let window_ns = devices.first().map(|(_, o)| o.window_ns)?;
        let mut series: Vec<(String, TimeSeries)> = Vec::new();
        let mut merged: Vec<(String, TimeSeries)> = Vec::new();
        for &(id, obs) in devices {
            for (name, ts) in &obs.gauges {
                series.push((format!("dev{id:03}/{name}"), ts.clone()));
                match merged.iter_mut().find(|(n, _)| n == name) {
                    Some((_, m)) => m.merge(ts),
                    None => merged.push((name.clone(), ts.clone())),
                }
            }
        }
        for (name, ts) in merged {
            series.push((format!("fleet/{name}"), ts));
        }
        // Degraded-device count over time: a cumulative step sampled at
        // each tenant-visible degradation instant.
        if !degraded_at_ns.is_empty() {
            let mut instants = degraded_at_ns.to_vec();
            instants.sort_unstable();
            let mut ts = TimeSeries::new(window_ns);
            for (i, &at) in instants.iter().enumerate() {
                ts.record(at, i as u64 + 1);
            }
            series.push(("fleet/degraded_devices".to_string(), ts));
        }
        Some(FleetTimeline { window_ns, series })
    }

    /// CSV export: `series,start_ns,count,mean,max`, one row per
    /// non-empty window, series in emission order. Floats use the
    /// harness's shortest-round-trip formatting (byte-deterministic).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,start_ns,count,mean,max\n");
        for (name, ts) in &self.series {
            push_csv_rows(&mut out, name, ts);
        }
        out
    }

    /// Look up a series by exact name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, ts)| ts)
    }
}

/// Append `series,start_ns,count,mean,max` rows for one named series
/// (shared between the timeline CSV and the fleet artifact, which also
/// carries SLO violation series).
pub(crate) fn push_csv_rows(out: &mut String, name: &str, ts: &TimeSeries) {
    for w in ts.windows() {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            name,
            w.start_ns,
            w.count,
            Json::F64(w.mean).render(),
            w.max
        ));
    }
}

impl ToJson for FleetTimeline {
    /// Compact summary (`{"window_ns":…,"series":[{name,samples,max}…]}`)
    /// — the full windows live in the CSV artifact, not the report.
    fn to_json(&self) -> Json {
        Json::obj([
            ("window_ns", Json::U64(self.window_ns)),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|(name, ts)| {
                            let max = ts.windows().iter().map(|w| w.max).max().unwrap_or(0);
                            Json::obj([
                                ("name", Json::Str(name.clone())),
                                ("samples", Json::U64(ts.sample_count())),
                                ("max", Json::U64(max)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(vals: &[(&str, &[(u64, u64)])]) -> DeviceObservability {
        DeviceObservability {
            window_ns: 1_000,
            gauges: vals
                .iter()
                .map(|&(name, samples)| {
                    let mut ts = TimeSeries::new(1_000);
                    for &(at, v) in samples {
                        ts.record(at, v);
                    }
                    (name.to_string(), ts)
                })
                .collect(),
            dropped_events: 0,
            profile: None,
        }
    }

    #[test]
    fn device_series_never_alias_and_fleet_merge_is_exact() {
        let a = obs(&[("free_pages", &[(100, 10)]), ("waf_milli", &[(100, 1500)])]);
        let b = obs(&[("free_pages", &[(150, 30)])]);
        let tl = FleetTimeline::build(&[(0, &a), (1, &b)], &[]).unwrap();
        let names: Vec<&str> = tl.series.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["dev000/free_pages", "dev000/waf_milli", "dev001/free_pages", "fleet/free_pages", "fleet/waf_milli"]
        );
        // The two devices' identically-named gauges stay distinct…
        assert_eq!(tl.get("dev000/free_pages").unwrap().sample_count(), 1);
        assert_eq!(tl.get("dev001/free_pages").unwrap().sample_count(), 1);
        // …while the fleet series is their exact integer merge.
        let fleet = tl.get("fleet/free_pages").unwrap();
        assert_eq!(fleet.sample_count(), 2);
        assert_eq!(fleet.sample_sum(), 40);
        assert_eq!(fleet.windows()[0].max, 30);
    }

    #[test]
    fn degraded_devices_form_a_cumulative_step() {
        let a = obs(&[("free_pages", &[(0, 1)])]);
        let tl = FleetTimeline::build(&[(4, &a)], &[5_000, 2_000]).unwrap();
        let deg = tl.get("fleet/degraded_devices").unwrap();
        let w = deg.windows();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].start_ns, w[0].max), (2_000, 1));
        assert_eq!((w[1].start_ns, w[1].max), (5_000, 2));
    }

    #[test]
    fn empty_capture_yields_no_timeline() {
        assert!(FleetTimeline::build(&[], &[1]).is_none());
    }

    #[test]
    fn csv_is_deterministic_with_header_and_exact_values() {
        let a = obs(&[("free_pages", &[(100, 10), (150, 20)])]);
        let tl = FleetTimeline::build(&[(0, &a)], &[]).unwrap();
        assert_eq!(
            tl.to_csv(),
            "series,start_ns,count,mean,max\n\
             dev000/free_pages,0,2,15,20\n\
             fleet/free_pages,0,2,15,20\n"
        );
        let j = tl.to_json().render();
        assert!(j.starts_with(r#"{"window_ns":1000,"series":[{"name":"dev000/free_pages","samples":2,"max":20}"#));
    }
}
