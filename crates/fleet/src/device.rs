//! One fleet cell: a multi-tenant device replay with per-tenant QoS.
//!
//! The cell is a *pure function* of its [`DeviceSpec`]: same spec, same
//! [`DeviceReport`], bit for bit — the property that lets the fleet
//! layer schedule cells dynamically without changing results.
//!
//! Tenant streams are merged on the fly: a k-way heap walk in exactly
//! the order `mixer::interleave_n_tagged` would produce (arrival time,
//! ties by tenant index, FIFO within a tenant), with each tenant's LPNs
//! offset into its own namespace. In direct mode nothing is
//! materialized — merged requests feed `Ssd::process` one at a time —
//! so per-device transient memory is O(1) beyond the shared traces.
//! With host queues configured, the merged trace is materialized
//! transiently and replayed through the NVMe-style multi-queue
//! interface instead, giving host-observed (queueing-inclusive) tenant
//! latencies.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use cagc_core::{CmdStatus, RunReport, Scheme, Ssd, SsdConfig, TrafficTotals};
use cagc_flash::{FaultConfig, UllConfig};
use cagc_harness::{Json, ToJson};
use cagc_host::{HostConfig, HostInterface};
use cagc_metrics::Histogram;
use cagc_core::LatencySummary;
use cagc_sim::time::Nanos;
use cagc_trace::SpanProfile;
use cagc_workloads::{mixer, OpKind, Request, Trace};

use crate::observe::{DeviceObservability, FleetTelemetryConfig};
use crate::slo::{SloConfig, TenantSloTrack};

/// One tenant's stream on a device: a display label and a shared handle
/// to its (immutable) trace.
#[derive(Debug, Clone)]
pub struct TenantTrace {
    /// Display label, e.g. `"Mail[0]"`.
    pub label: String,
    /// The tenant's trace, shared across every device replaying it.
    pub trace: Arc<Trace>,
}

/// Everything that determines one device's simulation.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Device index within the fleet.
    pub id: u32,
    /// Name of the tenant mix this device serves.
    pub mix_name: String,
    /// FTL scheme under test.
    pub scheme: Scheme,
    /// Device shape and timing.
    pub flash: UllConfig,
    /// Tenant streams, in namespace order.
    pub tenants: Vec<TenantTrace>,
    /// `Some((queue_pairs, queue_depth))` replays through the NVMe-style
    /// host interface; `None` feeds the FTL directly.
    pub host_queues: Option<(u32, u32)>,
    /// Fault-injection plan for this device ([`FaultConfig::none`] for a
    /// fault-free cell). Faulty cells keep running: error completions are
    /// attributed to the issuing tenant, and a device that degrades to
    /// read-only fails its remaining write traffic instead of aborting
    /// the fleet.
    pub faults: FaultConfig,
    /// Run the device with preemptible (sliced) GC.
    pub gc_preempt: bool,
    /// Override for [`cagc_core::SsdConfig::read_only_floor_blocks`]
    /// (`None` keeps the device default). Raising the floor makes the
    /// read-only trip wire sensitive to the first few retirements —
    /// chaos campaigns use it to reach degradation in bounded work.
    pub read_only_floor_blocks: Option<u32>,
    /// Arm this device's tracer and capture its gauge registry (and
    /// optionally a span profile) with the report. `None` keeps the cell
    /// byte-identical to an unobserved run.
    pub telemetry: Option<FleetTelemetryConfig>,
    /// Track per-tenant latency objectives. `None` records nothing.
    pub slo: Option<SloConfig>,
}

/// Per-tenant accounting for one device.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant label (from [`TenantTrace::label`]).
    pub tenant: String,
    /// Requests the tenant issued.
    pub requests: u64,
    /// Pages the tenant wrote.
    pub pages_written: u64,
    /// Pages the tenant read.
    pub pages_read: u64,
    /// Trim requests the tenant issued.
    pub trims: u64,
    /// Tenant-observed latency distribution (device service time in
    /// direct mode, host end-to-end time in host mode). Kept as a full
    /// histogram so the fleet layer can merge across devices exactly.
    pub hist: Histogram,
    /// Requests that completed with an error status (media read error,
    /// write fault, write protected) or were dropped by a device failure
    /// — the tenant's share of the device's degradation. Zero on
    /// fault-free runs.
    pub failed_ops: u64,
}

impl TenantReport {
    /// Latency summary of this tenant's distribution.
    pub fn lat(&self) -> LatencySummary {
        LatencySummary::of(&self.hist)
    }
}

impl ToJson for TenantReport {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("tenant", Json::Str(self.tenant.clone())),
            ("requests", Json::U64(self.requests)),
            ("pages_written", Json::U64(self.pages_written)),
            ("pages_read", Json::U64(self.pages_read)),
            ("trims", Json::U64(self.trims)),
        ];
        // Pay-as-you-go: only degraded runs carry the key.
        if self.failed_ops > 0 {
            fields.push(("failed_ops", Json::U64(self.failed_ops)));
        }
        fields.push(("lat", self.lat().to_json()));
        Json::obj(fields)
    }
}

/// One device's result: distilled device-level counters plus per-tenant
/// accounting.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Device index within the fleet.
    pub device: u32,
    /// Tenant-mix name the device served.
    pub mix: String,
    /// Scheme name.
    pub scheme: String,
    /// This device's additive traffic counters (one run folded in).
    pub totals: TrafficTotals,
    /// Device-level all-request latency summary.
    pub lat: LatencySummary,
    /// GC blocks erased.
    pub erases: u64,
    /// Sim time of the first bad-block retirement, if any (lifetime
    /// proxy; `None` on fault-free runs).
    pub first_retirement_ns: Option<Nanos>,
    /// Whether the device ended the run degraded to read-only (spare
    /// pool exhausted by bad-block retirement).
    pub read_only: bool,
    /// Sim time of the first write-protected completion — the moment the
    /// read-only degradation became visible to a tenant. `None` if the
    /// device never degraded (or degraded after its last write).
    pub degraded_at_ns: Option<Nanos>,
    /// Requests across all tenants that completed with an error status
    /// or were dropped by a device failure.
    pub failed_ops: u64,
    /// Sim time when the device finished its replay.
    pub end_ns: Nanos,
    /// Per-tenant accounting, in namespace order.
    pub tenants: Vec<TenantReport>,
    /// Telemetry capture (only when [`DeviceSpec::telemetry`] was set).
    pub obs: Option<DeviceObservability>,
    /// Per-tenant SLO ledgers, namespace order (only when
    /// [`DeviceSpec::slo`] was set).
    pub slo: Option<Vec<TenantSloTrack>>,
}

impl DeviceReport {
    /// Write amplification of this device.
    pub fn waf(&self) -> f64 {
        self.totals.waf()
    }

    /// Dedup hit rate of this device.
    pub fn dedup_hit_rate(&self) -> f64 {
        self.totals.dedup_hit_rate()
    }

    fn from_run(
        spec: &DeviceSpec,
        run: &RunReport,
        tenants: Vec<TenantReport>,
        degraded_at_ns: Option<Nanos>,
        obs: Option<DeviceObservability>,
        slo: Option<Vec<TenantSloTrack>>,
    ) -> Self {
        let mut totals = TrafficTotals::default();
        totals.add(run);
        let failed_ops = tenants.iter().map(|t| t.failed_ops).sum();
        Self {
            device: spec.id,
            mix: spec.mix_name.clone(),
            scheme: spec.scheme.name().to_string(),
            totals,
            lat: run.all.clone(),
            erases: run.total_erases,
            first_retirement_ns: run.first_retirement_ns,
            read_only: run.faults.read_only,
            degraded_at_ns,
            failed_ops,
            end_ns: run.end_ns,
            tenants,
            obs,
            slo,
        }
    }
}

impl ToJson for DeviceReport {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = Vec::from([
            ("device", Json::U64(u64::from(self.device))),
            ("mix", Json::Str(self.mix.clone())),
            ("scheme", Json::Str(self.scheme.clone())),
            ("waf", Json::F64(self.waf())),
            ("dedup_hit_rate", Json::F64(self.dedup_hit_rate())),
            ("erases", Json::U64(self.erases)),
            ("host_pages_written", Json::U64(self.totals.host_pages_written)),
            ("lat", self.lat.to_json()),
            ("end_ns", Json::U64(self.end_ns)),
        ]);
        // Same pay-as-you-go gating as RunReport: retirements and
        // degradation only exist under fault injection, so fault-free
        // fleets omit the keys.
        if let Some(ns) = self.first_retirement_ns {
            fields.push(("first_retirement_ns", Json::U64(ns)));
        }
        if self.read_only {
            fields.push(("read_only", Json::Bool(true)));
        }
        if let Some(ns) = self.degraded_at_ns {
            fields.push(("degraded_at_ns", Json::U64(ns)));
        }
        if self.failed_ops > 0 {
            fields.push(("failed_ops", Json::U64(self.failed_ops)));
        }
        // Pay-as-you-go observability: unobserved devices carry neither
        // key, and the per-device summary stays small — the full gauge
        // windows and SLO ledgers live in the fleet-level rollups and
        // the timeline CSV artifact.
        if let Some(obs) = &self.obs {
            let mut t: Vec<(&'static str, Json)> = vec![
                ("gauges", Json::U64(obs.gauges.len() as u64)),
                ("dropped_events", Json::U64(obs.dropped_events)),
            ];
            if let Some(p) = &obs.profile {
                t.push(("profiled_buckets", Json::U64(p.rows().len() as u64)));
            }
            fields.push(("telemetry", Json::obj(t)));
        }
        if let Some(slo) = &self.slo {
            fields.push(("slo_met", Json::Bool(slo.iter().all(|t| t.met()))));
        }
        fields.push(("tenants", Json::Arr(self.tenants.iter().map(|t| t.to_json()).collect())));
        Json::obj(fields)
    }
}

/// Traffic-side tenant counters, computed from the trace itself (they
/// do not depend on the device's behavior).
fn tenant_traffic(label: &str, trace: &Trace) -> TenantReport {
    let mut t = TenantReport {
        tenant: label.to_string(),
        requests: trace.requests.len() as u64,
        pages_written: 0,
        pages_read: 0,
        trims: 0,
        hist: Histogram::new(),
        failed_ops: 0,
    };
    for r in &trace.requests {
        match r.kind {
            OpKind::Write => t.pages_written += u64::from(r.pages),
            OpKind::Read => t.pages_read += u64::from(r.pages),
            OpKind::Trim => t.trims += 1,
        }
    }
    t
}

/// Simulate one device: build the SSD, merge-replay the tenant streams,
/// account latency per tenant, and distill the report.
///
/// # Panics
/// Panics if the tenants' combined namespace exceeds the device's
/// logical space.
pub fn simulate_device(spec: &DeviceSpec) -> DeviceReport {
    let total_pages: u64 = spec.tenants.iter().map(|t| t.trace.logical_pages).sum();
    let mut cfg = SsdConfig::paper(spec.flash, spec.scheme);
    cfg.faults = spec.faults.clone();
    cfg.gc_preempt = spec.gc_preempt;
    if let Some(floor) = spec.read_only_floor_blocks {
        cfg.read_only_floor_blocks = floor;
    }
    let mut ssd = Ssd::new(cfg);
    assert!(
        total_pages <= ssd.logical_pages(),
        "device {}: tenants need {total_pages} logical pages, device exports {}",
        spec.id,
        ssd.logical_pages()
    );
    if let Some(tcfg) = &spec.telemetry {
        ssd.enable_tracing(tcfg.trace_config());
    }
    let mut tenants: Vec<TenantReport> =
        spec.tenants.iter().map(|t| tenant_traffic(&t.label, &t.trace)).collect();
    let mut slo_tracks: Option<Vec<TenantSloTrack>> = spec
        .slo
        .as_ref()
        .map(|c| spec.tenants.iter().map(|t| TenantSloTrack::new(&t.label, c)).collect());

    match spec.host_queues {
        None => {
            let (run, degraded_at) =
                replay_direct(&mut ssd, spec, &mut tenants, slo_tracks.as_deref_mut());
            ssd.sample_telemetry(run.end_ns);
            let obs = spec.telemetry.as_ref().map(|t| collect_obs(&ssd, t));
            DeviceReport::from_run(spec, &run, tenants, degraded_at, obs, slo_tracks)
        }
        Some((pairs, depth)) => {
            // Materialize the merged trace transiently (only while this
            // cell is in flight) and replay it through the multi-queue
            // host path; tags attribute each command's host-observed
            // latency back to its tenant.
            let refs: Vec<&Trace> = spec.tenants.iter().map(|t| t.trace.as_ref()).collect();
            let (merged, tags) = mixer::interleave_n_tagged(&refs);
            let mut host = HostInterface::new(ssd, HostConfig::nvme(pairs, depth));
            let (hreport, lats) = host.replay_open_loop_detailed(&merged);
            let mut degraded_at = None;
            for (cmd, &tag) in lats.iter().zip(&tags) {
                tenants[tag as usize].hist.record(cmd.latency_ns());
                if let Some(tracks) = slo_tracks.as_deref_mut() {
                    tracks[tag as usize].record(cmd.reaped_ns, cmd.latency_ns());
                }
                if !cmd.status.is_ok() {
                    tenants[tag as usize].failed_ops += 1;
                    if cmd.status == CmdStatus::WriteProtected {
                        // lats is in trace order, not completion order:
                        // take the earliest write-protected completion.
                        degraded_at =
                            Some(degraded_at.map_or(cmd.reaped_ns, |d: Nanos| d.min(cmd.reaped_ns)));
                    }
                }
            }
            host.ssd_mut().sample_telemetry(hreport.device.end_ns);
            let obs = spec.telemetry.as_ref().map(|t| collect_obs(host.ssd(), t));
            DeviceReport::from_run(spec, &hreport.device, tenants, degraded_at, obs, slo_tracks)
        }
    }
}

/// Distill the device's tracer state into its observability capture.
fn collect_obs(ssd: &Ssd, tcfg: &FleetTelemetryConfig) -> DeviceObservability {
    let tracer = ssd.tracer();
    DeviceObservability {
        window_ns: tcfg.window_ns,
        gauges: tracer
            .registry()
            .series()
            .map(|(name, ts)| (name.to_string(), ts.clone()))
            .collect(),
        dropped_events: tracer.dropped_events(),
        profile: tcfg
            .record_spans
            .then(|| SpanProfile::from_spans(&cagc_trace::from_tracer(tracer).spans)),
    }
}

/// Direct-mode replay: stream the k-way merge straight into the FTL on
/// the checked status path, recording per-tenant device service latency
/// and attributing error completions to the issuing tenant. Returns the
/// run report plus the first write-protected completion time (the moment
/// read-only degradation became tenant-visible).
///
/// A power loss mid-replay does not panic: the torn request and every
/// request the dead device can no longer serve are attributed to their
/// tenants as failed ops, and the device reports what it completed.
fn replay_direct(
    ssd: &mut Ssd,
    spec: &DeviceSpec,
    tenants: &mut [TenantReport],
    mut slo: Option<&mut [TenantSloTrack]>,
) -> (RunReport, Option<Nanos>) {
    // Namespace layout identical to interleave_n: tenant i owns
    // [offsets[i], offsets[i] + pages_i).
    let mut offsets = Vec::with_capacity(spec.tenants.len());
    let mut total = 0u64;
    for t in &spec.tenants {
        offsets.push(total);
        total += t.trace.logical_pages;
    }

    let mut pos = vec![0usize; spec.tenants.len()];
    let mut heap: BinaryHeap<Reverse<(Nanos, usize)>> = BinaryHeap::new();
    for (i, t) in spec.tenants.iter().enumerate() {
        if let Some(r) = t.trace.requests.first() {
            heap.push(Reverse((r.at_ns, i)));
        }
    }
    let mut degraded_at: Option<Nanos> = None;
    while let Some(Reverse((_, i))) = heap.pop() {
        let trace = &spec.tenants[i].trace;
        let r = &trace.requests[pos[i]];
        pos[i] += 1;
        if let Some(next) = trace.requests.get(pos[i]) {
            heap.push(Reverse((next.at_ns, i)));
        }
        let req = Request { lpn: r.lpn + offsets[i], ..r.clone() };
        match ssd.process_status(&req) {
            Ok(c) => {
                let lat = c.end_ns.saturating_sub(req.at_ns);
                tenants[i].hist.record(lat);
                if let Some(tracks) = slo.as_deref_mut() {
                    tracks[i].record(c.end_ns, lat);
                }
                if !c.status.is_ok() {
                    tenants[i].failed_ops += 1;
                    if c.status == CmdStatus::WriteProtected {
                        degraded_at = Some(degraded_at.map_or(c.end_ns, |d| d.min(c.end_ns)));
                    }
                }
            }
            Err(_) => {
                // Power lost mid-request: the device is dead for the rest
                // of this replay. Fail the torn request and everything
                // still queued, attributed tenant by tenant, instead of
                // panicking the whole fleet.
                tenants[i].failed_ops += 1;
                for (j, t) in spec.tenants.iter().enumerate() {
                    tenants[j].failed_ops += (t.trace.requests.len() - pos[j]) as u64;
                }
                break;
            }
        }
    }
    (ssd.report(&spec.mix_name), degraded_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagc_workloads::FiuWorkload;

    fn spec(host_queues: Option<(u32, u32)>) -> DeviceSpec {
        let flash = UllConfig::tiny_for_tests();
        let mut lib = crate::library::TraceLibrary::new();
        let pages = (flash.logical_pages() as f64 * 0.9 / 2.0) as u64;
        DeviceSpec {
            id: 3,
            mix_name: "test-mix".into(),
            scheme: Scheme::Cagc,
            flash,
            tenants: vec![
                TenantTrace {
                    label: "Mail[0]".into(),
                    trace: lib.get(FiuWorkload::Mail, pages, 400, 11, 1.0),
                },
                TenantTrace {
                    label: "Homes[1]".into(),
                    trace: lib.get(FiuWorkload::Homes, pages, 400, 11, 1.0),
                },
            ],
            host_queues,
            faults: FaultConfig::none(),
            gc_preempt: false,
            read_only_floor_blocks: None,
            telemetry: None,
            slo: None,
        }
    }

    /// A deliberately tiny device (32 blocks x 8 pages) whose tenants
    /// overwrite their footprint several times over — GC churns hard, so
    /// injected erase failures retire blocks within a few hundred
    /// requests.
    fn micro_spec(host_queues: Option<(u32, u32)>) -> DeviceSpec {
        let flash = UllConfig {
            channels: 1,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 16,
            pages_per_block: 8,
            page_size: 4096,
            op_ratio: 0.12,
            gc_watermark: 0.20,
            hash_ns: 14_000,
            timing: cagc_flash::Timing::ull(),
        };
        let mut lib = crate::library::TraceLibrary::new();
        let pages = (flash.logical_pages() as f64 * 0.9 / 2.0) as u64;
        DeviceSpec {
            id: 9,
            mix_name: "chaos-mix".into(),
            scheme: Scheme::Cagc,
            flash,
            tenants: vec![
                TenantTrace {
                    label: "Mail[0]".into(),
                    trace: lib.get(FiuWorkload::Mail, pages, 500, 21, 1.0),
                },
                TenantTrace {
                    label: "Homes[1]".into(),
                    trace: lib.get(FiuWorkload::Homes, pages, 500, 21, 1.0),
                },
            ],
            host_queues,
            faults: FaultConfig {
                erase_fail_prob: 0.5,
                read_ecc_prob: 0.02,
                unrecoverable_prob: 0.3,
                seed: 99,
                ..FaultConfig::none()
            },
            gc_preempt: false,
            // Floor = the whole 32-block device: the first retirement
            // trips read-only, long before erase failures can bleed the
            // GC reserve dry.
            read_only_floor_blocks: Some(32),
            telemetry: None,
            slo: None,
        }
    }

    #[test]
    fn faulty_cell_degrades_to_read_only_with_attribution() {
        let rep = simulate_device(&micro_spec(None));
        assert!(rep.read_only, "erase failures past the floor must degrade to read-only");
        assert!(rep.first_retirement_ns.is_some(), "a failed erase retires its block");
        assert!(rep.failed_ops > 0, "post-degradation writes must fail with attribution");
        assert_eq!(
            rep.failed_ops,
            rep.tenants.iter().map(|t| t.failed_ops).sum::<u64>(),
            "device failed-op count is the sum of its tenants'"
        );
        // A write-protected rejection completes relative to its arrival
        // time, which may predate the retirement's device-internal
        // timestamp — so only bound degradation by the run itself.
        let degraded = rep.degraded_at_ns.expect("degradation must be tenant-visible");
        assert!(degraded > 0 && degraded <= rep.end_ns);
        let j = rep.to_json().render();
        assert!(j.contains("\"read_only\":true"));
        assert!(j.contains("degraded_at_ns") && j.contains("failed_ops"));
        // Faulty cells stay pure functions of their spec.
        let again = simulate_device(&micro_spec(None));
        assert_eq!(again.to_json().render(), j, "faulty cell must be deterministic");
    }

    #[test]
    fn faulty_host_mode_attributes_errors() {
        let rep = simulate_device(&micro_spec(Some((2, 8))));
        assert!(rep.failed_ops > 0, "host-mode error completions must be attributed");
        assert_eq!(
            rep.failed_ops,
            rep.tenants.iter().map(|t| t.failed_ops).sum::<u64>()
        );
        assert!(rep.to_json().render().contains("failed_ops"));
    }

    #[test]
    fn direct_mode_attributes_every_request() {
        let s = spec(None);
        let rep = simulate_device(&s);
        let per_tenant: u64 = rep.tenants.iter().map(|t| t.hist.count()).sum();
        let issued: u64 = s.tenants.iter().map(|t| t.trace.requests.len() as u64).sum();
        assert_eq!(per_tenant, issued, "every merged request is attributed to a tenant");
        assert!(rep.waf() > 0.0);
        assert!(rep.end_ns > 0);
        // Pay-as-you-go: a fault-free cell carries no fault/degradation
        // keys at all (faulty cells are first-class, not asserted away).
        assert_eq!(rep.failed_ops, 0);
        let j = rep.to_json().render();
        for key in ["first_retirement_ns", "read_only", "degraded_at_ns", "failed_ops"] {
            assert!(!j.contains(key), "fault-free cell leaked key {key}");
        }
    }

    #[test]
    fn direct_mode_equals_materialized_interleave() {
        // The streaming merge must be indistinguishable from replaying
        // the materialized interleave_n trace on an identical device.
        let s = spec(None);
        let streamed = simulate_device(&s);
        let refs: Vec<&Trace> = s.tenants.iter().map(|t| t.trace.as_ref()).collect();
        let merged = mixer::interleave_n(&refs);
        let mut ssd = Ssd::new(SsdConfig::paper(s.flash, s.scheme));
        let run = ssd.replay(&merged);
        assert_eq!(streamed.totals.total_programs, run.total_programs);
        assert_eq!(streamed.erases, run.total_erases);
        assert_eq!(streamed.end_ns, run.end_ns);
        assert_eq!(streamed.lat.count, run.all.count);
        assert_eq!(streamed.lat.p99_ns, run.all.p99_ns);
    }

    #[test]
    fn host_mode_reports_end_to_end_latency() {
        let rep = simulate_device(&spec(Some((2, 8))));
        let per_tenant: u64 = rep.tenants.iter().map(|t| t.hist.count()).sum();
        assert!(per_tenant > 0);
        assert!(rep.waf() > 0.0);
        let j = rep.to_json().render();
        assert!(j.contains("\"tenants\"") && j.contains("Mail[0]"));
    }

    /// Arming telemetry must not perturb the simulation: every core
    /// counter and latency figure matches the unobserved cell, only the
    /// observability capture is new.
    #[test]
    fn telemetry_capture_leaves_core_results_untouched() {
        for hq in [None, Some((2, 8))] {
            let plain = simulate_device(&spec(hq));
            let mut s = spec(hq);
            s.telemetry = Some(FleetTelemetryConfig::gauges_only(1_000_000, 1));
            let observed = simulate_device(&s);
            assert_eq!(plain.end_ns, observed.end_ns);
            assert_eq!(plain.erases, observed.erases);
            assert_eq!(plain.lat.p99_ns, observed.lat.p99_ns);
            assert_eq!(plain.totals.total_programs, observed.totals.total_programs);
            let obs = observed.obs.as_ref().expect("armed cell must capture gauges");
            assert!(!obs.gauges.is_empty());
            assert_eq!(obs.dropped_events, 0, "gauges-only mode never drops events");
            assert!(obs.profile.is_none());
            // Pay-as-you-go JSON: only the armed cell carries the key.
            assert!(!plain.to_json().render().contains("\"telemetry\""));
            assert!(observed.to_json().render().contains("\"telemetry\""));
        }
    }

    #[test]
    fn traced_telemetry_yields_a_profile() {
        let mut s = spec(None);
        s.telemetry = Some(FleetTelemetryConfig::traced(1_000_000, 1));
        let rep = simulate_device(&s);
        let obs = rep.obs.as_ref().unwrap();
        let profile = obs.profile.as_ref().expect("record_spans must produce a profile");
        assert!(!profile.is_empty());
        assert!(rep.to_json().render().contains("profiled_buckets"));
    }

    /// SLO ledgers see exactly the per-tenant completions, and the
    /// counters obey the objective arithmetic.
    #[test]
    fn slo_tracking_counts_every_completion() {
        for hq in [None, Some((2, 8))] {
            let mut s = spec(hq);
            s.slo = Some(SloConfig::uniform(1, 900, 1_000_000));
            let rep = simulate_device(&s);
            let tracks = rep.slo.as_ref().expect("armed cell must track SLOs");
            assert_eq!(tracks.len(), rep.tenants.len());
            for (track, tenant) in tracks.iter().zip(&rep.tenants) {
                assert_eq!(track.tenant, tenant.tenant);
                assert_eq!(track.requests, tenant.hist.count());
                // A 1ns objective is unmeetable: every request violates.
                assert_eq!(track.violations, track.requests);
                assert!(!track.met());
            }
            assert!(rep.to_json().render().contains("\"slo_met\":false"));
        }
    }
}
