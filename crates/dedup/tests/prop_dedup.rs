//! Property-based tests for the dedup substrate.

use cagc_dedup::{ContentId, Fingerprint, FingerprintIndex, ParallelHasher, Sha1, Sha256};
use cagc_harness::prop::*;
use std::collections::HashMap;

harness_proptest! {
    /// SHA-1 streaming with arbitrary chunking equals one-shot hashing.
    #[test]
    fn sha1_chunking_invariance(data in vec(any::<u8>(), 0..2000),
                                cuts in vec(1usize..64, 0..40)) {
        let expect = Sha1::digest(&data);
        let mut s = Sha1::new();
        let mut rest: &[u8] = &data;
        for &c in &cuts {
            if rest.is_empty() { break; }
            let take = c.min(rest.len());
            s.update(&rest[..take]);
            rest = &rest[take..];
        }
        s.update(rest);
        prop_assert_eq!(s.finalize(), expect);
    }

    /// SHA-256 streaming with arbitrary chunking equals one-shot hashing.
    #[test]
    fn sha256_chunking_invariance(data in vec(any::<u8>(), 0..2000),
                                  cuts in vec(1usize..64, 0..40)) {
        let expect = Sha256::digest(&data);
        let mut s = Sha256::new();
        let mut rest: &[u8] = &data;
        for &c in &cuts {
            if rest.is_empty() { break; }
            let take = c.min(rest.len());
            s.update(&rest[..take]);
            rest = &rest[take..];
        }
        s.update(rest);
        prop_assert_eq!(s.finalize(), expect);
    }

    /// The fingerprint relation is exactly content-id equality.
    #[test]
    fn fingerprints_respect_content_equality(a in any::<u64>(), b in any::<u64>()) {
        let fa = Fingerprint::of_content(ContentId(a));
        let fb = Fingerprint::of_content(ContentId(b));
        prop_assert_eq!(fa == fb, a == b);
    }

    /// Index model check: drive the index with random insert / add_ref /
    /// release / trimmed-release / forget+restore / absorption operations
    /// and mirror it against a naive HashMap model. The index must agree
    /// with the model after every operation, and its internal audit must
    /// always pass. Ops 3–5 cover the paths the open-addressed rewrite had
    /// to keep drop-in compatible: trim-attributed releases, the
    /// recovery-style forget-then-restore move, and the GC-absorption
    /// forget that drops an entry without counting an invalidation.
    #[test]
    fn index_agrees_with_naive_model(ops in vec((0u8..6, 0u64..20), 1..300)) {
        let mut ix = FingerprintIndex::new();
        // model: content -> (ppn, refs)
        let mut model: HashMap<u64, (u64, u32)> = HashMap::new();
        let mut next_ppn = 0u64;
        let mut trim_releases = 0u64;

        for &(op, content) in &ops {
            let fp = Fingerprint::of_content(ContentId(content));
            match op {
                0 => {
                    // "write": hit -> add ref; miss -> insert at fresh ppn
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(content) {
                        ix.insert(fp, next_ppn, 1);
                        e.insert((next_ppn, 1));
                        next_ppn += 1;
                    } else {
                        ix.add_refs(&fp, 1);
                        model.get_mut(&content).expect("present").1 += 1;
                    }
                }
                1 | 3 => {
                    // "overwrite/delete" (1) or "host trim" (3): release
                    // one ref if present; a trim additionally counts in
                    // the trim-release statistic.
                    if let Some(&(ppn, refs)) = model.get(&content) {
                        let rem = if op == 3 {
                            trim_releases += 1;
                            ix.release_ppn_trimmed(ppn).expect("tracked")
                        } else {
                            ix.release_ppn(ppn).expect("tracked")
                        };
                        if refs == 1 {
                            prop_assert_eq!(rem, 0);
                            model.remove(&content);
                        } else {
                            prop_assert_eq!(rem, refs - 1);
                            model.get_mut(&content).expect("present").1 -= 1;
                        }
                    } else {
                        prop_assert_eq!(ix.lookup(&fp), None);
                    }
                }
                2 => {
                    // "GC relocate" if present
                    if let Some(entry) = model.get_mut(&content) {
                        ix.relocate(entry.0, next_ppn);
                        entry.0 = next_ppn;
                        next_ppn += 1;
                    }
                }
                4 => {
                    // Recovery-style move: forget the entry, then restore
                    // it at a fresh ppn with the same refcount (what the
                    // post-crash rebuild does from OOB stamps).
                    if let Some(entry) = model.get_mut(&content) {
                        let e = ix.forget_ppn(entry.0).expect("tracked");
                        prop_assert_eq!(e.refs, entry.1);
                        ix.restore(fp, next_ppn, e.refs);
                        entry.0 = next_ppn;
                        next_ppn += 1;
                    } else {
                        prop_assert_eq!(ix.peek(&fp), None);
                    }
                }
                _ => {
                    // GC absorption: the copy's references move wholesale
                    // to another stored copy and this entry is forgotten
                    // without an invalidation record. The content becomes
                    // untracked; a later write re-inserts it fresh.
                    if let Some(&(ppn, refs)) = model.get(&content) {
                        let e = ix.forget_ppn(ppn).expect("tracked");
                        prop_assert_eq!(e.refs, refs);
                        model.remove(&content);
                    }
                }
            }
            // Full agreement after every step.
            prop_assert_eq!(ix.len(), model.len());
            prop_assert_eq!(ix.ref_stats().trim_releases(), trim_releases);
            for (&c, &(ppn, refs)) in &model {
                let e = ix.peek(&Fingerprint::of_content(ContentId(c))).expect("entry");
                prop_assert_eq!(e.ppn, ppn);
                prop_assert_eq!(e.refs, refs);
                prop_assert_eq!(ix.refs_of_ppn(ppn), Some(refs));
                prop_assert_eq!(ix.fp_of_ppn(ppn), Some(Fingerprint::of_content(ContentId(c))));
            }
            ix.audit().map_err(TestCaseError::fail)?;
        }
    }

    /// total_refs equals the sum of model refcounts.
    #[test]
    fn total_refs_matches_model(refcounts in vec(1u32..9, 0..50)) {
        let mut ix = FingerprintIndex::new();
        let mut sum = 0u64;
        for (i, &r) in refcounts.iter().enumerate() {
            ix.insert(Fingerprint::of_content(ContentId(i as u64)), i as u64, r);
            sum += r as u64;
        }
        prop_assert_eq!(ix.total_refs(), sum);
    }

    /// Parallel hashing equals serial hashing for any worker count.
    #[test]
    fn parallel_hashing_is_order_preserving(
        n_pages in 0usize..40, workers in 1usize..9, seed in any::<u64>()
    ) {
        let pages: Vec<Vec<u8>> = (0..n_pages)
            .map(|i| ContentId(seed ^ i as u64).synth_bytes(256))
            .collect();
        let serial: Vec<Fingerprint> = pages.iter().map(|p| Fingerprint::of_bytes(p)).collect();
        prop_assert_eq!(ParallelHasher::new(workers).hash_pages(&pages), serial);
    }
}
