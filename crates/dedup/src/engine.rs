//! The hash engine: latency model and a real parallel hasher.
//!
//! Two views of the same component:
//!
//! * [`HashEngine`] — the *timing* model used inside the simulator. The
//!   SSD's hash unit is a single-server resource ([`cagc_sim::Timeline`]):
//!   each page fingerprint occupies it for `hash_ns` (Table I: 14 µs).
//!   Inline-Dedupe puts these reservations on the foreground write path;
//!   CAGC puts them on the GC path, where they overlap with die work — the
//!   central mechanism of the paper.
//! * [`ParallelHasher`] — a real data-path implementation that fingerprints
//!   batches of page payloads across worker threads (the
//!   [`cagc_harness::pool`] scoped pool), used by benches and the
//!   real-content example to measure what the 14 µs figure abstracts.

use crate::fingerprint::Fingerprint;
use cagc_sim::time::Nanos;
use cagc_sim::timeline::{Reservation, Timeline};

/// Timing model of the SSD-internal fingerprint unit.
#[derive(Debug, Clone)]
pub struct HashEngine {
    unit: Timeline,
    hash_ns: Nanos,
    hashed_pages: u64,
}

impl HashEngine {
    /// A hash engine with `hash_ns` per-page latency (Table I: 14_000).
    pub fn new(hash_ns: Nanos) -> Self {
        Self { unit: Timeline::new(), hash_ns, hashed_pages: 0 }
    }

    /// Per-page hash latency.
    pub fn hash_ns(&self) -> Nanos {
        self.hash_ns
    }

    /// Reserve the unit to fingerprint one page, ready at `ready_at`.
    pub fn hash_page(&mut self, ready_at: Nanos) -> Reservation {
        self.hashed_pages += 1;
        self.unit.reserve(ready_at, self.hash_ns)
    }

    /// Number of pages fingerprinted so far.
    pub fn hashed_pages(&self) -> u64 {
        self.hashed_pages
    }

    /// Total busy time of the unit.
    pub fn busy_total(&self) -> Nanos {
        self.unit.busy_total()
    }

    /// Earliest time the unit could accept new work.
    pub fn next_free(&self) -> Nanos {
        self.unit.next_free()
    }
}

/// Real multi-threaded page fingerprinting over byte payloads.
///
/// Deterministic output (order-preserving); the work is split into
/// contiguous chunks, one per worker.
#[derive(Debug, Clone, Copy)]
pub struct ParallelHasher {
    workers: usize,
}

impl ParallelHasher {
    /// A hasher with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// A hasher sized to the machine (`available_parallelism`).
    pub fn auto() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// Fingerprint every page payload, preserving order.
    pub fn hash_pages(&self, pages: &[Vec<u8>]) -> Vec<Fingerprint> {
        if self.workers == 1 || pages.len() < 2 * self.workers {
            return pages.iter().map(|p| Fingerprint::of_bytes(p)).collect();
        }
        cagc_harness::pool::map_ordered(pages, self.workers, |p| Fingerprint::of_bytes(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::ContentId;
    use cagc_sim::time::us;

    #[test]
    fn hash_engine_serializes_on_the_unit() {
        let mut e = HashEngine::new(us(14));
        let a = e.hash_page(0);
        let b = e.hash_page(0); // same ready time: queues behind a
        assert_eq!(a.end, us(14));
        assert_eq!(b.start, us(14));
        assert_eq!(b.end, us(28));
        assert_eq!(e.hashed_pages(), 2);
        assert_eq!(e.busy_total(), us(28));
    }

    #[test]
    fn hash_engine_overlaps_with_anything_else() {
        // The whole point: the unit is independent of die timelines, so a
        // hash issued during an erase completes inside the erase window.
        let mut e = HashEngine::new(us(14));
        let erase_start = us(100);
        let r = e.hash_page(erase_start);
        assert!(r.end < erase_start + us(1500)); // fits within a 1.5ms erase
    }

    #[test]
    fn parallel_hasher_matches_serial() {
        let pages: Vec<Vec<u8>> =
            (0..64).map(|i| ContentId(i).synth_bytes(4096)).collect();
        let serial: Vec<Fingerprint> =
            pages.iter().map(|p| Fingerprint::of_bytes(p)).collect();
        for workers in [1, 2, 4, 8] {
            let par = ParallelHasher::new(workers).hash_pages(&pages);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn parallel_hasher_empty_and_tiny_inputs() {
        let h = ParallelHasher::new(4);
        assert!(h.hash_pages(&[]).is_empty());
        let one = vec![ContentId(1).synth_bytes(512)];
        assert_eq!(h.hash_pages(&one).len(), 1);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(ParallelHasher::new(0).hash_pages(&[vec![1, 2, 3]]).len(), 1);
    }
}
