//! SHA-1, implemented from scratch (FIPS 180-4).
//!
//! The paper's dedup layer fingerprints 4 KiB pages with SHA-1 (Sec. II-B
//! mentions SHA-1/256). No cryptography crate is in the offline dependency
//! budget, so the compression function is implemented here and verified
//! against the FIPS/RFC 3174 test vectors. SHA-1's known collision weakness
//! is irrelevant for a simulator — CA-SSD and CAFTL used it for the same
//! reason we do: it is the fingerprint function of record in this
//! literature.

/// Output size in bytes.
pub const DIGEST_LEN: usize = 20;

/// Streaming SHA-1 state.
#[derive(Debug, Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len_bytes: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hash state.
    pub fn new() -> Self {
        Self {
            h: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0],
            len_bytes: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len_bytes += data.len() as u64;
        // Fill any partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len_bytes * 8;
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Append length manually (update would recount it).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut s = Self::new();
        s.update(data);
        s.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 3174 / FIPS 180-4 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_message() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(hex(&Sha1::digest(msg)), "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(hex(&Sha1::digest(&msg)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let one_shot = Sha1::digest(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        let mut s = Sha1::new();
        for chunk in data.chunks(37) {
            s.update(chunk);
        }
        assert_eq!(s.finalize(), one_shot);
    }

    #[test]
    fn length_boundary_padding_cases() {
        // 55, 56, 63, 64 bytes exercise all padding branches.
        for n in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0xABu8; n];
            let d1 = Sha1::digest(&data);
            let mut s = Sha1::new();
            s.update(&data[..n / 2]);
            s.update(&data[n / 2..]);
            assert_eq!(s.finalize(), d1, "mismatch at length {n}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Not a collision test, just a smoke check over many small inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            assert!(seen.insert(Sha1::digest(&i.to_le_bytes())));
        }
    }
}
