//! # cagc-dedup — deduplication substrate
//!
//! Everything content-addressed that the CAGC reproduction needs:
//!
//! * [`sha1`] / [`sha256`] — the fingerprint hash functions, implemented
//!   from scratch (FIPS 180-4) and verified against published test vectors;
//!   no crypto crate exists in the offline dependency budget.
//! * [`fingerprint`] — [`ContentId`] (a page's logical content identity, as
//!   carried by the FIU-style traces) and [`Fingerprint`] (its SHA-1
//!   digest).
//! * [`index`] — [`FingerprintIndex`], the fingerprint → (PPN, refcount)
//!   store with a PPN-keyed reverse map, the metadata heart of CAFTL-style
//!   dedup FTLs. Reference counts follow the paper's Sec. III-A semantics:
//!   a physical page becomes invalid only when its count reaches zero.
//! * [`refstats`] — [`RefCountStats`], the Fig. 6 measurement (invalidations
//!   bucketed by peak refcount).
//! * [`engine`] — [`HashEngine`], the 14 µs/page hash-unit *timing* model
//!   (Table I), and [`ParallelHasher`], a real multi-threaded page hasher
//!   for benches and real-content runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fingerprint;
pub mod index;
pub mod refstats;
pub mod sha1;
pub mod sha256;

pub use engine::{HashEngine, ParallelHasher};
pub use fingerprint::{ContentId, Fingerprint};
pub use index::{FingerprintIndex, FpEntry, IndexStats};
pub use refstats::RefCountStats;
pub use sha1::Sha1;
pub use sha256::Sha256;
