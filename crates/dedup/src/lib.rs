//! # cagc-dedup — deduplication substrate
//!
//! Everything content-addressed that the CAGC reproduction needs:
//!
//! * [`sha1`] / [`sha256`] — the fingerprint hash functions, implemented
//!   from scratch (FIPS 180-4) and verified against published test vectors;
//!   no crypto crate exists in the offline dependency budget.
//! * [`fingerprint`] — [`ContentId`] (a page's logical content identity, as
//!   carried by the FIU-style traces) and [`Fingerprint`] (its SHA-1
//!   digest).
//! * [`index`] — [`FingerprintIndex`], the fingerprint → (PPN, refcount)
//!   store with a PPN-keyed reverse map, the metadata heart of CAFTL-style
//!   dedup FTLs. Reference counts follow the paper's Sec. III-A semantics:
//!   a physical page becomes invalid only when its count reaches zero.
//! * [`refstats`] — [`RefCountStats`], the Fig. 6 measurement (invalidations
//!   bucketed by peak refcount).
//! * [`fpcache`] — [`FingerprintCache`], a process-wide memo of
//!   [`ContentId`] → [`Fingerprint`]: SHA-1 of a synthetic content id is a
//!   pure function, so replays hash each distinct content once (a hot-path
//!   optimisation — see `docs/PERFORMANCE.md`; simulated hash *timing* is
//!   unaffected, that lives in [`engine`]).
//! * [`engine`] — [`HashEngine`], the 14 µs/page hash-unit *timing* model
//!   (Table I), and [`ParallelHasher`], a real multi-threaded page hasher
//!   for benches and real-content runs.
//!
//! ## Reference-count lifecycle
//!
//! A physical page enters the index at refcount 1 when its fingerprint
//! is first stored ([`FingerprintIndex::insert`]). Each later write of
//! the same content maps another LPN to the same PPN and bumps the
//! count ([`FingerprintIndex::add_refs`]). References drop one of two
//! ways, and the distinction is what the trim study measures:
//!
//! * **Overwrite** — the host rewrites an LPN with new content;
//!   [`FingerprintIndex::release_ppn`] decrements the old PPN's count.
//! * **Trim** — the host deallocates the LPN;
//!   [`FingerprintIndex::release_ppn_trimmed`] is `release_ppn` plus
//!   attribution: [`RefCountStats`] counts the drop in
//!   `trim_releases()` without disturbing the Fig. 6 buckets.
//!
//! Either way the page stays live while the count is positive — a trim
//! of a shared page must *not* deallocate flash state, because other
//! LPNs still resolve to it. Only the release that takes the count to
//! zero invalidates the physical page (the caller then tells the flash
//! layer, with the cause preserved: invalidate for overwrite,
//! deallocate for trim — see `docs/TRIM.md`). [`RefCountStats`] buckets
//! each zero-crossing by the page's *peak* refcount, which is exactly
//! the Fig. 6 motivation measurement: pages that were ever shared die
//! slower, so migrating them blindly is the waste CAGC removes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod engine;
pub mod fingerprint;
pub mod fpcache;
pub mod index;
pub mod refstats;
pub mod sha1;
pub mod sha256;

pub use engine::{HashEngine, ParallelHasher};
pub use fingerprint::{ContentId, Fingerprint};
pub use fpcache::FingerprintCache;
pub use index::{FingerprintIndex, FpEntry, IndexStats};
pub use refstats::RefCountStats;
pub use sha1::Sha1;
pub use sha256::Sha256;
