//! Content-id → fingerprint memoization.
//!
//! Simulated workloads address page contents by [`ContentId`]; the dedup
//! machinery operates on the SHA-1 [`Fingerprint`] derived from that id.
//! The derivation is a pure function, and GC-heavy replays fingerprint the
//! same contents over and over (a page is re-hashed on every migration,
//! and popular contents recur across the trace), so the digest is worth
//! memoizing: [`FingerprintCache::get_or_insert`] computes each distinct
//! content's SHA-1 exactly once and serves every later request from an
//! open-addressed table.
//!
//! This affects **wall-clock time only**. The *simulated* cost of hashing
//! stays where it was — the timing model charges
//! [`crate::HashEngine::hash_page`] per page regardless — and the returned
//! fingerprints are bit-identical to calling
//! [`Fingerprint::of_content`] directly, so replay results do not change.

use crate::fingerprint::{ContentId, Fingerprint};

/// Memo table from content id to its SHA-1 fingerprint (see module docs).
#[derive(Debug, Clone, Default)]
pub struct FingerprintCache {
    /// Open-addressed, linear-probe cells: `(content id, digest)`.
    cells: Vec<Option<(u64, Fingerprint)>>,
    len: usize,
}

/// SplitMix64 finalizer: content ids are often small and sequential, so
/// they need mixing before they index a power-of-two table.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FingerprintCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`Fingerprint::of_content`] backed by a process-wide
    /// (per-thread) cache. The memoized function is pure, so sharing the
    /// table across simulator instances is safe and makes repeated runs in
    /// one process (parameter sweeps, benches, test suites) skip the SHA-1
    /// entirely for contents any earlier run already fingerprinted.
    pub fn of_content_cached(id: ContentId) -> Fingerprint {
        thread_local! {
            static CACHE: std::cell::RefCell<FingerprintCache> =
                std::cell::RefCell::new(FingerprintCache::new());
        }
        CACHE.with(|c| c.borrow_mut().get_or_insert(id))
    }

    /// Number of distinct contents memoized.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fingerprint of `id`, computing (and memoizing) the SHA-1 on
    /// first sight. Exactly equal to `Fingerprint::of_content(id)`.
    pub fn get_or_insert(&mut self, id: ContentId) -> Fingerprint {
        if self.cells.is_empty() {
            self.cells = vec![None; 64];
        } else if (self.len + 1) * 4 > self.cells.len() * 3 {
            self.grow();
        }
        let mask = self.cells.len() - 1;
        let mut i = (mix(id.0) as usize) & mask;
        loop {
            match &self.cells[i] {
                Some((key, fp)) if *key == id.0 => return *fp,
                Some(_) => i = (i + 1) & mask,
                None => {
                    let fp = Fingerprint::of_content(id);
                    self.cells[i] = Some((id.0, fp));
                    self.len += 1;
                    return fp;
                }
            }
        }
    }

    fn grow(&mut self) {
        let mut bigger: Vec<Option<(u64, Fingerprint)>> = vec![None; self.cells.len() * 2];
        let mask = bigger.len() - 1;
        for cell in self.cells.drain(..).flatten() {
            let mut i = (mix(cell.0) as usize) & mask;
            while bigger[i].is_some() {
                i = (i + 1) & mask;
            }
            bigger[i] = Some(cell);
        }
        self.cells = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoized_fingerprints_match_direct_computation() {
        let mut cache = FingerprintCache::new();
        for i in 0..500u64 {
            let id = ContentId(i.wrapping_mul(0x1234_5678_9ABC_DEF1));
            assert_eq!(cache.get_or_insert(id), Fingerprint::of_content(id));
        }
        // Second pass hits the memo and still agrees.
        for i in 0..500u64 {
            let id = ContentId(i.wrapping_mul(0x1234_5678_9ABC_DEF1));
            assert_eq!(cache.get_or_insert(id), Fingerprint::of_content(id));
        }
        assert_eq!(cache.len(), 500);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut cache = FingerprintCache::new();
        let first = cache.get_or_insert(ContentId(7));
        for i in 0..200u64 {
            cache.get_or_insert(ContentId(i));
        }
        assert_eq!(cache.get_or_insert(ContentId(7)), first);
        assert_eq!(cache.len(), 200, "0..200 includes the initial id 7");
    }
}
