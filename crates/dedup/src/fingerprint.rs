//! Page fingerprints and logical content identities.
//!
//! Traces in this workspace carry a [`ContentId`] per written page: an
//! opaque 64-bit identity standing in for "what bytes the page holds" (the
//! FIU traces the paper replays likewise ship a per-request content hash
//! rather than data). Two pages are duplicates iff their `ContentId`s are
//! equal. A [`Fingerprint`] is the SHA-1 digest the dedup engine computes —
//! in simulation it is derived deterministically from the `ContentId` (the
//! synthetic "page bytes" are expanded from the id), so fingerprint equality
//! coincides with content equality exactly as it would on real data.

use crate::sha1::Sha1;

/// Opaque identity of a page's content. Equal ids ⇔ duplicate pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentId(pub u64);

impl ContentId {
    /// Expand this content id into a deterministic synthetic page payload of
    /// `len` bytes (used where real bytes must flow through the hashers,
    /// e.g. benches and the parallel-hashing path).
    pub fn synth_bytes(self, len: usize) -> Vec<u8> {
        // SplitMix64 stream seeded by the id: fast, deterministic, and
        // different ids diverge immediately.
        let mut out = Vec::with_capacity(len);
        let mut x = self.0 ^ 0x9E37_79B9_7F4A_7C15;
        while out.len() < len {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let take = bytes.len().min(len - out.len());
            out.extend_from_slice(&bytes[..take]);
        }
        out
    }
}

/// A SHA-1 page fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u8; 20]);

impl Fingerprint {
    /// Fingerprint of a logical content id (simulation fast path: hashes the
    /// 8-byte id rather than expanding a full page, preserving the
    /// equality relation).
    pub fn of_content(id: ContentId) -> Self {
        Self(Sha1::digest(&id.0.to_le_bytes()))
    }

    /// Fingerprint of raw page bytes (the real-data path).
    pub fn of_bytes(data: &[u8]) -> Self {
        Self(Sha1::digest(data))
    }

    /// Lowercase hex rendering.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parse from hex (40 chars). Returns `None` on malformed input.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.len() != 40 {
            return None;
        }
        let mut out = [0u8; 20];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
        }
        Some(Self(out))
    }
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fp:{}", &self.to_hex()[..12])
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_contents_equal_fingerprints() {
        assert_eq!(Fingerprint::of_content(ContentId(42)), Fingerprint::of_content(ContentId(42)));
        assert_ne!(Fingerprint::of_content(ContentId(42)), Fingerprint::of_content(ContentId(43)));
    }

    #[test]
    fn hex_round_trip() {
        let fp = Fingerprint::of_content(ContentId(7));
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 40);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
    }

    #[test]
    fn from_hex_rejects_malformed() {
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&"a".repeat(39)), None);
        assert_eq!(Fingerprint::from_hex(&"g".repeat(40)), None);
    }

    #[test]
    fn synth_bytes_deterministic_and_distinct() {
        let a1 = ContentId(1).synth_bytes(4096);
        let a2 = ContentId(1).synth_bytes(4096);
        let b = ContentId(2).synth_bytes(4096);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.len(), 4096);
    }

    #[test]
    fn synth_bytes_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 4093] {
            assert_eq!(ContentId(9).synth_bytes(len).len(), len);
        }
    }

    #[test]
    fn bytes_path_consistent_with_itself() {
        let payload = ContentId(5).synth_bytes(4096);
        assert_eq!(Fingerprint::of_bytes(&payload), Fingerprint::of_bytes(&payload));
        // Content path and bytes path are different functions by design
        // (id-hash vs payload-hash) but both respect content equality.
        let payload2 = ContentId(5).synth_bytes(4096);
        assert_eq!(Fingerprint::of_bytes(&payload), Fingerprint::of_bytes(&payload2));
    }

    #[test]
    fn debug_is_short_display_is_full() {
        let fp = Fingerprint::of_content(ContentId(1));
        assert_eq!(format!("{fp}").len(), 40);
        assert!(format!("{fp:?}").starts_with("fp:"));
        assert!(format!("{fp:?}").len() < 20);
    }
}
