//! The fingerprint index: fingerprint → (physical page, reference count).
//!
//! This is the metadata structure at the heart of any dedup FTL (CAFTL's
//! "fingerprint store", CA-SSD's "hash store"). It maintains a bidirectional
//! mapping:
//!
//! * `fingerprint → (ppn, refs)` — where the unique copy lives and how many
//!   logical pages share it;
//! * `ppn → fingerprint` — so invalidations and GC migrations, which arrive
//!   addressed by physical page, can find and update the entry.
//!
//! Reference-count semantics follow Sec. III-A of the paper exactly: an
//! overwrite or delete of a logical page *decrements* the stored page's
//! count, and the flash page becomes invalid **only when the count reaches
//! zero**. The index also records, per entry, the maximum count the entry
//! ever reached — that is the statistic behind Fig. 6.
//!
//! # Representation
//!
//! The index sits on the GC hot path (every migrated page probes it, every
//! host overwrite releases through it), so it is **open-addressed**, not a
//! pair of `std::collections::HashMap`s:
//!
//! * entries live in a slab (`Vec<Option<Slot>>` plus a free list), so an
//!   entry has one stable integer id for its whole life;
//! * a Robin-Hood linear-probe table maps `fingerprint → slot id`. The
//!   64-bit probe key is the fingerprint's first eight bytes — SHA-1 output
//!   is already uniform, so no secondary hasher (and no per-process hash
//!   seed) is needed. Deletion is backward-shift, keeping probe chains
//!   gap-free;
//! * the `ppn → slot` direction is a dense `Vec<u32>` indexed by PPN
//!   (physical page numbers are bounded by device geometry), making
//!   release/relocate/refs-of-ppn a single array load.
//!
//! Everything is deterministic: layout depends only on the sequence of
//! operations, never on a process-random hash seed, so same-seed runs stay
//! byte-identical (see `docs/PERFORMANCE.md`).

use crate::fingerprint::Fingerprint;
use crate::refstats::RefCountStats;

/// One stored unique page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpEntry {
    /// Physical page where the unique copy is stored.
    pub ppn: u64,
    /// Current reference count (≥ 1 while the entry exists).
    pub refs: u32,
    /// Highest reference count this entry ever reached.
    pub max_refs: u32,
}

/// Counters describing index traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// `lookup` calls.
    pub lookups: u64,
    /// Lookups that found an entry (dedup hits).
    pub hits: u64,
    /// New unique entries inserted.
    pub inserts: u64,
    /// Entries removed (refcount reached zero or page dropped).
    pub removals: u64,
}

/// Sentinel for "no slot" in both the probe table and the PPN map.
const NONE_SLOT: u32 = u32::MAX;

/// One probe-table cell: the entry's 64-bit probe key plus its slab slot.
/// The full key is cached in the cell so probing (and rehashing) never
/// touches the slab until the key matches.
#[derive(Debug, Clone, Copy)]
struct Cell {
    hash: u64,
    slot: u32,
}

const VACANT: Cell = Cell { hash: 0, slot: NONE_SLOT };

/// A live slab entry.
#[derive(Debug, Clone, Copy)]
struct Slot {
    fp: Fingerprint,
    entry: FpEntry,
}

/// The 64-bit probe key: the fingerprint's leading eight bytes. SHA-1
/// digests are uniformly distributed, so this is already a good hash.
#[inline]
fn fp_hash(fp: &Fingerprint) -> u64 {
    u64::from_le_bytes(fp.0[..8].try_into().expect("fingerprint has 20 bytes"))
}

/// Robin-Hood insertion into `cells` (caller guarantees a vacancy exists).
fn cell_insert(cells: &mut [Cell], mut hash: u64, mut slot: u32) {
    let mask = cells.len() - 1;
    let mut i = (hash as usize) & mask;
    let mut dist = 0usize;
    loop {
        let c = cells[i];
        if c.slot == NONE_SLOT {
            cells[i] = Cell { hash, slot };
            return;
        }
        let resident_dist = i.wrapping_sub(c.hash as usize) & mask;
        if resident_dist < dist {
            // The resident is closer to home than we are: take its cell and
            // carry it forward (the Robin-Hood displacement rule).
            cells[i] = Cell { hash, slot };
            hash = c.hash;
            slot = c.slot;
            dist = resident_dist;
        }
        i = (i + 1) & mask;
        dist += 1;
    }
}

/// Remove the cell holding `slot` (whose key is `hash`), backward-shifting
/// the rest of the probe chain so no tombstones accumulate.
fn cell_remove(cells: &mut [Cell], hash: u64, slot: u32) {
    let mask = cells.len() - 1;
    let mut i = (hash as usize) & mask;
    loop {
        let c = cells[i];
        assert!(c.slot != NONE_SLOT, "by_ppn/by_fp out of sync");
        if c.slot == slot {
            break;
        }
        i = (i + 1) & mask;
    }
    loop {
        let next = (i + 1) & mask;
        let c = cells[next];
        if c.slot == NONE_SLOT || next.wrapping_sub(c.hash as usize) & mask == 0 {
            cells[i] = VACANT;
            return;
        }
        cells[i] = c;
        i = next;
    }
}

/// Fingerprint index with reference counting (open-addressed; see the
/// module docs for the layout).
#[derive(Debug, Clone)]
pub struct FingerprintIndex {
    /// Robin-Hood probe table: fingerprint key → slab slot.
    cells: Vec<Cell>,
    /// Entry slab; freed slots are `None` and recycled through `free`.
    slots: Vec<Option<Slot>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Dense PPN → slab slot map (`NONE_SLOT` = untracked).
    by_ppn: Vec<u32>,
    /// Live entry count.
    len: usize,
    stats: IndexStats,
    ref_stats: RefCountStats,
}

impl Default for FingerprintIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintIndex {
    /// An empty index.
    pub fn new() -> Self {
        FingerprintIndex {
            cells: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            by_ppn: Vec::new(),
            len: 0,
            stats: IndexStats::default(),
            ref_stats: RefCountStats::default(),
        }
    }

    /// Number of unique stored pages tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Traffic counters.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The Fig.6 statistic: invalidations bucketed by max refcount reached.
    pub fn ref_stats(&self) -> &RefCountStats {
        &self.ref_stats
    }

    /// Find the slab slot of `fp`, if tracked.
    fn find_slot(&self, fp: &Fingerprint) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.cells.len() - 1;
        let h = fp_hash(fp);
        let mut i = (h as usize) & mask;
        let mut dist = 0usize;
        loop {
            let c = self.cells[i];
            if c.slot == NONE_SLOT {
                return None;
            }
            if c.hash == h
                && self.slots[c.slot as usize].as_ref().is_some_and(|s| s.fp == *fp)
            {
                return Some(c.slot);
            }
            if i.wrapping_sub(c.hash as usize) & mask < dist {
                // Robin-Hood invariant: a resident closer to home than our
                // probe distance means the key cannot be further along.
                return None;
            }
            i = (i + 1) & mask;
            dist += 1;
        }
    }

    fn slot_ref(&self, slot: u32) -> &Slot {
        self.slots[slot as usize].as_ref().expect("by_ppn/by_fp out of sync")
    }

    fn slot_mut(&mut self, slot: u32) -> &mut Slot {
        self.slots[slot as usize].as_mut().expect("by_ppn/by_fp out of sync")
    }

    /// Slab slot tracked for `ppn` (`NONE_SLOT` if untracked).
    #[inline]
    fn ppn_slot(&self, ppn: u64) -> u32 {
        self.by_ppn.get(ppn as usize).copied().unwrap_or(NONE_SLOT)
    }

    fn set_ppn_slot(&mut self, ppn: u64, slot: u32) {
        let i = ppn as usize;
        if i >= self.by_ppn.len() {
            self.by_ppn.resize(i + 1, NONE_SLOT);
        }
        self.by_ppn[i] = slot;
    }

    /// Grow (or lazily create) the probe table so one more entry keeps the
    /// load factor at or below 7/8.
    fn reserve_one(&mut self) {
        if self.cells.is_empty() {
            self.cells = vec![VACANT; 16];
            return;
        }
        if (self.len + 1) * 8 > self.cells.len() * 7 {
            let mut bigger = vec![VACANT; self.cells.len() * 2];
            for c in &self.cells {
                if c.slot != NONE_SLOT {
                    cell_insert(&mut bigger, c.hash, c.slot);
                }
            }
            self.cells = bigger;
        }
    }

    /// Place a checked-fresh entry into the slab, probe table, and PPN map.
    fn place(&mut self, fp: Fingerprint, entry: FpEntry) {
        self.reserve_one();
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(Slot { fp, entry });
                s
            }
            None => {
                self.slots.push(Some(Slot { fp, entry }));
                (self.slots.len() - 1) as u32
            }
        };
        cell_insert(&mut self.cells, fp_hash(&fp), slot);
        self.set_ppn_slot(entry.ppn, slot);
        self.len += 1;
    }

    /// Drop `slot` (key `fp`) from the probe table and slab.
    fn unplace(&mut self, slot: u32, fp: &Fingerprint) {
        cell_remove(&mut self.cells, fp_hash(fp), slot);
        self.slots[slot as usize] = None;
        self.free.push(slot);
        self.len -= 1;
    }

    /// Look up a fingerprint, counting the probe.
    pub fn lookup(&mut self, fp: &Fingerprint) -> Option<FpEntry> {
        self.stats.lookups += 1;
        let hit = self.find_slot(fp).map(|s| self.slot_ref(s).entry);
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    /// Non-counting read (for assertions/reports).
    pub fn peek(&self, fp: &Fingerprint) -> Option<FpEntry> {
        self.find_slot(fp).map(|s| self.slot_ref(s).entry)
    }

    /// Insert a brand-new unique page stored at `ppn` with `refs` initial
    /// references (1 for an inline write; the number of sharing LPNs for a
    /// page absorbed during GC).
    ///
    /// # Panics
    /// Panics if the fingerprint or the ppn is already tracked — double
    /// insertion means the caller failed to look up first, which would
    /// silently fork the refcount.
    pub fn insert(&mut self, fp: Fingerprint, ppn: u64, refs: u32) {
        assert!(refs >= 1, "insert with zero refs");
        assert!(self.find_slot(&fp).is_none(), "fingerprint already indexed: {fp:?}");
        assert!(self.ppn_slot(ppn) == NONE_SLOT, "ppn {ppn} already indexed");
        self.place(fp, FpEntry { ppn, refs, max_refs: refs });
        self.stats.inserts += 1;
    }

    /// Recovery-only insert: register a unique page rebuilt from durable
    /// metadata (per-page OOB fingerprint stamp + recovered sharer count)
    /// without touching traffic counters — a crash-recovery scan is not
    /// index traffic, and `max_refs` history died with the crash, so it
    /// restarts at the recovered count.
    ///
    /// # Panics
    /// Same double-insertion contract as [`FingerprintIndex::insert`].
    pub fn restore(&mut self, fp: Fingerprint, ppn: u64, refs: u32) {
        assert!(refs >= 1, "restore with zero refs");
        assert!(self.find_slot(&fp).is_none(), "fingerprint already indexed: {fp:?}");
        assert!(self.ppn_slot(ppn) == NONE_SLOT, "ppn {ppn} already indexed");
        self.place(fp, FpEntry { ppn, refs, max_refs: refs });
    }

    /// Add `n` references to an existing entry; returns the new count.
    ///
    /// # Panics
    /// Panics if the fingerprint is unknown.
    pub fn add_refs(&mut self, fp: &Fingerprint, n: u32) -> u32 {
        let slot = self.find_slot(fp).unwrap_or_else(|| panic!("add_refs: unknown {fp:?}"));
        let e = &mut self.slot_mut(slot).entry;
        e.refs += n;
        e.max_refs = e.max_refs.max(e.refs);
        e.refs
    }

    /// Drop one reference from the page stored at `ppn`.
    ///
    /// Returns `Some(remaining)` if the ppn is tracked (0 means the entry
    /// was just removed and the physical page is now invalid), or `None`
    /// if the ppn is not in the index — which is normal for CAGC, where
    /// pages written by the foreground path are not fingerprinted until
    /// their first GC migration.
    pub fn release_ppn(&mut self, ppn: u64) -> Option<u32> {
        let slot = self.ppn_slot(ppn);
        if slot == NONE_SLOT {
            return None;
        }
        let s = self.slot_mut(slot);
        debug_assert_eq!(s.entry.ppn, ppn);
        s.entry.refs -= 1;
        if s.entry.refs == 0 {
            let (fp, max) = (s.fp, s.entry.max_refs);
            self.unplace(slot, &fp);
            self.by_ppn[ppn as usize] = NONE_SLOT;
            self.stats.removals += 1;
            self.ref_stats.record_invalidation(max);
            Some(0)
        } else {
            Some(s.entry.refs)
        }
    }

    /// Drop one reference from the page stored at `ppn` because the host
    /// trimmed a sharing logical page. Same return contract as
    /// [`FingerprintIndex::release_ppn`], but when the ppn is tracked the
    /// drop is also counted in [`RefCountStats::trim_releases`], so reports
    /// can tell how much of the refcount decay came from deallocation
    /// rather than overwrites.
    pub fn release_ppn_trimmed(&mut self, ppn: u64) -> Option<u32> {
        let remaining = self.release_ppn(ppn)?;
        self.ref_stats.record_trim_release();
        Some(remaining)
    }

    /// Current reference count of the page at `ppn` (`None` if untracked).
    pub fn refs_of_ppn(&self, ppn: u64) -> Option<u32> {
        let slot = self.ppn_slot(ppn);
        if slot == NONE_SLOT {
            return None;
        }
        Some(self.slot_ref(slot).entry.refs)
    }

    /// Fingerprint stored at `ppn`, if tracked.
    pub fn fp_of_ppn(&self, ppn: u64) -> Option<Fingerprint> {
        let slot = self.ppn_slot(ppn);
        if slot == NONE_SLOT {
            return None;
        }
        Some(self.slot_ref(slot).fp)
    }

    /// GC moved the unique copy from `old_ppn` to `new_ppn`. O(1): the
    /// slab entry stays put, only the two PPN-map cells change.
    ///
    /// # Panics
    /// Panics if `old_ppn` is untracked or `new_ppn` already occupied.
    pub fn relocate(&mut self, old_ppn: u64, new_ppn: u64) {
        let slot = self.ppn_slot(old_ppn);
        if slot == NONE_SLOT {
            panic!("relocate: ppn {old_ppn} not indexed");
        }
        assert!(
            self.ppn_slot(new_ppn) == NONE_SLOT,
            "relocate: target ppn {new_ppn} occupied"
        );
        self.by_ppn[old_ppn as usize] = NONE_SLOT;
        self.set_ppn_slot(new_ppn, slot);
        self.slot_mut(slot).entry.ppn = new_ppn;
    }

    /// Forget the entry at `ppn` without counting an invalidation (used when
    /// a tracked page's references are transferred wholesale, e.g. a dedup
    /// hit during migration absorbs this copy into another entry).
    pub fn forget_ppn(&mut self, ppn: u64) -> Option<FpEntry> {
        let slot = self.ppn_slot(ppn);
        if slot == NONE_SLOT {
            return None;
        }
        let s = *self.slot_ref(slot);
        self.unplace(slot, &s.fp);
        self.by_ppn[ppn as usize] = NONE_SLOT;
        self.stats.removals += 1;
        Some(s.entry)
    }

    /// Record an invalidation of an *untracked* page (refcount implicitly 1)
    /// so Fig. 6 statistics also cover the never-deduplicated population.
    pub fn record_untracked_invalidation(&mut self) {
        self.ref_stats.record_invalidation(1);
    }

    /// Internal-consistency audit: every PPN-map entry points to a live
    /// slab slot that points back, refs ≥ 1 ≤ max_refs, and every live
    /// entry is reachable through the probe table. Used by tests and debug
    /// assertions; O(n).
    pub fn audit(&self) -> Result<(), String> {
        let tracked_ppns = self.by_ppn.iter().filter(|&&s| s != NONE_SLOT).count();
        if self.len != tracked_ppns {
            return Err(format!(
                "size mismatch: {} fingerprints vs {} ppns",
                self.len, tracked_ppns
            ));
        }
        let live_slots = self.slots.iter().filter(|s| s.is_some()).count();
        if self.len != live_slots {
            return Err(format!(
                "size mismatch: {} fingerprints vs {} live slots",
                self.len, live_slots
            ));
        }
        for (i, &slot) in self.by_ppn.iter().enumerate() {
            if slot == NONE_SLOT {
                continue;
            }
            let ppn = i as u64;
            let s = self.slots[slot as usize]
                .as_ref()
                .ok_or_else(|| format!("dangling ppn {ppn}"))?;
            if s.entry.ppn != ppn {
                return Err(format!("ppn {ppn} maps to entry at {}", s.entry.ppn));
            }
            if s.entry.refs == 0 || s.entry.max_refs < s.entry.refs {
                return Err(format!("bad refcounts at ppn {ppn}: {:?}", s.entry));
            }
            if self.find_slot(&s.fp) != Some(slot) {
                return Err(format!("probe table lost the fingerprint at ppn {ppn}"));
            }
        }
        Ok(())
    }

    /// Sum of reference counts over all entries (= number of logical pages
    /// currently backed by deduplicated physical pages).
    pub fn total_refs(&self) -> u64 {
        self.slots.iter().flatten().map(|s| s.entry.refs as u64).sum()
    }

    /// Histogram of current reference counts, bucketed {1, 2, 3, >3}.
    pub fn live_ref_histogram(&self) -> [u64; 4] {
        let mut h = [0u64; 4];
        for s in self.slots.iter().flatten() {
            let b = match s.entry.refs {
                1 => 0,
                2 => 1,
                3 => 2,
                _ => 3,
            };
            h[b] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::ContentId;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::of_content(ContentId(n))
    }

    #[test]
    fn insert_lookup_hit_and_miss() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 100, 1);
        assert_eq!(ix.lookup(&fp(1)).unwrap().ppn, 100);
        assert!(ix.lookup(&fp(2)).is_none());
        let s = ix.stats();
        assert_eq!((s.lookups, s.hits, s.inserts), (2, 1, 1));
    }

    #[test]
    fn refcounts_rise_and_fall() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 100, 1);
        assert_eq!(ix.add_refs(&fp(1), 1), 2);
        assert_eq!(ix.add_refs(&fp(1), 2), 4);
        assert_eq!(ix.release_ppn(100), Some(3));
        assert_eq!(ix.release_ppn(100), Some(2));
        assert_eq!(ix.release_ppn(100), Some(1));
        assert_eq!(ix.release_ppn(100), Some(0)); // entry gone
        assert_eq!(ix.release_ppn(100), None); // now untracked
        assert!(ix.is_empty());
    }

    #[test]
    fn max_refs_feeds_fig6_buckets() {
        let mut ix = FingerprintIndex::new();
        // Entry that peaks at 4 refs then dies: bucket ">3".
        ix.insert(fp(1), 1, 1);
        ix.add_refs(&fp(1), 3);
        for _ in 0..4 {
            ix.release_ppn(1);
        }
        // Entry that never exceeds 1: bucket "1".
        ix.insert(fp(2), 2, 1);
        ix.release_ppn(2);
        let b = ix.ref_stats().buckets();
        assert_eq!(b, [1, 0, 0, 1]);
    }

    #[test]
    fn untracked_release_returns_none() {
        let mut ix = FingerprintIndex::new();
        assert_eq!(ix.release_ppn(999), None);
    }

    #[test]
    fn trimmed_release_attributes_the_drop() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 100, 2);
        assert_eq!(ix.release_ppn_trimmed(100), Some(1));
        assert_eq!(ix.ref_stats().trim_releases(), 1);
        // Taking the count to zero still records the Fig. 6 invalidation.
        assert_eq!(ix.release_ppn_trimmed(100), Some(0));
        assert_eq!(ix.ref_stats().trim_releases(), 2);
        assert_eq!(ix.ref_stats().total(), 1);
        // Untracked pages don't count as trim releases.
        assert_eq!(ix.release_ppn_trimmed(100), None);
        assert_eq!(ix.ref_stats().trim_releases(), 2);
    }

    #[test]
    fn relocate_moves_the_reverse_mapping() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 100, 2);
        ix.relocate(100, 200);
        assert_eq!(ix.refs_of_ppn(100), None);
        assert_eq!(ix.refs_of_ppn(200), Some(2));
        assert_eq!(ix.lookup(&fp(1)).unwrap().ppn, 200);
        ix.audit().unwrap();
    }

    #[test]
    #[should_panic(expected = "not indexed")]
    fn relocate_unknown_ppn_panics() {
        FingerprintIndex::new().relocate(1, 2);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn double_insert_same_fp_panics() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 1, 1);
        ix.insert(fp(1), 2, 1);
    }

    #[test]
    fn forget_drops_without_invalidation_stat() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 1, 3);
        let e = ix.forget_ppn(1).unwrap();
        assert_eq!(e.refs, 3);
        assert_eq!(ix.ref_stats().total(), 0); // no invalidation recorded
        assert!(ix.is_empty());
    }

    #[test]
    fn restore_rebuilds_without_traffic_stats() {
        let mut ix = FingerprintIndex::new();
        ix.restore(fp(1), 100, 3);
        ix.restore(fp(2), 101, 1);
        let s = ix.stats();
        assert_eq!((s.lookups, s.hits, s.inserts, s.removals), (0, 0, 0, 0));
        assert_eq!(ix.refs_of_ppn(100), Some(3));
        assert_eq!(ix.peek(&fp(1)).unwrap().max_refs, 3, "max_refs restarts at refs");
        assert_eq!(ix.total_refs(), 4);
        ix.audit().unwrap();
        // Restored entries behave like any other afterwards.
        assert_eq!(ix.release_ppn(101), Some(0));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn totals_and_histogram() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 1, 1);
        ix.insert(fp(2), 2, 2);
        ix.insert(fp(3), 3, 3);
        ix.insert(fp(4), 4, 9);
        assert_eq!(ix.total_refs(), 15);
        assert_eq!(ix.live_ref_histogram(), [1, 1, 1, 1]);
        ix.audit().unwrap();
    }

    #[test]
    fn audit_catches_nothing_on_healthy_index() {
        let mut ix = FingerprintIndex::new();
        for i in 0..100 {
            ix.insert(fp(i), i, (i % 5 + 1) as u32);
        }
        ix.audit().unwrap();
    }

    #[test]
    fn survives_growth_and_slot_recycling() {
        // Enough entries to force several probe-table doublings, with
        // interleaved removals so freed slab slots get recycled.
        let mut ix = FingerprintIndex::new();
        for i in 0..500u64 {
            ix.insert(fp(i), i, 1);
            if i % 3 == 0 {
                assert_eq!(ix.release_ppn(i), Some(0));
            }
        }
        ix.audit().unwrap();
        for i in 0..500u64 {
            let expect = if i % 3 == 0 { None } else { Some(1) };
            assert_eq!(ix.refs_of_ppn(i), expect, "ppn {i}");
        }
        // Removed fingerprints can be re-inserted at new ppns.
        for i in (0..500u64).step_by(3) {
            ix.insert(fp(i), 1000 + i, 2);
        }
        ix.audit().unwrap();
        assert_eq!(ix.len(), 500);
    }

    #[test]
    fn backward_shift_deletion_keeps_probes_reachable() {
        // Insert a cluster, delete from the middle of it, and verify every
        // survivor is still found (a tombstone-free table must backward-shift).
        let mut ix = FingerprintIndex::new();
        for i in 0..64u64 {
            ix.insert(fp(i), i, 1);
        }
        for i in (0..64u64).step_by(2) {
            ix.forget_ppn(i).unwrap();
        }
        for i in 0..64u64 {
            let found = ix.peek(&fp(i)).is_some();
            assert_eq!(found, i % 2 == 1, "fp({i})");
        }
        ix.audit().unwrap();
    }
}
