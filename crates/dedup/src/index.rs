//! The fingerprint index: fingerprint → (physical page, reference count).
//!
//! This is the metadata structure at the heart of any dedup FTL (CAFTL's
//! "fingerprint store", CA-SSD's "hash store"). It maintains a bidirectional
//! mapping:
//!
//! * `fingerprint → (ppn, refs)` — where the unique copy lives and how many
//!   logical pages share it;
//! * `ppn → fingerprint` — so invalidations and GC migrations, which arrive
//!   addressed by physical page, can find and update the entry.
//!
//! Reference-count semantics follow Sec. III-A of the paper exactly: an
//! overwrite or delete of a logical page *decrements* the stored page's
//! count, and the flash page becomes invalid **only when the count reaches
//! zero**. The index also records, per entry, the maximum count the entry
//! ever reached — that is the statistic behind Fig. 6.

use std::collections::HashMap;

use crate::fingerprint::Fingerprint;
use crate::refstats::RefCountStats;

/// One stored unique page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpEntry {
    /// Physical page where the unique copy is stored.
    pub ppn: u64,
    /// Current reference count (≥ 1 while the entry exists).
    pub refs: u32,
    /// Highest reference count this entry ever reached.
    pub max_refs: u32,
}

/// Counters describing index traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// `lookup` calls.
    pub lookups: u64,
    /// Lookups that found an entry (dedup hits).
    pub hits: u64,
    /// New unique entries inserted.
    pub inserts: u64,
    /// Entries removed (refcount reached zero or page dropped).
    pub removals: u64,
}

/// Fingerprint index with reference counting.
#[derive(Debug, Default, Clone)]
pub struct FingerprintIndex {
    by_fp: HashMap<Fingerprint, FpEntry>,
    by_ppn: HashMap<u64, Fingerprint>,
    stats: IndexStats,
    ref_stats: RefCountStats,
}

impl FingerprintIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unique stored pages tracked.
    pub fn len(&self) -> usize {
        self.by_fp.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.by_fp.is_empty()
    }

    /// Traffic counters.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The Fig.6 statistic: invalidations bucketed by max refcount reached.
    pub fn ref_stats(&self) -> &RefCountStats {
        &self.ref_stats
    }

    /// Look up a fingerprint, counting the probe.
    pub fn lookup(&mut self, fp: &Fingerprint) -> Option<FpEntry> {
        self.stats.lookups += 1;
        let hit = self.by_fp.get(fp).copied();
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    /// Non-counting read (for assertions/reports).
    pub fn peek(&self, fp: &Fingerprint) -> Option<FpEntry> {
        self.by_fp.get(fp).copied()
    }

    /// Insert a brand-new unique page stored at `ppn` with `refs` initial
    /// references (1 for an inline write; the number of sharing LPNs for a
    /// page absorbed during GC).
    ///
    /// # Panics
    /// Panics if the fingerprint or the ppn is already tracked — double
    /// insertion means the caller failed to look up first, which would
    /// silently fork the refcount.
    pub fn insert(&mut self, fp: Fingerprint, ppn: u64, refs: u32) {
        assert!(refs >= 1, "insert with zero refs");
        let prev = self.by_fp.insert(fp, FpEntry { ppn, refs, max_refs: refs });
        assert!(prev.is_none(), "fingerprint already indexed: {fp:?}");
        let prev = self.by_ppn.insert(ppn, fp);
        assert!(prev.is_none(), "ppn {ppn} already indexed");
        self.stats.inserts += 1;
    }

    /// Recovery-only insert: register a unique page rebuilt from durable
    /// metadata (per-page OOB fingerprint stamp + recovered sharer count)
    /// without touching traffic counters — a crash-recovery scan is not
    /// index traffic, and `max_refs` history died with the crash, so it
    /// restarts at the recovered count.
    ///
    /// # Panics
    /// Same double-insertion contract as [`FingerprintIndex::insert`].
    pub fn restore(&mut self, fp: Fingerprint, ppn: u64, refs: u32) {
        assert!(refs >= 1, "restore with zero refs");
        let prev = self.by_fp.insert(fp, FpEntry { ppn, refs, max_refs: refs });
        assert!(prev.is_none(), "fingerprint already indexed: {fp:?}");
        let prev = self.by_ppn.insert(ppn, fp);
        assert!(prev.is_none(), "ppn {ppn} already indexed");
    }

    /// Add `n` references to an existing entry; returns the new count.
    ///
    /// # Panics
    /// Panics if the fingerprint is unknown.
    pub fn add_refs(&mut self, fp: &Fingerprint, n: u32) -> u32 {
        let e = self.by_fp.get_mut(fp).unwrap_or_else(|| panic!("add_refs: unknown {fp:?}"));
        e.refs += n;
        e.max_refs = e.max_refs.max(e.refs);
        e.refs
    }

    /// Drop one reference from the page stored at `ppn`.
    ///
    /// Returns `Some(remaining)` if the ppn is tracked (0 means the entry
    /// was just removed and the physical page is now invalid), or `None`
    /// if the ppn is not in the index — which is normal for CAGC, where
    /// pages written by the foreground path are not fingerprinted until
    /// their first GC migration.
    pub fn release_ppn(&mut self, ppn: u64) -> Option<u32> {
        let fp = *self.by_ppn.get(&ppn)?;
        let e = self.by_fp.get_mut(&fp).expect("by_ppn/by_fp out of sync");
        debug_assert_eq!(e.ppn, ppn);
        e.refs -= 1;
        if e.refs == 0 {
            let max = e.max_refs;
            self.by_fp.remove(&fp);
            self.by_ppn.remove(&ppn);
            self.stats.removals += 1;
            self.ref_stats.record_invalidation(max);
            Some(0)
        } else {
            Some(e.refs)
        }
    }

    /// Drop one reference from the page stored at `ppn` because the host
    /// trimmed a sharing logical page. Same return contract as
    /// [`FingerprintIndex::release_ppn`], but when the ppn is tracked the
    /// drop is also counted in [`RefCountStats::trim_releases`], so reports
    /// can tell how much of the refcount decay came from deallocation
    /// rather than overwrites.
    pub fn release_ppn_trimmed(&mut self, ppn: u64) -> Option<u32> {
        let remaining = self.release_ppn(ppn)?;
        self.ref_stats.record_trim_release();
        Some(remaining)
    }

    /// Current reference count of the page at `ppn` (`None` if untracked).
    pub fn refs_of_ppn(&self, ppn: u64) -> Option<u32> {
        self.by_ppn.get(&ppn).map(|fp| self.by_fp[fp].refs)
    }

    /// Fingerprint stored at `ppn`, if tracked.
    pub fn fp_of_ppn(&self, ppn: u64) -> Option<Fingerprint> {
        self.by_ppn.get(&ppn).copied()
    }

    /// GC moved the unique copy from `old_ppn` to `new_ppn`.
    ///
    /// # Panics
    /// Panics if `old_ppn` is untracked or `new_ppn` already occupied.
    pub fn relocate(&mut self, old_ppn: u64, new_ppn: u64) {
        let fp = self.by_ppn.remove(&old_ppn).unwrap_or_else(|| {
            panic!("relocate: ppn {old_ppn} not indexed")
        });
        let prev = self.by_ppn.insert(new_ppn, fp);
        assert!(prev.is_none(), "relocate: target ppn {new_ppn} occupied");
        self.by_fp.get_mut(&fp).expect("by_ppn/by_fp out of sync").ppn = new_ppn;
    }

    /// Forget the entry at `ppn` without counting an invalidation (used when
    /// a tracked page's references are transferred wholesale, e.g. a dedup
    /// hit during migration absorbs this copy into another entry).
    pub fn forget_ppn(&mut self, ppn: u64) -> Option<FpEntry> {
        let fp = self.by_ppn.remove(&ppn)?;
        let e = self.by_fp.remove(&fp).expect("by_ppn/by_fp out of sync");
        self.stats.removals += 1;
        Some(e)
    }

    /// Record an invalidation of an *untracked* page (refcount implicitly 1)
    /// so Fig. 6 statistics also cover the never-deduplicated population.
    pub fn record_untracked_invalidation(&mut self) {
        self.ref_stats.record_invalidation(1);
    }

    /// Internal-consistency audit: every `by_ppn` entry points to a
    /// `by_fp` entry that points back, and refs ≥ 1 ≤ max_refs. Used by
    /// tests and debug assertions; O(n).
    pub fn audit(&self) -> Result<(), String> {
        if self.by_fp.len() != self.by_ppn.len() {
            return Err(format!(
                "size mismatch: {} fingerprints vs {} ppns",
                self.by_fp.len(),
                self.by_ppn.len()
            ));
        }
        for (ppn, fp) in &self.by_ppn {
            let e = self.by_fp.get(fp).ok_or_else(|| format!("dangling ppn {ppn}"))?;
            if e.ppn != *ppn {
                return Err(format!("ppn {ppn} maps to entry at {}", e.ppn));
            }
            if e.refs == 0 || e.max_refs < e.refs {
                return Err(format!("bad refcounts at ppn {ppn}: {e:?}"));
            }
        }
        Ok(())
    }

    /// Sum of reference counts over all entries (= number of logical pages
    /// currently backed by deduplicated physical pages).
    pub fn total_refs(&self) -> u64 {
        self.by_fp.values().map(|e| e.refs as u64).sum()
    }

    /// Histogram of current reference counts, bucketed {1, 2, 3, >3}.
    pub fn live_ref_histogram(&self) -> [u64; 4] {
        let mut h = [0u64; 4];
        for e in self.by_fp.values() {
            let b = match e.refs {
                1 => 0,
                2 => 1,
                3 => 2,
                _ => 3,
            };
            h[b] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::ContentId;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::of_content(ContentId(n))
    }

    #[test]
    fn insert_lookup_hit_and_miss() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 100, 1);
        assert_eq!(ix.lookup(&fp(1)).unwrap().ppn, 100);
        assert!(ix.lookup(&fp(2)).is_none());
        let s = ix.stats();
        assert_eq!((s.lookups, s.hits, s.inserts), (2, 1, 1));
    }

    #[test]
    fn refcounts_rise_and_fall() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 100, 1);
        assert_eq!(ix.add_refs(&fp(1), 1), 2);
        assert_eq!(ix.add_refs(&fp(1), 2), 4);
        assert_eq!(ix.release_ppn(100), Some(3));
        assert_eq!(ix.release_ppn(100), Some(2));
        assert_eq!(ix.release_ppn(100), Some(1));
        assert_eq!(ix.release_ppn(100), Some(0)); // entry gone
        assert_eq!(ix.release_ppn(100), None); // now untracked
        assert!(ix.is_empty());
    }

    #[test]
    fn max_refs_feeds_fig6_buckets() {
        let mut ix = FingerprintIndex::new();
        // Entry that peaks at 4 refs then dies: bucket ">3".
        ix.insert(fp(1), 1, 1);
        ix.add_refs(&fp(1), 3);
        for _ in 0..4 {
            ix.release_ppn(1);
        }
        // Entry that never exceeds 1: bucket "1".
        ix.insert(fp(2), 2, 1);
        ix.release_ppn(2);
        let b = ix.ref_stats().buckets();
        assert_eq!(b, [1, 0, 0, 1]);
    }

    #[test]
    fn untracked_release_returns_none() {
        let mut ix = FingerprintIndex::new();
        assert_eq!(ix.release_ppn(999), None);
    }

    #[test]
    fn trimmed_release_attributes_the_drop() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 100, 2);
        assert_eq!(ix.release_ppn_trimmed(100), Some(1));
        assert_eq!(ix.ref_stats().trim_releases(), 1);
        // Taking the count to zero still records the Fig. 6 invalidation.
        assert_eq!(ix.release_ppn_trimmed(100), Some(0));
        assert_eq!(ix.ref_stats().trim_releases(), 2);
        assert_eq!(ix.ref_stats().total(), 1);
        // Untracked pages don't count as trim releases.
        assert_eq!(ix.release_ppn_trimmed(100), None);
        assert_eq!(ix.ref_stats().trim_releases(), 2);
    }

    #[test]
    fn relocate_moves_the_reverse_mapping() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 100, 2);
        ix.relocate(100, 200);
        assert_eq!(ix.refs_of_ppn(100), None);
        assert_eq!(ix.refs_of_ppn(200), Some(2));
        assert_eq!(ix.lookup(&fp(1)).unwrap().ppn, 200);
        ix.audit().unwrap();
    }

    #[test]
    #[should_panic(expected = "not indexed")]
    fn relocate_unknown_ppn_panics() {
        FingerprintIndex::new().relocate(1, 2);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn double_insert_same_fp_panics() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 1, 1);
        ix.insert(fp(1), 2, 1);
    }

    #[test]
    fn forget_drops_without_invalidation_stat() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 1, 3);
        let e = ix.forget_ppn(1).unwrap();
        assert_eq!(e.refs, 3);
        assert_eq!(ix.ref_stats().total(), 0); // no invalidation recorded
        assert!(ix.is_empty());
    }

    #[test]
    fn restore_rebuilds_without_traffic_stats() {
        let mut ix = FingerprintIndex::new();
        ix.restore(fp(1), 100, 3);
        ix.restore(fp(2), 101, 1);
        let s = ix.stats();
        assert_eq!((s.lookups, s.hits, s.inserts, s.removals), (0, 0, 0, 0));
        assert_eq!(ix.refs_of_ppn(100), Some(3));
        assert_eq!(ix.peek(&fp(1)).unwrap().max_refs, 3, "max_refs restarts at refs");
        assert_eq!(ix.total_refs(), 4);
        ix.audit().unwrap();
        // Restored entries behave like any other afterwards.
        assert_eq!(ix.release_ppn(101), Some(0));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn totals_and_histogram() {
        let mut ix = FingerprintIndex::new();
        ix.insert(fp(1), 1, 1);
        ix.insert(fp(2), 2, 2);
        ix.insert(fp(3), 3, 3);
        ix.insert(fp(4), 4, 9);
        assert_eq!(ix.total_refs(), 15);
        assert_eq!(ix.live_ref_histogram(), [1, 1, 1, 1]);
        ix.audit().unwrap();
    }

    #[test]
    fn audit_catches_nothing_on_healthy_index() {
        let mut ix = FingerprintIndex::new();
        for i in 0..100 {
            ix.insert(fp(i), i, (i % 5 + 1) as u32);
        }
        ix.audit().unwrap();
    }
}
