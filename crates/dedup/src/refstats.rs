//! Reference-count invalidation statistics (the Fig. 6 measurement).
//!
//! Fig. 6 of the paper plots, per workload, what fraction of pages that
//! *became invalid* had reference count 1, 2, 3, or >3 — the empirical basis
//! for treating high-refcount pages as cold. We bucket each invalidated page
//! by the **maximum reference count its stored copy ever reached**: a page
//! that was only ever referenced once lands in bucket "1", a page that was
//! shared by four files before they were all deleted lands in ">3".

/// Invalidations bucketed by peak reference count {1, 2, 3, >3}.
///
/// Besides the Fig. 6 buckets this also tracks how many reference drops
/// were caused by host trims (deallocations) rather than overwrites — the
/// signal behind trim-aware placement: a shared page whose sharers are
/// being trimmed away is *cooling down* and will fall back from the cold
/// region to hot on its next GC migration once its count crosses back
/// under the threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefCountStats {
    buckets: [u64; 4],
    trim_releases: u64,
}

impl RefCountStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one page invalidation whose copy peaked at `max_refs`.
    pub fn record_invalidation(&mut self, max_refs: u32) {
        let b = match max_refs {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            _ => 3,
        };
        self.buckets[b] += 1;
    }

    /// Record one reference drop caused by a host trim. Orthogonal to the
    /// buckets: a trim that takes a count to zero *also* records an
    /// invalidation via [`RefCountStats::record_invalidation`].
    pub fn record_trim_release(&mut self) {
        self.trim_releases += 1;
    }

    /// Reference drops attributed to host trims (deallocations).
    pub fn trim_releases(&self) -> u64 {
        self.trim_releases
    }

    /// Raw bucket counts `[ref==1, ref==2, ref==3, ref>3]`.
    pub fn buckets(&self) -> [u64; 4] {
        self.buckets
    }

    /// Total invalidations recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket fractions (each in `[0,1]`, summing to 1 when non-empty).
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total();
        if total == 0 {
            return [0.0; 4];
        }
        self.buckets.map(|b| b as f64 / total as f64)
    }

    /// Merge another statistics object into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
        self.trim_releases += other.trim_releases;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_fig6_classes() {
        let mut s = RefCountStats::new();
        s.record_invalidation(1);
        s.record_invalidation(1);
        s.record_invalidation(2);
        s.record_invalidation(3);
        s.record_invalidation(4);
        s.record_invalidation(100);
        assert_eq!(s.buckets(), [2, 1, 1, 2]);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn zero_refs_treated_as_one() {
        // Defensive: an untracked page is implicitly refcount 1.
        let mut s = RefCountStats::new();
        s.record_invalidation(0);
        assert_eq!(s.buckets(), [1, 0, 0, 0]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut s = RefCountStats::new();
        for r in [1, 1, 1, 1, 2, 2, 3, 7] {
            s.record_invalidation(r);
        }
        let f = s.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(RefCountStats::new().fractions(), [0.0; 4]);
    }

    #[test]
    fn merge_adds_buckets() {
        let mut a = RefCountStats::new();
        a.record_invalidation(1);
        let mut b = RefCountStats::new();
        b.record_invalidation(5);
        b.record_invalidation(1);
        a.merge(&b);
        assert_eq!(a.buckets(), [2, 0, 0, 1]);
    }

    #[test]
    fn trim_releases_are_counted_and_merged() {
        let mut a = RefCountStats::new();
        a.record_trim_release();
        a.record_trim_release();
        // Trim attribution does not disturb the Fig. 6 buckets.
        assert_eq!(a.trim_releases(), 2);
        assert_eq!(a.total(), 0);
        let mut b = RefCountStats::new();
        b.record_trim_release();
        a.merge(&b);
        assert_eq!(a.trim_releases(), 3);
    }
}
