//! Behavioral tests for preemptible (sliced) GC scheduling.

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_harness::ToJson;
use cagc_workloads::{SynthConfig, Trace};

fn churn_trace(seed: u64, requests: usize) -> Trace {
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    SynthConfig {
        name: "churn".into(),
        requests,
        logical_pages: (flash.logical_pages() as f64 * 0.93) as u64,
        write_ratio: 0.8,
        dedup_ratio: 0.4,
        mean_req_pages: 2.5,
        max_req_pages: 8,
        mean_interarrival_ns: 200_000,
        seed,
        ..Default::default()
    }
    .generate()
}

fn run(cfg: SsdConfig, trace: &Trace) -> cagc_core::RunReport {
    let mut ssd = Ssd::new(cfg);
    let report = ssd.replay(trace);
    ssd.audit().expect("audit after preemptible GC");
    report
}

/// The knob default (off) must leave the synchronous path bit-for-bit
/// untouched — the whole report, not just a few counters.
#[test]
fn preempt_off_is_byte_identical_to_before() {
    let trace = churn_trace(5, 9_000);
    for scheme in Scheme::EXTENDED {
        let base = run(SsdConfig::tiny(scheme), &trace);
        let mut cfg = SsdConfig::tiny(scheme);
        cfg.gc_preempt = false; // explicit, same as default
        let again = run(cfg, &trace);
        assert_eq!(
            base.to_json().render(),
            again.to_json().render(),
            "{} diverged with preempt knob present",
            scheme.name()
        );
    }
}

/// Sliced GC still reclaims space, keeps every cross-structure invariant,
/// and conserves data: same pages written, nothing lost.
#[test]
fn preempt_on_stays_consistent_across_schemes() {
    let trace = churn_trace(9, 9_000);
    for scheme in Scheme::EXTENDED {
        let off = run(SsdConfig::tiny(scheme), &trace);
        let mut cfg = SsdConfig::tiny(scheme);
        cfg.gc_preempt = true;
        cfg.gc_slice_pages = 4;
        let on = run(cfg, &trace);
        assert!(off.gc.blocks_erased > 0, "{}: GC never ran", scheme.name());
        assert!(on.gc.blocks_erased > 0, "{}: sliced GC never ran", scheme.name());
        assert_eq!(on.host_pages_written, off.host_pages_written, "{}", scheme.name());
        // Conservation holds under slicing too.
        assert_eq!(
            on.total_programs,
            on.user_programs + on.gc.pages_migrated,
            "{}: program accounting under slicing",
            scheme.name()
        );
    }
}

/// Slicing spreads migration over many short quanta instead of a few long
/// rounds: the worst single foreground write stall shrinks.
#[test]
fn preempt_shortens_worst_case_write_stall() {
    let trace = churn_trace(13, 12_000);
    let off = run(SsdConfig::tiny(Scheme::Cagc), &trace);
    let mut cfg = SsdConfig::tiny(Scheme::Cagc);
    cfg.gc_preempt = true;
    cfg.gc_slice_pages = 2;
    let on = run(cfg, &trace);
    assert!(
        on.writes.max_ns < off.writes.max_ns,
        "sliced max write {} !< run-to-completion max write {}",
        on.writes.max_ns,
        off.writes.max_ns
    );
}

#[test]
fn preempt_is_deterministic() {
    let trace = churn_trace(17, 8_000);
    let mut cfg = SsdConfig::tiny(Scheme::Cagc);
    cfg.gc_preempt = true;
    cfg.gc_slice_pages = 4;
    let a = run(cfg.clone(), &trace);
    let b = run(cfg, &trace);
    assert_eq!(a.to_json().render(), b.to_json().render());
}

/// `gc_pump` drains reclaimable space in the background: after pumping on
/// an idle clock, a device sitting below the high watermark climbs back
/// above its low watermark without any foreground write paying for it.
#[test]
fn gc_pump_reclaims_in_idle_windows() {
    let trace = churn_trace(21, 9_000);
    let mut cfg = SsdConfig::tiny(Scheme::Cagc);
    cfg.gc_preempt = true;
    cfg.gc_slice_pages = 4;
    let mut ssd = Ssd::new(cfg);
    ssd.replay(&trace);
    let before = ssd.gc_stats().blocks_erased;
    let mut t = ssd.last_completion();
    let mut pumps = 0u32;
    while let Some(end) = ssd.gc_pump(t) {
        t = end;
        pumps += 1;
        assert!(pumps < 10_000, "pump never converged");
    }
    assert!(pumps > 0, "no pump work despite churned device");
    assert!(ssd.gc_stats().blocks_erased > before);
    ssd.audit().expect("audit after pumping");
    // Converged: free space reached the high watermark, so the pump has
    // nothing left to do.
    assert!(ssd.gc_pump(t).is_none());
}
