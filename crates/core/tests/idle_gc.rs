//! Behavioral tests for idle-period background GC.

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_workloads::{SynthConfig, Trace};

fn gappy_trace(seed: u64) -> Trace {
    // Heavy churn with long idle gaps between bursts: plenty of idle
    // windows for background collection.
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    SynthConfig {
        name: "gappy".into(),
        requests: 12_000,
        logical_pages: (flash.logical_pages() as f64 * 0.92) as u64,
        write_ratio: 0.85,
        dedup_ratio: 0.4,
        mean_req_pages: 3.0,
        max_req_pages: 8,
        mean_interarrival_ns: 600_000,
        burst_mean: 12.0,
        burst_gap_ns: 5_000,
        seed,
        ..Default::default()
    }
    .generate()
}

fn run(scheme: Scheme, idle_gc: bool, trace: &Trace) -> cagc_core::RunReport {
    let mut cfg = SsdConfig::tiny(scheme);
    cfg.idle_gc = idle_gc;
    let mut ssd = Ssd::new(cfg);
    let report = ssd.replay(trace);
    ssd.audit().expect("audit after idle GC");
    report
}

#[test]
fn idle_gc_reduces_foreground_interference() {
    let trace = gappy_trace(3);
    for scheme in [Scheme::Baseline, Scheme::Cagc] {
        let off = run(scheme, false, &trace);
        let on = run(scheme, true, &trace);
        assert!(
            on.gc_period_mean_ns() < off.gc_period_mean_ns(),
            "{}: idle GC {:.0}us vs watermark-only {:.0}us",
            scheme.name(),
            on.gc_period_mean_ns() / 1000.0,
            off.gc_period_mean_ns() / 1000.0
        );
    }
}

#[test]
fn idle_gc_does_not_change_space_accounting_materially() {
    let trace = gappy_trace(7);
    let off = run(Scheme::Cagc, false, &trace);
    let on = run(Scheme::Cagc, true, &trace);
    // Same data written, same space to reclaim: total erases within a few
    // percent (idle collection shifts *when* GC runs, not how much).
    let diff = (on.gc.blocks_erased as f64 - off.gc.blocks_erased as f64).abs();
    assert!(
        diff / (off.gc.blocks_erased.max(1) as f64) < 0.1,
        "erases diverged: {} vs {}",
        on.gc.blocks_erased,
        off.gc.blocks_erased
    );
    assert_eq!(on.host_pages_written, off.host_pages_written);
}

#[test]
fn idle_gc_never_runs_on_a_fresh_device() {
    // Free space above the high watermark: idle windows must not trigger
    // collection (there is nothing useful to collect).
    let mut cfg = SsdConfig::tiny(Scheme::Baseline);
    cfg.idle_gc = true;
    let mut ssd = Ssd::new(cfg);
    let mut t = 0u64;
    for lpn in 0..100 {
        t += 50_000_000; // 50ms idle between every request
        ssd.process(&cagc_workloads::Request::write(
            t,
            lpn,
            vec![cagc_dedup::ContentId(lpn)],
        ));
    }
    assert_eq!(ssd.gc_stats().invocations, 0);
    assert_eq!(ssd.gc_stats().blocks_erased, 0);
}

#[test]
fn idle_gc_is_deterministic() {
    let trace = gappy_trace(11);
    let a = run(Scheme::Cagc, true, &trace);
    let b = run(Scheme::Cagc, true, &trace);
    assert_eq!(a.gc.blocks_erased, b.gc.blocks_erased);
    assert_eq!(a.all.max_ns, b.all.max_ns);
    assert_eq!(a.all.mean_ns.to_bits(), b.all.mean_ns.to_bits());
}
