//! Fault-injection and power-loss recovery properties.
//!
//! The oracle for crash consistency is the storage contract itself: after
//! a power loss and [`Ssd::recover`], every logical page must read back
//! either the content of its last *acknowledged* write (or be unmapped if
//! that was a trim / it was never written), or — only for the one request
//! torn by the crash — the torn request's content. Acknowledged data is
//! never lost, across all three schemes, no matter where inside a GC
//! round the crash lands.

use cagc_core::{CmdStatus, Scheme, Ssd, SsdConfig};
use cagc_dedup::ContentId;
use cagc_flash::{FaultConfig, FlashError, Timing, UllConfig};
use cagc_harness::prop::*;
use cagc_harness::ToJson;
use cagc_sim::SimRng;
use cagc_workloads::Request;
use std::collections::BTreeMap;

/// A deliberately tiny device (32 blocks x 8 pages) so GC churns hard and
/// a few hundred requests push crash points deep into migration/erase
/// territory.
fn micro_flash() -> UllConfig {
    UllConfig {
        channels: 1,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 16,
        pages_per_block: 8,
        page_size: 4096,
        op_ratio: 0.12,
        gc_watermark: 0.20,
        hash_ns: 14_000,
        timing: Timing::ull(),
    }
}

fn scheme_of(ix: u8) -> Scheme {
    match ix % 4 {
        0 => Scheme::Baseline,
        1 => Scheme::InlineDedup,
        2 => Scheme::InlineSampled,
        _ => Scheme::Cagc,
    }
}

fn faulty_config(scheme: Scheme, seed: u64, crash_op: Option<u64>) -> SsdConfig {
    let mut cfg = SsdConfig::paper(micro_flash(), scheme);
    cfg.faults = FaultConfig {
        program_fail_prob: 0.01,
        erase_fail_prob: 0.002,
        read_ecc_prob: 0.01,
        seed,
        crash_at_op: crash_op,
        ..FaultConfig::none()
    };
    cfg
}

/// Overwrite-heavy, duplicate-heavy footprint: hot LPNs force GC, a small
/// content pool forces dedup hits in every scheme that looks for them.
const HOT_LPNS: u64 = 160;
const CONTENT_POOL: u64 = 40;

/// Per-LPN durability oracle.
struct Oracle {
    /// Content of the last acknowledged write (`None` = trimmed or never
    /// written: the LPN must read back unmapped).
    acked: Vec<Option<ContentId>>,
    /// Candidate states of the single request torn by the crash.
    pending: Vec<Vec<Option<ContentId>>>,
}

impl Oracle {
    fn new(logical: u64) -> Self {
        Oracle {
            acked: vec![None; logical as usize],
            pending: vec![Vec::new(); logical as usize],
        }
    }

    /// After recovery the torn request is resolved one way or the other;
    /// adopt whatever the device now stores as the new acknowledged state.
    fn settle(&mut self, ssd: &Ssd) {
        for lpn in 0..self.acked.len() as u64 {
            self.acked[lpn as usize] = ssd.stored_content(lpn);
            self.pending[lpn as usize].clear();
        }
    }

    fn check(&self, ssd: &Ssd, when: &str) -> Result<(), TestCaseError> {
        for lpn in 0..self.acked.len() as u64 {
            let got = ssd.stored_content(lpn);
            let want = &self.acked[lpn as usize];
            let ok = got == *want || self.pending[lpn as usize].contains(&got);
            prop_assert!(
                ok,
                "{when}: lpn {lpn} reads {got:?}; acknowledged {want:?}, \
                 in-flight {:?}",
                self.pending[lpn as usize]
            );
        }
        Ok(())
    }
}

/// Draw the next request and its oracle candidates `(lpn, new state)`.
fn next_request(rng: &mut SimRng, at: u64) -> (Request, Vec<(u64, Option<ContentId>)>) {
    let roll = rng.gen_range_u64(0..100);
    let lpn = rng.gen_range_u64(0..HOT_LPNS - 4);
    let content = |rng: &mut SimRng| ContentId(1 + rng.gen_range_u64(0..CONTENT_POOL));
    if roll < 60 {
        let c = content(rng);
        (Request::write(at, lpn, vec![c]), vec![(lpn, Some(c))])
    } else if roll < 70 {
        // Multi-page write: a crash can tear it mid-request.
        let n = 2 + rng.gen_range_u64(0..3);
        let cs: Vec<ContentId> = (0..n).map(|_| content(rng)).collect();
        let cand = cs.iter().enumerate().map(|(i, &c)| (lpn + i as u64, Some(c))).collect();
        (Request::write(at, lpn, cs), cand)
    } else if roll < 80 {
        (Request::trim(at, lpn, 1), vec![(lpn, None)])
    } else {
        (Request::read(at, lpn, 1), Vec::new())
    }
}

/// Feed `n_req` seeded requests through `process_checked`, maintaining the
/// oracle. Returns `(ssd, oracle, next arrival time, crashed?)`.
fn drive(
    ssd: &mut Ssd,
    oracle: &mut Oracle,
    rng: &mut SimRng,
    mut at: u64,
    n_req: usize,
) -> Result<(u64, bool), TestCaseError> {
    for _ in 0..n_req {
        at += 4_000;
        let (req, cand) = next_request(rng, at);
        let before = ssd.fault_report();
        match ssd.process_checked(&req) {
            Ok(_) => {
                let after = ssd.fault_report();
                let rejected = after.writes_rejected > before.writes_rejected
                    || after.trims_rejected > before.trims_rejected;
                if !rejected {
                    for (lpn, v) in cand {
                        oracle.acked[lpn as usize] = v;
                        oracle.pending[lpn as usize].clear();
                    }
                }
            }
            Err(FlashError::PowerLoss) => {
                // The torn request: each touched page may or may not have
                // become durable.
                for (lpn, v) in cand {
                    oracle.pending[lpn as usize].push(v);
                }
                return Ok((at, true));
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
    Ok((at, false))
}

/// Reference-count histogram recounted from scratch, using only the
/// forward map and the per-page OOB stamps — fully independent of the
/// fingerprint index the recovery pass rebuilt.
fn recount_histogram(ssd: &Ssd) -> [u64; 4] {
    let mut sharers: BTreeMap<u64, u64> = BTreeMap::new();
    for lpn in 0..ssd.logical_pages() {
        if let Some(ppn) = ssd.mapped_ppn(lpn) {
            *sharers.entry(ppn).or_insert(0) += 1;
        }
    }
    let mut h = [0u64; 4];
    for (&ppn, &n) in &sharers {
        if ssd.device().oob(ppn).fp.is_some() {
            h[match n {
                1 => 0,
                2 => 1,
                3 => 2,
                _ => 3,
            }] += 1;
        }
    }
    h
}

harness_proptest! {
    #![config(cases = 32)]

    /// The headline property: under probabilistic program/erase/ECC faults
    /// and a crash at an arbitrary durable-op ordinal — including deep
    /// inside GC rounds — recovery loses no acknowledged write, the
    /// rebuilt refcount histogram matches an index-independent recount,
    /// and the device keeps serving (and keeps its invariants) afterwards.
    #[test]
    fn crash_recovery_preserves_acknowledged_writes(
        scheme_ix in 0u8..4,
        seed in 0u64..0x1_0000_0000,
        crash_op in 20u64..1500,
        n_req in 60usize..350,
    ) {
        let scheme = scheme_of(scheme_ix);
        let mut ssd = Ssd::new(faulty_config(scheme, seed, Some(crash_op)));
        let mut oracle = Oracle::new(ssd.logical_pages());
        let mut rng = SimRng::for_stream(seed, "fault-recovery-workload");

        let (at, crashed) = drive(&mut ssd, &mut oracle, &mut rng, 0, n_req)?;
        if crashed {
            let rep = ssd.recover();
            prop_assert!(rep.is_ok(), "recovery failed: {:?}", rep);
            oracle.check(&ssd, "after recovery")?;
            prop_assert_eq!(
                ssd.ref_histogram(),
                recount_histogram(&ssd),
                "rebuilt index refcounts disagree with a from-scratch recount"
            );
            prop_assert!(ssd.audit().is_ok(), "post-recovery audit: {:?}", ssd.audit());

            // The crash point is consumed: the device must keep working.
            oracle.settle(&ssd);
            let (_, crashed_again) = drive(&mut ssd, &mut oracle, &mut rng, at, 60)?;
            prop_assert!(!crashed_again, "crash point fired twice");
            prop_assert_eq!(ssd.fault_report().recoveries, 1);
        }
        oracle.check(&ssd, "end of run")?;
        prop_assert!(ssd.audit().is_ok(), "final audit: {:?}", ssd.audit());
    }
}

harness_proptest! {
    #![config(cases = 16)]

    /// Running the recovery pass twice is a no-op: the second pass sees
    /// only durable facts the first pass already normalized.
    #[test]
    fn recovery_is_idempotent(
        scheme_ix in 0u8..4,
        seed in 0u64..0x1_0000_0000,
        crash_op in 20u64..900,
    ) {
        let scheme = scheme_of(scheme_ix);
        let mut ssd = Ssd::new(faulty_config(scheme, seed, Some(crash_op)));
        let mut oracle = Oracle::new(ssd.logical_pages());
        let mut rng = SimRng::for_stream(seed, "fault-recovery-workload");
        let (_, crashed) = drive(&mut ssd, &mut oracle, &mut rng, 0, 250)?;
        if !crashed {
            return Ok(());
        }
        let first = ssd.recover().map_err(TestCaseError::fail)?;
        let contents: Vec<_> = (0..ssd.logical_pages()).map(|l| ssd.stored_content(l)).collect();
        let hist = ssd.ref_histogram();

        let second = ssd.recover().map_err(TestCaseError::fail)?;
        let contents2: Vec<_> = (0..ssd.logical_pages()).map(|l| ssd.stored_content(l)).collect();
        prop_assert_eq!(contents, contents2, "second recovery changed stored contents");
        prop_assert_eq!(hist, ssd.ref_histogram());
        prop_assert_eq!(first.mappings_recovered, second.mappings_recovered);
        prop_assert_eq!(second.duplicate_copies_merged, 0,
            "first recovery left duplicate stored copies behind");
        prop_assert!(ssd.audit().is_ok());
    }

    /// Determinism regression: the same fault seed, crash point and
    /// workload produce byte-identical reports — fault injection must not
    /// introduce any hidden source of nondeterminism.
    #[test]
    fn same_fault_seed_is_byte_identical(
        scheme_ix in 0u8..4,
        seed in 0u64..0x1_0000_0000,
        crash_op in 20u64..900,
    ) {
        let scheme = scheme_of(scheme_ix);
        let mut digests = Vec::new();
        for _ in 0..2 {
            let mut ssd = Ssd::new(faulty_config(scheme, seed, Some(crash_op)));
            let mut oracle = Oracle::new(ssd.logical_pages());
            let mut rng = SimRng::for_stream(seed, "fault-recovery-workload");
            let (at, crashed) = drive(&mut ssd, &mut oracle, &mut rng, 0, 220)?;
            if crashed {
                ssd.recover().map_err(TestCaseError::fail)?;
                oracle.settle(&ssd);
                drive(&mut ssd, &mut oracle, &mut rng, at, 40)?;
            }
            digests.push(ssd.report("prop").to_json().render());
        }
        prop_assert_eq!(&digests[0], &digests[1], "same fault seed diverged");
    }
}

// ---------------------------------------------------------------------
// Deterministic fault-policy unit tests (explicit schedules).
// ---------------------------------------------------------------------

fn schedule_config(scheme: Scheme, faults: FaultConfig) -> SsdConfig {
    let mut cfg = SsdConfig::paper(micro_flash(), scheme);
    cfg.faults = faults;
    cfg
}

#[test]
fn program_failure_retries_on_a_fresh_block() {
    let cfg = schedule_config(
        Scheme::Baseline,
        FaultConfig { fail_program_ops: vec![0], ..FaultConfig::none() },
    );
    let mut ssd = Ssd::new(cfg);
    let done = ssd.process_checked(&Request::write(1_000, 0, vec![ContentId(7)])).unwrap();
    assert!(done > 1_000);
    let fr = ssd.fault_report();
    assert_eq!(fr.program_failures, 1);
    assert_eq!(fr.program_retries, 1);
    assert_eq!(fr.forced_programs, 0);
    assert_eq!(ssd.stored_content(0), Some(ContentId(7)));
    ssd.audit().unwrap();
}

#[test]
fn exhausted_retries_force_the_program_through() {
    // Default max_program_retries = 4: ordinals 0..=3 all fail, the fifth
    // attempt takes the forced (fault-bypassing) path.
    let cfg = schedule_config(
        Scheme::Baseline,
        FaultConfig { fail_program_ops: vec![0, 1, 2, 3], ..FaultConfig::none() },
    );
    let backoff = cfg.program_retry_backoff_ns;
    let retries = cfg.max_program_retries as u64;
    let mut ssd = Ssd::new(cfg);
    let done = ssd.process_checked(&Request::write(1_000, 0, vec![ContentId(9)])).unwrap();
    let fr = ssd.fault_report();
    assert_eq!(fr.program_failures, 4);
    assert_eq!(fr.program_retries, 4);
    assert_eq!(fr.forced_programs, 1);
    // Every retry charged its backoff to simulated time.
    assert!(done >= 1_000 + retries * backoff, "done {done} missing retry backoffs");
    assert_eq!(ssd.stored_content(0), Some(ContentId(9)));
    ssd.audit().unwrap();
}

#[test]
fn ecc_errors_reread_then_heroically_decode() {
    // Default max_read_retries = 2: three scheduled ECC failures exhaust
    // the re-reads and take the slow soft-decode path; the data still
    // arrives (no silent loss) and a later read is clean.
    let cfg = schedule_config(
        Scheme::Baseline,
        FaultConfig { fail_read_ops: vec![0, 1, 2], ..FaultConfig::none() },
    );
    let mut ssd = Ssd::new(cfg);
    ssd.process_checked(&Request::write(1_000, 5, vec![ContentId(3)])).unwrap();
    let done = ssd.process_checked(&Request::read(100_000, 5, 1)).unwrap();
    let fr = ssd.fault_report();
    assert_eq!(fr.read_ecc_errors, 3);
    assert_eq!(fr.read_retries, 2);
    assert_eq!(fr.ecc_decodes, 1);
    assert!(done > 100_000);

    // Ordinal 3 is clean: no further retries or decodes.
    ssd.process_checked(&Request::read(200_000, 5, 1)).unwrap();
    let fr2 = ssd.fault_report();
    assert_eq!(fr2.read_retries, 2);
    assert_eq!(fr2.ecc_decodes, 1);
    ssd.audit().unwrap();
}

#[test]
fn erase_failures_retire_blocks_and_degrade_to_read_only() {
    let mut cfg = schedule_config(
        Scheme::Baseline,
        FaultConfig { erase_fail_prob: 1.0, seed: 11, ..FaultConfig::none() },
    );
    // With the floor raised to the whole device, the first retirement
    // flips the device read-only — no need to burn through the spare pool.
    cfg.read_only_floor_blocks = cfg.flash.geometry().total_blocks();
    let read_miss = cfg.read_miss_ns;
    let trim_ns = cfg.trim_ns;
    let mut ssd = Ssd::new(cfg);

    // Overwrite a hot set until GC fires; its first erase fails and
    // retires the victim.
    let mut at = 0;
    for i in 0..4_000u64 {
        at += 4_000;
        let lpn = i % 120;
        ssd.process_checked(&Request::write(at, lpn, vec![ContentId(1 + i)])).unwrap();
        if ssd.fault_report().blocks_retired > 0 {
            break;
        }
    }
    let fr = ssd.fault_report();
    assert!(fr.blocks_retired >= 1, "GC never failed an erase");
    assert_eq!(fr.erase_failures, fr.blocks_retired);
    assert!(ssd.is_read_only(), "retirement past the floor must degrade to read-only");
    assert!(fr.read_only);

    // Writes and trims now fail fast with the rejection counters ticking;
    // reads are still served.
    let before = ssd.stored_content(0);
    at += 4_000;
    let done = ssd.process_checked(&Request::write(at, 0, vec![ContentId(0xDEAD)])).unwrap();
    assert_eq!(done, at + read_miss);
    assert_eq!(ssd.fault_report().writes_rejected, 1);
    assert_eq!(ssd.stored_content(0), before, "rejected write must not change state");

    at += 4_000;
    let done = ssd.process_checked(&Request::trim(at, 0, 1)).unwrap();
    assert_eq!(done, at + trim_ns);
    assert_eq!(ssd.fault_report().trims_rejected, 1);
    assert_eq!(ssd.stored_content(0), before);

    at += 4_000;
    assert!(ssd.process_checked(&Request::read(at, 0, 1)).unwrap() > at);
    ssd.audit().unwrap();
}

#[test]
fn unrecoverable_read_completes_with_media_error_status() {
    // Three scheduled ECC failures force the heroic decode; with
    // unrecoverable_prob = 1.0 the decode itself fails and the read
    // completes with a media-read-error status instead of panicking. The
    // stored data is untouched and a later (clean) read still serves it.
    let cfg = schedule_config(
        Scheme::Baseline,
        FaultConfig {
            fail_read_ops: vec![0, 1, 2],
            unrecoverable_prob: 1.0,
            ..FaultConfig::none()
        },
    );
    let mut ssd = Ssd::new(cfg);
    ssd.process_checked(&Request::write(1_000, 5, vec![ContentId(3)])).unwrap();
    let comp = ssd.process_status(&Request::read(100_000, 5, 1)).unwrap();
    assert_eq!(comp.status, CmdStatus::MediaReadError);
    assert!(!comp.status.is_ok() && comp.status.is_retryable());
    assert_eq!(comp.status.nvme_code(), 0x281, "NVMe 'unrecovered read error'");
    let fr = ssd.fault_report();
    assert_eq!(fr.media_read_errors, 1);
    assert_eq!(fr.ecc_decodes, 1);

    // Ordinal 3 is clean: a host-level retry of the same LPN succeeds.
    let retry = ssd.process_status(&Request::read(200_000, 5, 1)).unwrap();
    assert_eq!(retry.status, CmdStatus::Success);
    assert_eq!(ssd.stored_content(5), Some(ContentId(3)));
    ssd.audit().unwrap();
}

#[test]
fn unrecoverable_forced_program_completes_with_write_fault() {
    // Four scheduled program failures exhaust the retries; with
    // unrecoverable_prob = 1.0 the forced last resort fails for good
    // (before touching flash) and the write completes with a write-fault
    // status. The mapping must not bind — old data semantics hold.
    let cfg = schedule_config(
        Scheme::Baseline,
        FaultConfig {
            fail_program_ops: vec![0, 1, 2, 3],
            unrecoverable_prob: 1.0,
            ..FaultConfig::none()
        },
    );
    let mut ssd = Ssd::new(cfg);
    let comp = ssd.process_status(&Request::write(1_000, 0, vec![ContentId(9)])).unwrap();
    assert_eq!(comp.status, CmdStatus::WriteFault);
    assert_eq!(comp.status.nvme_code(), 0x280, "NVMe 'write fault'");
    let fr = ssd.fault_report();
    assert_eq!(fr.write_faults, 1);
    assert_eq!(fr.program_retries, 4);
    assert_eq!(fr.forced_programs, 0, "the forced attempt never ran");
    assert_eq!(ssd.stored_content(0), None, "failed write must not bind a mapping");

    // Program ordinal 4 is clean: a host-level rewrite succeeds.
    let retry = ssd.process_status(&Request::write(2_000_000, 0, vec![ContentId(9)])).unwrap();
    assert_eq!(retry.status, CmdStatus::Success);
    assert_eq!(ssd.stored_content(0), Some(ContentId(9)));
    ssd.audit().unwrap();
}

#[test]
fn health_log_tracks_degradation() {
    let mut cfg = schedule_config(
        Scheme::Baseline,
        FaultConfig { erase_fail_prob: 1.0, seed: 11, ..FaultConfig::none() },
    );
    cfg.read_only_floor_blocks = cfg.flash.geometry().total_blocks();
    let mut ssd = Ssd::new(cfg);
    let pristine = ssd.health();
    assert_eq!(pristine.retired_blocks, 0);
    assert!(!pristine.read_only);
    assert!(pristine.spare_pool_permille <= 1000);

    let mut at = 0;
    for i in 0..4_000u64 {
        at += 4_000;
        ssd.process_checked(&Request::write(at, i % 120, vec![ContentId(1 + i)])).unwrap();
        if ssd.fault_report().blocks_retired > 0 {
            break;
        }
    }
    let h = ssd.health();
    assert!(h.retired_blocks >= 1, "GC never failed an erase");
    assert!(h.read_only, "retirement past the floor must flip read-only");
    assert!(h.media_errors >= u64::from(h.retired_blocks));
    assert_eq!(h.unrecoverable_errors, 0, "no unrecoverable faults were armed");
    assert!(h.wear_p50 <= h.wear_p90 && h.wear_p90 <= h.wear_max);
    assert!(h.spare_pool_permille <= pristine.spare_pool_permille);
    assert!(!h.render().is_empty());
}

#[test]
fn fault_free_runs_stay_quiet_and_journal_free() {
    let mut ssd = Ssd::new(SsdConfig::paper(micro_flash(), Scheme::Cagc));
    let mut at = 0;
    for i in 0..600u64 {
        at += 4_000;
        ssd.process(&Request::write(at, i % 100, vec![ContentId(1 + i % 30)]));
    }
    let report = ssd.report("quiet");
    assert!(report.faults.is_quiet(), "fault-free run produced fault counters");
    assert!(report.recovery.is_none());
    assert!(!report.render().contains("faults"));
    assert!(ssd.device().journal().is_empty(), "fault-free runs must not journal");
}

/// Sweep crash points across a run whose fault-free twin provably runs GC,
/// so several of the crashes land *inside* GC rounds (mid-migration,
/// between a dedup absorb and the victim erase) — the window CAGC's
/// dedup-during-GC design is most exposed in.
#[test]
fn crash_points_inside_gc_recover_for_every_scheme() {
    for scheme in [Scheme::Baseline, Scheme::InlineDedup, Scheme::Cagc] {
        // Fault-free twin: measure the durable-op span and confirm GC ran.
        // Contents are mostly unique so even Inline-Dedupe programs enough
        // pages to fill the device, with a small duplicated tail so CAGC's
        // dedup-during-GC path engages too.
        let mut twin = Ssd::new(SsdConfig::paper(micro_flash(), scheme));
        let mut rng = SimRng::for_stream(0xC4A5, "gc-crash-sweep");
        let mut at = 0;
        let mut reqs = Vec::new();
        for i in 0..500u64 {
            at += 4_000;
            let lpn = rng.gen_range_u64(0..HOT_LPNS);
            let req = match rng.gen_range_u64(0..100) {
                0..=74 => Request::write(at, lpn, vec![ContentId(1_000 + i)]),
                75..=89 => {
                    Request::write(at, lpn, vec![ContentId(1 + rng.gen_range_u64(0..8))])
                }
                90..=94 => Request::trim(at, lpn, 1),
                _ => Request::read(at, lpn, 1),
            };
            reqs.push(req);
        }
        for r in &reqs {
            twin.process(r);
        }
        assert!(twin.gc_stats().blocks_erased > 0, "{scheme:?}: twin never ran GC");
        let span = twin.device().durable_ops();
        assert!(span > 100);

        // Crash the same workload at eight points across the span.
        for k in 1..=8u64 {
            let crash_op = span * k / 9;
            let mut cfg = SsdConfig::paper(micro_flash(), scheme);
            cfg.faults =
                FaultConfig { crash_at_op: Some(crash_op), ..FaultConfig::none() };
            let mut ssd = Ssd::new(cfg);
            let mut oracle = Oracle::new(ssd.logical_pages());
            let mut crashed = false;
            for req in &reqs {
                let cand: Vec<(u64, Option<ContentId>)> = match req.kind {
                    cagc_workloads::OpKind::Write => req
                        .lpns()
                        .enumerate()
                        .map(|(i, l)| (l, Some(req.contents[i])))
                        .collect(),
                    cagc_workloads::OpKind::Trim => req.lpns().map(|l| (l, None)).collect(),
                    cagc_workloads::OpKind::Read => Vec::new(),
                };
                match ssd.process_checked(req) {
                    Ok(_) => {
                        for (lpn, v) in cand {
                            oracle.acked[lpn as usize] = v;
                        }
                    }
                    Err(FlashError::PowerLoss) => {
                        for (lpn, v) in cand {
                            oracle.pending[lpn as usize].push(v);
                        }
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("{scheme:?} crash_op {crash_op}: {e}"),
                }
            }
            assert!(crashed, "{scheme:?}: crash point {crash_op} inside span {span} never fired");
            let rep = ssd.recover().unwrap_or_else(|e| {
                panic!("{scheme:?} crash_op {crash_op}: recovery failed: {e}")
            });
            assert!(rep.pages_scanned > 0);
            oracle
                .check(&ssd, &format!("{scheme:?} crash_op {crash_op}"))
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(ssd.ref_histogram(), recount_histogram(&ssd));
            ssd.audit().unwrap();
        }
    }
}
