//! End-to-end tracing properties on a full simulated SSD.
//!
//! These are the acceptance checks of the observability layer: a traced
//! CAGC replay carries spans for every GC phase (victim selection,
//! migrate-read, fingerprint, migrate-write, erase, dedup-drop); a
//! faulted run carries retry and recovery events; identical seeds yield
//! byte-identical trace artifacts; and the whole layer is pay-as-you-go —
//! an untraced run's report renders byte-identical to one from a build
//! that never enabled tracing.

use cagc_core::{Scheme, Ssd, SsdConfig, TraceConfig};
use cagc_flash::FaultConfig;
use cagc_harness::{Json, ToJson};
use cagc_trace::{EventKind, Track};
use cagc_workloads::{FiuWorkload, Trace};

/// Mail-like dedup-heavy workload, aged enough to force GC on the tiny
/// device (same shape the determinism suite replays).
fn gc_heavy_trace(seed: u64) -> Trace {
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    FiuWorkload::Mail
        .synth_config((flash.logical_pages() as f64 * 0.9) as u64, 6_000, seed)
        .generate()
}

fn traced_ssd(cfg: SsdConfig, trace_cfg: TraceConfig) -> Ssd {
    let mut ssd = Ssd::new(cfg);
    ssd.enable_tracing(trace_cfg);
    ssd
}

fn names_of(ssd: &Ssd) -> Vec<&'static str> {
    ssd.tracer().events().iter().map(|e| e.name).collect()
}

#[test]
fn traced_cagc_run_covers_every_gc_phase() {
    let trace = gc_heavy_trace(9);
    let mut ssd = traced_ssd(SsdConfig::tiny(Scheme::Cagc), TraceConfig::default());
    let report = ssd.replay(&trace);

    let names = names_of(&ssd);
    for phase in [
        "gc_round",
        "victim_select",
        "migrate_read",
        "fingerprint",
        "migrate_write",
        "erase",
        "dedup_drop",
        "read",
        "write",
    ] {
        assert!(names.contains(&phase), "expected at least one {phase:?} event");
    }
    // Spans are well-formed intervals on the tracks the taxonomy assigns.
    for e in ssd.tracer().events() {
        if let EventKind::Span { start_ns, end_ns } = e.kind {
            assert!(start_ns <= end_ns, "span {} runs backwards", e.name);
        }
        match e.name {
            "migrate_read" | "migrate_write" | "erase" | "program" => {
                assert!(matches!(e.track, Track::Die { .. }), "{} off the die track", e.name);
            }
            // "read" names both the host-level span and the die-level
            // flash read it triggers — two tracks, same operation.
            "read" => assert!(matches!(e.track, Track::Die { .. } | Track::Host)),
            "write" | "trim" => assert_eq!(e.track, Track::Host, "{} off the host track", e.name),
            "gc_round" | "victim_select" | "dedup_drop" => {
                assert_eq!(e.track, Track::Gc, "{} off the gc track", e.name);
            }
            "fingerprint" | "hash" => assert_eq!(e.track, Track::Hash),
            _ => {}
        }
    }
    // The gauge registry sampled the headline counters.
    let gauges: Vec<&str> =
        ssd.tracer().registry().snapshot().iter().map(|(n, _)| *n).collect();
    for g in ["free_pages", "waf_milli", "stranded_pages", "retired_blocks"] {
        assert!(gauges.contains(&g), "expected gauge {g:?}");
    }
    // ...and the run report carries the telemetry section.
    let t = report.telemetry.as_ref().expect("traced run must report telemetry");
    assert_eq!(t.events_recorded, ssd.tracer().events().len() as u64);
    assert!(report.to_json().render().contains("\"telemetry\""));
}

#[test]
fn chrome_trace_round_trips_and_is_seed_deterministic() {
    let run = || {
        let trace = gc_heavy_trace(9);
        let mut ssd = traced_ssd(SsdConfig::tiny(Scheme::Cagc), TraceConfig::default());
        ssd.replay(&trace);
        (ssd.chrome_trace().render(), ssd.trace_jsonl())
    };
    let (chrome_a, jsonl_a) = run();
    let (chrome_b, jsonl_b) = run();
    assert_eq!(chrome_a, chrome_b, "same seed must give byte-identical Chrome traces");
    assert_eq!(jsonl_a, jsonl_b, "same seed must give byte-identical JSONL logs");

    // The Chrome document round-trips through the harness parser.
    let parsed = Json::parse(&chrome_a).expect("chrome trace must be valid JSON");
    assert_eq!(parsed.render(), chrome_a);
    // Every JSONL line is itself a parseable document.
    for line in jsonl_a.lines() {
        Json::parse(line).expect("JSONL line must parse");
    }
    assert!(chrome_a.contains(r#""name":"dedup_drop""#));
}

#[test]
fn disabled_tracing_is_byte_identical_to_untraced() {
    let trace = gc_heavy_trace(9);
    let mut plain = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
    let plain_json = plain.replay(&trace).to_json().render();

    // "Disabled" is the default — this run simply never calls
    // enable_tracing, and a traced run of the same seed must not perturb
    // a subsequent untraced one (no global state).
    let mut traced = traced_ssd(SsdConfig::tiny(Scheme::Cagc), TraceConfig::default());
    let traced_json = traced.replay(&trace).to_json().render();

    let mut plain2 = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
    let plain2_json = plain2.replay(&trace).to_json().render();

    assert_eq!(plain_json, plain2_json);
    assert!(!plain_json.contains("telemetry"));
    // Tracing must not change a single simulated outcome: the traced
    // report minus its telemetry section is the untraced report.
    let stripped = match Json::parse(&traced_json).unwrap() {
        Json::Obj(pairs) => {
            Json::Obj(pairs.into_iter().filter(|(k, _)| k != "telemetry").collect())
        }
        other => other,
    };
    assert_eq!(stripped.render(), plain_json);
}

#[test]
fn host_sampling_thins_host_spans_but_never_gc() {
    let trace = gc_heavy_trace(9);
    let mut full = traced_ssd(SsdConfig::tiny(Scheme::Cagc), TraceConfig::default());
    full.replay(&trace);
    let mut thinned = traced_ssd(
        SsdConfig::tiny(Scheme::Cagc),
        TraceConfig { sample: 16, ..TraceConfig::default() },
    );
    thinned.replay(&trace);

    let count = |ssd: &Ssd, name: &str| {
        ssd.tracer().events().iter().filter(|e| e.name == name).count()
    };
    assert!(
        count(&thinned, "write") * 8 < count(&full, "write"),
        "1/16 sampling should cut host write spans by far more than 8x"
    );
    assert_eq!(
        count(&thinned, "gc_round"),
        count(&full, "gc_round"),
        "GC rounds are never sampled away"
    );
}

#[test]
fn event_cap_reports_drops_through_run_report() {
    let trace = gc_heavy_trace(9);
    let mut ssd = traced_ssd(
        SsdConfig::tiny(Scheme::Cagc),
        TraceConfig { max_events: 100, ..TraceConfig::default() },
    );
    let report = ssd.replay(&trace);
    assert_eq!(ssd.tracer().events().len(), 100);
    assert!(ssd.tracer().dropped_events() > 0);
    let t = report.telemetry.clone().expect("telemetry present");
    assert_eq!(t.events_recorded, 100);
    assert_eq!(t.dropped_events, ssd.tracer().dropped_events());
    assert!(report.to_json().render().contains("\"dropped_events\":"));
}

#[test]
fn faulted_run_traces_retries_and_recovery() {
    let trace = gc_heavy_trace(11);
    let mut cfg = SsdConfig::tiny(Scheme::Cagc);
    cfg.faults = FaultConfig {
        program_fail_prob: 0.02,
        read_ecc_prob: 0.02,
        seed: 5,
        crash_at_op: Some(2_000),
        ..FaultConfig::none()
    };
    let mut ssd = traced_ssd(cfg, TraceConfig::default());
    for req in &trace.requests {
        if ssd.process_checked(req).is_err() {
            break;
        }
    }
    ssd.recover().expect("recovery succeeds");

    let names = names_of(&ssd);
    assert!(
        names.contains(&"program_retry") || names.contains(&"read_ecc_retry"),
        "faulted run should trace at least one retry"
    );
    assert!(names.contains(&"power_loss"));
    assert!(names.contains(&"recover"), "recovery must leave a fault-track span");
    let recover = ssd
        .tracer()
        .events()
        .iter()
        .find(|e| e.name == "recover")
        .expect("recover span recorded");
    assert_eq!(recover.track, Track::Fault);
    assert!(matches!(recover.kind, EventKind::Span { .. }));
}
