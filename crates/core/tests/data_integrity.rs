//! Data integrity: the simulator's whole point is to move pages around
//! aggressively (overwrites, dedup absorption, GC migration, hot/cold
//! promotion) — after all of it, every logical page must still read back
//! the content most recently written to it, under every scheme.

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_dedup::ContentId;
use cagc_workloads::{OpKind, SynthConfig, Trace};
use cagc_harness::prop::*;
use std::collections::HashMap;

/// Replay `trace` and verify the logical view against a model store.
fn check_integrity(scheme: Scheme, trace: &Trace) -> Result<(), TestCaseError> {
    let mut ssd = Ssd::new(SsdConfig::tiny(scheme));
    let mut model: HashMap<u64, ContentId> = HashMap::new();
    for req in &trace.requests {
        ssd.process(req);
        match req.kind {
            OpKind::Write => {
                for (i, lpn) in req.lpns().enumerate() {
                    model.insert(lpn, req.contents[i]);
                }
            }
            OpKind::Trim => {
                for lpn in req.lpns() {
                    model.remove(&lpn);
                }
            }
            OpKind::Read => {}
        }
    }
    ssd.audit().map_err(TestCaseError::fail)?;
    // Every model entry must read back exactly; every absent entry must be
    // unmapped.
    for lpn in 0..trace.logical_pages {
        let expect = model.get(&lpn).copied();
        let got = ssd.stored_content(lpn);
        prop_assert_eq!(
            got,
            expect,
            "{}: lpn {} diverged from the model",
            scheme.name(),
            lpn
        );
    }
    Ok(())
}

harness_proptest! {
    #![config(cases = 10)]

    /// GC-heavy, dedup-heavy traffic never corrupts the logical view.
    #[test]
    fn logical_view_survives_gc_and_dedup(
        seed in 0u64..10_000,
        dedup in 0.0f64..0.95,
        trim in 0.0f64..0.15,
    ) {
        let flash = cagc_flash::UllConfig::tiny_for_tests();
        let trace = SynthConfig {
            name: "integrity".into(),
            requests: 4_000,
            logical_pages: (flash.logical_pages() as f64 * 0.9) as u64,
            write_ratio: 0.85,
            dedup_ratio: dedup,
            trim_ratio: trim,
            mean_req_pages: 2.5,
            max_req_pages: 8,
            mean_interarrival_ns: 300_000,
            seed,
            ..Default::default()
        }
        .generate();
        for scheme in Scheme::EXTENDED {
            check_integrity(scheme, &trace)?;
        }
    }
}

#[test]
fn integrity_through_forced_gc_storm() {
    // Drive an SSD to heavy fragmentation, then force dozens of extra GC
    // cycles and re-verify every logical page.
    let flash = cagc_flash::UllConfig::tiny_for_tests();
    let trace = SynthConfig {
        name: "storm".into(),
        requests: 10_000,
        logical_pages: (flash.logical_pages() as f64 * 0.9) as u64,
        write_ratio: 0.9,
        dedup_ratio: 0.7,
        mean_interarrival_ns: 400_000,
        seed: 77,
        ..Default::default()
    }
    .generate();

    for scheme in Scheme::EXTENDED {
        let mut ssd = Ssd::new(SsdConfig::tiny(scheme));
        let mut model: HashMap<u64, ContentId> = HashMap::new();
        for req in &trace.requests {
            ssd.process(req);
            match req.kind {
                cagc_workloads::OpKind::Write => {
                    for (i, lpn) in req.lpns().enumerate() {
                        model.insert(lpn, req.contents[i]);
                    }
                }
                cagc_workloads::OpKind::Trim => {
                    for lpn in req.lpns() {
                        model.remove(&lpn);
                    }
                }
                _ => {}
            }
        }
        // Force-collect far beyond the watermark's appetite.
        let mut t = 1u64 << 42;
        for _ in 0..50 {
            t = ssd.force_gc(t) + 1_000_000;
        }
        ssd.audit().unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        for (&lpn, &content) in &model {
            assert_eq!(
                ssd.stored_content(lpn),
                Some(content),
                "{}: lpn {lpn} corrupted by GC storm",
                scheme.name()
            );
        }
    }
}

#[test]
fn cagc_promotion_preserves_shared_content() {
    // Build a page shared by many LPNs, force promotion to the cold
    // region, then verify all sharers still read the same content.
    let mut ssd = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
    let mut t = 0u64;
    let tick = |t: &mut u64| {
        *t += 1_000_000;
        *t
    };
    // Ten LPNs share content 7 (written as separate physical copies, since
    // CAGC does not dedup inline).
    for lpn in 0..10 {
        ssd.process(&cagc_workloads::Request::write(
            tick(&mut t),
            lpn,
            vec![ContentId(7)],
        ));
    }
    // Fill the rest of the open block with junk and invalidate it so GC
    // picks the block up.
    for i in 0..22 {
        ssd.process(&cagc_workloads::Request::write(
            tick(&mut t),
            100 + i,
            vec![ContentId(1_000 + i)],
        ));
    }
    for i in 0..22 {
        ssd.process(&cagc_workloads::Request::write(
            tick(&mut t),
            100 + i,
            vec![ContentId(2_000 + i)],
        ));
    }
    let after = ssd.force_gc(tick(&mut t));
    ssd.force_gc(after + 1_000_000); // collect follow-up blocks too
    ssd.audit().unwrap();
    for lpn in 0..10 {
        assert_eq!(ssd.stored_content(lpn), Some(ContentId(7)), "sharer {lpn} lost content");
    }
    let r = ssd.report("promo");
    assert!(r.gc.dedup_hits >= 9, "nine duplicates should have been absorbed");
}
