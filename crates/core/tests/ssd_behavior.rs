//! Behavioral tests of the three schemes on the full SSD simulator.

use cagc_core::{Scheme, Ssd, SsdConfig};
use cagc_dedup::ContentId;
use cagc_sim::time::us;
use cagc_workloads::{FileWorkloadBuilder, FiuWorkload, OpKind, Request, SynthConfig, Trace};

fn ssd(scheme: Scheme) -> Ssd {
    Ssd::new(SsdConfig::tiny(scheme))
}

// ---------------------------------------------------------------- timing

#[test]
fn baseline_write_takes_one_program() {
    let mut s = ssd(Scheme::Baseline);
    let done = s.process(&Request::write(0, 0, vec![ContentId(1)]));
    assert_eq!(done, us(16)); // Table I program latency, idle device
}

#[test]
fn baseline_read_after_write_takes_one_read() {
    let mut s = ssd(Scheme::Baseline);
    let w = s.process(&Request::write(0, 0, vec![ContentId(1)]));
    let r = s.process(&Request::read(w, 0, 1));
    assert_eq!(r - w, us(12)); // Table I read latency
}

#[test]
fn read_of_unwritten_lpn_is_a_controller_miss() {
    let mut s = ssd(Scheme::Baseline);
    let done = s.process(&Request::read(0, 42, 1));
    assert_eq!(done, us(1)); // read_miss_ns, no flash op
    assert_eq!(s.device().stats().reads, 0);
}

#[test]
fn inline_unique_write_pays_hash_on_critical_path() {
    let mut s = ssd(Scheme::InlineDedup);
    let done = s.process(&Request::write(0, 0, vec![ContentId(1)]));
    // hash 14us + lookup 1us + program 16us, fully serialized.
    assert_eq!(done, us(31));
}

#[test]
fn inline_duplicate_write_skips_the_program() {
    let mut s = ssd(Scheme::InlineDedup);
    s.process(&Request::write(0, 0, vec![ContentId(9)]));
    let t1 = us(100);
    let done = s.process(&Request::write(t1, 1, vec![ContentId(9)]));
    // hash + lookup only: metadata update, no flash write.
    assert_eq!(done - t1, us(15));
    assert_eq!(s.device().stats().programs, 1);
    s.audit().unwrap();
}

#[test]
fn cagc_foreground_write_is_as_fast_as_baseline() {
    // The headline claim: CAGC removes dedup from the critical path.
    let mut b = ssd(Scheme::Baseline);
    let mut c = ssd(Scheme::Cagc);
    let req = Request::write(0, 0, vec![ContentId(1), ContentId(2), ContentId(3)]);
    assert_eq!(b.process(&req), c.process(&req));
}

#[test]
fn inline_overwrite_with_same_content_is_metadata_only() {
    let mut s = ssd(Scheme::InlineDedup);
    s.process(&Request::write(0, 5, vec![ContentId(3)]));
    let before = s.device().stats().programs;
    s.process(&Request::write(us(50), 5, vec![ContentId(3)]));
    assert_eq!(s.device().stats().programs, before);
    s.audit().unwrap();
}

// ------------------------------------------------------- dedup semantics

#[test]
fn inline_refcounts_follow_sharers() {
    let mut s = ssd(Scheme::InlineDedup);
    // Three LPNs share one content.
    for (i, lpn) in [0u64, 1, 2].iter().enumerate() {
        s.process(&Request::write(us(i as u64 * 50), *lpn, vec![ContentId(7)]));
    }
    s.audit().unwrap();
    assert_eq!(s.device().stats().programs, 1, "one physical copy");
    // Overwrite two of them: copy survives.
    s.process(&Request::write(us(500), 0, vec![ContentId(8)]));
    s.process(&Request::write(us(550), 1, vec![ContentId(9)]));
    s.audit().unwrap();
    // Overwrite the last: the shared page finally dies.
    s.process(&Request::write(us(600), 2, vec![ContentId(10)]));
    s.audit().unwrap();
    let report = s.report("t");
    // The shared page peaked at refcount 3: Fig. 6 bucket "3".
    assert_eq!(report.invalidation_by_refcount[2], 1);
}

#[test]
fn trim_releases_references() {
    let mut s = ssd(Scheme::InlineDedup);
    s.process(&Request::write(0, 0, vec![ContentId(1)]));
    s.process(&Request::write(us(20), 1, vec![ContentId(1)]));
    s.process(&Request::trim(us(100), 0, 2));
    s.audit().unwrap();
    let r = s.report("t");
    assert_eq!(r.trims, 1);
    // Both references released: the page became invalid at peak refcount 2.
    assert_eq!(r.invalidation_by_refcount[1], 1);
    // Reading the trimmed LPNs now misses.
    let done = s.process(&Request::read(us(200), 0, 1));
    assert_eq!(done, us(201));
}

#[test]
fn trim_latency_is_an_explicit_metadata_cost() {
    // Satellite bugfix: a trim's latency used to vanish into an empty
    // match arm. It must be recorded, and equal the configured flat
    // controller charge (no die work).
    let mut s = ssd(Scheme::Baseline);
    s.process(&Request::write(0, 0, vec![ContentId(1)]));
    let t = us(100);
    let done = s.process(&Request::trim(t, 0, 1));
    assert_eq!(done - t, s.config().trim_ns);
    let r = s.report("t");
    assert_eq!(r.trim_lat.count, 1, "trim latency must land in its histogram");
    assert_eq!(r.trim_lat.max_ns, s.config().trim_ns);
    assert_eq!(r.trim_invalidated_pages, 1);
    assert!(r.honor_trim);
    // Metadata-only: the flash op counters saw nothing new.
    assert_eq!(s.device().stats().reads, 0);
    assert_eq!(s.device().stats().programs, 1);
    s.audit().unwrap();
}

#[test]
fn ignored_trims_are_charged_but_keep_data_live() {
    let mut cfg = SsdConfig::tiny(Scheme::Baseline);
    cfg.honor_trim = false;
    let mut s = Ssd::new(cfg);
    s.process(&Request::write(0, 0, vec![ContentId(5)]));
    let t = us(100);
    let done = s.process(&Request::trim(t, 0, 1));
    assert_eq!(done - t, s.config().trim_ns, "trim still pays its service cost");
    assert_eq!(s.stored_content(0), Some(ContentId(5)), "data stays live");
    let r = s.report("t");
    assert_eq!(r.trims, 1);
    assert_eq!(r.trim_invalidated_pages, 0);
    assert!(!r.honor_trim);
    s.audit().unwrap();
}

#[test]
fn trim_of_shared_page_drops_a_reference_with_attribution() {
    let mut s = ssd(Scheme::InlineDedup);
    s.process(&Request::write(0, 0, vec![ContentId(1)]));
    s.process(&Request::write(us(20), 1, vec![ContentId(1)]));
    s.process(&Request::trim(us(100), 0, 1));
    s.audit().unwrap();
    let r = s.report("t");
    assert_eq!(r.trim_ref_releases, 1);
    assert_eq!(r.trim_invalidated_pages, 0, "shared copy must stay valid");
    assert_eq!(s.stored_content(1), Some(ContentId(1)));
    // The second trim removes the last reference and kills the copy.
    s.process(&Request::trim(us(200), 1, 1));
    s.audit().unwrap();
    let r = s.report("t");
    assert_eq!(r.trim_ref_releases, 2);
    assert_eq!(r.trim_invalidated_pages, 1);
}

#[test]
fn fig8_scenario_cagc_stores_7_unique_pages_after_gc() {
    // Fig. 8: four files (12 chunk writes, 7 unique contents), delete
    // files 2 and 4. Under CAGC the GC pass dedups the migrated pages.
    let trace = FileWorkloadBuilder::fig8_scenario(64);
    let mut s = ssd(Scheme::Cagc);
    for r in &trace.requests {
        s.process(r);
    }
    s.audit().unwrap();
    // Before any GC, CAGC wrote all 12 pages (no inline dedup).
    assert_eq!(s.device().stats().programs, 12);
}

// ------------------------------------------------------------ GC behavior

/// A write-heavy, duplicate-heavy workload against the tiny device,
/// dimensioned so GC runs many times.
fn churn_trace(dedup_ratio: f64, requests: usize, seed: u64) -> Trace {
    let cfg = SsdConfig::tiny(Scheme::Baseline);
    let footprint = (cfg.flash.logical_pages() as f64 * 0.55) as u64;
    SynthConfig {
        name: format!("churn{dedup_ratio}"),
        requests,
        logical_pages: footprint,
        write_ratio: 0.8,
        dedup_ratio,
        mean_req_pages: 3.0,
        max_req_pages: 16,
        lpn_theta: 0.9,
        content_theta: 0.85,
        trim_ratio: 0.02,
        mean_interarrival_ns: 400_000,
        burst_mean: 4.0,
        burst_gap_ns: 10_000,
        prefill_gap_ns_per_page: 35_000,
        prefill_fraction: 0.95,
        seed,
    }
    .generate()
}

#[test]
fn gc_triggers_and_reclaims_space_for_every_scheme() {
    for scheme in Scheme::ALL {
        let trace = churn_trace(0.5, 12_000, 11);
        let mut s = ssd(scheme);
        let report = s.replay(&trace);
        assert!(report.gc.invocations > 0, "{}: GC never ran", report.scheme);
        assert!(report.gc.blocks_erased > 0, "{}: nothing erased", report.scheme);
        s.audit()
            .unwrap_or_else(|e| panic!("{}: audit failed: {e}", report.scheme));
    }
}

#[test]
fn cagc_finds_duplicates_during_gc() {
    let trace = churn_trace(0.7, 12_000, 3);
    let report = ssd(Scheme::Cagc).replay(&trace);
    assert!(report.gc.dedup_hits > 0, "no GC dedup hits on a 70% duplicate stream");
    assert!(report.index.inserts > 0, "index never populated");
}

#[test]
fn cagc_erases_fewer_blocks_than_baseline_on_redundant_data() {
    // The Fig. 9 shape at test scale.
    let trace = churn_trace(0.85, 12_000, 5);
    let base = ssd(Scheme::Baseline).replay(&trace);
    let cagc = ssd(Scheme::Cagc).replay(&trace);
    assert!(
        cagc.gc.blocks_erased < base.gc.blocks_erased,
        "CAGC {} erases vs baseline {}",
        cagc.gc.blocks_erased,
        base.gc.blocks_erased
    );
    assert!(
        cagc.gc.pages_migrated < base.gc.pages_migrated,
        "CAGC {} migrations vs baseline {}",
        cagc.gc.pages_migrated,
        base.gc.pages_migrated
    );
}

#[test]
fn inline_dedup_is_slower_than_baseline_on_a_fresh_device() {
    // The Fig. 2 motivation shape at test scale: on a device that never
    // triggers GC, the per-page fingerprint latency sits on the critical
    // path and inline dedup can only lose. (In a GC-heavy regime inline's
    // write-traffic reduction can compensate — that trade-off is exactly
    // what Figs. 2 vs 11 contrast.)
    let cfg = SsdConfig::tiny(Scheme::Baseline);
    let footprint = (cfg.flash.logical_pages() as f64 * 0.15) as u64;
    let trace = SynthConfig {
        name: "fig2".into(),
        requests: 800,
        logical_pages: footprint,
        write_ratio: 0.8,
        dedup_ratio: 0.3,
        mean_req_pages: 3.0,
        max_req_pages: 16,
        prefill_fraction: 0.5,
        mean_interarrival_ns: 400_000,
        seed: 7,
        ..Default::default()
    }
    .generate();
    let base = ssd(Scheme::Baseline).replay(&trace);
    let inline = ssd(Scheme::InlineDedup).replay(&trace);
    assert_eq!(base.gc.invocations, 0, "fig2 regime must be GC-free");
    assert_eq!(inline.gc.invocations, 0, "fig2 regime must be GC-free");
    assert!(
        inline.writes.mean_ns > base.writes.mean_ns * 1.1,
        "inline writes {}ns vs baseline {}ns",
        inline.writes.mean_ns,
        base.writes.mean_ns
    );
}

#[test]
fn cagc_write_amplification_below_baseline() {
    let trace = churn_trace(0.85, 12_000, 9);
    let base = ssd(Scheme::Baseline).replay(&trace);
    let cagc = ssd(Scheme::Cagc).replay(&trace);
    assert!(cagc.waf() < base.waf(), "CAGC WAF {} vs baseline {}", cagc.waf(), base.waf());
}

#[test]
fn most_invalidations_come_from_refcount_1_pages() {
    // The Fig. 6 claim, measured on a Mail-like stream.
    let cfg = SsdConfig::tiny(Scheme::Cagc);
    let footprint = (cfg.flash.logical_pages() as f64 * 0.55) as u64;
    let trace = FiuWorkload::Mail.synth_config(footprint, 12_000, 13).generate();
    let report = ssd(Scheme::Cagc).replay(&trace);
    let b = report.invalidation_by_refcount;
    let total: u64 = b.iter().sum();
    assert!(total > 0);
    let ref1 = b[0] as f64 / total as f64;
    assert!(ref1 > 0.6, "only {:.0}% of invalidations from refcount-1 pages", ref1 * 100.0);
}

#[test]
fn cagc_populates_cold_region_with_shared_pages() {
    let trace = churn_trace(0.85, 12_000, 21);
    let mut s = ssd(Scheme::Cagc);
    let report = s.replay(&trace);
    assert!(report.gc.promotions > 0, "no pages were ever promoted to the cold region");
}

#[test]
fn replay_rejects_oversized_traces() {
    let trace = Trace::new("big", 1 << 40, vec![]);
    let result = std::panic::catch_unwind(move || ssd(Scheme::Baseline).replay(&trace));
    assert!(result.is_err());
}

#[test]
fn reports_are_internally_consistent() {
    let trace = churn_trace(0.5, 8_000, 17);
    for scheme in Scheme::ALL {
        let report = ssd(scheme).replay(&trace);
        let req_count = trace
            .requests
            .iter()
            .filter(|r| r.kind != OpKind::Trim)
            .count() as u64;
        assert_eq!(report.all.count, trace.len() as u64);
        assert_eq!(report.reads.count + report.writes.count, req_count);
        assert_eq!(report.total_erases, report.gc.blocks_erased);
        assert!(report.total_programs >= report.user_programs);
        assert_eq!(
            report.total_programs - report.user_programs,
            report.gc.pages_migrated,
            "{}: all non-user programs must be migrations",
            report.scheme
        );
        assert!(report.end_ns > 0);
    }
}

// --------------------------------------------- Inline-Sampled (CAFTL-like)

#[test]
fn sampled_first_sighting_skips_the_full_hash() {
    let mut s = ssd(Scheme::InlineSampled);
    let done = s.process(&Request::write(0, 0, vec![ContentId(1)]));
    // prehash 2us + program 16us: no 14us fingerprint on first sighting.
    assert_eq!(done, us(18));
    s.audit().unwrap();
}

#[test]
fn sampled_second_copy_pays_the_full_hash_but_third_dedups() {
    let mut s = ssd(Scheme::InlineSampled);
    // First copy: stored unfingerprinted.
    s.process(&Request::write(0, 0, vec![ContentId(7)]));
    // Second copy: prehash hit -> full hash -> index miss -> stored AND
    // fingerprinted (CAFTL's deferred-fingerprint behaviour).
    let t1 = us(1_000);
    let d2 = s.process(&Request::write(t1, 1, vec![ContentId(7)]));
    assert_eq!(d2 - t1, us(2 + 14 + 1 + 16)); // prehash+hash+lookup+program
    assert_eq!(s.device().stats().programs, 2, "second copy still programs");
    // Third copy: prehash hit -> full hash -> index HIT -> metadata only.
    let t2 = us(2_000);
    let d3 = s.process(&Request::write(t2, 2, vec![ContentId(7)]));
    assert_eq!(d3 - t2, us(2 + 14 + 1));
    assert_eq!(s.device().stats().programs, 2, "third copy deduplicates");
    s.audit().unwrap();
}

#[test]
fn sampled_is_faster_than_inline_on_unique_data() {
    // A mostly-unique stream: sampled skips nearly all fingerprints.
    let cfg = SsdConfig::tiny(Scheme::Baseline);
    let footprint = (cfg.flash.logical_pages() as f64 * 0.15) as u64;
    let trace = SynthConfig {
        name: "unique".into(),
        requests: 800,
        logical_pages: footprint,
        write_ratio: 0.9,
        dedup_ratio: 0.1,
        mean_req_pages: 3.0,
        prefill_fraction: 0.3,
        mean_interarrival_ns: 400_000,
        seed: 3,
        ..Default::default()
    }
    .generate();
    let inline = ssd(Scheme::InlineDedup).replay(&trace);
    let sampled = ssd(Scheme::InlineSampled).replay(&trace);
    assert!(
        sampled.writes.mean_ns < inline.writes.mean_ns,
        "sampled {:.0}ns vs inline {:.0}ns",
        sampled.writes.mean_ns,
        inline.writes.mean_ns
    );
}

#[test]
fn sampled_trades_some_dedup_coverage_for_latency() {
    let trace = churn_trace(0.8, 10_000, 41);
    let inline = ssd(Scheme::InlineDedup).replay(&trace);
    let sampled = ssd(Scheme::InlineSampled).replay(&trace);
    // Sampled still deduplicates (3rd+ copies)...
    assert!(sampled.index.hits > 0, "sampled found no duplicates at all");
    // ...but writes at least as many unique pages as full inline dedup
    // (it stores first copies of duplicated content twice).
    assert!(
        sampled.user_programs >= inline.user_programs,
        "sampled programs {} < inline {}",
        sampled.user_programs,
        inline.user_programs
    );
    s_audit(trace);
}

fn s_audit(trace: Trace) {
    let mut s = ssd(Scheme::InlineSampled);
    s.replay(&trace);
    s.audit().unwrap();
}
