//! Power-loss recovery: rebuild the volatile FTL from durable facts.
//!
//! A crash ([`cagc_flash::FaultConfig::crash_at_op`]) can land anywhere —
//! including inside a GC round, between CAGC's dedup metadata update and
//! the victim erase (the scheme's most delicate window). Everything the
//! FTL keeps in RAM is then stale: the LPN→PPN mapping, the reverse map,
//! the fingerprint index, the allocator's frontiers. What survives is
//! exactly what a real controller would find on the NAND:
//!
//! * **cell contents** of every programmed page;
//! * **per-page OOB metadata** ([`cagc_flash::PageOob`]): the logical page
//!   a host program bound, an optional fingerprint stamp, and a sequence
//!   number from the device-wide durable-operation counter;
//! * the **mapping-delta journal** ([`cagc_flash::JournalOp`]): remaps
//!   recorded by inline dedup hits and GC migrations, and unmaps recorded
//!   by trims — all stamped from the *same* sequence counter;
//! * the **bad-block table**.
//!
//! [`Ssd::recover`] folds those records in sequence order, latest-wins per
//! logical page; merges duplicate stored copies left by a crash
//! mid-relocation (the newest stamped copy wins and absorbs the losers'
//! sharers — recovery re-deduplicates, exactly as the live FTL would
//! have); rewrites per-page validity; restores the fingerprint index from
//! stamped pages; and rebuilds the allocator with every frontier closed.
//! The pass ends with the full cross-structure [`Ssd::audit`], so a
//! recovery that *would* have lost or duplicated a reference fails loudly
//! instead of limping on.

use std::collections::HashSet;

use cagc_dedup::{ContentId, FingerprintIndex};
use cagc_flash::{JournalOp, PageState, Ppn};
use cagc_ftl::{Allocator, GcTrigger, MappingTable, ReverseMap};
use cagc_harness::{Json, ToJson};
use cagc_sim::time::Nanos;

use cagc_trace::Track;

use crate::config::Scheme;
use crate::ssd::{fp_stamp, Ssd, TraceCtx, NO_CONTENT};

/// What one [`Ssd::recover`] pass scanned and rebuilt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Programmed pages whose OOB metadata was scanned.
    pub pages_scanned: u64,
    /// Journal entries replayed.
    pub journal_entries: u64,
    /// Logical pages whose mapping was recovered.
    pub mappings_recovered: u64,
    /// Fingerprint-index entries restored from stamped pages.
    pub fingerprints_rebuilt: u64,
    /// Stale duplicate stored copies merged away (crash mid-relocation).
    pub duplicate_copies_merged: u64,
    /// Blocks in the bad-block table at recovery time.
    pub blocks_retired: u64,
    /// Simulated cost of the pass: one page read per OOB scanned plus one
    /// hash per fingerprint restored.
    pub recovery_ns: Nanos,
}

impl ToJson for RecoveryReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("pages_scanned", Json::U64(self.pages_scanned)),
            ("journal_entries", Json::U64(self.journal_entries)),
            ("mappings_recovered", Json::U64(self.mappings_recovered)),
            ("fingerprints_rebuilt", Json::U64(self.fingerprints_rebuilt)),
            ("duplicate_copies_merged", Json::U64(self.duplicate_copies_merged)),
            ("blocks_retired", Json::U64(self.blocks_retired)),
            ("recovery_ns", Json::U64(self.recovery_ns)),
        ])
    }
}

/// One durable fact about a logical page, ordered by sequence number.
enum Rec {
    /// A host program bound the LPN to this page (from OOB).
    Bind(Ppn),
    /// A journaled remap moved the LPN here (dedup hit or GC migration).
    Remap(Ppn),
    /// A journaled trim unmapped the LPN.
    Unmap,
}

impl Ssd {
    /// Rebuild the volatile FTL state after a power loss and bring the
    /// device back online.
    ///
    /// Returns what the pass found; fails (with the device still offline
    /// for writes in any meaningful sense) if the durable records are
    /// inconsistent — every failure mode here is a simulator invariant
    /// violation, not an expected runtime condition.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency found: a record
    /// naming an out-of-range LPN, a mapping pointing at an erased page, a
    /// stamped page whose cells disagree with its stamp, or a final audit
    /// failure.
    pub fn recover(&mut self) -> Result<RecoveryReport, String> {
        let geom = *self.dev.geometry();
        let logical = self.logical_pages();
        let total_pages = geom.total_pages();
        self.dev.power_cycle();

        // --- 1. Collect durable records: OOB binds + journal deltas. ---
        // The shared sequence counter makes the union totally ordered, so
        // "latest wins" is well defined across both sources.
        let mut pages_scanned = 0u64;
        for b in 0..geom.total_blocks() {
            let blk = self.dev.block(b);
            pages_scanned += u64::from(blk.pages() - blk.free_count());
        }
        let mut records: Vec<(u64, u64, Rec)> = Vec::new();
        for ppn in 0..total_pages {
            let oob = self.dev.oob(ppn);
            if let Some(lpn) = oob.lpn {
                records.push((oob.seq, lpn, Rec::Bind(ppn)));
            }
        }
        let journal_entries = self.dev.journal().len() as u64;
        for e in self.dev.journal() {
            match e.op {
                JournalOp::Remap { lpn, ppn } => records.push((e.seq, lpn, Rec::Remap(ppn))),
                JournalOp::Unmap { lpn } => records.push((e.seq, lpn, Rec::Unmap)),
            }
        }
        records.sort_by_key(|&(seq, _, _)| seq);

        // --- 2. Latest-wins fold per logical page. ---
        let mut bound: Vec<Option<Ppn>> = vec![None; logical as usize];
        for (_, lpn, rec) in records {
            if lpn >= logical {
                return Err(format!("durable record names lpn {lpn}, device exports {logical}"));
            }
            bound[lpn as usize] = match rec {
                Rec::Bind(p) | Rec::Remap(p) => Some(p),
                Rec::Unmap => None,
            };
        }

        // --- 3. Rebuild forward/reverse maps (deterministic LPN order, so
        // downstream sharer orderings never depend on hash-map iteration). ---
        let mut map = MappingTable::new(logical);
        let mut rmap = ReverseMap::new();
        let mut mappings_recovered = 0u64;
        for lpn in 0..logical {
            if let Some(ppn) = bound[lpn as usize] {
                if self.dev.page_state(ppn) == PageState::Free {
                    return Err(format!("recovered lpn {lpn} points at erased ppn {ppn}"));
                }
                if self.content_of[ppn as usize] == NO_CONTENT {
                    return Err(format!("recovered lpn {lpn} points at contentless ppn {ppn}"));
                }
                map.set(lpn, ppn);
                rmap.add(ppn, lpn);
                mappings_recovered += 1;
            }
        }

        // --- 4. Merge duplicate stored copies. A crash between a GC
        // relocation's program and the last sharer's journaled remap can
        // leave *two* referenced, stamped copies of one content. Keep the
        // newest (highest OOB sequence) and absorb the losers' sharers —
        // journaling each merge remap so a second crash replays to the
        // same state. ---
        let mut stamped: Vec<(u64, u64, Ppn)> = Vec::new();
        for ppn in 0..total_pages {
            if rmap.count(ppn) == 0 {
                continue;
            }
            if let Some(stamp) = self.dev.oob(ppn).fp {
                stamped.push((stamp, self.content_of[ppn as usize], ppn));
            }
        }
        stamped.sort_unstable();
        let mut duplicate_copies_merged = 0u64;
        let mut i = 0;
        while i < stamped.len() {
            let mut j = i + 1;
            while j < stamped.len() && stamped[j].0 == stamped[i].0 && stamped[j].1 == stamped[i].1
            {
                j += 1;
            }
            if j - i > 1 {
                let group = &stamped[i..j];
                let winner = group
                    .iter()
                    .max_by_key(|&&(_, _, p)| self.dev.oob(p).seq)
                    .expect("non-empty group")
                    .2;
                for &(_, _, loser) in group {
                    if loser == winner {
                        continue;
                    }
                    for l in rmap.take(loser) {
                        map.set(l, winner);
                        rmap.add(winner, l);
                        self.dev
                            .journal_append(JournalOp::Remap { lpn: l, ppn: winner })
                            .map_err(|e| format!("journaling merge remap: {e}"))?;
                    }
                    duplicate_copies_merged += 1;
                }
            }
            i = j;
        }

        // --- 5. Validity is derived state: a programmed page is valid iff
        // some logical page still resolves to it. ---
        self.dev.recover_validity(|ppn| rmap.count(ppn) > 0);

        // --- 6. Restore the fingerprint index from stamped valid pages,
        // confirming each stamp against the cells it allegedly summarizes. ---
        let mut index = FingerprintIndex::new();
        let mut fingerprints_rebuilt = 0u64;
        for ppn in 0..total_pages {
            let sharers = rmap.count(ppn) as u32;
            if sharers == 0 {
                continue;
            }
            if let Some(stamp) = self.dev.oob(ppn).fp {
                let fp = self.fingerprint_of(ContentId(self.content_of[ppn as usize]));
                if fp_stamp(&fp) != stamp {
                    return Err(format!("ppn {ppn}: OOB stamp disagrees with cell content"));
                }
                index.restore(fp, ppn, sharers);
                fingerprints_rebuilt += 1;
            }
        }

        // --- 7. Scheme-specific volatile caches. The pre-hash filter is
        // conservative by design, so rebuilding it from live pages only
        // (forgetting invalidated ones) stays correct. ---
        let mut prehash_filter = HashSet::new();
        if self.cfg.scheme == Scheme::InlineSampled {
            for ppn in 0..total_pages {
                if rmap.count(ppn) > 0 {
                    prehash_filter.insert(Self::prehash(ContentId(self.content_of[ppn as usize])));
                }
            }
        }

        // --- 8. Allocator: the free pool is every erased, unretired block;
        // all write frontiers start closed (partially written blocks simply
        // wait for GC). ---
        let retired = self.dev.retired_blocks();
        let free_order: Vec<_> =
            Allocator::die_interleaved_order(geom.total_blocks(), geom.blocks_per_die())
                .into_iter()
                .filter(|&b| !self.dev.is_retired(b) && self.dev.block(b).is_free())
                .collect();
        let alloc = Allocator::recovered(
            geom.total_blocks(),
            geom.pages_per_block,
            self.cfg.gc_reserve_blocks,
            free_order,
            &retired,
        );

        // --- 9. Install, charge the simulated cost, and prove consistency
        // against an independent reference: the full cross-structure audit
        // re-derives every reference count from the rebuilt forward map. ---
        self.map = map;
        self.rmap = rmap;
        self.index = index;
        self.alloc = alloc;
        self.prehash_filter = prehash_filter;
        self.trigger = GcTrigger::new(self.cfg.gc_low, self.cfg.gc_high);
        // A preemptible GC job suspended across the crash referenced
        // pre-crash physical state; the rebuilt maps supersede it and the
        // victim re-enters the candidate pool untouched.
        self.gc_job = None;
        self.audit().map_err(|e| format!("post-recovery audit failed: {e}"))?;

        let recovery_ns = pages_scanned * self.cfg.flash.timing().read_service()
            + fingerprints_rebuilt * self.cfg.flash.hash_ns;
        self.fh.recoveries += 1;
        // The crash may have torn a traced request mid-flight; drop the
        // stale context and record the rebuild as one fault-track span
        // anchored at the last acknowledged completion.
        self.tctx = TraceCtx::Off;
        self.tracer.instant(
            Track::Fault,
            "power_loss",
            self.last_completion(),
            &[("journal_entries", journal_entries)],
        );
        self.tracer.span(
            Track::Fault,
            "recover",
            self.last_completion(),
            self.last_completion() + recovery_ns,
            &[
                ("pages_scanned", pages_scanned),
                ("mappings_recovered", mappings_recovered),
                ("fingerprints_rebuilt", fingerprints_rebuilt),
                ("duplicate_copies_merged", duplicate_copies_merged),
            ],
        );
        let report = RecoveryReport {
            pages_scanned,
            journal_entries,
            mappings_recovered,
            fingerprints_rebuilt,
            duplicate_copies_merged,
            blocks_retired: retired.len() as u64,
            recovery_ns,
        };
        self.last_recovery = Some(report.clone());
        Ok(report)
    }
}
