//! Per-run result report: everything the paper's figures are built from.

use cagc_dedup::IndexStats;
use cagc_ftl::GcStats;
use cagc_harness::{Json, ToJson};
use cagc_metrics::{Cdf, Histogram};
use cagc_sim::time::{fmt_duration, Nanos};
use cagc_trace::TelemetryReport;

use crate::recovery::RecoveryReport;

/// Fault-injection and fault-handling counters for one run.
///
/// All-false/all-zero on fault-free runs — [`FaultReport::is_quiet`] —
/// in which case [`RunReport`] omits it from both the JSON and the human
/// rendering, keeping fault-free output byte-identical to output from
/// before the fault subsystem existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Whether a fault plan was configured (even if nothing fired).
    pub active: bool,
    /// Whether the device is down at a power-loss point right now.
    pub crashed: bool,
    /// Whether bad-block retirement degraded the device to read-only.
    pub read_only: bool,
    /// Injected program failures (device count).
    pub program_failures: u64,
    /// Injected erase failures (device count; each retires a block).
    pub erase_failures: u64,
    /// Injected read ECC errors (device count, per attempt).
    pub read_ecc_errors: u64,
    /// Blocks moved to the bad-block table.
    pub blocks_retired: u64,
    /// Mapping-delta journal records appended.
    pub journal_appends: u64,
    /// Program retries the FTL issued on fresh blocks.
    pub program_retries: u64,
    /// Last-resort forced programs after the retry budget ran out.
    pub forced_programs: u64,
    /// Re-reads the FTL issued after ECC errors.
    pub read_retries: u64,
    /// Heroic soft-decodes after the re-read budget ran out (the data is
    /// recovered unless the decode itself fails — see `media_read_errors`).
    pub ecc_decodes: u64,
    /// Host reads that failed unrecoverably (heroic decode failed too);
    /// the host saw a media-read-error completion.
    pub media_read_errors: u64,
    /// Host writes that failed unrecoverably (forced program failed too);
    /// the host saw a write-fault completion.
    pub write_faults: u64,
    /// Writes refused in read-only degradation.
    pub writes_rejected: u64,
    /// Trims refused in read-only degradation.
    pub trims_rejected: u64,
    /// Completed power-loss recovery passes.
    pub recoveries: u64,
}

impl FaultReport {
    /// True when nothing fault-related was configured or happened.
    pub fn is_quiet(&self) -> bool {
        *self == FaultReport::default()
    }
}

impl ToJson for FaultReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("active", Json::Bool(self.active)),
            ("crashed", Json::Bool(self.crashed)),
            ("read_only", Json::Bool(self.read_only)),
            ("program_failures", Json::U64(self.program_failures)),
            ("erase_failures", Json::U64(self.erase_failures)),
            ("read_ecc_errors", Json::U64(self.read_ecc_errors)),
            ("blocks_retired", Json::U64(self.blocks_retired)),
            ("journal_appends", Json::U64(self.journal_appends)),
            ("program_retries", Json::U64(self.program_retries)),
            ("forced_programs", Json::U64(self.forced_programs)),
            ("read_retries", Json::U64(self.read_retries)),
            ("ecc_decodes", Json::U64(self.ecc_decodes)),
            ("media_read_errors", Json::U64(self.media_read_errors)),
            ("write_faults", Json::U64(self.write_faults)),
            ("writes_rejected", Json::U64(self.writes_rejected)),
            ("trims_rejected", Json::U64(self.trims_rejected)),
            ("recoveries", Json::U64(self.recoveries)),
        ])
    }
}

/// SMART-style device health snapshot ([`crate::Ssd::health`]): the
/// rollup a monitoring plane would poll. Cheap enough to sample into the
/// gauge registry on fault-armed traced runs (it sorts per-block erase
/// counts for the wear percentiles, O(blocks log blocks)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthLog {
    /// Injected media errors the device reported (program + erase + read
    /// ECC failures, per attempt).
    pub media_errors: u64,
    /// Host-visible unrecoverable errors (media-read-error + write-fault
    /// completions).
    pub unrecoverable_errors: u64,
    /// Blocks retired to the bad-block table.
    pub retired_blocks: u32,
    /// Remaining spare pool, per-mille: usable blocks above the
    /// (GC reserve + read-only floor) relative to the device's initial
    /// headroom. 1000 = pristine, 0 = at the read-only threshold.
    pub spare_pool_permille: u64,
    /// Median per-block erase count.
    pub wear_p50: u32,
    /// 90th-percentile per-block erase count.
    pub wear_p90: u32,
    /// Worst per-block erase count.
    pub wear_max: u32,
    /// Whether the device has degraded to read-only.
    pub read_only: bool,
}

impl HealthLog {
    /// One-line human rendering ("SMART" row).
    pub fn render(&self) -> String {
        format!(
            "media_errors={} unrecoverable={} retired={} spare={:.1}% wear p50/p90/max={}/{}/{} read_only={}",
            self.media_errors,
            self.unrecoverable_errors,
            self.retired_blocks,
            self.spare_pool_permille as f64 / 10.0,
            self.wear_p50,
            self.wear_p90,
            self.wear_max,
            self.read_only,
        )
    }
}

impl ToJson for HealthLog {
    fn to_json(&self) -> Json {
        Json::obj([
            ("media_errors", Json::U64(self.media_errors)),
            ("unrecoverable_errors", Json::U64(self.unrecoverable_errors)),
            ("retired_blocks", Json::U64(u64::from(self.retired_blocks))),
            ("spare_pool_permille", Json::U64(self.spare_pool_permille)),
            ("wear_p50", Json::U64(u64::from(self.wear_p50))),
            ("wear_p90", Json::U64(u64::from(self.wear_p90))),
            ("wear_max", Json::U64(u64::from(self.wear_max))),
            ("read_only", Json::Bool(self.read_only)),
        ])
    }
}

/// Latency distribution summary for one request class.
#[derive(Debug, Clone)]
pub struct LatencySummary {
    /// Number of requests.
    pub count: u64,
    /// Mean response time.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile (tail, Fig. 12's regime; exact — order statistic
    /// from the histogram's retained tail, not a bucket approximation).
    pub p999_ns: u64,
    /// Worst case.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarize a histogram.
    pub fn of(h: &Histogram) -> Self {
        let [p50, p90, p95, p99, p999] = h.quantiles([0.50, 0.90, 0.95, 0.99, 0.999]);
        Self {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: p50,
            p90_ns: p90,
            p95_ns: p95,
            p99_ns: p99,
            p999_ns: p999,
            max_ns: h.max(),
        }
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "n={} mean={} p50={} p90={} p95={} p99={} p99.9={} max={}",
            self.count,
            fmt_duration(self.mean_ns as u64),
            fmt_duration(self.p50_ns),
            fmt_duration(self.p90_ns),
            fmt_duration(self.p95_ns),
            fmt_duration(self.p99_ns),
            fmt_duration(self.p999_ns),
            fmt_duration(self.max_ns),
        )
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::U64(self.count)),
            ("mean_ns", Json::F64(self.mean_ns)),
            ("p50_ns", Json::U64(self.p50_ns)),
            ("p90_ns", Json::U64(self.p90_ns)),
            ("p95_ns", Json::U64(self.p95_ns)),
            ("p99_ns", Json::U64(self.p99_ns)),
            ("p999_ns", Json::U64(self.p999_ns)),
            ("max_ns", Json::U64(self.max_ns)),
        ])
    }
}

/// Full report of one trace replay on one configured SSD.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheme name ("Baseline" / "Inline-Dedupe" / "CAGC").
    pub scheme: String,
    /// Victim policy name.
    pub victim: String,
    /// Workload name.
    pub workload: String,

    /// All-request latency summary (the Fig. 2 / Fig. 11 metric).
    pub all: LatencySummary,
    /// Read-only latency summary.
    pub reads: LatencySummary,
    /// Write-only latency summary.
    pub writes: LatencySummary,
    /// Latency of requests arriving while a GC round was in flight — the
    /// "response times during the SSD GC periods" that Fig. 11 averages.
    pub during_gc: LatencySummary,
    /// Response-time CDF over all requests (Fig. 12).
    pub cdf: Cdf,

    /// GC counters (Figs. 9, 10, 13).
    pub gc: GcStats,
    /// Fingerprint index traffic (dedup hits, probes).
    pub index: IndexStats,
    /// Fig. 6 buckets: invalidations by peak refcount {1,2,3,>3}.
    pub invalidation_by_refcount: [u64; 4],

    /// Host pages written (user write traffic in pages).
    pub host_pages_written: u64,
    /// Flash page programs serving the foreground (excludes GC migration).
    pub user_programs: u64,
    /// All flash page programs (foreground + migration).
    pub total_programs: u64,
    /// All flash block erases (foreground GC; equals `gc.blocks_erased`).
    pub total_erases: u64,
    /// Reads of unmapped LPNs (served from the controller).
    pub read_misses: u64,
    /// Trim requests processed.
    pub trims: u64,
    /// Trim-request latency summary (metadata-only: a flat `trim_ns`
    /// controller charge, never die time).
    pub trim_lat: LatencySummary,
    /// Whether this run honored trim hints (`SsdConfig::honor_trim`). A
    /// `false` here marks the trim-blind arm of a sensitivity study.
    pub honor_trim: bool,
    /// Pages invalidated in place by host trims (the device-level count;
    /// a trim of a *shared* deduplicated page only drops a reference and
    /// is counted in `trim_ref_releases` instead until the count hits 0).
    pub trim_invalidated_pages: u64,
    /// Reference-count drops attributed to trims of tracked (deduplicated)
    /// pages — the refcount-decay signal that lets a trimmed shared page
    /// fall back from cold to hot placement on its next GC migration.
    pub trim_ref_releases: u64,

    /// Wear: (min, max, mean) erase count across blocks.
    pub wear: (u32, u32, f64),
    /// Standard deviation of per-block erase counts (wear evenness).
    pub wear_stddev: f64,
    /// Die utilization over the run: (min, max, mean) busy fraction across
    /// dies — how well the workload + FTL exploited device parallelism.
    pub die_utilization: (f64, f64, f64),
    /// Fault-injection counters ([`FaultReport::is_quiet`] on fault-free
    /// runs, and then omitted from JSON and rendering).
    pub faults: FaultReport,
    /// Sim time of the first bad-block retirement, if any — the
    /// "time-to-first-retirement" device-lifetime proxy the fleet layer
    /// aggregates. Retirements only happen on injected erase failures, so
    /// this rides the fault section's pay-as-you-go gating: `None` on
    /// fault-free runs and then absent from JSON and rendering.
    pub first_retirement_ns: Option<Nanos>,
    /// The most recent power-loss recovery pass, if one ran.
    pub recovery: Option<RecoveryReport>,
    /// Tracing summary (event/drop counts, gauge windows). `None` unless
    /// tracing was enabled, and then omitted from JSON and rendering —
    /// the same pay-as-you-go gating as the fault section.
    pub telemetry: Option<TelemetryReport>,
    /// When the last request completed.
    pub end_ns: Nanos,
}

impl RunReport {
    /// The Fig. 11 metric: mean response time during GC periods, falling
    /// back to the overall mean when the run never triggered GC.
    pub fn gc_period_mean_ns(&self) -> f64 {
        if self.during_gc.count > 0 {
            self.during_gc.mean_ns
        } else {
            self.all.mean_ns
        }
    }

    /// Write amplification factor: total flash programs per host page
    /// written. Below 1.0 is possible with dedup (redundant host pages are
    /// never programmed).
    pub fn waf(&self) -> f64 {
        if self.host_pages_written == 0 {
            0.0
        } else {
            self.total_programs as f64 / self.host_pages_written as f64
        }
    }

    /// Fraction of fingerprint-index lookups that found an existing copy
    /// — the per-device dedup effectiveness number the fleet report rolls
    /// up per tenant mix. 0.0 when the scheme never consulted the index.
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.index.lookups == 0 {
            0.0
        } else {
            self.index.hits as f64 / self.index.lookups as f64
        }
    }

    /// Multi-line human rendering used by examples and the harness.
    pub fn render(&self) -> String {
        let fig6 = {
            let total: u64 = self.invalidation_by_refcount.iter().sum();
            if total == 0 {
                "n/a".to_string()
            } else {
                let f = self.invalidation_by_refcount.map(|b| b as f64 / total as f64 * 100.0);
                format!("ref1 {:.1}% / ref2 {:.1}% / ref3 {:.1}% / ref>3 {:.1}%", f[0], f[1], f[2], f[3])
            }
        };
        let mut out = format!(
            "{} on {} (victim: {})\n\
             \x20 latency  : {}\n\
             \x20 reads    : {}\n\
             \x20 writes   : {}\n\
             \x20 during GC: {}\n\
             \x20 GC       : {} rounds, {} blocks erased, {} pages migrated, {} scanned, {} dedup hits\n\
             \x20 placement: {} promotions, {} demotions\n\
             \x20 trim     : honored={}, {} requests, {} pages invalidated, {} shared-ref drops, {} reclaimed without migration\n\
             \x20 traffic  : {} host pages, {} user programs, {} total programs (WAF {:.3})\n\
             \x20 invalidations by refcount: {}\n\
             \x20 wear     : erase min {} / max {} / mean {:.2} / stddev {:.2}\n\
             \x20 dies     : utilization min {:.1}% / max {:.1}% / mean {:.1}%",
            self.scheme,
            self.workload,
            self.victim,
            self.all.render(),
            self.reads.render(),
            self.writes.render(),
            self.during_gc.render(),
            self.gc.invocations,
            self.gc.blocks_erased,
            self.gc.pages_migrated,
            self.gc.pages_scanned,
            self.gc.dedup_hits,
            self.gc.promotions,
            self.gc.demotions,
            self.honor_trim,
            self.trims,
            self.trim_invalidated_pages,
            self.trim_ref_releases,
            self.gc.trim_reclaimed_pages,
            self.host_pages_written,
            self.user_programs,
            self.total_programs,
            self.waf(),
            fig6,
            self.wear.0,
            self.wear.1,
            self.wear.2,
            self.wear_stddev,
            self.die_utilization.0 * 100.0,
            self.die_utilization.1 * 100.0,
            self.die_utilization.2 * 100.0,
        );
        if !self.faults.is_quiet() || self.recovery.is_some() {
            let f = &self.faults;
            out.push_str(&format!(
                "\n\x20 faults   : crashed={} read_only={}, {} program fails ({} retries, {} forced), \
                 {} erase fails ({} blocks retired), {} ECC errors ({} re-reads, {} decodes), \
                 {} media-read + {} write-fault errors, \
                 {} writes + {} trims rejected, {} journal records",
                f.crashed,
                f.read_only,
                f.program_failures,
                f.program_retries,
                f.forced_programs,
                f.erase_failures,
                f.blocks_retired,
                f.read_ecc_errors,
                f.read_retries,
                f.ecc_decodes,
                f.media_read_errors,
                f.write_faults,
                f.writes_rejected,
                f.trims_rejected,
                f.journal_appends,
            ));
            if let Some(ns) = self.first_retirement_ns {
                out.push_str(&format!("\n\x20 lifetime : first block retired at {}", fmt_duration(ns)));
            }
            if let Some(r) = &self.recovery {
                out.push_str(&format!(
                    "\n\x20 recovery : {} pages scanned, {} journal entries, {} mappings, \
                     {} fingerprints, {} duplicate copies merged, cost {}",
                    r.pages_scanned,
                    r.journal_entries,
                    r.mappings_recovered,
                    r.fingerprints_rebuilt,
                    r.duplicate_copies_merged,
                    fmt_duration(r.recovery_ns),
                ));
            }
        }
        if let Some(t) = &self.telemetry {
            out.push('\n');
            for line in t.render().lines() {
                out.push_str("\x20 ");
                out.push_str(line);
                out.push('\n');
            }
            out.pop(); // drop the trailing newline to match sibling sections
        }
        out
    }
}

impl ToJson for RunReport {
    /// Serialize every counter and distribution of the run. The rendering
    /// is deterministic (stable key order, exact integers), so two reports
    /// are byte-identical iff the runs were — which is what the
    /// determinism regression test asserts across worker counts.
    // GcStats and IndexStats live in foreign crates, so their fields are
    // inlined here rather than given their own ToJson impls (orphan rule).
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = Vec::from([
            ("scheme", Json::Str(self.scheme.clone())),
            ("victim", Json::Str(self.victim.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("all", self.all.to_json()),
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("during_gc", self.during_gc.to_json()),
            ("cdf", self.cdf.to_json()),
            (
                "gc",
                Json::obj([
                    ("invocations", Json::U64(self.gc.invocations)),
                    ("blocks_erased", Json::U64(self.gc.blocks_erased)),
                    ("pages_migrated", Json::U64(self.gc.pages_migrated)),
                    ("pages_scanned", Json::U64(self.gc.pages_scanned)),
                    ("dedup_hits", Json::U64(self.gc.dedup_hits)),
                    ("promotions", Json::U64(self.gc.promotions)),
                    ("demotions", Json::U64(self.gc.demotions)),
                    ("trim_reclaimed_pages", Json::U64(self.gc.trim_reclaimed_pages)),
                    ("busy_ns", Json::U64(self.gc.busy_ns)),
                ]),
            ),
            (
                "index",
                Json::obj([
                    ("lookups", Json::U64(self.index.lookups)),
                    ("hits", Json::U64(self.index.hits)),
                    ("inserts", Json::U64(self.index.inserts)),
                    ("removals", Json::U64(self.index.removals)),
                ]),
            ),
            (
                "invalidation_by_refcount",
                Json::arr(self.invalidation_by_refcount),
            ),
            ("host_pages_written", Json::U64(self.host_pages_written)),
            ("user_programs", Json::U64(self.user_programs)),
            ("total_programs", Json::U64(self.total_programs)),
            ("total_erases", Json::U64(self.total_erases)),
            ("read_misses", Json::U64(self.read_misses)),
            ("trims", Json::U64(self.trims)),
            ("trim_lat", self.trim_lat.to_json()),
            ("honor_trim", Json::Bool(self.honor_trim)),
            ("trim_invalidated_pages", Json::U64(self.trim_invalidated_pages)),
            ("trim_ref_releases", Json::U64(self.trim_ref_releases)),
            (
                "wear",
                Json::obj([
                    ("min", Json::U64(u64::from(self.wear.0))),
                    ("max", Json::U64(u64::from(self.wear.1))),
                    ("mean", Json::F64(self.wear.2)),
                    ("stddev", Json::F64(self.wear_stddev)),
                ]),
            ),
            (
                "die_utilization",
                Json::obj([
                    ("min", Json::F64(self.die_utilization.0)),
                    ("max", Json::F64(self.die_utilization.1)),
                    ("mean", Json::F64(self.die_utilization.2)),
                ]),
            ),
            ("end_ns", Json::U64(self.end_ns)),
            ("waf", Json::F64(self.waf())),
        ]);
        // Only fault-touched runs carry the fault section, so fault-free
        // JSON stays byte-identical to pre-fault-subsystem output.
        if !self.faults.is_quiet() || self.recovery.is_some() {
            fields.push(("faults", self.faults.to_json()));
            if let Some(ns) = self.first_retirement_ns {
                fields.push(("first_retirement_ns", Json::U64(ns)));
            }
            if let Some(r) = &self.recovery {
                fields.push(("recovery", r.to_json()));
            }
        }
        // Same gating for telemetry: only traced runs carry the section.
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry", t.to_json()));
        }
        Json::obj(fields)
    }
}

/// Additive traffic counters across a set of runs — the fleet layer's
/// per-tenant and fleet-wide rollup. Ratios (WAF, dedup hit rate) are
/// recomputed from the summed counters, *not* averaged across runs, so a
/// device writing 10x the pages weighs 10x in the aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficTotals {
    /// Runs folded in.
    pub runs: u64,
    /// Host pages written across runs.
    pub host_pages_written: u64,
    /// Foreground flash programs across runs.
    pub user_programs: u64,
    /// All flash programs (foreground + GC migration) across runs.
    pub total_programs: u64,
    /// Block erases across runs.
    pub total_erases: u64,
    /// Fingerprint-index lookups across runs.
    pub dedup_lookups: u64,
    /// Fingerprint-index hits across runs.
    pub dedup_hits: u64,
    /// GC invocations across runs.
    pub gc_invocations: u64,
    /// GC page migrations across runs.
    pub pages_migrated: u64,
}

impl TrafficTotals {
    /// Fold one run's counters in.
    pub fn add(&mut self, r: &RunReport) {
        self.runs += 1;
        self.host_pages_written += r.host_pages_written;
        self.user_programs += r.user_programs;
        self.total_programs += r.total_programs;
        self.total_erases += r.total_erases;
        self.dedup_lookups += r.index.lookups;
        self.dedup_hits += r.index.hits;
        self.gc_invocations += r.gc.invocations;
        self.pages_migrated += r.gc.pages_migrated;
    }

    /// Aggregate write amplification: summed programs per summed host page.
    pub fn waf(&self) -> f64 {
        if self.host_pages_written == 0 {
            0.0
        } else {
            self.total_programs as f64 / self.host_pages_written as f64
        }
    }

    /// Aggregate dedup hit rate: summed hits per summed lookup.
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.dedup_lookups == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.dedup_lookups as f64
        }
    }
}

impl ToJson for TrafficTotals {
    fn to_json(&self) -> Json {
        Json::obj([
            ("runs", Json::U64(self.runs)),
            ("host_pages_written", Json::U64(self.host_pages_written)),
            ("user_programs", Json::U64(self.user_programs)),
            ("total_programs", Json::U64(self.total_programs)),
            ("total_erases", Json::U64(self.total_erases)),
            ("dedup_lookups", Json::U64(self.dedup_lookups)),
            ("dedup_hits", Json::U64(self.dedup_hits)),
            ("gc_invocations", Json::U64(self.gc_invocations)),
            ("pages_migrated", Json::U64(self.pages_migrated)),
            ("waf", Json::F64(self.waf())),
            ("dedup_hit_rate", Json::F64(self.dedup_hit_rate())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_from_histogram() {
        let mut h = Histogram::new();
        for v in [10_000u64, 20_000, 30_000, 40_000, 1_000_000] {
            h.record(v);
        }
        let s = LatencySummary::of(&h);
        assert_eq!(s.count, 5);
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.p50_ns >= 20_000 && s.p50_ns <= 32_000);
        assert!(s.render().contains("n=5"));
    }

    #[test]
    fn waf_handles_empty_run() {
        let mut h = Histogram::new();
        h.record(1);
        let r = RunReport {
            scheme: "Baseline".into(),
            victim: "Greedy".into(),
            workload: "t".into(),
            all: LatencySummary::of(&h),
            reads: LatencySummary::of(&h),
            writes: LatencySummary::of(&h),
            during_gc: LatencySummary::of(&Histogram::new()),
            cdf: Cdf::from_histogram(&h),
            gc: GcStats::default(),
            index: IndexStats::default(),
            invalidation_by_refcount: [0; 4],
            host_pages_written: 0,
            user_programs: 0,
            total_programs: 0,
            total_erases: 0,
            read_misses: 0,
            trims: 0,
            trim_lat: LatencySummary::of(&Histogram::new()),
            honor_trim: true,
            trim_invalidated_pages: 0,
            trim_ref_releases: 0,
            wear: (0, 0, 0.0),
            wear_stddev: 0.0,
            die_utilization: (0.0, 0.0, 0.0),
            faults: FaultReport::default(),
            first_retirement_ns: None,
            recovery: None,
            telemetry: None,
            end_ns: 0,
        };
        assert_eq!(r.waf(), 0.0);
        assert_eq!(r.dedup_hit_rate(), 0.0);
        assert!(r.render().contains("Baseline"));
        // Quiet faults stay out of both renderings entirely.
        assert!(!r.render().contains("faults"));
        assert!(!r.to_json().render().contains("faults"));
        let mut noisy = r.clone();
        noisy.faults.program_failures = 1;
        assert!(noisy.render().contains("faults"));
        assert!(noisy.to_json().render().contains("\"faults\""));
        // First-retirement timestamp rides the fault section's gating.
        assert!(!noisy.to_json().render().contains("first_retirement_ns"));
        noisy.faults.erase_failures = 1;
        noisy.faults.blocks_retired = 1;
        noisy.first_retirement_ns = Some(5_000_000);
        assert!(noisy.to_json().render().contains("\"first_retirement_ns\":5000000"));
        assert!(noisy.render().contains("first block retired at"));
        // Untraced runs carry no telemetry section; traced runs do.
        assert!(!r.to_json().render().contains("telemetry"));
        let mut traced = r.clone();
        traced.telemetry = Some(TelemetryReport {
            events_recorded: 4,
            dropped_events: 0,
            sample: 1,
            gauge_window_ns: 1_000,
            gauges: Vec::new(),
        });
        assert!(traced.to_json().render().contains("\"telemetry\""));
        assert!(traced.render().contains("telemetry: 4 events recorded"));

        // TrafficTotals recomputes ratios from summed counters.
        let mut a = r.clone();
        a.host_pages_written = 100;
        a.total_programs = 300;
        a.index.lookups = 100;
        a.index.hits = 10;
        let mut b = r.clone();
        b.host_pages_written = 900;
        b.total_programs = 900;
        b.index.lookups = 900;
        b.index.hits = 890;
        let mut tot = TrafficTotals::default();
        tot.add(&a);
        tot.add(&b);
        assert_eq!(tot.runs, 2);
        assert!((tot.waf() - 1.2).abs() < 1e-12);
        assert!((tot.dedup_hit_rate() - 0.9).abs() < 1e-12);
        assert!(tot.to_json().render().contains("\"dedup_hits\":900"));
    }
}
