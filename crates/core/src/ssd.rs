//! The simulated SSD: foreground I/O path for all three schemes.
//!
//! One [`Ssd`] wires the substrates together — flash device, mapping,
//! reverse map, allocator, fingerprint index, hash engine, victim selector —
//! and services a trace request-by-request. The scheme
//! ([`crate::config::Scheme`]) decides *where* deduplication happens:
//!
//! * **Baseline** — writes program flash directly; GC migrates blindly.
//! * **Inline-Dedupe** — every written page first occupies the hash engine
//!   (14 µs, Table I) and probes the fingerprint index *on the critical
//!   path*; redundant pages become metadata updates, unique pages program
//!   after the hash completes. This is the scheme the paper shows hurting
//!   ultra-low-latency devices (Fig. 2).
//! * **CAGC** — the foreground path is as fast as Baseline; fingerprinting
//!   happens during GC migration (see [`crate::gc`]), overlapped with die
//!   work, with reference-count-based hot/cold placement.
//!
//! The GC engine lives in [`crate::gc`]; this module owns the foreground
//! semantics, the invalidation/reference-count bookkeeping shared by both,
//! and the trace replay loop.

use cagc_dedup::{ContentId, Fingerprint, FingerprintCache, FingerprintIndex, HashEngine};
use cagc_flash::{BlockId, FlashDevice, FlashError, JournalOp, PageOob, Ppn};
use cagc_ftl::{
    Allocator, GcStats, GcTrigger, Lpn, MappingTable, Region, ReverseMap, VictimSelector,
};
use cagc_metrics::{Cdf, Histogram};
use cagc_sim::time::Nanos;
use cagc_trace::{TraceConfig, Tracer, Track};
use cagc_workloads::{OpKind, Request, Trace};

use crate::config::{Scheme, SsdConfig};
use crate::recovery::RecoveryReport;
use crate::report::{FaultReport, HealthLog, LatencySummary, RunReport};

/// NVMe-style completion status for one host command.
///
/// Fault-free runs only ever see [`CmdStatus::Success`]; the error
/// variants require injected faults (and, for the unrecoverable pair,
/// [`cagc_flash::FaultConfig::unrecoverable_prob`] > 0) or read-only
/// degradation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CmdStatus {
    /// The command completed successfully.
    #[default]
    Success,
    /// A read failed unrecoverably: re-reads and the heroic decode all
    /// failed (NVMe "Unrecovered Read Error", media error 0x281).
    MediaReadError,
    /// A write failed unrecoverably: retries and the forced program all
    /// failed (NVMe "Write Fault", media error 0x280).
    WriteFault,
    /// A write or trim was refused because bad-block retirement degraded
    /// the namespace to read-only (NVMe "Namespace is Write Protected",
    /// command-specific 0x20).
    WriteProtected,
}

impl CmdStatus {
    /// Whether the command succeeded.
    #[inline]
    pub fn is_ok(self) -> bool {
        self == CmdStatus::Success
    }

    /// Whether a host retry could plausibly succeed. Write-protection is
    /// persistent (the spare pool is gone), so retrying it is futile;
    /// media errors are worth another attempt.
    #[inline]
    pub fn is_retryable(self) -> bool {
        matches!(self, CmdStatus::MediaReadError | CmdStatus::WriteFault)
    }

    /// The NVMe status code this models (status-code-type << 8 | code).
    pub fn nvme_code(self) -> u16 {
        match self {
            CmdStatus::Success => 0x000,
            CmdStatus::MediaReadError => 0x281,
            CmdStatus::WriteFault => 0x280,
            CmdStatus::WriteProtected => 0x120,
        }
    }

    /// Short stable name for reports and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            CmdStatus::Success => "success",
            CmdStatus::MediaReadError => "media_read_error",
            CmdStatus::WriteFault => "write_fault",
            CmdStatus::WriteProtected => "write_protected",
        }
    }
}

/// One host command's completion: when it finished and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Simulated completion time.
    pub end_ns: Nanos,
    /// NVMe-style status the CQ entry carries.
    pub status: CmdStatus,
}

/// Sentinel for "no content recorded" in the per-PPN content table.
pub(crate) const NO_CONTENT: u64 = u64::MAX;

/// First eight bytes of a fingerprint, little-endian: the OOB stamp GC
/// writes next to relocated pages so recovery can spot candidate duplicate
/// copies (full equality is confirmed against cell content before any
/// merge).
pub(crate) fn fp_stamp(fp: &Fingerprint) -> u64 {
    u64::from_le_bytes(fp.0[..8].try_into().expect("fingerprint shorter than 8 bytes"))
}

/// Why a logical page's mapping is being dropped. Overwrites and trims
/// drive identical state transitions; the cause only controls *attribution*
/// (trim garbage is counted per block, per refcount drop, and in reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReleaseCause {
    /// A newer write replaced the mapping.
    Overwrite,
    /// The host deallocated the logical page.
    Trim,
}

/// What the currently-executing flash operation is doing *for*, so the
/// shared read/program helpers can name their die spans correctly
/// ("read" vs. "migrate_read", "program" vs. "migrate_write").
///
/// `Off` both when tracing is disabled and for host requests the sampler
/// skipped; GC always traces ([`cagc_trace::TraceConfig::sample`] applies
/// to host operations only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceCtx {
    /// Don't emit die spans for this operation.
    Off,
    /// A sampled host request is on the critical path.
    Host,
    /// A GC round is migrating pages.
    Gc,
}

/// FTL-side fault-handling counters (all zero on fault-free runs).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FaultHandling {
    /// Program retries issued after injected program failures.
    pub program_retries: u64,
    /// Last-resort forced programs after the retry budget ran out.
    pub forced_programs: u64,
    /// Re-reads issued after injected ECC errors.
    pub read_retries: u64,
    /// Heroic soft-decodes after the re-read budget ran out.
    pub ecc_decodes: u64,
    /// Host reads whose heroic decode also failed (media-read-error
    /// completions).
    pub media_read_errors: u64,
    /// Host writes whose forced program also failed (write-fault
    /// completions).
    pub write_faults: u64,
    /// Writes refused because the device degraded to read-only.
    pub writes_rejected: u64,
    /// Trims refused because the device degraded to read-only.
    pub trims_rejected: u64,
    /// Completed power-loss recovery passes.
    pub recoveries: u64,
}

/// A fully-assembled simulated SSD running one scheme.
///
/// `Clone` snapshots the complete device state (blocks, mapping, index,
/// timelines, statistics) — useful for benchmarks and what-if forks.
#[derive(Clone)]
pub struct Ssd {
    pub(crate) cfg: SsdConfig,
    pub(crate) dev: FlashDevice,
    pub(crate) map: MappingTable,
    pub(crate) rmap: ReverseMap,
    pub(crate) alloc: Allocator,
    pub(crate) index: FingerprintIndex,
    pub(crate) hash: HashEngine,
    pub(crate) selector: VictimSelector,
    pub(crate) trigger: GcTrigger,
    pub(crate) gc_stats: GcStats,
    /// Content stored at each PPN (`NO_CONTENT` when free/stale).
    pub(crate) content_of: Vec<u64>,
    /// Pre-hashes of stored pages (Inline-Sampled only): membership means
    /// "a page with this cheap hash has been stored before, a new write
    /// matching it is worth a full fingerprint". Conservative — entries
    /// are not removed on invalidation, so stale entries cost an extra
    /// full hash, never a missed duplicate among fingerprinted pages.
    pub(crate) prehash_filter: std::collections::HashSet<u32>,

    lat_all: Histogram,
    lat_read: Histogram,
    lat_write: Histogram,
    lat_trim: Histogram,
    lat_during_gc: Histogram,
    /// Requests arriving before this instant fall inside an active GC
    /// round ("GC periods", the regime Fig. 11 averages over).
    pub(crate) gc_active_until: Nanos,
    host_pages_written: u64,
    pub(crate) user_programs: u64,
    read_misses: u64,
    trims: u64,
    /// Fault-handling counters (retries, rejections, recoveries).
    pub(crate) fh: FaultHandling,
    /// Requests fully completed and acknowledged to the host.
    acknowledged: u64,
    /// Report of the most recent power-loss recovery pass, if any.
    pub(crate) last_recovery: Option<RecoveryReport>,
    /// Trace sink (disabled no-op by default; see [`Ssd::enable_tracing`]).
    pub(crate) tracer: Tracer,
    /// What the current flash operation is being issued for (span naming).
    pub(crate) tctx: TraceCtx,
    /// Suspended preemptible GC job ([`crate::SsdConfig::gc_preempt`]);
    /// always `None` when preemption is off.
    pub(crate) gc_job: Option<crate::gc::GcJob>,
    /// Scratch for sharer sets detached during migration (journaling paths
    /// that need `&mut self` while walking the set).
    pub(crate) sharers_scratch: Vec<Lpn>,
    /// Scratch for a victim's valid-page snapshot.
    pub(crate) valids_scratch: Vec<Ppn>,
    /// Scratch for batched blind migration: `(old ppn, new ppn, program
    /// end)` per migrated page, applied as one grouped metadata pass.
    pub(crate) gc_batch: Vec<(Ppn, Ppn, Nanos)>,
    /// Sim time of the first bad-block retirement (erase failure), if any
    /// — the fleet's "time-to-first-retirement" lifetime proxy.
    pub(crate) first_retirement_ns: Option<Nanos>,
    end_ns: Nanos,
}

impl Ssd {
    /// Build an SSD from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`SsdConfig::validate`].
    pub fn new(cfg: SsdConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SsdConfig: {e}");
        }
        let geom = cfg.flash.geometry();
        let dev = FlashDevice::with_faults(geom, cfg.flash.timing(), cfg.faults.clone());
        let logical = cfg.flash.logical_pages();
        // Interleave the free pool across dies so consecutive frontier
        // blocks (writes, migrations, erases) exploit die parallelism.
        let order =
            Allocator::die_interleaved_order(geom.total_blocks(), geom.blocks_per_die());
        Self {
            map: MappingTable::new(logical),
            rmap: ReverseMap::new(),
            alloc: Allocator::with_block_order(order, geom.pages_per_block, cfg.gc_reserve_blocks),
            index: FingerprintIndex::new(),
            hash: HashEngine::new(cfg.flash.hash_ns),
            selector: VictimSelector::new(cfg.victim, cfg.victim_seed),
            trigger: GcTrigger::new(cfg.gc_low, cfg.gc_high),
            gc_stats: GcStats::default(),
            content_of: vec![NO_CONTENT; geom.total_pages() as usize],
            prehash_filter: std::collections::HashSet::new(),
            lat_all: Histogram::new(),
            lat_read: Histogram::new(),
            lat_write: Histogram::new(),
            lat_trim: Histogram::new(),
            lat_during_gc: Histogram::new(),
            gc_active_until: 0,
            host_pages_written: 0,
            user_programs: 0,
            read_misses: 0,
            trims: 0,
            fh: FaultHandling::default(),
            acknowledged: 0,
            last_recovery: None,
            tracer: Tracer::disabled(),
            tctx: TraceCtx::Off,
            gc_job: None,
            sharers_scratch: Vec::new(),
            valids_scratch: Vec::new(),
            gc_batch: Vec::new(),
            first_retirement_ns: None,
            end_ns: 0,
            dev,
            cfg,
        }
    }

    /// Host-visible logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.map.logical_pages()
    }

    /// The configuration this SSD runs.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Accumulated GC statistics.
    pub fn gc_stats(&self) -> &GcStats {
        &self.gc_stats
    }

    /// The flash device (read-only view, for assertions and reports).
    pub fn device(&self) -> &FlashDevice {
        &self.dev
    }

    /// When the most recent request completed (0 before any request).
    pub fn last_completion(&self) -> Nanos {
        self.end_ns
    }

    /// Turn on structured tracing for this SSD. Spans and instants are
    /// recorded in simulated nanoseconds from here on; call before the
    /// replay to capture the whole run. Disabled by default — and the
    /// disabled sink is a strict no-op, so untraced runs stay
    /// byte-identical to builds without the tracing layer.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        self.tracer = Tracer::enabled(cfg);
    }

    /// The trace sink (events, gauges, drop counter).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable trace sink — lets a layer driving this SSD (the host
    /// interface) emit its own spans and gauges into the same recording.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Chrome trace-event document for the recording: `pid = channel`,
    /// `tid = die`, plus a synthetic "ftl" process carrying the
    /// host/gc/hash/fault tracks and the gauge counters. Load the rendered
    /// JSON in Perfetto or `chrome://tracing`.
    pub fn chrome_trace(&self) -> cagc_harness::Json {
        cagc_trace::chrome_trace(&self.tracer, self.cfg.flash.geometry().channels)
    }

    /// JSONL event log of the recording (one JSON object per line).
    pub fn trace_jsonl(&self) -> String {
        cagc_trace::jsonl(&self.tracer)
    }

    /// Process one request arriving at its timestamp; returns its
    /// completion time. Requests must be fed in nondecreasing time order
    /// (as [`Trace`] guarantees).
    ///
    /// If simulated power is lost mid-request the request is *not*
    /// acknowledged: this wrapper absorbs the error and returns the
    /// arrival time. Callers that must tell acknowledged requests from
    /// torn ones (crash tests) use [`Ssd::process_checked`].
    pub fn process(&mut self, req: &Request) -> Nanos {
        self.process_checked(req).unwrap_or(req.at_ns)
    }

    /// [`Ssd::process`] that reports power loss instead of absorbing it.
    ///
    /// `Err(FlashError::PowerLoss)` means the request was torn: it was
    /// never acknowledged, volatile FTL state is now stale, and the only
    /// useful next step is [`Ssd::recover`] (every further request fails
    /// the same way until then). All other flash errors are handled
    /// internally — program retries on fresh blocks, bad-block retirement,
    /// ECC re-reads — or are simulator bugs that panic at the failing
    /// call site.
    ///
    /// # Errors
    /// Only [`FlashError::PowerLoss`] is ever returned.
    pub fn process_checked(&mut self, req: &Request) -> Result<Nanos, FlashError> {
        self.process_status(req).map(|c| c.end_ns)
    }

    /// [`Ssd::process_checked`] that also reports the command's NVMe-style
    /// completion status. Error completions (media read error, write
    /// fault, write protected) are *completions*: they are timed, recorded
    /// in the latency histograms and counted like any other finished
    /// command — the status is how layers above (host interface, fleet)
    /// learn the data never moved. Fault-free runs always complete
    /// [`CmdStatus::Success`], and this path is byte-identical to
    /// [`Ssd::process`] there.
    ///
    /// # Errors
    /// Only [`FlashError::PowerLoss`] is ever returned (the request was
    /// torn, not completed).
    pub fn process_status(&mut self, req: &Request) -> Result<Completion, FlashError> {
        if self.dev.is_crashed() {
            return Err(FlashError::PowerLoss);
        }
        let at = req.at_ns;
        // One branch when tracing is disabled (always false); when enabled,
        // a deterministic every-nth pick of host requests to trace.
        let sampled = self.tracer.sample_host_op();
        if sampled {
            self.tctx = TraceCtx::Host;
        }
        self.maybe_idle_gc(at)?;
        let (completion, status) = match self.execute_request(req, at) {
            Ok(done) => done,
            Err(FlashError::Unrecoverable { at: failed_at }) => {
                // A last-resort recovery failed on the host path: the
                // command completes with an error status at the point the
                // final attempt gave up.
                let status = match req.kind {
                    OpKind::Read => CmdStatus::MediaReadError,
                    OpKind::Write | OpKind::Trim => CmdStatus::WriteFault,
                };
                (failed_at, status)
            }
            Err(e) => return Err(e),
        };
        if sampled {
            self.tctx = TraceCtx::Off;
            let name = match req.kind {
                OpKind::Read => "read",
                OpKind::Write => "write",
                OpKind::Trim => "trim",
            };
            self.tracer.span(
                Track::Host,
                name,
                at,
                completion,
                &[("lpn", req.lpn), ("pages", u64::from(req.pages))],
            );
            self.sample_gauges(completion);
        }
        let latency = completion - at;
        self.lat_all.record(latency);
        if at <= self.gc_active_until {
            // Arrived while a GC round was in flight: part of the "GC
            // period" population Fig. 11 averages over.
            self.lat_during_gc.record(latency);
        }
        match req.kind {
            OpKind::Read => self.lat_read.record(latency),
            OpKind::Write => self.lat_write.record(latency),
            OpKind::Trim => self.lat_trim.record(latency),
        }
        self.end_ns = self.end_ns.max(completion);
        self.acknowledged += 1;
        Ok(Completion { end_ns: completion, status })
    }

    /// The per-kind request body: returns the completion time and status,
    /// or propagates [`FlashError::Unrecoverable`] / power loss for
    /// [`Ssd::process_status`] to translate.
    fn execute_request(
        &mut self,
        req: &Request,
        at: Nanos,
    ) -> Result<(Nanos, CmdStatus), FlashError> {
        let mut status = CmdStatus::Success;
        let completion = match req.kind {
            OpKind::Read => {
                let mut done = at;
                for lpn in req.lpns() {
                    done = done.max(self.read_page(lpn, at)?);
                }
                done
            }
            OpKind::Write if self.is_read_only() => {
                // Spare blocks exhausted: the device has degraded to
                // read-only and the controller fails the write fast.
                self.fh.writes_rejected += 1;
                status = CmdStatus::WriteProtected;
                at + self.cfg.read_miss_ns
            }
            OpKind::Write => {
                // Check the watermark once per request. GC reserves die
                // time; this write then contends with it on the timelines
                // (it does not wait for the whole round — space exists as
                // soon as maybe_gc returns).
                self.maybe_gc(at)?;
                self.host_pages_written += req.pages as u64;
                // Pages of one request are processed in order by the FTL
                // datapath: page i+1 starts when page i completes. (For
                // Baseline/CAGC this matches the per-die serialization of
                // the shared frontier; for Inline-Dedupe it puts every
                // page's hash+lookup on the request's critical path.)
                let mut ready = at;
                for (i, lpn) in req.lpns().enumerate() {
                    ready = self.write_page(lpn, req.contents[i], ready)?;
                }
                ready
            }
            OpKind::Trim if self.is_read_only() => {
                self.fh.trims_rejected += 1;
                status = CmdStatus::WriteProtected;
                at + self.cfg.trim_ns
            }
            OpKind::Trim => {
                self.trims += 1;
                if self.cfg.honor_trim {
                    for lpn in req.lpns() {
                        self.release_lpn_as(lpn, at, ReleaseCause::Trim)?;
                    }
                }
                // Metadata-only: the mapping tables are updated but no die
                // is touched, so the cost is a flat controller charge.
                at + self.cfg.trim_ns
            }
        };
        Ok((completion, status))
    }

    /// Whether bad-block retirement has degraded the device to read-only:
    /// the usable pool has shrunk to the GC reserve plus the configured
    /// floor, so accepting more writes would risk GC deadlock. Reads (and
    /// GC itself) continue.
    pub fn is_read_only(&self) -> bool {
        self.alloc.retired_count() > 0
            && self.alloc.usable_blocks()
                <= self.alloc.gc_reserve() + self.cfg.read_only_floor_blocks
    }

    /// Requests fully completed and acknowledged to the host.
    pub fn acknowledged_requests(&self) -> u64 {
        self.acknowledged
    }

    /// Snapshot of fault-injection and fault-handling counters.
    pub fn fault_report(&self) -> FaultReport {
        let d = self.dev.stats();
        FaultReport {
            active: self.dev.faults_active(),
            crashed: self.dev.is_crashed(),
            read_only: self.is_read_only(),
            program_failures: d.program_failures,
            erase_failures: d.erase_failures,
            read_ecc_errors: d.read_ecc_errors,
            blocks_retired: d.blocks_retired,
            journal_appends: d.journal_appends,
            program_retries: self.fh.program_retries,
            forced_programs: self.fh.forced_programs,
            read_retries: self.fh.read_retries,
            ecc_decodes: self.fh.ecc_decodes,
            media_read_errors: self.fh.media_read_errors,
            write_faults: self.fh.write_faults,
            writes_rejected: self.fh.writes_rejected,
            trims_rejected: self.fh.trims_rejected,
            recoveries: self.fh.recoveries,
        }
    }

    /// SMART-style health snapshot: media errors, retired blocks, spare
    /// pool headroom, wear percentiles and the read-only flag — what a
    /// monitoring plane polls to decide a device is degrading. Sampled
    /// into the gauge registry on fault-armed traced runs (see
    /// `sample_gauges`).
    pub fn health(&self) -> HealthLog {
        let d = self.dev.stats();
        let mut wear: Vec<u32> =
            (0..self.dev.block_count()).map(|b| self.dev.block(b).erase_count()).collect();
        wear.sort_unstable();
        let pick = |q: f64| -> u32 {
            if wear.is_empty() {
                return 0;
            }
            let idx = ((wear.len() - 1) as f64 * q).round() as usize;
            wear[idx.min(wear.len() - 1)]
        };
        // Spare headroom above the point is_read_only() trips: usable
        // blocks beyond (GC reserve + read-only floor), scaled against the
        // pristine device's headroom.
        let floor = self.alloc.gc_reserve() + self.cfg.read_only_floor_blocks;
        let total = self.dev.block_count() as u64;
        let usable = u64::from(self.alloc.usable_blocks());
        let spare_now = usable.saturating_sub(u64::from(floor));
        let spare_pristine = total.saturating_sub(u64::from(floor)).max(1);
        HealthLog {
            media_errors: d.program_failures + d.erase_failures + d.read_ecc_errors,
            unrecoverable_errors: self.fh.media_read_errors + self.fh.write_faults,
            retired_blocks: self.alloc.retired_count(),
            spare_pool_permille: spare_now * 1000 / spare_pristine,
            wear_p50: pick(0.50),
            wear_p90: pick(0.90),
            wear_max: wear.last().copied().unwrap_or(0),
            read_only: self.is_read_only(),
        }
    }

    /// Append a mapping delta to the device journal. Journaling is only
    /// needed (and only paid for) when fault injection is active —
    /// fault-free runs never crash, so recovery never reads it.
    pub(crate) fn journal(&mut self, op: JournalOp) -> Result<(), FlashError> {
        if self.dev.faults_active() {
            self.dev.journal_append(op)?;
        }
        Ok(())
    }

    /// Replay a whole trace and produce the run report.
    ///
    /// # Panics
    /// Panics if the trace addresses more logical pages than the device
    /// exports.
    pub fn replay(&mut self, trace: &Trace) -> RunReport {
        assert!(
            trace.logical_pages <= self.logical_pages(),
            "trace needs {} logical pages, device exports {}",
            trace.logical_pages,
            self.logical_pages()
        );
        for req in &trace.requests {
            self.process(req);
        }
        self.report(&trace.name)
    }

    /// Snapshot the report under the given workload name.
    pub fn report(&self, workload: &str) -> RunReport {
        RunReport {
            scheme: self.cfg.scheme.name().to_string(),
            victim: self.cfg.victim.name().to_string(),
            workload: workload.to_string(),
            all: LatencySummary::of(&self.lat_all),
            reads: LatencySummary::of(&self.lat_read),
            writes: LatencySummary::of(&self.lat_write),
            during_gc: LatencySummary::of(&self.lat_during_gc),
            cdf: Cdf::from_histogram(&self.lat_all),
            gc: self.gc_stats,
            index: self.index.stats(),
            invalidation_by_refcount: self.index.ref_stats().buckets(),
            host_pages_written: self.host_pages_written,
            user_programs: self.user_programs,
            total_programs: self.dev.stats().programs,
            total_erases: self.dev.stats().erases,
            read_misses: self.read_misses,
            trims: self.trims,
            trim_lat: LatencySummary::of(&self.lat_trim),
            honor_trim: self.cfg.honor_trim,
            trim_invalidated_pages: self.dev.stats().trimmed_pages,
            trim_ref_releases: self.index.ref_stats().trim_releases(),
            wear: self.dev.wear_summary(),
            wear_stddev: self.dev.wear_stddev(),
            die_utilization: self.die_utilization(),
            faults: self.fault_report(),
            first_retirement_ns: self.first_retirement_ns,
            recovery: self.last_recovery.clone(),
            telemetry: self.tracer.report(),
            end_ns: self.end_ns,
        }
    }

    /// (min, max, mean) busy fraction across dies, over `[0, end_ns]`.
    fn die_utilization(&self) -> (f64, f64, f64) {
        if self.end_ns == 0 {
            return (0.0, 0.0, 0.0);
        }
        let totals = self.dev.die_busy_totals();
        let horizon = self.end_ns as f64;
        let fracs: Vec<f64> =
            totals.iter().map(|&b| (b as f64 / horizon).min(1.0)).collect();
        let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
        let min = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fracs.iter().cloned().fold(0.0f64, f64::max);
        (if min.is_finite() { min } else { 0.0 }, max, mean)
    }

    /// Sample the telemetry gauges at `now`. Called once per *sampled*
    /// host request (so `--trace-sample` thins gauge traffic along with
    /// host spans); GC adds the O(blocks) `stranded_pages` gauge from its
    /// own victim scan, where the walk is already paid for.
    fn sample_gauges(&mut self, now: Nanos) {
        self.tracer.gauge("free_pages", now, self.alloc.free_pages());
        if let Some(waf) = (self.dev.stats().programs * 1000).checked_div(self.host_pages_written) {
            self.tracer.gauge("waf_milli", now, waf);
        }
        let idx = self.index.stats();
        if let Some(rate) = (idx.hits * 1000).checked_div(idx.lookups) {
            self.tracer.gauge("dedup_hit_rate_milli", now, rate);
        }
        self.tracer.gauge("retired_blocks", now, u64::from(self.alloc.retired_count()));
        // SMART-style health gauges: only on fault-armed runs, so
        // fault-free traced output stays byte-identical to pre-health
        // recordings (pay-as-you-go, like the journal).
        if self.dev.faults_active() {
            let h = self.health();
            self.tracer.gauge("health_media_errors", now, h.media_errors);
            self.tracer.gauge("health_unrecoverable", now, h.unrecoverable_errors);
            self.tracer.gauge("health_spare_permille", now, h.spare_pool_permille);
            self.tracer.gauge("health_wear_p90", now, u64::from(h.wear_p90));
            self.tracer.gauge("health_read_only", now, u64::from(h.read_only));
        }
    }

    /// Sample every telemetry gauge at `now`, regardless of host-op
    /// sampling. The fleet observability plane calls this once per device
    /// at end of run so a sparsely-sampled (or gauges-only) tracer still
    /// closes its timeline with the final device state; a disabled tracer
    /// makes this a no-op.
    pub fn sample_telemetry(&mut self, now: Nanos) {
        if self.tracer.is_enabled() {
            self.sample_gauges(now);
        }
    }

    /// Emit a die-track span for a completed flash operation, named by the
    /// current [`TraceCtx`]. `host_name`/`gc_name` distinguish foreground
    /// I/O from GC migration on the same die timeline.
    fn trace_die_span(
        &mut self,
        ppn: Ppn,
        host_name: &'static str,
        gc_name: &'static str,
        start: Nanos,
        end: Nanos,
        queued: Nanos,
    ) {
        let name = match self.tctx {
            TraceCtx::Off => return,
            TraceCtx::Host => host_name,
            TraceCtx::Gc => gc_name,
        };
        let geom = self.dev.geometry();
        let track = Track::Die { channel: geom.channel_of(ppn), die: geom.die_of(ppn) };
        self.tracer.span(track, name, start, end, &[("ppn", ppn), ("queued_ns", queued)]);
    }

    // ---------------- page-level foreground operations ----------------

    fn read_page(&mut self, lpn: Lpn, ready: Nanos) -> Result<Nanos, FlashError> {
        match self.map.get(lpn) {
            Some(ppn) => {
                // Detect whether this host read had to fall back to the
                // heroic decode (the FTL's last resort). Only then can the
                // read fail unrecoverably — and only host reads roll; GC
                // migration reads bypass this wrapper entirely.
                let decodes_before = self.fh.ecc_decodes;
                let end = self.read_flash(ppn, ready)?;
                if self.fh.ecc_decodes > decodes_before && self.dev.roll_unrecoverable() {
                    self.fh.media_read_errors += 1;
                    self.tracer.instant(
                        Track::Fault,
                        "media_read_error",
                        end,
                        &[("lpn", lpn), ("ppn", ppn)],
                    );
                    return Err(FlashError::Unrecoverable { at: end });
                }
                Ok(end)
            }
            None => {
                self.read_misses += 1;
                Ok(ready + self.cfg.read_miss_ns)
            }
        }
    }

    /// Read one flash page, absorbing injected ECC errors: up to
    /// `max_read_retries` re-reads, then the heroic soft-decode path —
    /// slower, but the data is always recovered (no silent loss).
    pub(crate) fn read_flash(&mut self, ppn: Ppn, ready: Nanos) -> Result<Nanos, FlashError> {
        let mut at = ready;
        let mut attempts = 0;
        loop {
            match self.dev.read(ppn, at) {
                Ok(r) => {
                    self.trace_die_span(ppn, "read", "migrate_read", r.start, r.end, r.queued);
                    return Ok(r.end);
                }
                Err(FlashError::ReadEcc { at: failed_at, .. }) => {
                    at = failed_at;
                    if attempts < self.cfg.max_read_retries {
                        attempts += 1;
                        self.fh.read_retries += 1;
                        self.tracer.instant(
                            Track::Fault,
                            "read_ecc_retry",
                            at,
                            &[("ppn", ppn), ("attempt", attempts as u64)],
                        );
                    } else {
                        self.fh.ecc_decodes += 1;
                        self.tracer.span(
                            Track::Fault,
                            "ecc_decode",
                            at,
                            at + self.cfg.ecc_decode_ns,
                            &[("ppn", ppn)],
                        );
                        return Ok(at + self.cfg.ecc_decode_ns);
                    }
                }
                Err(FlashError::PowerLoss) => return Err(FlashError::PowerLoss),
                Err(e) => panic!("flash read failed: {e}"),
            }
        }
    }

    fn write_page(&mut self, lpn: Lpn, content: ContentId, ready: Nanos) -> Result<Nanos, FlashError> {
        match self.cfg.scheme {
            Scheme::Baseline | Scheme::Cagc => {
                // Fast path: no content processing before the program.
                // Out-of-place order: the overwritten copy is released only
                // after the replacement program is durable, so a crash (or
                // an emergency GC erase) in between can never destroy the
                // last durable copy of acknowledged data.
                let (end, ppn) = self.program_foreground(lpn, None, ready)?;
                self.release_lpn(lpn, ready);
                self.bind(lpn, ppn, content);
                Ok(end)
            }
            Scheme::InlineDedup => self.write_page_inline(lpn, content, ready),
            Scheme::InlineSampled => self.write_page_sampled(lpn, content, ready),
        }
    }

    /// The CAFTL-style sampled write path: a cheap pre-hash screens the
    /// page; only pre-hash matches (possible duplicates) pay the full
    /// fingerprint + lookup. First sightings are stored unfingerprinted.
    fn write_page_sampled(
        &mut self,
        lpn: Lpn,
        content: ContentId,
        ready: Nanos,
    ) -> Result<Nanos, FlashError> {
        let screened = ready + self.cfg.prehash_ns;
        let pre = Self::prehash(content);
        if self.prehash_filter.contains(&pre) {
            // Possible duplicate: full inline-dedup path (hash + probe).
            // An index miss here still inserts the fingerprint, so the
            // third and later copies of this content deduplicate.
            self.write_page_inline(lpn, content, screened)
        } else {
            self.prehash_filter.insert(pre);
            let (end, ppn) = self.program_foreground(lpn, None, screened)?;
            self.release_lpn(lpn, screened);
            self.bind(lpn, ppn, content);
            Ok(end)
        }
    }

    /// The cheap 32-bit pre-hash (stands in for a controller CRC of the
    /// page's first bytes; collisions across distinct contents are rare
    /// but possible, costing a spurious full hash — exactly CAFTL's
    /// false-positive behaviour).
    pub(crate) fn prehash(content: ContentId) -> u32 {
        let x = content.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (x >> 32) as u32
    }

    /// The Inline-Dedupe write path: hash, probe, then either a metadata
    /// update (hit) or a program (miss) — with the hash latency always on
    /// the critical path.
    fn write_page_inline(
        &mut self,
        lpn: Lpn,
        content: ContentId,
        ready: Nanos,
    ) -> Result<Nanos, FlashError> {
        let h = self.hash.hash_page(ready);
        if self.tctx == TraceCtx::Host {
            self.tracer.span(Track::Hash, "hash", h.start, h.end, &[("lpn", lpn)]);
        }
        let decided = h.end + self.cfg.lookup_ns;
        let fp = self.fingerprint_of(content);
        match self.index.lookup(&fp) {
            Some(entry) => {
                if self.map.get(lpn) == Some(entry.ppn) {
                    // Overwrite with identical content: nothing changes.
                    return Ok(decided);
                }
                self.release_lpn(lpn, decided);
                self.index.add_refs(&fp, 1);
                self.map.set(lpn, entry.ppn);
                self.rmap.add(entry.ppn, lpn);
                // The hit is a pure metadata update — the journaled remap
                // is the only durable trace of this write.
                self.journal(JournalOp::Remap { lpn, ppn: entry.ppn })?;
                Ok(decided)
            }
            None => {
                let (end, ppn) = self.program_foreground(lpn, Some(fp_stamp(&fp)), decided)?;
                self.release_lpn(lpn, decided);
                self.index.insert(fp, ppn, 1);
                self.bind(lpn, ppn, content);
                Ok(end)
            }
        }
    }

    /// Program the next host-frontier page for the foreground path,
    /// stamping the logical page (and, for inline schemes, the fingerprint)
    /// into the page's OOB — the durable record recovery rebuilds the
    /// mapping from. The host frontier is distinct from the GC frontiers,
    /// so user programs never queue behind a burst of migration writes on
    /// the same block.
    fn program_foreground(
        &mut self,
        lpn: Lpn,
        fp_stamp: Option<u64>,
        ready: Nanos,
    ) -> Result<(Nanos, Ppn), FlashError> {
        let out = self.program_region(Region::Host, false, PageOob::host(lpn, fp_stamp), ready)?;
        self.user_programs += 1;
        Ok(out)
    }

    /// Allocate a frontier block in `region`. The GC path draws from the
    /// reserve and treats exhaustion as a simulator bug; the foreground
    /// path runs emergency GC until a block frees up (possible under
    /// victim policies with poor reclaim efficiency, e.g. Random).
    fn alloc_block(
        &mut self,
        region: Region,
        for_gc: bool,
        ready: Nanos,
    ) -> Result<BlockId, FlashError> {
        if for_gc {
            return Ok(self.alloc.alloc_page(region, true).unwrap_or_else(|| {
                panic!(
                    "GC allocation failed with {} free blocks — reserve {} exhausted",
                    self.alloc.free_blocks(),
                    self.alloc.gc_reserve()
                )
            }));
        }
        let mut attempts = 0;
        loop {
            if let Some(block) = self.alloc.alloc_page(region, false) {
                return Ok(block);
            }
            if self.is_read_only() {
                // Bad-block retirement crossed the read-only floor while
                // this write was already past its own read-only check:
                // forcing more GC can only bleed the reserve dry. Fail
                // the write as a write-fault completion instead.
                self.fh.write_faults += 1;
                self.tracer.instant(Track::Fault, "write_fault", ready, &[("read_only", 1)]);
                return Err(FlashError::Unrecoverable { at: ready });
            }
            let freed_from = self.alloc.free_blocks();
            self.force_gc_inner(ready)?;
            attempts += 1;
            if self.alloc.free_blocks() <= freed_from && attempts > 64 {
                panic!(
                    "foreground allocation failed: {} free blocks, GC reserve {} — \
                     workload footprint exceeds device capacity",
                    self.alloc.free_blocks(),
                    self.alloc.gc_reserve()
                );
            }
        }
    }

    /// Issue one page program on `region`'s frontier, absorbing injected
    /// program failures: each failure closes the frontier (the suspect
    /// block drains to GC), charges the retry backoff to simulated time,
    /// and retries on a fresh block; after `max_program_retries` failures
    /// the program is forced through on ECC margin as a last resort.
    pub(crate) fn program_region(
        &mut self,
        region: Region,
        for_gc: bool,
        oob: PageOob,
        mut ready: Nanos,
    ) -> Result<(Nanos, Ppn), FlashError> {
        let mut retries = 0;
        loop {
            let block = self.alloc_block(region, for_gc, ready)?;
            let forced = retries >= self.cfg.max_program_retries;
            // The forced program is the write path's last resort. On the
            // host path it may fail unrecoverably (write-fault completion);
            // the GC path never rolls — migration failures are absorbed
            // below and never become host-visible errors. The roll happens
            // before the attempt: old data and the mapping stay intact.
            if forced && !for_gc && self.dev.roll_unrecoverable() {
                self.fh.write_faults += 1;
                self.tracer.instant(
                    Track::Fault,
                    "write_fault",
                    ready,
                    &[("retries", retries as u64)],
                );
                return Err(FlashError::Unrecoverable { at: ready });
            }
            let res = if forced {
                self.dev.program_next_forced(block, ready, oob)
            } else {
                self.dev.program_next(block, ready, oob)
            };
            match res {
                Ok((r, ppn)) => {
                    if forced {
                        self.fh.forced_programs += 1;
                        self.tracer.instant(
                            Track::Fault,
                            "forced_program",
                            r.end,
                            &[("ppn", ppn), ("retries", retries as u64)],
                        );
                    }
                    self.trace_die_span(ppn, "program", "migrate_write", r.start, r.end, r.queued);
                    return Ok((r.end, ppn));
                }
                Err(FlashError::ProgramFailed { at, ppn }) => {
                    self.fh.program_retries += 1;
                    retries += 1;
                    self.tracer.instant(
                        Track::Fault,
                        "program_retry",
                        at,
                        &[("ppn", ppn), ("attempt", retries as u64)],
                    );
                    // The host path abandons the suspect block (it drains
                    // to GC) and retries on a fresh one. The GC path must
                    // NOT: closing a frontier strands the block's free
                    // pages, and a burst of failures mid-round would bleed
                    // the bounded reserve dry. It retries on the next page
                    // — the failed page is already consumed as invalid, so
                    // failures cost pages, never reserve blocks.
                    if !for_gc {
                        self.alloc.close_frontier(region);
                    }
                    ready = at + self.cfg.program_retry_backoff_ns;
                }
                Err(FlashError::PowerLoss) => return Err(FlashError::PowerLoss),
                Err(e) => panic!("flash program failed: {e}"),
            }
        }
    }

    /// Bind a freshly programmed page to its logical page and content.
    pub(crate) fn bind(&mut self, lpn: Lpn, ppn: Ppn, content: ContentId) {
        self.map.set(lpn, ppn);
        self.rmap.add(ppn, lpn);
        self.content_of[ppn as usize] = content.0;
    }

    /// Drop `lpn`'s current mapping, decrementing the backing page's
    /// reference count; the physical page is invalidated only when its last
    /// reference disappears (Sec. III-A).
    pub(crate) fn release_lpn(&mut self, lpn: Lpn, now: Nanos) {
        self.release_lpn_as(lpn, now, ReleaseCause::Overwrite)
            .expect("overwrite releases journal nothing and cannot fail");
    }

    /// [`Ssd::release_lpn`] with the cause spelled out. Trim-caused
    /// releases take the *attributed* paths down the stack
    /// ([`FlashDevice::deallocate`], `FingerprintIndex::release_ppn_trimmed`)
    /// so per-block trim garbage, refcount decay and report counters can
    /// all tell deallocation apart from overwrites; the state transitions
    /// themselves are identical.
    pub(crate) fn release_lpn_as(
        &mut self,
        lpn: Lpn,
        now: Nanos,
        cause: ReleaseCause,
    ) -> Result<(), FlashError> {
        let Some(old) = self.map.clear(lpn) else { return Ok(()) };
        let remaining_lpns = self.rmap.remove(old, lpn);
        let invalidate = |dev: &mut FlashDevice| match cause {
            ReleaseCause::Overwrite => dev.invalidate(old, now),
            ReleaseCause::Trim => dev.deallocate(old, now),
        };
        match self.cfg.scheme {
            Scheme::Baseline => {
                debug_assert_eq!(remaining_lpns, 0, "baseline mapping must be 1:1");
                invalidate(&mut self.dev);
            }
            Scheme::InlineDedup | Scheme::InlineSampled | Scheme::Cagc => {
                let released = match cause {
                    ReleaseCause::Overwrite => self.index.release_ppn(old),
                    ReleaseCause::Trim => self.index.release_ppn_trimmed(old),
                };
                match released {
                    Some(0) => invalidate(&mut self.dev),
                    Some(_) => {} // other logical pages still share the content
                    None => {
                        // Untracked page (CAGC: not yet migrated through
                        // GC; Inline-Sampled: stored on a pre-hash miss).
                        // Exactly one LPN referenced it.
                        debug_assert_eq!(remaining_lpns, 0, "untracked page had sharers");
                        invalidate(&mut self.dev);
                        self.index.record_untracked_invalidation();
                    }
                }
            }
        }
        // A trim's only durable trace is the journaled unmap (an overwrite
        // needs none: the new page's OOB bind supersedes the old one at a
        // higher sequence number).
        if cause == ReleaseCause::Trim {
            self.journal(JournalOp::Unmap { lpn })?;
        }
        Ok(())
    }

    /// The SHA-1 fingerprint of `content`, memoized: bit-identical to
    /// [`Fingerprint::of_content`] but each distinct content is hashed at
    /// most once per thread (wall-clock only — the simulated hash-engine
    /// charge is separate). See [`FingerprintCache::of_content_cached`].
    pub(crate) fn fingerprint_of(&mut self, content: ContentId) -> Fingerprint {
        FingerprintCache::of_content_cached(content)
    }

    /// The stored content of a physical page.
    ///
    /// # Panics
    /// Panics if no content was recorded (reading a free page's content is
    /// a GC logic bug).
    pub(crate) fn content_at(&self, ppn: Ppn) -> ContentId {
        let raw = self.content_of[ppn as usize];
        assert_ne!(raw, NO_CONTENT, "no content recorded at ppn {ppn}");
        ContentId(raw)
    }

    /// The content a host read of `lpn` would return (`None` when the LPN
    /// is unmapped). This is the data-integrity oracle used by tests: after
    /// any sequence of writes, overwrites, trims and GC passes, every
    /// mapped LPN must still return the content most recently written to
    /// it.
    pub fn stored_content(&self, lpn: Lpn) -> Option<ContentId> {
        self.map.get(lpn).map(|ppn| self.content_at(ppn))
    }

    /// The physical page `lpn` currently resolves to, if mapped. Exposed so
    /// crash-recovery tests can recount reference histograms from the
    /// forward map alone, independent of the fingerprint index.
    pub fn mapped_ppn(&self, lpn: Lpn) -> Option<Ppn> {
        self.map.get(lpn)
    }

    /// Reference-count histogram of the live fingerprint index, bucketed
    /// {1, 2, 3, >3} — the distribution Fig. 6 of the paper is built from,
    /// and the quantity crash-recovery tests compare against a from-scratch
    /// recount.
    pub fn ref_histogram(&self) -> [u64; 4] {
        self.index.live_ref_histogram()
    }

    /// Cross-module consistency audit (tests and debugging; O(device)).
    ///
    /// Checks: forward/reverse map agreement; every referenced physical
    /// page is `Valid`; reference counts equal sharer counts; the per-block
    /// valid-page totals equal the number of referenced physical pages; the
    /// fingerprint index is internally consistent.
    pub fn audit(&self) -> Result<(), String> {
        self.index.audit()?;
        if self.rmap.total_refs() != self.map.mapped_count() {
            return Err(format!(
                "rmap holds {} refs but mapping has {} mapped LPNs",
                self.rmap.total_refs(),
                self.map.mapped_count()
            ));
        }
        let mut referenced = 0u64;
        for (ppn, lpns) in self.rmap.iter() {
            referenced += 1;
            if self.dev.page_state(ppn) != cagc_flash::PageState::Valid {
                return Err(format!("referenced ppn {ppn} is not valid"));
            }
            match self.index.refs_of_ppn(ppn) {
                Some(refs) => {
                    if refs as usize != lpns.len() {
                        return Err(format!(
                            "ppn {ppn}: index refcount {refs} != {} sharers",
                            lpns.len()
                        ));
                    }
                }
                None => {
                    if self.cfg.scheme == Scheme::InlineDedup {
                        return Err(format!("inline-dedupe left ppn {ppn} untracked"));
                    }
                    if lpns.len() != 1 {
                        return Err(format!("untracked ppn {ppn} has {} sharers", lpns.len()));
                    }
                }
            }
            for &l in lpns {
                if self.map.get(l) != Some(ppn) {
                    return Err(format!("rmap says lpn {l} -> ppn {ppn}, map disagrees"));
                }
            }
        }
        let device_valid: u64 = (0..self.dev.block_count())
            .map(|b| self.dev.block(b).valid_count() as u64)
            .sum();
        if device_valid != referenced {
            return Err(format!(
                "device holds {device_valid} valid pages, {referenced} are referenced"
            ));
        }
        Ok(())
    }
}
