//! Garbage collection engines: the blind migrator and the content-aware one.
//!
//! This module implements the workflow of Fig. 5:
//!
//! 1. the watermark trigger fires (`Ssd::maybe_gc`);
//! 2. a victim is selected by the configured policy;
//! 3. valid pages are read out; under **CAGC** each page is fingerprinted
//!    on the hash engine *in parallel* with die work (reads of later pages,
//!    programs, the previous victim's erase) and probed in the fingerprint
//!    index: a hit absorbs the page into the existing stored copy
//!    (metadata-only — the redundant write is eliminated), a miss programs
//!    it into a region chosen by its reference count (Sec. III-C);
//! 4. the victim is erased once its last valid page is safely elsewhere,
//!    and the next victim's migration overlaps the erase.
//!
//! Baseline and Inline-Dedupe use the blind migrator: every valid page is
//! copied, no content processing (Inline-Dedupe already deduplicated on the
//! write path, so its GC never sees redundant pages).

use cagc_dedup::Fingerprint;
use cagc_flash::{BlockId, FlashError, JournalOp, PageOob, PageState, Ppn};
use cagc_ftl::{Region, VictimCandidate};
use cagc_sim::time::Nanos;
use cagc_trace::Track;

use crate::config::Scheme;
use crate::ssd::{fp_stamp, Ssd, TraceCtx};

/// A suspended preemptible GC job: one victim whose valid pages are being
/// migrated in [`crate::SsdConfig::gc_slice_pages`]-sized quanta. The page
/// list is a snapshot taken at job start; pages invalidated between slices
/// (foreground overwrites, dedup absorption) are re-checked and skipped
/// when their quantum comes up.
#[derive(Debug, Clone)]
pub(crate) struct GcJob {
    /// Victim block being drained. It stays out of the frontier pool until
    /// its erase, and a new job is never started while one is suspended,
    /// so no other GC path touches it.
    pub victim: BlockId,
    /// Snapshot of the victim's valid pages at job start.
    pub pages: Vec<Ppn>,
    /// Next index into `pages` to migrate.
    pub next: usize,
}

impl Ssd {
    /// Run GC if the free-space watermark demands it. Returns when the
    /// round's *space reclamation* is complete (the last erase): free
    /// blocks exist logically as soon as this returns, so the foreground
    /// proceeds immediately — GC interference reaches user requests through
    /// die contention (reads/programs/erases reserved on the die timelines),
    /// which is exactly how GC hurts foreground I/O in a real SSD and the
    /// effect Figs. 11/12 measure.
    pub(crate) fn maybe_gc(&mut self, now: Nanos) -> Result<Nanos, FlashError> {
        if self.cfg.gc_preempt {
            return self.maybe_gc_preempt(now);
        }
        if !self.trigger.should_start(self.alloc.free_fraction()) {
            return Ok(now);
        }
        self.gc_stats.invocations += 1;
        // GC is always traced (sampling applies to host ops only); the
        // context renames die spans to migrate_read/migrate_write and is
        // restored on exit so a sampled host request resumes its own spans.
        let prev_ctx = self.tctx;
        if self.tracer.is_enabled() {
            self.tctx = TraceCtx::Gc;
        }
        // `cursor` is when the next victim's migration may start;
        // `round_end` tracks the last erase completion. Migration of victim
        // k+1 overlaps the erase of victim k (Sec. III-B parallelism) —
        // per-die timelines serialize same-die conflicts automatically.
        // At the default of one victim per trigger the overlap happens
        // across consecutive triggers through the same die timelines.
        let mut cursor = now;
        let mut round_end = now;
        let mut victims = 0u32;
        let mut stalls = 0u32;
        let mut outcome = Ok(());
        while victims < self.cfg.gc_victims_per_trigger
            && self.trigger.should_start(self.alloc.free_fraction())
        {
            let Some(victim) = self.select_victim(cursor) else { break };
            let free_before = self.alloc.free_blocks();
            let (migrated_done, erase_end) = match self.collect_victim(victim, cursor) {
                Ok(v) => v,
                Err(e) => {
                    // Restore the trace context before propagating (a
                    // mid-GC power loss lands in `Ssd::recover`).
                    outcome = Err(e);
                    break;
                }
            };
            victims += 1;
            cursor = migrated_done;
            round_end = round_end.max(erase_end);
            // Safety valve: a victim so full of valid pages that migrating
            // it consumed as many blocks as it freed makes no net progress;
            // two such victims in a row means the device is effectively out
            // of reclaimable space for this round.
            if self.alloc.free_blocks() <= free_before {
                stalls += 1;
                if stalls >= 2 {
                    break;
                }
            } else {
                stalls = 0;
            }
        }
        self.tctx = prev_ctx;
        outcome?;
        if victims > 0 {
            self.tracer.span(
                Track::Gc,
                "gc_round",
                now,
                round_end,
                &[("victims", u64::from(victims))],
            );
        }
        self.gc_stats.busy_ns += round_end.saturating_sub(now);
        self.gc_active_until = self.gc_active_until.max(round_end);
        Ok(round_end)
    }

    /// Background GC inside an idle window (enabled by
    /// [`crate::SsdConfig::idle_gc`]). If the gap between the previous
    /// request's completion and this arrival exceeds the idle threshold
    /// and free space sits below the high watermark, victims are collected
    /// on the *idle window's* clock — their die reservations largely drain
    /// before the new request arrives, so the foreground barely notices.
    pub(crate) fn maybe_idle_gc(&mut self, arrival: Nanos) -> Result<(), FlashError> {
        if !self.cfg.idle_gc {
            return Ok(());
        }
        let idle_start = self.last_completion();
        let mut t = idle_start.saturating_add(self.cfg.idle_threshold_ns);
        if arrival <= t {
            return Ok(()); // not idle long enough
        }
        while t < arrival && self.alloc.free_fraction() < self.cfg.gc_high {
            let before = self.alloc.free_blocks();
            t = self.force_gc_inner(t)?;
            if self.alloc.free_blocks() <= before {
                break; // nothing reclaimable
            }
        }
        Ok(())
    }

    /// Collect one victim right now, regardless of the watermark. Returns
    /// the erase completion time (or `now` if no block is reclaimable).
    ///
    /// Foreground-triggered GC goes through the watermark path
    /// automatically during [`Ssd::process`]; this entry point exists for
    /// scripted scenarios, tests and idle-time collection policies built
    /// on top of the simulator.
    pub fn force_gc(&mut self, now: Nanos) -> Nanos {
        self.force_gc_inner(now).unwrap_or(now)
    }

    /// Preemptible GC entry (the [`crate::SsdConfig::gc_preempt`] state
    /// machine). Per trigger check:
    ///
    /// * **urgent** (free < `gc_urgent_fraction`): preemption is suspended
    ///   — drain the in-flight job, then collect whole victims until the
    ///   low watermark clears (the escalation leg);
    /// * **triggered** (job pending, or free below the low watermark): run
    ///   exactly one `gc_slice_pages` quantum, then yield back to the
    ///   foreground with the remainder suspended in [`GcJob`];
    /// * otherwise: no work.
    fn maybe_gc_preempt(&mut self, now: Nanos) -> Result<Nanos, FlashError> {
        if self.alloc.free_fraction() < self.cfg.gc_urgent_fraction {
            return self.gc_catch_up(now);
        }
        if self.gc_job.is_none() && !self.trigger.should_start(self.alloc.free_fraction()) {
            return Ok(now);
        }
        let prev_ctx = self.tctx;
        if self.tracer.is_enabled() {
            self.tctx = TraceCtx::Gc;
        }
        let result = self.run_gc_slice(now);
        self.tctx = prev_ctx;
        let end = result?;
        self.gc_stats.busy_ns += end.saturating_sub(now);
        self.gc_active_until = self.gc_active_until.max(end);
        Ok(end)
    }

    /// Urgency escalation: free space fell below the urgent floor, so the
    /// foreground is outrunning sliced reclamation. Run whole victims —
    /// starting with the suspended job, whose erase is the fastest path to
    /// a free block — until the low watermark clears or no victim makes
    /// net progress (the same two-stall valve as the non-preemptible loop).
    fn gc_catch_up(&mut self, now: Nanos) -> Result<Nanos, FlashError> {
        let prev_ctx = self.tctx;
        if self.tracer.is_enabled() {
            self.tctx = TraceCtx::Gc;
        }
        self.tracer.instant(
            Track::Gc,
            "gc_urgent",
            now,
            &[("free_blocks", u64::from(self.alloc.free_blocks()))],
        );
        let mut cursor = now;
        let mut round_end = now;
        let mut stalls = 0u32;
        let mut outcome = Ok(());
        loop {
            let free_before = self.alloc.free_blocks();
            let step = if let Some(job) = self.gc_job.take() {
                self.finish_job(job, cursor)
            } else {
                if self.alloc.free_fraction() >= self.cfg.gc_low {
                    break;
                }
                let Some(victim) = self.select_victim(cursor) else { break };
                self.gc_stats.invocations += 1;
                self.collect_victim(victim, cursor)
            };
            match step {
                Ok((done, erase_end)) => {
                    cursor = done;
                    round_end = round_end.max(erase_end);
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
            if self.alloc.free_blocks() <= free_before {
                stalls += 1;
                if stalls >= 2 {
                    break;
                }
            } else {
                stalls = 0;
            }
        }
        self.tctx = prev_ctx;
        outcome?;
        self.gc_stats.busy_ns += round_end.saturating_sub(now);
        self.gc_active_until = self.gc_active_until.max(round_end);
        Ok(round_end)
    }

    /// One preemption quantum: take the suspended job (or select a fresh
    /// victim and snapshot its valid pages), migrate up to
    /// `gc_slice_pages` still-valid pages, then either erase the drained
    /// victim or suspend the remainder and yield.
    fn run_gc_slice(&mut self, now: Nanos) -> Result<Nanos, FlashError> {
        let mut job = match self.gc_job.take() {
            Some(j) => j,
            None => {
                let Some(victim) = self.select_victim(now) else { return Ok(now) };
                self.gc_stats.invocations += 1;
                let geom = *self.dev.geometry();
                let blk = self.dev.block(victim);
                let mut pages: Vec<Ppn> = Vec::with_capacity(blk.valid_count() as usize);
                blk.for_each_valid(|p| pages.push(geom.ppn(victim, p)));
                GcJob { victim, pages, next: 0 }
            }
        };
        let budget = self.cfg.gc_slice_pages as usize;
        let mut done = now;
        let mut moved = 0u64;
        match self.cfg.scheme {
            Scheme::Baseline | Scheme::InlineDedup | Scheme::InlineSampled => {
                // Pre-filter this quantum's still-valid pages (the snapshot
                // may be stale: a foreground overwrite between slices can
                // have drained a page already), then migrate them as one
                // grouped batch. Blind migration never invalidates other
                // snapshot pages, so the pre-filter cannot go stale
                // mid-batch.
                let mut quantum = std::mem::take(&mut self.valids_scratch);
                quantum.clear();
                while quantum.len() < budget && job.next < job.pages.len() {
                    let ppn = job.pages[job.next];
                    job.next += 1;
                    if self.dev.page_state(ppn) != PageState::Valid {
                        continue;
                    }
                    quantum.push(ppn);
                }
                moved = quantum.len() as u64;
                let res = self.migrate_blind(&quantum, now);
                self.valids_scratch = quantum;
                done = done.max(res?);
            }
            Scheme::Cagc => {
                let mut read_ready = now;
                while moved < budget as u64 && job.next < job.pages.len() {
                    let ppn = job.pages[job.next];
                    job.next += 1;
                    // The snapshot may be stale: a foreground overwrite or a
                    // dedup absorption between slices can have drained this
                    // page already.
                    if self.dev.page_state(ppn) != PageState::Valid {
                        continue;
                    }
                    moved += 1;
                    let (end, next_ready) =
                        self.migrate_page_content_aware(job.victim, ppn, read_ready)?;
                    read_ready = next_ready;
                    done = done.max(end);
                }
            }
        }
        if job.next >= job.pages.len() {
            let erase_end = self.erase_victim(job.victim, done)?;
            self.tracer.span(
                Track::Gc,
                "gc_slice",
                now,
                erase_end,
                &[("pages", moved), ("victim", u64::from(job.victim)), ("erased", 1)],
            );
            Ok(erase_end)
        } else {
            let remaining = (job.pages.len() - job.next) as u64;
            self.tracer.span(
                Track::Gc,
                "gc_slice",
                now,
                done,
                &[("pages", moved), ("victim", u64::from(job.victim)), ("erased", 0)],
            );
            self.tracer
                .instant(Track::Gc, "gc_yield", done, &[("remaining", remaining)]);
            self.gc_job = Some(job);
            Ok(done)
        }
    }

    /// Run a suspended job to completion: migrate every remaining valid
    /// page and erase the victim. Returns `(migration_done, erase_end)`.
    fn finish_job(&mut self, job: GcJob, t: Nanos) -> Result<(Nanos, Nanos), FlashError> {
        let mut done = t;
        match self.cfg.scheme {
            Scheme::Baseline | Scheme::InlineDedup | Scheme::InlineSampled => {
                let mut rest = std::mem::take(&mut self.valids_scratch);
                rest.clear();
                for &ppn in &job.pages[job.next..] {
                    if self.dev.page_state(ppn) == PageState::Valid {
                        rest.push(ppn);
                    }
                }
                let res = self.migrate_blind(&rest, t);
                self.valids_scratch = rest;
                done = done.max(res?);
            }
            Scheme::Cagc => {
                let mut read_ready = t;
                for &ppn in &job.pages[job.next..] {
                    if self.dev.page_state(ppn) != PageState::Valid {
                        continue;
                    }
                    let (end, next_ready) =
                        self.migrate_page_content_aware(job.victim, ppn, read_ready)?;
                    read_ready = next_ready;
                    done = done.max(end);
                }
            }
        }
        let erase_end = self.erase_victim(job.victim, done)?;
        Ok((done, erase_end))
    }

    /// Advance preemptible GC by one quantum on the *caller's* clock —
    /// the host-interface idle hook (`cagc-host`'s pump). Returns the
    /// quantum's completion time when work was done, `None` when there is
    /// nothing to do (preemption disabled, free space already above the
    /// high watermark with no suspended job, or no reclaimable victim).
    /// A mid-slice power loss is absorbed (`None`); the next host command
    /// observes the crash exactly as with [`Ssd::force_gc`].
    pub fn gc_pump(&mut self, now: Nanos) -> Option<Nanos> {
        if !self.cfg.gc_preempt {
            return None;
        }
        if self.gc_job.is_none() && self.alloc.free_fraction() >= self.cfg.gc_high {
            return None;
        }
        let prev_ctx = self.tctx;
        if self.tracer.is_enabled() {
            self.tctx = TraceCtx::Gc;
        }
        let result = self.run_gc_slice(now);
        self.tctx = prev_ctx;
        match result {
            Ok(end) if end > now => {
                self.gc_stats.busy_ns += end - now;
                self.gc_active_until = self.gc_active_until.max(end);
                Some(end)
            }
            Ok(_) | Err(_) => None,
        }
    }

    /// [`Ssd::force_gc`] that propagates a mid-GC power loss instead of
    /// absorbing it.
    pub(crate) fn force_gc_inner(&mut self, now: Nanos) -> Result<Nanos, FlashError> {
        // A suspended preemptible job owns its victim: finish it first —
        // its erase is the fastest path to a free block for the caller
        // (the stalled allocator or the idle-GC window).
        if let Some(job) = self.gc_job.take() {
            let prev_ctx = self.tctx;
            if self.tracer.is_enabled() {
                self.tctx = TraceCtx::Gc;
            }
            let result = self.finish_job(job, now);
            self.tctx = prev_ctx;
            let (_, erase_end) = result?;
            self.tracer
                .span(Track::Gc, "gc_round", now, erase_end, &[("victims", 1)]);
            self.gc_stats.busy_ns += erase_end.saturating_sub(now);
            self.gc_active_until = self.gc_active_until.max(erase_end);
            return Ok(erase_end);
        }
        let Some(victim) = self.select_victim(now) else { return Ok(now) };
        self.gc_stats.invocations += 1;
        let prev_ctx = self.tctx;
        if self.tracer.is_enabled() {
            self.tctx = TraceCtx::Gc;
        }
        let result = self.collect_victim(victim, now);
        self.tctx = prev_ctx;
        let (_, erase_end) = result?;
        self.tracer
            .span(Track::Gc, "gc_round", now, erase_end, &[("victims", 1)]);
        self.gc_stats.busy_ns += erase_end.saturating_sub(now);
        self.gc_active_until = self.gc_active_until.max(erase_end);
        Ok(erase_end)
    }

    /// Snapshot candidates and ask the policy. Open frontiers, free blocks
    /// and blocks whose erase would reclaim nothing are never victims. The
    /// reclaim gain counts stranded free pages — pages a program failure
    /// (or recovery) left behind a closed write pointer — alongside the
    /// invalid ones: without that, a block abandoned before accumulating
    /// any garbage is invisible to GC and its free pages are lost until an
    /// overwrite happens to land there, which under sustained fault
    /// injection starves foreground allocation outright.
    fn select_victim(&mut self, now: Nanos) -> Option<BlockId> {
        if !self.tracer.is_enabled() {
            // Hottest path: Greedy over a fault-free device is answered
            // from the device's dense valid-count index — no per-block
            // walk at all. Fault-free, every closed block is full, so the
            // index's candidate set (and tie-break) is bit-identical to
            // the scan below; with faults armed, stranded non-full blocks
            // exist and the scan stays authoritative.
            if self.selector.kind() == cagc_ftl::VictimKind::Greedy && !self.dev.faults_active() {
                return self.dev.greedy_full_victim();
            }
            // Hot path: stream candidates straight into the policy. The
            // deterministic policies fold the stream in O(1) space; the
            // sampling ones buffer into selector-owned scratch — either
            // way no per-selection Vec is allocated.
            let dev = &self.dev;
            let alloc = &self.alloc;
            let candidates = (0..dev.block_count()).filter_map(|b| {
                if alloc.is_open(b) || dev.is_retired(b) {
                    return None;
                }
                let blk = dev.block(b);
                if blk.is_free() || blk.invalid_count() + blk.free_count() == 0 {
                    return None;
                }
                Some(VictimCandidate {
                    block: b,
                    valid: blk.valid_count(),
                    invalid: blk.invalid_count(),
                    trimmed: blk.trimmed_count(),
                    stranded: blk.free_count(),
                    pages: blk.pages(),
                    erase_count: blk.erase_count(),
                    last_modified: blk.last_modified(),
                })
            });
            return self.selector.select_streaming(candidates, now);
        }
        // Traced path: materialize the snapshot — the stranded-pages gauge
        // and the victim_select instant both want the whole candidate set.
        let mut candidates = Vec::new();
        for b in 0..self.dev.block_count() {
            if self.alloc.is_open(b) || self.dev.is_retired(b) {
                continue;
            }
            let blk = self.dev.block(b);
            if blk.is_free() || blk.invalid_count() + blk.free_count() == 0 {
                continue;
            }
            candidates.push(VictimCandidate {
                block: b,
                valid: blk.valid_count(),
                invalid: blk.invalid_count(),
                trimmed: blk.trimmed_count(),
                stranded: blk.free_count(),
                pages: blk.pages(),
                erase_count: blk.erase_count(),
                last_modified: blk.last_modified(),
            });
        }
        let chosen = self.selector.select(&candidates, now);
        if self.tracer.is_enabled() {
            // The candidate walk just paid for the O(blocks) scan, so the
            // stranded-pages gauge comes for free here.
            let stranded: u64 = candidates.iter().map(|c| u64::from(c.stranded)).sum();
            self.tracer.gauge("stranded_pages", now, stranded);
            if let Some(block) = chosen {
                let c = candidates
                    .iter()
                    .find(|c| c.block == block)
                    .expect("selected victim must be a candidate");
                self.tracer.instant(
                    Track::Gc,
                    "victim_select",
                    now,
                    &[
                        ("block", u64::from(block)),
                        ("valid", u64::from(c.valid)),
                        ("invalid", u64::from(c.invalid)),
                        ("candidates", candidates.len() as u64),
                    ],
                );
            }
        }
        chosen
    }

    /// Collect one victim. Returns `(migration_done, erase_end)`:
    /// the erase is issued at `migration_done` and the *next* victim may
    /// start migrating immediately while it runs.
    fn collect_victim(&mut self, victim: BlockId, t: Nanos) -> Result<(Nanos, Nanos), FlashError> {
        let geom = *self.dev.geometry();
        // The valid-page snapshot lives in a reusable scratch buffer —
        // collection runs thousands of times per replay and the snapshot
        // is dead as soon as the migration pass returns.
        let mut valids = std::mem::take(&mut self.valids_scratch);
        valids.clear();
        self.dev.block(victim).for_each_valid(|p| valids.push(geom.ppn(victim, p)));

        let done = match self.cfg.scheme {
            Scheme::Baseline | Scheme::InlineDedup | Scheme::InlineSampled => {
                self.migrate_blind(&valids, t)
            }
            Scheme::Cagc => self.migrate_content_aware(victim, &valids, t),
        };
        self.valids_scratch = valids;
        let done = done?;
        let erase_end = self.erase_victim(victim, done)?;
        Ok((done, erase_end))
    }

    /// Erase a fully-drained victim at `done`: snapshot trim attribution,
    /// issue the erase, and fold the outcome (release / bad-block
    /// retirement) into the allocator. Returns the erase completion time.
    fn erase_victim(&mut self, victim: BlockId, done: Nanos) -> Result<Nanos, FlashError> {
        let geom = *self.dev.geometry();
        // Snapshot before the erase resets the block's trim attribution:
        // every trim-invalidated page reclaimed here is a migration avoided.
        self.gc_stats.trim_reclaimed_pages += self.dev.block(victim).trimmed_count() as u64;
        let erase_end = match self.dev.erase(victim, done) {
            Ok(r) => {
                if self.tracer.is_enabled() {
                    let track = Track::Die {
                        channel: geom.die_of_block(victim) / geom.dies_per_channel,
                        die: geom.die_of_block(victim),
                    };
                    self.tracer.span(
                        track,
                        "erase",
                        r.start,
                        r.end,
                        &[("block", u64::from(victim)), ("queued_ns", r.queued)],
                    );
                }
                self.alloc.release(victim);
                self.gc_stats.blocks_erased += 1;
                r.end
            }
            Err(FlashError::EraseFailed { at, .. }) => {
                self.tracer.instant(
                    Track::Fault,
                    "erase_failed_retired",
                    at,
                    &[("block", u64::from(victim))],
                );
                // The device already moved the block to its bad-block
                // table; mirror the retirement in the allocator so the
                // block leaves the frontier/victim pool for good. Every
                // valid page was migrated before the erase was issued, so
                // no data is stranded — only capacity is lost.
                self.alloc.retire(victim);
                self.first_retirement_ns.get_or_insert(at);
                at
            }
            Err(FlashError::PowerLoss) => return Err(FlashError::PowerLoss),
            Err(e) => panic!("GC erase of block {victim} failed: {e}"),
        };
        Ok(erase_end)
    }

    /// Blind migration: read + rewrite every valid page (Fig. 3), in two
    /// grouped passes. Pass 1 issues every read + program back-to-back
    /// (this fixes the flash timing — identical to the old per-page loop,
    /// since reads all started at `t` and programs all queued in the same
    /// order); pass 2 then updates mapping, reverse-map, index and
    /// invalidation state for the whole batch. Grouping the metadata pass
    /// keeps it in cache and lets each relocation take the O(1)
    /// [`cagc_ftl::ReverseMap::relocate`] path. Blind migration never
    /// touches other snapshot pages (no dedup absorption), so deferring
    /// the metadata updates cannot change what later pages observe; each
    /// source is invalidated at its *own* program-completion time, exactly
    /// as before.
    fn migrate_blind(&mut self, valids: &[Ppn], t: Nanos) -> Result<Nanos, FlashError> {
        let mut done = t;
        let mut batch = std::mem::take(&mut self.gc_batch);
        batch.clear();
        for &ppn in valids {
            self.gc_stats.pages_scanned += 1;
            let read_end = match self.read_flash(ppn, t) {
                Ok(v) => v,
                Err(e) => {
                    self.gc_batch = batch;
                    return Err(e);
                }
            };
            // Inline schemes track migrated pages in the index; carry the
            // fingerprint stamp so the relocated copy stays recoverable.
            let stamp = self.index.fp_of_ppn(ppn).map(|fp| fp_stamp(&fp));
            match self.program_region(Region::Hot, true, PageOob::gc(stamp), read_end) {
                Ok((end, new_ppn)) => {
                    // The program physically copied the cells: record the
                    // content before any later fallible step can tear the
                    // relocation (recovery rebuilds the rest from OOB +
                    // journal whether or not pass 2 ran).
                    self.content_of[new_ppn as usize] = self.content_of[ppn as usize];
                    batch.push((ppn, new_ppn, end));
                    done = done.max(end);
                }
                Err(e) => {
                    self.gc_batch = batch;
                    return Err(e);
                }
            }
        }
        for i in 0..batch.len() {
            let (old, new, end) = batch[i];
            if let Err(e) = self.remap_sharers(old, new) {
                self.gc_batch = batch;
                return Err(e);
            }
            if self.index.fp_of_ppn(old).is_some() {
                self.index.relocate(old, new);
            }
            self.dev.invalidate(old, end);
            self.gc_stats.pages_migrated += 1;
        }
        batch.clear();
        self.gc_batch = batch;
        Ok(done)
    }

    /// Content-aware migration (Fig. 5): hash each valid page on the hash
    /// engine, probe the index, and either absorb (hit) or place by
    /// reference count (miss / stored copy).
    fn migrate_content_aware(
        &mut self,
        victim: BlockId,
        valids: &[Ppn],
        t: Nanos,
    ) -> Result<Nanos, FlashError> {
        let mut done = t;
        let mut read_ready = t;
        for &ppn in valids {
            // A promotion earlier in this pass may have already drained
            // this page (its stored copy lived later in the same victim).
            if self.dev.page_state(ppn) != PageState::Valid {
                continue;
            }
            let (end, next_ready) = self.migrate_page_content_aware(victim, ppn, read_ready)?;
            read_ready = next_ready;
            done = done.max(end);
        }
        Ok(done)
    }

    /// Content-aware migration of one page (the Fig. 5 per-page pipeline):
    /// read, fingerprint on the hash engine, probe the index, then absorb
    /// or place by reference count. Returns `(completion, next_read_ready)`
    /// — the second value carries the hash-serialization stall of the
    /// `overlap_hash = false` ablation to the following page.
    fn migrate_page_content_aware(
        &mut self,
        victim: BlockId,
        ppn: Ppn,
        read_ready: Nanos,
    ) -> Result<(Nanos, Nanos), FlashError> {
        self.gc_stats.pages_scanned += 1;
        let read_end = self.read_flash(ppn, read_ready)?;
        // Fingerprint on the dedicated engine. With overlap enabled the
        // engine runs beside the dies; the ablation serializes the
        // pipeline by stalling the next read until the hash finishes.
        let h = self.hash.hash_page(read_end);
        self.tracer
            .span(Track::Hash, "fingerprint", h.start, h.end, &[("ppn", ppn)]);
        let next_ready = if self.cfg.overlap_hash { read_ready } else { h.end };
        let decided = h.end + self.cfg.lookup_ns;
        let content = self.content_at(ppn);
        // Memoized: the simulated hash cost was charged above; the memo
        // only avoids recomputing the same SHA-1 on the wall clock.
        let fp = self.fingerprint_of(content);

        let end = match self.index.lookup(&fp) {
            Some(entry) if entry.ppn != ppn => {
                // Redundant page: the content already has a stored copy
                // elsewhere. Absorb all sharers — no flash write.
                self.gc_stats.dedup_hits += 1;
                self.tracer.instant(
                    Track::Gc,
                    "dedup_drop",
                    decided,
                    &[("from", ppn), ("to", entry.ppn), ("refs", u64::from(entry.refs))],
                );
                self.absorb_into(ppn, entry.ppn, &fp, decided)?
            }
            Some(entry) => {
                // This page *is* the stored copy: migrate it, choosing
                // the region by its current reference count.
                let dest = self.region_for_refs(entry.refs);
                let src = self.alloc.region_of(victim).unwrap_or(Region::Hot);
                let (end, _) = self.relocate_page(ppn, dest, Some(fp_stamp(&fp)), decided)?;
                self.gc_stats.pages_migrated += 1;
                match (src, dest) {
                    (Region::Hot, Region::Cold) => self.gc_stats.promotions += 1,
                    (Region::Cold, Region::Hot) => self.gc_stats.demotions += 1,
                    _ => {}
                }
                end
            }
            None => {
                // First time this content passes through GC: fingerprint
                // it into the index and place it (a single sharer ⇒ hot).
                let sharers = self.rmap.count(ppn) as u32;
                debug_assert!(sharers >= 1, "valid page with no sharers");
                let dest = self.region_for_refs(sharers);
                let (end, new_ppn) = self.relocate_page(ppn, dest, Some(fp_stamp(&fp)), decided)?;
                self.index.insert(fp, new_ppn, sharers);
                self.gc_stats.pages_migrated += 1;
                end
            }
        };
        Ok((end, next_ready))
    }

    /// Sec. III-C placement rule: refcount above the threshold ⇒ cold.
    fn region_for_refs(&self, refs: u32) -> Region {
        if self.cfg.placement && refs > self.cfg.cold_threshold {
            Region::Cold
        } else {
            Region::Hot
        }
    }

    /// Dedup hit during migration: remap every sharer of `from` onto the
    /// stored copy at `to`, bump its refcount, and invalidate `from`
    /// without a write. May then *promote* the stored copy to the cold
    /// region if the merge pushed its refcount across the threshold
    /// (Fig. 5's "Ref == threshold?" branch). Returns the completion time.
    fn absorb_into(
        &mut self,
        from: Ppn,
        to: Ppn,
        fp: &Fingerprint,
        now: Nanos,
    ) -> Result<Nanos, FlashError> {
        let mut sharers = std::mem::take(&mut self.sharers_scratch);
        self.rmap.take_into(from, &mut sharers);
        debug_assert!(!sharers.is_empty(), "absorbing a page with no sharers");
        let n = sharers.len() as u32;
        for &l in &sharers {
            self.map.set(l, to);
            self.rmap.add(to, l);
            // Durable record *before* `from` is invalidated (and its block
            // eventually erased) — this is the dedup-during-GC crash
            // window recovery has to close: a crash between here and the
            // victim erase must find every sharer already remapped.
            if let Err(e) = self.journal(JournalOp::Remap { lpn: l, ppn: to }) {
                self.sharers_scratch = sharers;
                return Err(e);
            }
        }
        self.sharers_scratch = sharers;
        let new_refs = self.index.add_refs(fp, n);
        self.dev.invalidate(from, now);

        // Promotion: the stored copy lives in a hot-region block but its
        // refcount now exceeds the threshold — move it cold as part of this
        // GC pass. Two exclusions keep this from wasting writes: a copy
        // still sitting in an *open* frontier was programmed moments ago
        // (typically by this very GC pass — rewriting it immediately would
        // be pure churn; it will be placed cold when its block is
        // collected), and a copy inside the current victim will be
        // migrated, with the correct region, when its turn comes.
        let stored_block = self.dev.geometry().block_of(to);
        if self.cfg.placement
            && new_refs > self.cfg.cold_threshold
            && self.alloc.region_of(stored_block) == Some(Region::Hot)
            && !self.alloc.is_open(stored_block)
        {
            let read_end = self.read_flash(to, now)?;
            let (end, _) = self.relocate_page(to, Region::Cold, Some(fp_stamp(fp)), read_end)?;
            self.gc_stats.pages_migrated += 1;
            self.gc_stats.promotions += 1;
            return Ok(end);
        }
        Ok(now)
    }

    /// Move one valid page to the `dest` frontier: program a copy, remap
    /// every sharer (each remap journaled — the durable record a crash
    /// before the source's erase recovers from), carry index/content
    /// metadata, and invalidate the source. Returns the program completion
    /// time and the new PPN.
    fn relocate_page(
        &mut self,
        ppn: Ppn,
        dest: Region,
        fp_stamp: Option<u64>,
        ready: Nanos,
    ) -> Result<(Nanos, Ppn), FlashError> {
        let (end, new_ppn) = self.program_region(dest, true, PageOob::gc(fp_stamp), ready)?;
        // The program physically copied the cells: record the content
        // before any later fallible step can tear this relocation.
        self.content_of[new_ppn as usize] = self.content_of[ppn as usize];
        self.remap_sharers(ppn, new_ppn)?;
        if self.index.fp_of_ppn(ppn).is_some() {
            self.index.relocate(ppn, new_ppn);
        }
        self.dev.invalidate(ppn, end);
        Ok((end, new_ppn))
    }

    /// Point every sharer of `old` at `new` (a freshly-programmed copy with
    /// no sharers of its own), in forward map, reverse map and — when fault
    /// injection is armed — the journal.
    ///
    /// The fault-free fast path moves the reverse-map slot wholesale
    /// ([`cagc_ftl::ReverseMap::relocate`], O(1) and allocation-free) after
    /// retargeting the forward entries in place; journaling is skipped
    /// outright because [`Ssd::journal`] is a no-op without faults armed.
    /// With faults armed the sharer set is buffered through scratch so each
    /// remap can be journaled between the map updates, byte-identical to
    /// the original per-sharer loop.
    fn remap_sharers(&mut self, old: Ppn, new: Ppn) -> Result<(), FlashError> {
        if self.dev.faults_active() {
            let mut sharers = std::mem::take(&mut self.sharers_scratch);
            self.rmap.take_into(old, &mut sharers);
            debug_assert!(!sharers.is_empty(), "relocating an unreferenced page");
            for &l in &sharers {
                self.map.set(l, new);
                self.rmap.add(new, l);
                if let Err(e) = self.journal(JournalOp::Remap { lpn: l, ppn: new }) {
                    self.sharers_scratch = sharers;
                    return Err(e);
                }
            }
            self.sharers_scratch = sharers;
        } else {
            debug_assert!(self.rmap.count(old) > 0, "relocating an unreferenced page");
            for &l in self.rmap.lpns(old) {
                self.map.set(l, new);
            }
            self.rmap.relocate(old, new);
        }
        Ok(())
    }
}
