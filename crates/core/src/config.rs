//! Scheme selection and full simulator configuration.

use cagc_flash::{FaultConfig, UllConfig};
use cagc_ftl::VictimKind;
use cagc_sim::time::{us, Nanos};

/// Which FTL scheme the SSD runs — the three systems the paper compares,
/// plus the CAFTL-style sampled variant from its related work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No deduplication anywhere (the paper's "Baseline").
    Baseline,
    /// Dedup on the foreground write path: every written page is hashed and
    /// looked up *before* it is programmed ("Inline-Dedupe").
    InlineDedup,
    /// CAFTL-style inline dedup with pre-hashing (Chen et al., FAST'11,
    /// discussed in the paper's Sec. I/V): a cheap pre-hash screens every
    /// write, and only pages whose pre-hash matches a previously stored
    /// page pay the full fingerprint. First copies of duplicated content
    /// are stored unfingerprinted — CAFTL's deliberate coverage loss in
    /// exchange for taking most hashing off the critical path.
    InlineSampled,
    /// The contribution: dedup embedded in GC migration with hash/erase
    /// overlap, plus reference-count-based hot/cold placement ("CAGC").
    Cagc,
}

impl Scheme {
    /// The paper's three schemes, in the order Fig. 11 presents them.
    pub const ALL: [Scheme; 3] = [Scheme::InlineDedup, Scheme::Baseline, Scheme::Cagc];

    /// Every implemented scheme (the paper's three plus the CAFTL-style
    /// comparator).
    pub const EXTENDED: [Scheme; 4] =
        [Scheme::InlineDedup, Scheme::InlineSampled, Scheme::Baseline, Scheme::Cagc];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::InlineDedup => "Inline-Dedupe",
            Scheme::InlineSampled => "Inline-Sampled",
            Scheme::Cagc => "CAGC",
        }
    }
}

/// Complete configuration of one simulated SSD.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Device shape and timing (Table I).
    pub flash: UllConfig,
    /// FTL scheme under test.
    pub scheme: Scheme,
    /// Victim-selection policy (paper default: Greedy).
    pub victim: VictimKind,
    /// Seed for the Random victim policy.
    pub victim_seed: u64,
    /// Reference-count threshold for cold placement (Sec. III-C, "e.g. 1"):
    /// pages with refcount strictly greater go to the cold region.
    pub cold_threshold: u32,
    /// GC trigger: collect when the free-block fraction drops below this
    /// (Table I: 0.20).
    pub gc_low: f64,
    /// GC hysteresis: keep collecting until free fraction reaches this.
    pub gc_high: f64,
    /// Free blocks withheld for GC migration (deadlock guard).
    pub gc_reserve_blocks: u32,
    /// Victims collected per trigger check. FlashSim-style FTLs clean one
    /// block per trigger and re-check on the next write, keeping GC
    /// interference fine-grained; larger values batch reclamation into
    /// longer, burstier rounds.
    pub gc_victims_per_trigger: u32,
    /// Controller-only service for a read of an unmapped LPN.
    pub read_miss_ns: Nanos,
    /// Fingerprint index probe/update cost on the critical path.
    pub lookup_ns: Nanos,
    /// Honor host trim (deallocate) hints. When true (default), a trim
    /// releases each logical page immediately: the mapping clears, the
    /// backing page's reference count drops, and a page whose last
    /// reference disappears is invalidated in place — attributed as trim
    /// garbage for victim scoring (dynamic overprovisioning, Frankie
    /// et al.). When false the trim is acknowledged (counted, charged
    /// `trim_ns`) but ignored: data stays live and GC keeps migrating it —
    /// the trim-blind device the `trim_sensitivity` study compares against.
    pub honor_trim: bool,
    /// Controller metadata cost to service one trim request (no die work:
    /// a trim touches mapping tables only, never NAND).
    pub trim_ns: Nanos,
    /// CAGC ablation: when false, GC hashing is serialized into the
    /// migration pipeline instead of overlapping on the hash engine
    /// (isolates the parallelization claim of Sec. III-B).
    pub overlap_hash: bool,
    /// CAGC ablation: when false, all pages go to the hot region regardless
    /// of refcount (isolates the placement claim of Sec. III-C).
    pub placement: bool,
    /// Background GC in idle periods (Sec. III-B: "flash-based SSDs
    /// utilize the system idle periods to conduct GC"). When the gap since
    /// the last request exceeds `idle_threshold_ns` and free space is
    /// below the high watermark, victims are collected inside the idle
    /// window instead of on the foreground's clock.
    pub idle_gc: bool,
    /// Idle gap that counts as "the system is idle".
    pub idle_threshold_ns: Nanos,
    /// Per-page pre-hash cost for [`Scheme::InlineSampled`] (a cheap CRC
    /// computed by the controller; CAFTL-style).
    pub prehash_ns: Nanos,
    /// Fault-injection plan for the flash device. The default
    /// ([`FaultConfig::none`]) injects nothing and draws nothing from the
    /// RNG, so fault-free runs stay bit-identical to builds without the
    /// fault subsystem.
    pub faults: FaultConfig,
    /// Program-failure handling: how many fresh frontier blocks to try
    /// before falling back to a forced program on the last one.
    pub max_program_retries: u32,
    /// Simulated controller time charged per program retry (frontier
    /// close + re-allocate + re-issue).
    pub program_retry_backoff_ns: Nanos,
    /// Read ECC handling: how many device re-reads to attempt before
    /// invoking the heroic soft-decode path.
    pub max_read_retries: u32,
    /// Simulated cost of the heroic ECC soft-decode invoked when re-reads
    /// keep failing (the data is always recovered; only time is lost).
    pub ecc_decode_ns: Nanos,
    /// Read-only degradation floor: when bad-block retirement shrinks the
    /// usable pool to `gc_reserve_blocks + read_only_floor_blocks` or
    /// fewer, the device stops accepting writes and trims.
    pub read_only_floor_blocks: u32,
    /// Preemptible GC scheduling (time-efficient GC, Nagel et al.). When
    /// true, victim collection is sliced into [`Self::gc_slice_pages`]-page
    /// quanta: each foreground write that trips the low watermark advances
    /// the in-flight victim by one quantum and then *yields* back to host
    /// commands instead of migrating the whole block inline. The remainder
    /// is carried as a suspended GC job, resumed on later triggers, idle
    /// windows ([`Self::idle_gc`]) or explicit [`crate::Ssd::gc_pump`]
    /// calls. When false (default) GC is the paper's run-to-completion
    /// loop — byte-identical behavior to builds without this knob.
    pub gc_preempt: bool,
    /// Pages migrated per preemption quantum (only with
    /// [`Self::gc_preempt`]). Smaller slices mean finer-grained yielding —
    /// lower foreground tail latency but more scheduling overhead.
    pub gc_slice_pages: u32,
    /// Urgency escalation floor for preemptible GC: when the free-block
    /// fraction falls below this, preemption is suspended and GC runs
    /// whole victims to completion until the low watermark clears (the
    /// high/low watermark pair of the ISSUE's state machine; guards
    /// against the foreground outrunning sliced reclamation).
    pub gc_urgent_fraction: f64,
}

impl SsdConfig {
    /// The paper's configuration for a given scheme at the given device
    /// scale.
    ///
    /// The Table I "GC Watermark 20 %" is applied to the **over-
    /// provisioning pool**: GC starts when the free-block count falls to
    /// the reserve plus 20 % of the OP blocks. (Applied to the whole
    /// device, a 20 % free-space trigger would be unreachable on a drive
    /// whose logical space — 93 % of physical — is nearly full, which is
    /// exactly the regime the paper's evaluation exercises.)
    pub fn paper(flash: UllConfig, scheme: Scheme) -> Self {
        let geom = flash.geometry();
        let total_blocks = geom.total_blocks();
        // Blocks needed to hold the full logical space, and what remains.
        let logical_blocks =
            (flash.logical_pages() as f64 / geom.pages_per_block as f64).ceil() as u32;
        let op_blocks = total_blocks.saturating_sub(logical_blocks).max(4);
        // 1% of blocks, at least 4: enough to absorb one worst-case
        // victim's valid pages plus rotation of both GC frontiers.
        let gc_reserve_blocks = (total_blocks / 100).max(4);
        let low_blocks = gc_reserve_blocks as f64 + flash.gc_watermark * op_blocks as f64;
        let high_blocks = low_blocks + (0.1 * op_blocks as f64).max(3.0);
        Self {
            flash,
            scheme,
            victim: VictimKind::Greedy,
            victim_seed: 0xCA6C,
            cold_threshold: 1,
            gc_low: (low_blocks / total_blocks as f64).min(0.90),
            gc_high: (high_blocks / total_blocks as f64).min(0.95),
            gc_reserve_blocks,
            gc_victims_per_trigger: 1,
            read_miss_ns: us(1),
            lookup_ns: us(1),
            honor_trim: true,
            trim_ns: us(1),
            overlap_hash: true,
            placement: true,
            idle_gc: false,
            idle_threshold_ns: us(500),
            prehash_ns: us(2),
            faults: FaultConfig::none(),
            max_program_retries: 4,
            program_retry_backoff_ns: us(20),
            max_read_retries: 2,
            ecc_decode_ns: us(5),
            read_only_floor_blocks: 4,
            gc_preempt: false,
            gc_slice_pages: 8,
            // Halfway between the hard reserve and the low watermark:
            // enough headroom that whole-victim catch-up can still clear
            // the trigger before the allocator stalls.
            gc_urgent_fraction: ((gc_reserve_blocks as f64 + 0.05 * op_blocks as f64)
                / total_blocks as f64)
                .min(0.85),
        }
    }

    /// Paper config on the tiny test device.
    pub fn tiny(scheme: Scheme) -> Self {
        Self::paper(UllConfig::tiny_for_tests(), scheme)
    }

    /// Sanity-check the configuration; called by the simulator constructor.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.gc_low && self.gc_low <= self.gc_high && self.gc_high < 1.0) {
            return Err(format!("bad GC watermarks [{}, {}]", self.gc_low, self.gc_high));
        }
        let blocks = self.flash.geometry().total_blocks();
        if self.gc_reserve_blocks + 2 >= blocks {
            return Err(format!(
                "gc_reserve_blocks {} too large for {blocks} blocks",
                self.gc_reserve_blocks
            ));
        }
        if self.scheme == Scheme::Cagc && self.cold_threshold == 0 {
            return Err("cold_threshold 0 would send every page cold".into());
        }
        if self.gc_preempt {
            if self.gc_slice_pages == 0 {
                return Err("gc_slice_pages must be >= 1".into());
            }
            if !(0.0 < self.gc_urgent_fraction && self.gc_urgent_fraction <= self.gc_low) {
                return Err(format!(
                    "gc_urgent_fraction {} must sit in (0, gc_low {}]",
                    self.gc_urgent_fraction, self.gc_low
                ));
            }
        }
        self.faults.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = SsdConfig::tiny(Scheme::Cagc);
        assert_eq!(c.victim, VictimKind::Greedy);
        assert_eq!(c.cold_threshold, 1);
        assert!(c.overlap_hash && c.placement);
        assert_eq!(c.gc_victims_per_trigger, 1);
        // The 20% watermark applies to the OP pool: the low trigger sits
        // between the GC reserve and the reserve plus all OP blocks.
        let total = c.flash.geometry().total_blocks() as f64;
        let low_blocks = c.gc_low * total;
        assert!(low_blocks > c.gc_reserve_blocks as f64);
        assert!(low_blocks < total * c.flash.op_ratio + c.gc_reserve_blocks as f64 + 2.0);
        assert!(c.gc_high > c.gc_low);
        c.validate().unwrap();
    }

    #[test]
    fn trims_are_honored_by_default() {
        let c = SsdConfig::tiny(Scheme::Baseline);
        assert!(c.honor_trim, "paper config honors trim hints");
        assert!(c.trim_ns > 0, "trim service has an explicit metadata cost");
    }

    #[test]
    fn scheme_names_match_figures() {
        assert_eq!(Scheme::Baseline.name(), "Baseline");
        assert_eq!(Scheme::InlineDedup.name(), "Inline-Dedupe");
        assert_eq!(Scheme::Cagc.name(), "CAGC");
    }

    #[test]
    fn validation_catches_bad_watermarks() {
        let mut c = SsdConfig::tiny(Scheme::Baseline);
        c.gc_low = 0.5;
        c.gc_high = 0.3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_oversized_reserve() {
        let mut c = SsdConfig::tiny(Scheme::Baseline);
        c.gc_reserve_blocks = c.flash.geometry().total_blocks();
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_config_has_no_faults() {
        let c = SsdConfig::tiny(Scheme::Cagc);
        assert!(!c.faults.is_active(), "paper config is fault-free");
        assert!(c.faults.crash_at_op.is_none());
        assert!(c.max_program_retries >= 1);
        c.validate().unwrap();
    }

    #[test]
    fn preempt_knobs_default_off_and_validate() {
        let mut c = SsdConfig::tiny(Scheme::Cagc);
        assert!(!c.gc_preempt, "preemption must default off (byte-identical baseline)");
        c.gc_preempt = true;
        c.validate().unwrap();
        assert!(0.0 < c.gc_urgent_fraction && c.gc_urgent_fraction <= c.gc_low);
        c.gc_slice_pages = 0;
        assert!(c.validate().is_err());
        c.gc_slice_pages = 8;
        c.gc_urgent_fraction = c.gc_low + 0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_fault_probabilities() {
        let mut c = SsdConfig::tiny(Scheme::Baseline);
        c.faults.program_fail_prob = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_threshold_for_cagc() {
        let mut c = SsdConfig::tiny(Scheme::Cagc);
        c.cold_threshold = 0;
        assert!(c.validate().is_err());
        let mut b = SsdConfig::tiny(Scheme::Baseline);
        b.cold_threshold = 0; // irrelevant for baseline
        assert!(b.validate().is_ok());
    }
}
