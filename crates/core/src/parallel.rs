//! Parallel experiment execution.
//!
//! Each simulation is single-threaded and deterministic; the experiment
//! grid (workload × scheme × policy) is embarrassingly parallel. This
//! module fans the grid out over the [`cagc_harness::pool`] scoped
//! worker pool — the repro harness regenerates whole figures in one
//! pass, and the deterministic partitioning guarantees the worker count
//! never changes results.
//!
//! Cells that replay through the multi-queue host interface
//! (`cagc-host`, e.g. the queue-depth sweep) don't fit the
//! `(SsdConfig, &Trace)` shape; they call
//! [`cagc_harness::pool::map_ordered`] directly with the same
//! determinism guarantee.

use cagc_workloads::Trace;

use crate::config::SsdConfig;
use crate::report::RunReport;
use crate::ssd::Ssd;

/// Run one cell: build an SSD per the config and replay the trace.
pub fn run_cell(config: SsdConfig, trace: &Trace) -> RunReport {
    Ssd::new(config).replay(trace)
}

/// Run every `(config, trace)` cell, using up to `workers` OS threads
/// (0 ⇒ the machine's available parallelism). Results come back in input
/// order regardless of scheduling.
pub fn run_cells(cells: &[(SsdConfig, &Trace)], workers: usize) -> Vec<RunReport> {
    cagc_harness::pool::map_ordered(cells, workers, |(config, trace)| {
        run_cell(config.clone(), trace)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use cagc_workloads::SynthConfig;

    fn tiny_trace(seed: u64) -> Trace {
        SynthConfig {
            requests: 300,
            logical_pages: 2_000,
            seed,
            prefill_fraction: 0.5,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_cells(&[], 4).is_empty());
    }

    #[test]
    fn parallel_equals_serial() {
        let trace = tiny_trace(1);
        let cells: Vec<(SsdConfig, &Trace)> = Scheme::ALL
            .iter()
            .map(|&s| (SsdConfig::tiny(s), &trace))
            .collect();
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            // Full determinism: identical counters and latency stats.
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.gc, b.gc);
            assert_eq!(a.total_programs, b.total_programs);
            assert_eq!(a.all.count, b.all.count);
            assert_eq!(a.all.max_ns, b.all.max_ns);
            assert!((a.all.mean_ns - b.all.mean_ns).abs() < 1e-9);
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let t1 = tiny_trace(1);
        let t2 = tiny_trace(2);
        let cells = vec![
            (SsdConfig::tiny(Scheme::Baseline), &t1),
            (SsdConfig::tiny(Scheme::Cagc), &t2),
            (SsdConfig::tiny(Scheme::InlineDedup), &t1),
        ];
        let out = run_cells(&cells, 3);
        assert_eq!(out[0].scheme, "Baseline");
        assert_eq!(out[1].scheme, "CAGC");
        assert_eq!(out[2].scheme, "Inline-Dedupe");
    }
}
