//! # cagc-core — the CAGC scheme and its comparators
//!
//! The paper's contribution, assembled from the substrate crates: a full
//! SSD simulator ([`Ssd`]) that replays content-carrying traces under one
//! of three FTL schemes ([`Scheme`]):
//!
//! * **Baseline** — no deduplication; GC blindly migrates valid pages.
//! * **Inline-Dedupe** — CAFTL-style dedup on the foreground write path;
//!   the 14 µs fingerprint latency (Table I) sits in front of every 16 µs
//!   page program, which is why it hurts ultra-low-latency flash (Fig. 2).
//! * **CAGC** — the Content-Aware Garbage Collection scheme: dedup embedded
//!   in GC migration, hash computation overlapped with page movement and
//!   block erase on a dedicated engine, and reference-count-based hot/cold
//!   page placement (Secs. III-B, III-C).
//!
//! ```
//! use cagc_core::{Scheme, Ssd, SsdConfig};
//! use cagc_workloads::FiuWorkload;
//!
//! let trace = FiuWorkload::Mail.synth_config(4_000, 2_000, 7).generate();
//! let mut ssd = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
//! let report = ssd.replay(&trace);
//! assert!(report.gc.dedup_hits > 0); // GC found redundant pages
//! ssd.audit().unwrap(); // full cross-structure consistency
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod gc;
pub mod parallel;
pub mod recovery;
pub mod report;
pub mod ssd;

pub use config::{Scheme, SsdConfig};
pub use parallel::{run_cell, run_cells};
pub use recovery::RecoveryReport;
pub use report::{FaultReport, HealthLog, LatencySummary, RunReport, TrafficTotals};
pub use ssd::{CmdStatus, Completion, Ssd};

// Tracing entry points, re-exported so callers enabling tracing on an
// [`Ssd`] don't need a direct cagc-trace dependency.
pub use cagc_trace::{TelemetryReport, TraceConfig, Tracer};
