//! # cagc-flash — NAND flash device model
//!
//! The physical-device substrate of the CAGC reproduction: the part of
//! FlashSim that models NAND geometry, page/block state, operation latencies
//! and per-die/per-channel contention. The FTL (`cagc-ftl`) and the schemes
//! (`cagc-core`) sit on top of this crate.
//!
//! ## Model
//!
//! * **Geometry** ([`Geometry`]): channels × dies × planes × blocks × pages,
//!   with a flat physical page number ([`Ppn`]) address space and cheap
//!   address arithmetic.
//! * **State machine** ([`Block`], [`PageState`]): every page is `Free`,
//!   `Valid` or `Invalid`; programs must land on free pages **in sequential
//!   page order within a block** (the NAND program constraint), and only a
//!   whole block can be erased.
//! * **Timing** ([`Timing`], [`UllConfig`]): Table I of the paper — 12 µs
//!   read, 16 µs program, 1.5 ms erase, 4 KiB pages, 64-page (256 KiB)
//!   blocks, 7 % over-provisioning, 20 % GC watermark — plus a conventional
//!   NVMe preset for contrast experiments.
//! * **Contention** ([`FlashDevice`]): each die is a single-server
//!   [`cagc_sim::Timeline`]; reads/programs/erases serialize per die while
//!   different dies proceed in parallel, which is exactly how GC interferes
//!   with foreground traffic in the paper.
//!
//! * **Faults** ([`FaultConfig`], [`FlashError`]): a seeded, deterministic
//!   fault plan injects program/erase failures, read ECC errors, per-block
//!   wear-out and a power-loss point; the device keeps the durable
//!   metadata (per-page OOB, mapping-delta journal, bad-block table) a
//!   recovery pass rebuilds the FTL from. With the default (empty) config
//!   the device is bit-identical to the fault-free model.
//!
//! ```
//! use cagc_flash::{FlashDevice, PageOob, UllConfig};
//!
//! let cfg = UllConfig::tiny_for_tests();
//! let mut dev = FlashDevice::new(cfg.geometry(), cfg.timing());
//! // Program block 0's next page, binding logical page 9 in its OOB.
//! let (reservation, ppn) = dev.program_next(0, 0, PageOob::host(9, None)).unwrap();
//! assert_eq!(reservation.end, 16_000); // 16us program, idle die
//! assert_eq!(ppn, dev.geometry().ppn(0, 0));
//! assert_eq!(dev.oob(ppn).lpn, Some(9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod addr;
pub mod bitmap;
pub mod block;
pub mod config;
pub mod device;
pub mod fault;
pub mod geometry;
pub mod stats;
pub mod timing;

pub use addr::{BlockId, PageOffset, Ppn, NO_PPN};
pub use block::{Block, PageState};
pub use config::UllConfig;
pub use device::{FlashDevice, OpKind};
pub use fault::{FaultConfig, FaultPlan, FlashError, JournalEntry, JournalOp, PageOob};
pub use geometry::Geometry;
pub use stats::DeviceStats;
pub use timing::Timing;
