//! A compact fixed-size bitmap.
//!
//! Per-page state inside a [`crate::Block`] is two bits (written / valid),
//! stored in bitmaps so an 80 GB device (20 M pages) needs ~5 MB of state
//! rather than hundreds. Implemented here instead of pulling a dependency:
//! the workspace builds hermetically offline with no external crates
//! (testing, benching and concurrency all come from `cagc-harness`).

/// Fixed-capacity bitmap backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len, ones: 0 }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (maintained incrementally — O(1)).
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` (index is always derived from validated geometry).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `v`; returns the previous value.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let prev = (self.words[w] >> b) & 1 == 1;
        if v && !prev {
            self.words[w] |= 1 << b;
            self.ones += 1;
        } else if !v && prev {
            self.words[w] &= !(1 << b);
            self.ones -= 1;
        }
        prev
    }

    /// Clear every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Visit the indices of set bits in increasing order — the word-level
    /// bulk form of [`Bitmap::iter_ones`] used on the GC hot path: a whole
    /// zero word costs one branch rather than 64, and the closure lets the
    /// caller sink results straight into its own buffer with no iterator
    /// adapter state.
    #[inline]
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            let base = wi * 64;
            while w != 0 {
                f(base + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// Iterate the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            BitIter { word: w }.map(move |b| base + b)
        })
    }
}

/// Iterator over set-bit positions within one word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bitmap_is_all_zero() {
        let b = Bitmap::new(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(0));
        assert!(!b.get(129));
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut b = Bitmap::new(100);
        assert!(!b.set(63, true));
        assert!(!b.set(64, true));
        assert!(b.get(63));
        assert!(b.get(64));
        assert!(!b.get(62));
        assert_eq!(b.count_ones(), 2);
        assert!(b.set(63, false));
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn redundant_sets_do_not_corrupt_count() {
        let mut b = Bitmap::new(10);
        b.set(3, true);
        b.set(3, true);
        assert_eq!(b.count_ones(), 1);
        b.set(3, false);
        b.set(3, false);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn iter_ones_yields_sorted_positions() {
        let mut b = Bitmap::new(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            b.set(i, true);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![0, 1, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = Bitmap::new(70);
        for i in 0..70 {
            b.set(i, true);
        }
        assert_eq!(b.count_ones(), 70);
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Bitmap::new(8).get(8);
    }

    #[test]
    fn zero_length_bitmap_is_fine() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
        b.for_each_one(|_| panic!("no bits to visit"));
    }

    #[test]
    fn word_scan_matches_naive_bit_loop_under_random_churn() {
        // Property: `for_each_one`, `iter_ones` and `count_ones` agree with
        // a naive test-every-bit model across random set/clear churn, for
        // lengths straddling word boundaries.
        use cagc_sim::SimRng;
        let mut rng = SimRng::seed_from_u64(0xB17_5CAB);
        for len in [1usize, 63, 64, 65, 130, 256] {
            let mut b = Bitmap::new(len);
            let mut model = vec![false; len];
            for step in 0..1500 {
                let i = rng.gen_range_usize(0..len);
                let v = rng.gen_range_u64(0..2) == 1;
                assert_eq!(b.set(i, v), model[i]);
                model[i] = v;
                let naive: Vec<usize> = (0..len).filter(|&i| model[i]).collect();
                let mut scanned = Vec::new();
                b.for_each_one(|i| scanned.push(i));
                assert_eq!(scanned, naive, "len {len} step {step}");
                assert_eq!(b.count_ones(), naive.len());
                assert!(b.iter_ones().eq(naive.iter().copied()));
            }
        }
    }
}
