//! NAND operation latencies.

use cagc_sim::time::{ms, us, Nanos};

/// Latency parameters for one flash class.
///
/// The defaults mirror Table I of the paper (Samsung Z-NAND class,
/// ultra-low-latency): 12 µs page read, 16 µs page program, 1.5 ms block
/// erase. `bus_xfer_ns` models the channel transfer of one page and is kept
/// at zero by default (Table I folds transfer into the read/write service
/// times); it is exposed so channel-contention experiments can enable it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Page read latency (cell array → page register).
    pub read_ns: Nanos,
    /// Page program latency.
    pub program_ns: Nanos,
    /// Block erase latency.
    pub erase_ns: Nanos,
    /// Per-page channel transfer latency (0 = folded into read/program).
    pub bus_xfer_ns: Nanos,
}

impl Timing {
    /// Table I (ultra-low-latency, Z-NAND class): 12 µs / 16 µs / 1.5 ms.
    pub const fn ull() -> Self {
        Self { read_ns: us(12), program_ns: us(16), erase_ns: ms(1) + us(500), bus_xfer_ns: 0 }
    }

    /// A conventional high-performance NVMe SSD (for contrast experiments):
    /// ~50 µs read, ~500 µs program, 3.5 ms erase (cf. Sec. II-A, \[42\]).
    pub const fn conventional_nvme() -> Self {
        Self { read_ns: us(50), program_ns: us(500), erase_ns: ms(3) + us(500), bus_xfer_ns: 0 }
    }

    /// Service time of a read as seen by the die (read + transfer).
    #[inline]
    pub const fn read_service(&self) -> Nanos {
        self.read_ns + self.bus_xfer_ns
    }

    /// Service time of a program as seen by the die (transfer + program).
    #[inline]
    pub const fn program_service(&self) -> Nanos {
        self.program_ns + self.bus_xfer_ns
    }
}

impl Default for Timing {
    fn default() -> Self {
        Self::ull()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ull_matches_table1() {
        let t = Timing::ull();
        assert_eq!(t.read_ns, 12_000);
        assert_eq!(t.program_ns, 16_000);
        assert_eq!(t.erase_ns, 1_500_000);
        assert_eq!(t.bus_xfer_ns, 0);
    }

    #[test]
    fn erase_is_orders_of_magnitude_above_page_ops() {
        // The paper's premise: erase is ms-scale vs us-scale page ops.
        let t = Timing::ull();
        assert!(t.erase_ns >= 50 * t.program_ns);
        assert!(t.erase_ns >= 100 * t.read_ns);
    }

    #[test]
    fn conventional_is_slower_than_ull_everywhere() {
        let c = Timing::conventional_nvme();
        let u = Timing::ull();
        assert!(c.read_ns > u.read_ns);
        assert!(c.program_ns > u.program_ns);
        assert!(c.erase_ns > u.erase_ns);
    }

    #[test]
    fn service_times_include_bus_transfer() {
        let t = Timing { bus_xfer_ns: 1_000, ..Timing::ull() };
        assert_eq!(t.read_service(), 13_000);
        assert_eq!(t.program_service(), 17_000);
    }
}
