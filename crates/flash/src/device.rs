//! The flash device: blocks + per-die timelines + operation issue.

use crate::addr::{BlockId, Ppn};
use crate::block::{Block, PageState};
use crate::fault::{FaultConfig, FaultPlan, FlashError, JournalEntry, JournalOp, PageOob};
use crate::geometry::Geometry;
use crate::stats::DeviceStats;
use crate::timing::Timing;
use cagc_sim::time::Nanos;
use cagc_sim::timeline::{Reservation, TimelineGroup};

/// The class of a flash operation (used in timing breakdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Page read.
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

/// A simulated NAND device.
///
/// Owns every block's state plus one [`cagc_sim::Timeline`] per die: an
/// operation on a die queues behind earlier operations on the same die and
/// proceeds in parallel with other dies. Channel timelines are maintained
/// too when `Timing::bus_xfer_ns > 0` (page transfers serialize per
/// channel), matching FlashSim's resource model.
///
/// The device enforces the NAND state machine (sequential program within a
/// block, no erase of valid data). Violations surface as the caller-bug
/// variants of [`FlashError`] — FTL bugs should explode at the point of
/// damage, not corrupt statistics silently — while a configured
/// [`FaultPlan`] injects the *device's own* misbehaviour: program/erase
/// failures, read ECC errors, wear-out, power loss.
///
/// Alongside the cells, the device persists what a real controller keeps
/// for recovery: per-page OOB metadata ([`PageOob`], stamped at program
/// time), an append-only mapping-delta journal ([`JournalEntry`]) and a
/// bad-block table. After a simulated power loss, everything volatile in
/// the FTL is rebuilt from exactly these three (see `cagc-core`'s
/// recovery pass).
#[derive(Debug, Clone)]
pub struct FlashDevice {
    geometry: Geometry,
    timing: Timing,
    blocks: Vec<Block>,
    dies: TimelineGroup,
    channels: TimelineGroup,
    stats: DeviceStats,
    plan: FaultPlan,
    /// Per-page OOB, indexed by PPN. Reset lazily: an erase clears its
    /// block's entries.
    oob: Vec<PageOob>,
    /// Append-only mapping-delta journal (see [`FlashDevice::journal_append`]).
    journal: Vec<JournalEntry>,
    /// Bad-block table: blocks retired after an erase failure.
    retired: Vec<bool>,
    retired_count: u32,
    /// Shared durable sequence counter for OOB stamps and journal records.
    seq: u64,
    /// Greedy-victim acceleration: per-block valid-page count, live only
    /// while the block is **full** (write pointer at the end — exactly the
    /// closed, collectible state in fault-free operation) and not retired;
    /// [`VICTIM_UNTRACKED`] otherwise. One dense `u16` per block keeps the
    /// whole array in a handful of cache lines, so
    /// [`FlashDevice::greedy_full_victim`] scans it instead of walking
    /// every [`Block`] — and maintenance is a single store on the
    /// fill/invalidate/erase transitions.
    victim_valid: Vec<u16>,
}

/// Sentinel in [`FlashDevice::victim_valid`]: block not full (free, open
/// frontier, or abandoned mid-write) or retired — never a dense-path victim.
const VICTIM_UNTRACKED: u16 = u16::MAX;

impl FlashDevice {
    /// A fresh device with no fault injection: all blocks erased, all dies
    /// idle. Behaves bit-identically to the pre-fault-subsystem device.
    pub fn new(geometry: Geometry, timing: Timing) -> Self {
        Self::with_faults(geometry, timing, FaultConfig::none())
    }

    /// A fresh device with the given fault-injection configuration.
    pub fn with_faults(geometry: Geometry, timing: Timing, faults: FaultConfig) -> Self {
        assert!(
            geometry.pages_per_block < VICTIM_UNTRACKED as u32,
            "pages_per_block must fit below the victim-index sentinel"
        );
        let blocks: Vec<Block> =
            (0..geometry.total_blocks()).map(|_| Block::new(geometry.pages_per_block)).collect();
        Self {
            geometry,
            timing,
            blocks,
            dies: TimelineGroup::new(geometry.total_dies() as usize),
            channels: TimelineGroup::new(geometry.channels as usize),
            stats: DeviceStats::default(),
            plan: FaultPlan::new(faults),
            oob: vec![PageOob::default(); geometry.total_pages() as usize],
            journal: Vec::new(),
            retired: vec![false; geometry.total_blocks() as usize],
            retired_count: 0,
            seq: 0,
            victim_valid: vec![VICTIM_UNTRACKED; geometry.total_blocks() as usize],
        }
    }

    /// Refresh block `b`'s entry in the dense victim index from its
    /// authoritative state (see the `victim_valid` field docs).
    #[inline]
    fn sync_victim_valid(&mut self, b: BlockId) {
        let blk = &self.blocks[b as usize];
        self.victim_valid[b as usize] = if blk.is_full() && !self.retired[b as usize] {
            blk.valid_count() as u16
        } else {
            VICTIM_UNTRACKED
        };
    }

    /// The Greedy GC victim, answered from the dense per-block index: the
    /// full, non-retired block with the fewest valid pages (= the largest
    /// reclaim gain), ties broken exactly like the `Greedy` policy key —
    /// most trimmed pages, then fewest erases, then lowest block id.
    /// Returns `None` when no full block would reclaim anything.
    ///
    /// Only **full** blocks are visible here. In fault-free operation that
    /// is precisely the closed-block candidate set, so the answer is
    /// bit-identical to a full scan; after program failures or power-loss
    /// recovery, closed-but-not-full blocks (stranded free pages) exist and
    /// are invisible to this index — callers must gate on
    /// [`FlashDevice::faults_active`] and fall back to scanning.
    pub fn greedy_full_victim(&self) -> Option<BlockId> {
        let pages = self.geometry.pages_per_block as u16;
        // Single pass: track the running minimum valid count and the best
        // tie-break key at that minimum. Fully-valid blocks (v == pages)
        // reclaim nothing and are never candidates, which the sentinel
        // `min_v = pages` with a strict first acceptance encodes.
        let mut min_v = pages;
        let mut best: Option<(u32, u32, BlockId)> = None;
        for (b, &v) in self.victim_valid.iter().enumerate() {
            if v > min_v || (v == min_v && best.is_none()) {
                continue;
            }
            let blk = &self.blocks[b];
            let key = (u32::MAX - blk.trimmed_count(), blk.erase_count(), b as BlockId);
            if v < min_v {
                min_v = v;
                best = Some(key);
            } else if best.is_none_or(|k| key < k) {
                best = Some(key);
            }
        }
        best.map(|(_, _, b)| b)
    }

    /// The device geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing parameters.
    #[inline]
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Operation counters.
    #[inline]
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Immutable view of block `b`.
    #[inline]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b as usize]
    }

    /// Number of blocks (= `geometry().total_blocks()`).
    #[inline]
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// State of the page at `ppn`.
    #[inline]
    pub fn page_state(&self, ppn: Ppn) -> PageState {
        self.blocks[self.geometry.block_of(ppn) as usize].page_state(self.geometry.page_of(ppn))
    }

    /// Earliest instant die `die` could accept new work.
    #[inline]
    pub fn die_free_at(&self, die: u32) -> Nanos {
        self.dies.get(die as usize).next_free()
    }

    /// When every die has drained (end of simulation bookkeeping).
    pub fn all_dies_drained_at(&self) -> Nanos {
        self.dies.all_drained_at()
    }

    /// Cumulative busy time per die, in die order (parallelism report).
    pub fn die_busy_totals(&self) -> Vec<Nanos> {
        (0..self.dies.len()).map(|d| self.dies.get(d).busy_total()).collect()
    }

    /// Whether the simulated power-loss point has been reached. While
    /// crashed, every device operation fails with
    /// [`FlashError::PowerLoss`] until [`FlashDevice::power_cycle`].
    #[inline]
    pub fn is_crashed(&self) -> bool {
        self.plan.crashed()
    }

    /// Whether any fault source is configured.
    #[inline]
    pub fn faults_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Roll whether a *last-resort* recovery action (heroic ECC decode,
    /// forced program) fails unrecoverably. The FTL calls this on the host
    /// path only; GC migrations never surface host-visible errors. Draws
    /// from the plan's dedicated `"unrecoverable"` stream (see
    /// [`FaultConfig::unrecoverable_prob`](crate::FaultConfig::unrecoverable_prob)).
    pub fn roll_unrecoverable(&mut self) -> bool {
        self.plan.roll_unrecoverable()
    }

    /// Power the device back on after a crash: cells, OOB, journal and
    /// bad-block table are intact (they are the durable state); the latch
    /// clears and the consumed crash point will not fire again. The FTL
    /// must now run its recovery pass before trusting any volatile state.
    pub fn power_cycle(&mut self) {
        self.plan.power_cycle();
    }

    /// Whether block `b` has been retired to the bad-block table.
    #[inline]
    pub fn is_retired(&self, b: BlockId) -> bool {
        self.retired[b as usize]
    }

    /// Blocks currently in the bad-block table, ascending.
    pub fn retired_blocks(&self) -> Vec<BlockId> {
        (0..self.block_count()).filter(|&b| self.retired[b as usize]).collect()
    }

    /// OOB metadata of the page at `ppn` (zeroed if never programmed since
    /// the last erase).
    #[inline]
    pub fn oob(&self, ppn: Ppn) -> PageOob {
        self.oob[ppn as usize]
    }

    /// The mapping-delta journal, in append (= durable) order.
    #[inline]
    pub fn journal(&self) -> &[JournalEntry] {
        &self.journal
    }

    /// Durable operations performed so far (programs, erases, journal
    /// appends) — the clock `FaultConfig::crash_at_op` counts in.
    #[inline]
    pub fn durable_ops(&self) -> u64 {
        self.plan.durable_ops()
    }

    /// Append a mapping mutation to the metadata journal. This is a
    /// durable operation: it advances the shared sequence counter and
    /// counts toward the crash point. Metadata writes ride the controller's
    /// capacitor-backed buffer, so no die time is charged.
    pub fn journal_append(&mut self, op: JournalOp) -> Result<u64, FlashError> {
        self.plan.note_durable_op()?;
        let seq = self.bump_seq();
        self.journal.push(JournalEntry { seq, op });
        self.stats.journal_appends += 1;
        Ok(seq)
    }

    /// Issue a page read at `ppn`, ready no earlier than `ready_at`.
    ///
    /// Reads of `Free` pages are rejected ([`FlashError::ReadFree`]): the
    /// FTL must never read an unwritten physical page. Invalid pages may
    /// still be read — GC migration reads a page before its mapping
    /// metadata is finalized. An injected ECC error still occupies the die
    /// for the full read and returns [`FlashError::ReadEcc`] with the
    /// attempt's completion time; the caller decides whether to re-read.
    pub fn read(&mut self, ppn: Ppn, ready_at: Nanos) -> Result<Reservation, FlashError> {
        if self.plan.crashed() {
            return Err(FlashError::PowerLoss);
        }
        if ppn >= self.geometry.total_pages() {
            return Err(FlashError::BadPpn { ppn });
        }
        if self.page_state(ppn) == PageState::Free {
            return Err(FlashError::ReadFree { ppn });
        }
        let r = self.reserve_page_op(ppn, ready_at, self.timing.read_service());
        self.stats.reads += 1;
        self.stats.read_busy_ns += self.timing.read_service();
        if self.plan.roll_read() {
            self.stats.read_ecc_errors += 1;
            return Err(FlashError::ReadEcc { ppn, at: r.end });
        }
        Ok(r)
    }

    /// Program the **next free page** of block `block` (NAND requires
    /// sequential program order), stamping `oob` (the device fills in
    /// [`PageOob::seq`]). Returns the reservation and the programmed PPN.
    ///
    /// Programs are durable operations: they count toward the crash point.
    /// An injected program failure consumes the page (it is left `Invalid`
    /// with a torn OOB), occupies the die for the full program, and
    /// returns [`FlashError::ProgramFailed`]; the FTL retries on another
    /// block. Caller bugs return [`FlashError::BlockFull`] /
    /// [`FlashError::BadBlock`] / [`FlashError::Retired`].
    pub fn program_next(
        &mut self,
        block: BlockId,
        ready_at: Nanos,
        oob: PageOob,
    ) -> Result<(Reservation, Ppn), FlashError> {
        self.program_inner(block, ready_at, oob, true)
    }

    /// [`FlashDevice::program_next`] with fault injection bypassed (power
    /// loss and caller bugs still apply). The FTL's last-resort path after
    /// exhausting bounded retries: real controllers shift to a stronger
    /// program algorithm rather than fail the host write.
    pub fn program_next_forced(
        &mut self,
        block: BlockId,
        ready_at: Nanos,
        oob: PageOob,
    ) -> Result<(Reservation, Ppn), FlashError> {
        self.program_inner(block, ready_at, oob, false)
    }

    fn program_inner(
        &mut self,
        block: BlockId,
        ready_at: Nanos,
        oob: PageOob,
        faultable: bool,
    ) -> Result<(Reservation, Ppn), FlashError> {
        if self.plan.crashed() {
            return Err(FlashError::PowerLoss);
        }
        if block >= self.block_count() {
            return Err(FlashError::BadBlock { block });
        }
        if self.retired[block as usize] {
            return Err(FlashError::Retired { block });
        }
        if self.blocks[block as usize].is_full() {
            return Err(FlashError::BlockFull { block });
        }
        self.plan.note_durable_op()?;
        let svc = self.timing.program_service();
        let r = self.reserve_block_op(block, ready_at, svc);
        let page = self.blocks[block as usize]
            .program_next(r.end)
            .expect("checked not full above");
        let ppn = self.geometry.ppn(block, page);
        let seq = self.bump_seq();
        self.stats.programs += 1;
        self.stats.program_busy_ns += svc;
        if faultable && self.plan.roll_program() {
            // The attempt spoiled the page: consumed, unreadable, torn OOB.
            self.blocks[block as usize].invalidate(page, r.end);
            self.oob[ppn as usize] = PageOob { lpn: None, fp: None, seq };
            self.stats.program_failures += 1;
            self.sync_victim_valid(block);
            return Err(FlashError::ProgramFailed { ppn, at: r.end });
        }
        self.oob[ppn as usize] = PageOob { seq, ..oob };
        if self.blocks[block as usize].is_full() {
            self.sync_victim_valid(block);
        }
        Ok((r, ppn))
    }

    /// Mark `ppn` invalid (no flash operation — metadata only, free).
    pub fn invalidate(&mut self, ppn: Ppn, now: Nanos) {
        let b = self.geometry.block_of(ppn);
        self.blocks[b as usize].invalidate(self.geometry.page_of(ppn), now);
        self.sync_victim_valid(b);
    }

    /// Mark `ppn` invalid because the host trimmed its last logical
    /// reference. Same metadata-only state change as
    /// [`FlashDevice::invalidate`], but the invalidation is *attributed*:
    /// the block's [`Block::trimmed_count`] and the device-wide
    /// [`DeviceStats::trimmed_pages`] counter both advance, so victim
    /// scoring and reports can tell trim garbage from overwrite garbage.
    pub fn deallocate(&mut self, ppn: Ppn, now: Nanos) {
        let b = self.geometry.block_of(ppn);
        self.blocks[b as usize].deallocate(self.geometry.page_of(ppn), now);
        self.stats.trimmed_pages += 1;
        self.sync_victim_valid(b);
    }

    /// Erase block `block`, ready no earlier than `ready_at`.
    ///
    /// Erases are durable operations: they count toward the crash point.
    /// An injected erase failure (probability rises with wear past the
    /// endurance limit) retires the block to the bad-block table — its
    /// pages leave the usable pool forever — and returns
    /// [`FlashError::EraseFailed`]; the FTL accounts the capacity loss.
    /// Erasing a block that still holds valid pages is a caller bug
    /// ([`FlashError::EraseValid`]).
    pub fn erase(&mut self, block: BlockId, ready_at: Nanos) -> Result<Reservation, FlashError> {
        if self.plan.crashed() {
            return Err(FlashError::PowerLoss);
        }
        if block >= self.block_count() {
            return Err(FlashError::BadBlock { block });
        }
        if self.retired[block as usize] {
            return Err(FlashError::Retired { block });
        }
        let valid = self.blocks[block as usize].valid_count();
        if valid > 0 {
            return Err(FlashError::EraseValid { block, valid });
        }
        self.plan.note_durable_op()?;
        let die = self.geometry.die_of_block(block) as usize;
        let r = self.dies.reserve(die, ready_at, self.timing.erase_ns);
        let wear = self.blocks[block as usize].erase_count();
        if self.plan.roll_erase(wear) {
            self.retired[block as usize] = true;
            self.retired_count += 1;
            self.stats.erase_failures += 1;
            self.stats.blocks_retired += 1;
            self.stats.erase_busy_ns += self.timing.erase_ns;
            self.sync_victim_valid(block);
            return Err(FlashError::EraseFailed { block, at: r.end });
        }
        self.blocks[block as usize].erase(r.end);
        self.sync_victim_valid(block);
        for ppn in self.geometry.pages_of_block(block) {
            self.oob[ppn as usize] = PageOob::default();
        }
        self.stats.erases += 1;
        self.stats.erase_busy_ns += self.timing.erase_ns;
        Ok(r)
    }

    /// Recovery-only: rewrite every written page's validity from the
    /// durable truth `f(ppn)` (the page is referenced by at least one
    /// recovered logical mapping). Wear, write pointers and cell contents
    /// are physical facts and stay; per-block trim attribution is volatile
    /// and resets (see `Block::recover_validity`).
    pub fn recover_validity(&mut self, mut f: impl FnMut(Ppn) -> bool) {
        for b in 0..self.blocks.len() {
            let base = self.geometry.ppn(b as BlockId, 0);
            self.blocks[b].recover_validity(|page| f(base + page as u64));
            self.sync_victim_valid(b as BlockId);
        }
    }

    /// Min/max/mean erase count across blocks (wear-leveling report).
    pub fn wear_summary(&self) -> (u32, u32, f64) {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        for b in &self.blocks {
            min = min.min(b.erase_count());
            max = max.max(b.erase_count());
            sum += b.erase_count() as u64;
        }
        (min, max, sum as f64 / self.blocks.len() as f64)
    }

    /// Population standard deviation of per-block erase counts — the
    /// scalar wear-evenness metric (0 = perfectly level).
    pub fn wear_stddev(&self) -> f64 {
        let (_, _, mean) = self.wear_summary();
        let var = self
            .blocks
            .iter()
            .map(|b| (b.erase_count() as f64 - mean).powi(2))
            .sum::<f64>()
            / self.blocks.len() as f64;
        var.sqrt()
    }

    #[inline]
    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn reserve_page_op(&mut self, ppn: Ppn, ready_at: Nanos, svc: Nanos) -> Reservation {
        let block = self.geometry.block_of(ppn);
        self.reserve_block_op(block, ready_at, svc)
    }

    /// Reserve die time (and channel time when bus transfer is modelled)
    /// for an operation on `block`.
    fn reserve_block_op(&mut self, block: BlockId, ready_at: Nanos, svc: Nanos) -> Reservation {
        let die = self.geometry.die_of_block(block) as usize;
        if self.timing.bus_xfer_ns > 0 {
            // The channel must be free for the transfer portion; serialize
            // the transfer on the channel, then the cell op on the die.
            let chan = (die as u32 / self.geometry.dies_per_channel) as usize;
            let xfer = self.channels.reserve(chan, ready_at, self.timing.bus_xfer_ns);
            let cell = self.dies.reserve(die, xfer.end, svc - self.timing.bus_xfer_ns);
            Reservation { start: xfer.start, end: cell.end, queued: xfer.start - ready_at }
        } else {
            self.dies.reserve(die, ready_at, svc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagc_sim::time::us;

    fn dev() -> FlashDevice {
        // 1 channel × 2 dies × 1 plane × 4 blocks/plane × 8 pages.
        FlashDevice::new(Geometry::new(1, 2, 1, 4, 8, 4096), Timing::ull())
    }

    fn faulty(faults: FaultConfig) -> FlashDevice {
        FlashDevice::with_faults(Geometry::new(1, 2, 1, 4, 8, 4096), Timing::ull(), faults)
    }

    fn host(lpn: u64) -> PageOob {
        PageOob::host(lpn, None)
    }

    #[test]
    fn program_then_read_round_trip_times() {
        let mut d = dev();
        let (w, ppn) = d.program_next(0, 0, host(0)).unwrap();
        assert_eq!(w.start, 0);
        assert_eq!(w.end, us(16));
        assert_eq!(ppn, d.geometry().ppn(0, 0));
        let r = d.read(ppn, w.end).unwrap();
        assert_eq!(r.end, us(28)); // 16 + 12
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().programs, 1);
    }

    #[test]
    fn same_die_ops_serialize_different_dies_overlap() {
        let mut d = dev();
        // Blocks 0..4 are die 0; blocks 4..8 are die 1.
        let (a, _) = d.program_next(0, 0, host(0)).unwrap();
        let (b, _) = d.program_next(1, 0, host(1)).unwrap(); // same die: queues
        let (c, _) = d.program_next(4, 0, host(2)).unwrap(); // other die: parallel
        assert_eq!(a.end, us(16));
        assert_eq!(b.start, us(16));
        assert_eq!(b.end, us(32));
        assert_eq!(c.start, 0);
        assert_eq!(c.end, us(16));
    }

    #[test]
    fn erase_blocks_the_die_for_1_5_ms() {
        let mut d = dev();
        let (w, ppn) = d.program_next(0, 0, host(0)).unwrap();
        d.invalidate(ppn, w.end);
        let e = d.erase(0, w.end).unwrap();
        assert_eq!(e.end - e.start, us(1500));
        // A subsequent read on the same die waits out the erase.
        let (w2, ppn2) = d.program_next(1, 0, host(1)).unwrap();
        assert!(w2.start >= e.end);
        let r = d.read(ppn2, w2.end).unwrap();
        assert_eq!(r.start, w2.end);
    }

    #[test]
    fn reading_unwritten_page_is_a_structured_error() {
        let mut d = dev();
        assert_eq!(d.read(3, 0), Err(FlashError::ReadFree { ppn: 3 }));
        let bad = d.geometry().total_pages() + 7;
        assert_eq!(d.read(bad, 0), Err(FlashError::BadPpn { ppn: bad }));
        assert_eq!(d.stats().reads, 0, "rejected reads consume no die time");
    }

    #[test]
    fn caller_bugs_are_structured_errors() {
        let mut d = dev();
        for i in 0..8 {
            d.program_next(2, 0, host(i)).unwrap();
        }
        assert_eq!(
            d.program_next(2, 0, host(9)),
            Err(FlashError::BlockFull { block: 2 })
        );
        assert_eq!(d.program_next(99, 0, host(9)), Err(FlashError::BadBlock { block: 99 }));
        assert_eq!(d.erase(99, 0), Err(FlashError::BadBlock { block: 99 }));
        assert_eq!(
            d.erase(2, 0),
            Err(FlashError::EraseValid { block: 2, valid: 8 })
        );
        assert_eq!(d.stats().programs, 8, "rejected ops leave no trace in stats");
        assert_eq!(d.stats().erases, 0);
    }

    #[test]
    fn invalid_pages_remain_readable_for_migration() {
        let mut d = dev();
        let (w, ppn) = d.program_next(0, 0, host(0)).unwrap();
        d.invalidate(ppn, w.end);
        let r = d.read(ppn, w.end).unwrap(); // GC may still need the cells
        assert!(r.end > w.end);
    }

    #[test]
    fn deallocate_attributes_trim_garbage() {
        let mut d = dev();
        let (w, p0) = d.program_next(0, 0, host(0)).unwrap();
        let (_, p1) = d.program_next(0, 0, host(1)).unwrap();
        d.deallocate(p0, w.end);
        d.invalidate(p1, w.end);
        assert_eq!(d.page_state(p0), PageState::Invalid);
        assert_eq!(d.block(0).invalid_count(), 2);
        assert_eq!(d.block(0).trimmed_count(), 1);
        assert_eq!(d.stats().trimmed_pages, 1);
        // Erase clears the per-block attribution; the device total persists.
        let e = d.erase(0, w.end).unwrap();
        assert!(e.end > e.start);
        assert_eq!(d.block(0).trimmed_count(), 0);
        assert_eq!(d.stats().trimmed_pages, 1);
    }

    #[test]
    fn erase_resets_block_for_reuse() {
        let mut d = dev();
        for i in 0..8 {
            let (w, ppn) = d.program_next(2, 0, host(i)).unwrap();
            d.invalidate(ppn, w.end);
        }
        assert!(d.block(2).is_full());
        d.erase(2, us(1000)).unwrap();
        assert!(d.block(2).is_free());
        let (_, ppn) = d.program_next(2, us(3000), host(0)).unwrap();
        assert_eq!(d.geometry().page_of(ppn), 0);
        assert_eq!(d.block(2).erase_count(), 1);
    }

    #[test]
    fn stats_accumulate_busy_time() {
        let mut d = dev();
        let (_, p0) = d.program_next(0, 0, host(0)).unwrap();
        let (_, _p1) = d.program_next(0, 0, host(1)).unwrap();
        d.read(p0, 0).unwrap();
        d.invalidate(p0, 0);
        assert_eq!(d.stats().program_busy_ns, us(32));
        assert_eq!(d.stats().read_busy_ns, us(12));
        assert_eq!(d.stats().total_ops(), 3);
    }

    #[test]
    fn bus_transfer_serializes_on_channel() {
        let timing = Timing { bus_xfer_ns: us(2), ..Timing::ull() };
        // 1 channel, 2 dies: transfers contend even across dies.
        let mut d = FlashDevice::new(Geometry::new(1, 2, 1, 4, 8, 4096), timing);
        let (a, _) = d.program_next(0, 0, host(0)).unwrap(); // die 0
        let (b, _) = d.program_next(4, 0, host(1)).unwrap(); // die 1, same channel
        assert_eq!(a.end, us(18)); // 2 xfer + 16 program
        assert_eq!(b.start, us(2)); // waits for channel only
        assert_eq!(b.end, us(20));
    }

    #[test]
    fn wear_summary_tracks_spread() {
        let mut d = dev();
        for _ in 0..3 {
            let (w, ppn) = d.program_next(0, 0, host(0)).unwrap();
            d.invalidate(ppn, w.end);
            d.erase(0, w.end).unwrap();
        }
        let (min, max, mean) = d.wear_summary();
        assert_eq!(min, 0);
        assert_eq!(max, 3);
        assert!((mean - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn oob_is_stamped_at_program_time_and_cleared_by_erase() {
        let mut d = dev();
        let (_, p0) = d.program_next(0, 0, PageOob::host(42, Some(0xfeed))).unwrap();
        let (_, p1) = d.program_next(0, 0, PageOob::gc(Some(0xbeef))).unwrap();
        assert_eq!(d.oob(p0), PageOob { lpn: Some(42), fp: Some(0xfeed), seq: 0 });
        assert_eq!(d.oob(p1), PageOob { lpn: None, fp: Some(0xbeef), seq: 1 });
        d.invalidate(p0, 0);
        d.invalidate(p1, 0);
        d.erase(0, 0).unwrap();
        assert_eq!(d.oob(p0), PageOob::default());
        assert_eq!(d.oob(p1), PageOob::default());
    }

    #[test]
    fn journal_shares_the_sequence_counter_with_oob() {
        let mut d = dev();
        let (_, p0) = d.program_next(0, 0, host(1)).unwrap();
        let s = d.journal_append(JournalOp::Remap { lpn: 2, ppn: p0 }).unwrap();
        let (_, p1) = d.program_next(0, 0, host(3)).unwrap();
        d.journal_append(JournalOp::Unmap { lpn: 2 }).unwrap();
        assert_eq!(d.oob(p0).seq, 0);
        assert_eq!(s, 1);
        assert_eq!(d.oob(p1).seq, 2);
        assert_eq!(d.journal().len(), 2);
        assert_eq!(d.journal()[1].seq, 3);
        assert_eq!(d.journal()[1].op, JournalOp::Unmap { lpn: 2 });
        assert_eq!(d.stats().journal_appends, 2);
        assert_eq!(d.durable_ops(), 4);
    }

    #[test]
    fn scheduled_program_failure_spoils_the_page() {
        let mut d = faulty(FaultConfig {
            fail_program_ops: vec![1],
            ..FaultConfig::none()
        });
        let (_, p0) = d.program_next(0, 0, host(7)).unwrap();
        let err = d.program_next(0, 0, host(8)).unwrap_err();
        let FlashError::ProgramFailed { ppn, at } = err else {
            panic!("expected ProgramFailed, got {err:?}")
        };
        assert_eq!(ppn, p0 + 1);
        assert_eq!(at, us(32), "the failed attempt still occupied the die");
        assert_eq!(d.page_state(ppn), PageState::Invalid, "the page is consumed");
        assert_eq!(d.oob(ppn), PageOob { lpn: None, fp: None, seq: 1 }, "torn OOB");
        assert_eq!(d.stats().program_failures, 1);
        // The next program lands on the following page of the same block.
        let (_, p2) = d.program_next(0, 0, host(8)).unwrap();
        assert_eq!(p2, ppn + 1);
    }

    #[test]
    fn forced_program_bypasses_injection() {
        let mut d = faulty(FaultConfig { program_fail_prob: 1.0, ..FaultConfig::none() });
        assert!(d.program_next(0, 0, host(0)).is_err());
        let (_, ppn) = d.program_next_forced(0, 0, host(0)).unwrap();
        assert_eq!(d.page_state(ppn), PageState::Valid);
        assert_eq!(d.oob(ppn).lpn, Some(0));
    }

    #[test]
    fn erase_failure_retires_the_block() {
        let mut d = faulty(FaultConfig { fail_erase_ops: vec![0], ..FaultConfig::none() });
        let (w, ppn) = d.program_next(3, 0, host(0)).unwrap();
        d.invalidate(ppn, w.end);
        let err = d.erase(3, w.end).unwrap_err();
        assert_eq!(err, FlashError::EraseFailed { block: 3, at: w.end + us(1500) });
        assert!(d.is_retired(3));
        assert_eq!(d.retired_blocks(), vec![3]);
        assert_eq!(d.stats().erase_failures, 1);
        assert_eq!(d.stats().blocks_retired, 1);
        assert_eq!(d.stats().erases, 0, "a failed erase is not an erase");
        // The retired block accepts no further work.
        assert_eq!(d.program_next(3, 0, host(1)), Err(FlashError::Retired { block: 3 }));
        assert_eq!(d.erase(3, 0), Err(FlashError::Retired { block: 3 }));
    }

    #[test]
    fn wearout_retires_old_blocks_eventually() {
        let mut d = faulty(FaultConfig {
            endurance_limit: 3,
            wearout_slope: 0.5,
            seed: 11,
            ..FaultConfig::none()
        });
        let mut cycles = 0u32;
        while !d.is_retired(0) {
            match d.program_next(0, 0, host(0)) {
                Ok((w, ppn)) => {
                    d.invalidate(ppn, w.end);
                    let _ = d.erase(0, w.end);
                }
                Err(e) => panic!("unexpected {e}"),
            }
            cycles += 1;
            assert!(cycles < 100, "wear-out never fired");
        }
        assert!(d.block(0).erase_count() >= 3, "retirement before the endurance limit");
    }

    #[test]
    fn crash_latches_until_power_cycle() {
        let mut d = faulty(FaultConfig { crash_at_op: Some(2), ..FaultConfig::none() });
        let (_, p0) = d.program_next(0, 0, host(0)).unwrap();
        d.program_next(0, 0, host(1)).unwrap();
        // The third durable op trips the crash; nothing after it succeeds.
        assert_eq!(d.program_next(0, 0, host(2)), Err(FlashError::PowerLoss));
        assert!(d.is_crashed());
        assert_eq!(d.read(p0, 0), Err(FlashError::PowerLoss));
        assert_eq!(d.erase(1, 0), Err(FlashError::PowerLoss));
        assert_eq!(
            d.journal_append(JournalOp::Unmap { lpn: 0 }),
            Err(FlashError::PowerLoss)
        );
        assert_eq!(d.stats().programs, 2, "the crashed op never happened");
        // Power back on: durable state intact, crash point consumed.
        d.power_cycle();
        assert!(!d.is_crashed());
        assert_eq!(d.oob(p0).lpn, Some(0));
        d.read(p0, 0).unwrap();
        d.program_next(0, 0, host(2)).unwrap();
    }

    /// Reference implementation of [`FlashDevice::greedy_full_victim`]:
    /// the documented rule, computed by walking every block.
    fn naive_greedy_full_victim(d: &FlashDevice) -> Option<BlockId> {
        (0..d.block_count())
            .filter(|&b| {
                let blk = d.block(b);
                blk.is_full() && !d.is_retired(b) && blk.valid_count() < blk.pages()
            })
            .min_by_key(|&b| {
                let blk = d.block(b);
                (blk.valid_count(), u32::MAX - blk.trimmed_count(), blk.erase_count(), b)
            })
    }

    #[test]
    fn greedy_victim_index_matches_full_scan_under_random_churn() {
        use cagc_sim::SimRng;
        let mut d = dev(); // 8 blocks × 8 pages
        let mut rng = SimRng::seed_from_u64(0xB10C5);
        let mut live: Vec<Ppn> = Vec::new();
        assert_eq!(d.greedy_full_victim(), None, "fresh device has no victim");
        for step in 0..4_000 {
            match rng.gen_range_u64(0..10) {
                // Program the next page of a random non-full block.
                0..=4 => {
                    let b = rng.gen_range_u64(0..8) as BlockId;
                    if !d.block(b).is_full() {
                        let (_, ppn) = d.program_next(b, 0, host(step)).unwrap();
                        live.push(ppn);
                    }
                }
                // Invalidate or trim a random live page.
                5..=8 if !live.is_empty() => {
                    let i = rng.gen_range_usize(0..live.len());
                    let ppn = live.swap_remove(i);
                    if rng.gen_range_u64(0..4) == 0 {
                        d.deallocate(ppn, 0);
                    } else {
                        d.invalidate(ppn, 0);
                    }
                }
                // Erase a random fully-drained block.
                _ => {
                    let b = rng.gen_range_u64(0..8) as BlockId;
                    if d.block(b).valid_count() == 0 && !d.block(b).is_free() {
                        d.erase(b, 0).unwrap();
                    }
                }
            }
            assert_eq!(
                d.greedy_full_victim(),
                naive_greedy_full_victim(&d),
                "index diverged from full scan at step {step}"
            );
        }
    }

    #[test]
    fn recover_validity_applies_durable_truth() {
        let mut d = dev();
        let (_, p0) = d.program_next(0, 0, host(0)).unwrap();
        let (_, p1) = d.program_next(0, 0, host(1)).unwrap();
        d.invalidate(p0, 0);
        // Durable truth says p0 is referenced and p1 is not (the
        // invalidation above was volatile and lost).
        d.recover_validity(|ppn| ppn == p0);
        assert_eq!(d.page_state(p0), PageState::Valid);
        assert_eq!(d.page_state(p1), PageState::Invalid);
        assert_eq!(d.block(0).valid_count(), 1);
    }
}
