//! The flash device: blocks + per-die timelines + operation issue.

use crate::addr::{BlockId, Ppn};
use crate::block::{Block, PageState};
use crate::geometry::Geometry;
use crate::stats::DeviceStats;
use crate::timing::Timing;
use cagc_sim::time::Nanos;
use cagc_sim::timeline::{Reservation, TimelineGroup};

/// The class of a flash operation (used in timing breakdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Page read.
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

/// A simulated NAND device.
///
/// Owns every block's state plus one [`cagc_sim::Timeline`] per die: an
/// operation on a die queues behind earlier operations on the same die and
/// proceeds in parallel with other dies. Channel timelines are maintained
/// too when `Timing::bus_xfer_ns > 0` (page transfers serialize per
/// channel), matching FlashSim's resource model.
///
/// The device enforces the NAND state machine (sequential program within a
/// block, no erase of valid data) and panics on violations — FTL bugs should
/// explode here, at the point of damage, not corrupt statistics silently.
#[derive(Debug, Clone)]
pub struct FlashDevice {
    geometry: Geometry,
    timing: Timing,
    blocks: Vec<Block>,
    dies: TimelineGroup,
    channels: TimelineGroup,
    stats: DeviceStats,
}

impl FlashDevice {
    /// A fresh device: all blocks erased, all dies idle.
    pub fn new(geometry: Geometry, timing: Timing) -> Self {
        let blocks =
            (0..geometry.total_blocks()).map(|_| Block::new(geometry.pages_per_block)).collect();
        Self {
            geometry,
            timing,
            blocks,
            dies: TimelineGroup::new(geometry.total_dies() as usize),
            channels: TimelineGroup::new(geometry.channels as usize),
            stats: DeviceStats::default(),
        }
    }

    /// The device geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing parameters.
    #[inline]
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Operation counters.
    #[inline]
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Immutable view of block `b`.
    #[inline]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b as usize]
    }

    /// Number of blocks (= `geometry().total_blocks()`).
    #[inline]
    pub fn block_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// State of the page at `ppn`.
    #[inline]
    pub fn page_state(&self, ppn: Ppn) -> PageState {
        self.blocks[self.geometry.block_of(ppn) as usize].page_state(self.geometry.page_of(ppn))
    }

    /// Earliest instant die `die` could accept new work.
    #[inline]
    pub fn die_free_at(&self, die: u32) -> Nanos {
        self.dies.get(die as usize).next_free()
    }

    /// When every die has drained (end of simulation bookkeeping).
    pub fn all_dies_drained_at(&self) -> Nanos {
        self.dies.all_drained_at()
    }

    /// Cumulative busy time per die, in die order (parallelism report).
    pub fn die_busy_totals(&self) -> Vec<Nanos> {
        (0..self.dies.len()).map(|d| self.dies.get(d).busy_total()).collect()
    }

    /// Issue a page read at `ppn`, ready no earlier than `ready_at`.
    ///
    /// Reads of `Free` pages are rejected (panic): the FTL must never read
    /// an unwritten physical page. Invalid pages may still be read — GC
    /// migration reads a page before its mapping metadata is finalized.
    pub fn read(&mut self, ppn: Ppn, ready_at: Nanos) -> Reservation {
        assert!(
            self.page_state(ppn) != PageState::Free,
            "read of free (unwritten) page ppn={ppn}"
        );
        let r = self.reserve_page_op(ppn, ready_at, self.timing.read_service());
        self.stats.reads += 1;
        self.stats.read_busy_ns += self.timing.read_service();
        r
    }

    /// Program the **next free page** of block `block` (NAND requires
    /// sequential program order). Returns the reservation and the programmed
    /// PPN.
    ///
    /// # Panics
    /// Panics if the block is full.
    pub fn program_next(&mut self, block: BlockId, ready_at: Nanos) -> (Reservation, Ppn) {
        let svc = self.timing.program_service();
        let r = self.reserve_block_op(block, ready_at, svc);
        let page = self.blocks[block as usize].program_next(r.end);
        self.stats.programs += 1;
        self.stats.program_busy_ns += svc;
        (r, self.geometry.ppn(block, page))
    }

    /// Mark `ppn` invalid (no flash operation — metadata only, free).
    pub fn invalidate(&mut self, ppn: Ppn, now: Nanos) {
        let b = self.geometry.block_of(ppn);
        self.blocks[b as usize].invalidate(self.geometry.page_of(ppn), now);
    }

    /// Mark `ppn` invalid because the host trimmed its last logical
    /// reference. Same metadata-only state change as
    /// [`FlashDevice::invalidate`], but the invalidation is *attributed*:
    /// the block's [`Block::trimmed_count`] and the device-wide
    /// [`DeviceStats::trimmed_pages`] counter both advance, so victim
    /// scoring and reports can tell trim garbage from overwrite garbage.
    pub fn deallocate(&mut self, ppn: Ppn, now: Nanos) {
        let b = self.geometry.block_of(ppn);
        self.blocks[b as usize].deallocate(self.geometry.page_of(ppn), now);
        self.stats.trimmed_pages += 1;
    }

    /// Erase block `block`, ready no earlier than `ready_at`.
    ///
    /// # Panics
    /// Panics if the block still holds valid pages.
    pub fn erase(&mut self, block: BlockId, ready_at: Nanos) -> Reservation {
        let die = self.geometry.die_of_block(block) as usize;
        let r = self.dies.reserve(die, ready_at, self.timing.erase_ns);
        self.blocks[block as usize].erase(r.end);
        self.stats.erases += 1;
        self.stats.erase_busy_ns += self.timing.erase_ns;
        r
    }

    /// Min/max/mean erase count across blocks (wear-leveling report).
    pub fn wear_summary(&self) -> (u32, u32, f64) {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        for b in &self.blocks {
            min = min.min(b.erase_count());
            max = max.max(b.erase_count());
            sum += b.erase_count() as u64;
        }
        (min, max, sum as f64 / self.blocks.len() as f64)
    }

    /// Population standard deviation of per-block erase counts — the
    /// scalar wear-evenness metric (0 = perfectly level).
    pub fn wear_stddev(&self) -> f64 {
        let (_, _, mean) = self.wear_summary();
        let var = self
            .blocks
            .iter()
            .map(|b| (b.erase_count() as f64 - mean).powi(2))
            .sum::<f64>()
            / self.blocks.len() as f64;
        var.sqrt()
    }

    fn reserve_page_op(&mut self, ppn: Ppn, ready_at: Nanos, svc: Nanos) -> Reservation {
        let block = self.geometry.block_of(ppn);
        self.reserve_block_op(block, ready_at, svc)
    }

    /// Reserve die time (and channel time when bus transfer is modelled)
    /// for an operation on `block`.
    fn reserve_block_op(&mut self, block: BlockId, ready_at: Nanos, svc: Nanos) -> Reservation {
        let die = self.geometry.die_of_block(block) as usize;
        if self.timing.bus_xfer_ns > 0 {
            // The channel must be free for the transfer portion; serialize
            // the transfer on the channel, then the cell op on the die.
            let chan = (die as u32 / self.geometry.dies_per_channel) as usize;
            let xfer = self.channels.reserve(chan, ready_at, self.timing.bus_xfer_ns);
            let cell = self.dies.reserve(die, xfer.end, svc - self.timing.bus_xfer_ns);
            Reservation { start: xfer.start, end: cell.end, queued: xfer.start - ready_at }
        } else {
            self.dies.reserve(die, ready_at, svc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagc_sim::time::us;

    fn dev() -> FlashDevice {
        // 1 channel × 2 dies × 1 plane × 4 blocks/plane × 8 pages.
        FlashDevice::new(Geometry::new(1, 2, 1, 4, 8, 4096), Timing::ull())
    }

    #[test]
    fn program_then_read_round_trip_times() {
        let mut d = dev();
        let (w, ppn) = d.program_next(0, 0);
        assert_eq!(w.start, 0);
        assert_eq!(w.end, us(16));
        assert_eq!(ppn, d.geometry().ppn(0, 0));
        let r = d.read(ppn, w.end);
        assert_eq!(r.end, us(28)); // 16 + 12
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().programs, 1);
    }

    #[test]
    fn same_die_ops_serialize_different_dies_overlap() {
        let mut d = dev();
        // Blocks 0..4 are die 0; blocks 4..8 are die 1.
        let (a, _) = d.program_next(0, 0);
        let (b, _) = d.program_next(1, 0); // same die: queues
        let (c, _) = d.program_next(4, 0); // other die: parallel
        assert_eq!(a.end, us(16));
        assert_eq!(b.start, us(16));
        assert_eq!(b.end, us(32));
        assert_eq!(c.start, 0);
        assert_eq!(c.end, us(16));
    }

    #[test]
    fn erase_blocks_the_die_for_1_5_ms() {
        let mut d = dev();
        let (w, ppn) = d.program_next(0, 0);
        d.invalidate(ppn, w.end);
        let e = d.erase(0, w.end);
        assert_eq!(e.end - e.start, us(1500));
        // A subsequent read on the same die waits out the erase.
        let (w2, ppn2) = d.program_next(1, 0);
        assert!(w2.start >= e.end);
        let r = d.read(ppn2, w2.end);
        assert_eq!(r.start, w2.end);
    }

    #[test]
    #[should_panic(expected = "free (unwritten) page")]
    fn reading_unwritten_page_panics() {
        let mut d = dev();
        d.read(3, 0);
    }

    #[test]
    fn invalid_pages_remain_readable_for_migration() {
        let mut d = dev();
        let (w, ppn) = d.program_next(0, 0);
        d.invalidate(ppn, w.end);
        let r = d.read(ppn, w.end); // GC may still need the cells
        assert!(r.end > w.end);
    }

    #[test]
    fn deallocate_attributes_trim_garbage() {
        let mut d = dev();
        let (w, p0) = d.program_next(0, 0);
        let (_, p1) = d.program_next(0, 0);
        d.deallocate(p0, w.end);
        d.invalidate(p1, w.end);
        assert_eq!(d.page_state(p0), PageState::Invalid);
        assert_eq!(d.block(0).invalid_count(), 2);
        assert_eq!(d.block(0).trimmed_count(), 1);
        assert_eq!(d.stats().trimmed_pages, 1);
        // Erase clears the per-block attribution; the device total persists.
        let e = d.erase(0, w.end);
        assert!(e.end > e.start);
        assert_eq!(d.block(0).trimmed_count(), 0);
        assert_eq!(d.stats().trimmed_pages, 1);
    }

    #[test]
    fn erase_resets_block_for_reuse() {
        let mut d = dev();
        for _ in 0..8 {
            let (w, ppn) = d.program_next(2, 0);
            d.invalidate(ppn, w.end);
        }
        assert!(d.block(2).is_full());
        d.erase(2, us(1000));
        assert!(d.block(2).is_free());
        let (_, ppn) = d.program_next(2, us(3000));
        assert_eq!(d.geometry().page_of(ppn), 0);
        assert_eq!(d.block(2).erase_count(), 1);
    }

    #[test]
    fn stats_accumulate_busy_time() {
        let mut d = dev();
        let (_, p0) = d.program_next(0, 0);
        let (_, _p1) = d.program_next(0, 0);
        d.read(p0, 0);
        d.invalidate(p0, 0);
        assert_eq!(d.stats().program_busy_ns, us(32));
        assert_eq!(d.stats().read_busy_ns, us(12));
        assert_eq!(d.stats().total_ops(), 3);
    }

    #[test]
    fn bus_transfer_serializes_on_channel() {
        let timing = Timing { bus_xfer_ns: us(2), ..Timing::ull() };
        // 1 channel, 2 dies: transfers contend even across dies.
        let mut d = FlashDevice::new(Geometry::new(1, 2, 1, 4, 8, 4096), timing);
        let (a, _) = d.program_next(0, 0); // die 0
        let (b, _) = d.program_next(4, 0); // die 1, same channel
        assert_eq!(a.end, us(18)); // 2 xfer + 16 program
        assert_eq!(b.start, us(2)); // waits for channel only
        assert_eq!(b.end, us(20));
    }

    #[test]
    fn wear_summary_tracks_spread() {
        let mut d = dev();
        for _ in 0..3 {
            let (w, ppn) = d.program_next(0, 0);
            d.invalidate(ppn, w.end);
            d.erase(0, w.end);
        }
        let (min, max, mean) = d.wear_summary();
        assert_eq!(min, 0);
        assert_eq!(max, 3);
        assert!((mean - 3.0 / 8.0).abs() < 1e-12);
    }
}
