//! Table I device configurations.

use crate::geometry::Geometry;
use crate::timing::Timing;

/// The paper's SSD configuration (Table I), parameterized by scale.
///
/// Table I specifies: 4 KB pages, 256 KB blocks (→ 64 pages/block), 7 %
/// over-provisioning, 80 GB capacity, 12/16 µs read/write, 1.5 ms erase,
/// 14 µs hash, 20 % GC watermark. The full 80 GB shape needs ~20 M pages of
/// state; experiments in this repository default to a scaled-down device
/// with identical block shape, OP ratio and timing — all reported results
/// are ratios, which EXPERIMENTS.md shows are insensitive to this scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UllConfig {
    /// Channels.
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block (Table I: 64).
    pub pages_per_block: u32,
    /// Page size in bytes (Table I: 4096).
    pub page_size: u32,
    /// Over-provisioning ratio (Table I: 0.07).
    pub op_ratio: f64,
    /// GC trigger watermark: GC starts when the fraction of free blocks
    /// drops below this (Table I: 0.20).
    pub gc_watermark: f64,
    /// Per-page hash (fingerprint) latency (Table I: 14 µs).
    pub hash_ns: u64,
    /// NAND timing.
    pub timing: Timing,
}

impl UllConfig {
    /// Table I at full 80 GB scale: 8 channels × 4 dies × 1 plane ×
    /// 10240 blocks/plane × 64 pages × 4 KB = 80 GB. Heavy (≈20 M pages);
    /// prefer [`UllConfig::scaled_gb`] for routine runs.
    pub fn table1_full() -> Self {
        Self {
            channels: 8,
            dies_per_channel: 4,
            planes_per_die: 1,
            blocks_per_plane: 10240,
            pages_per_block: 64,
            page_size: 4096,
            op_ratio: 0.07,
            gc_watermark: 0.20,
            hash_ns: 14_000,
            timing: Timing::ull(),
        }
    }

    /// Table I shape scaled to roughly `gb` gigabytes (same channels/dies,
    /// fewer blocks per plane). `gb` is clamped to at least 1.
    pub fn scaled_gb(gb: u32) -> Self {
        let gb = gb.max(1);
        let mut c = Self::table1_full();
        // 80 GB ⇒ 10240 blocks/plane, linear in capacity.
        c.blocks_per_plane = (10240u64 * gb as u64 / 80).max(8) as u32;
        c
    }

    /// A small config for unit/integration tests: 2 ch × 2 dies × 64
    /// blocks/plane × 32 pages = 32 MiB, same ratios and timing as Table I.
    pub fn tiny_for_tests() -> Self {
        Self {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 32,
            page_size: 4096,
            op_ratio: 0.07,
            gc_watermark: 0.20,
            hash_ns: 14_000,
            timing: Timing::ull(),
        }
    }

    /// The geometry this configuration describes.
    pub fn geometry(&self) -> Geometry {
        Geometry::new(
            self.channels,
            self.dies_per_channel,
            self.planes_per_die,
            self.blocks_per_plane,
            self.pages_per_block,
            self.page_size,
        )
    }

    /// The NAND timing.
    pub fn timing(&self) -> Timing {
        self.timing
    }

    /// Number of logical pages exported to the host:
    /// `total_pages × (1 − op_ratio)`, rounded down.
    pub fn logical_pages(&self) -> u64 {
        let total = self.geometry().total_pages();
        (total as f64 * (1.0 - self.op_ratio)).floor() as u64
    }

    /// Raw physical capacity in bytes.
    pub fn physical_bytes(&self) -> u64 {
        self.geometry().capacity_bytes()
    }

    /// Logical (host-visible) capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages() * self.page_size as u64
    }
}

impl Default for UllConfig {
    fn default() -> Self {
        // Default scale for experiments: ~2 GB keeps per-run memory modest
        // while leaving thousands of blocks for GC dynamics.
        Self::scaled_gb(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_full_is_80_gb() {
        let c = UllConfig::table1_full();
        assert_eq!(c.physical_bytes(), 80 * 1024 * 1024 * 1024);
        assert_eq!(c.pages_per_block * c.page_size, 256 * 1024); // 256KB blocks
    }

    #[test]
    fn logical_capacity_reflects_op() {
        let c = UllConfig::tiny_for_tests();
        let total = c.geometry().total_pages();
        let logical = c.logical_pages();
        let op = 1.0 - logical as f64 / total as f64;
        assert!((op - 0.07).abs() < 0.01, "OP ratio drifted: {op}");
    }

    #[test]
    fn scaled_config_preserves_ratios() {
        let c = UllConfig::scaled_gb(2);
        assert_eq!(c.pages_per_block, 64);
        assert_eq!(c.page_size, 4096);
        assert!((c.op_ratio - 0.07).abs() < 1e-12);
        assert!((c.gc_watermark - 0.20).abs() < 1e-12);
        let gb = c.physical_bytes() as f64 / (1u64 << 30) as f64;
        assert!((gb - 2.0).abs() < 0.1, "scaled to {gb} GB");
    }

    #[test]
    fn scaled_gb_clamps_to_minimum() {
        let c = UllConfig::scaled_gb(0);
        assert!(c.blocks_per_plane >= 8);
    }

    #[test]
    fn tiny_config_is_actually_tiny() {
        let c = UllConfig::tiny_for_tests();
        assert!(c.physical_bytes() <= 64 * 1024 * 1024);
        assert!(c.geometry().total_blocks() >= 128); // still enough for GC
    }

    #[test]
    fn hash_latency_matches_table1() {
        assert_eq!(UllConfig::table1_full().hash_ns, 14_000);
    }
}
