//! Device-level operation counters.

use cagc_sim::time::Nanos;

/// Counters maintained by [`crate::FlashDevice`] across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Page reads issued.
    pub reads: u64,
    /// Page programs issued.
    pub programs: u64,
    /// Block erases issued.
    pub erases: u64,
    /// Pages invalidated by host trim (deallocations; metadata-only, so
    /// they contribute no busy time — see `FlashDevice::deallocate`).
    pub trimmed_pages: u64,
    /// Total die-busy time consumed by reads.
    pub read_busy_ns: Nanos,
    /// Total die-busy time consumed by programs.
    pub program_busy_ns: Nanos,
    /// Total die-busy time consumed by erases.
    pub erase_busy_ns: Nanos,
    /// Injected program failures (the attempt consumed a page and die time
    /// but stored nothing readable).
    pub program_failures: u64,
    /// Injected erase failures (each one retired its block).
    pub erase_failures: u64,
    /// Injected uncorrectable-ECC read errors (per attempt; retries that
    /// fail again count again).
    pub read_ecc_errors: u64,
    /// Blocks retired to the bad-block table.
    pub blocks_retired: u64,
    /// Mapping-delta records appended to the metadata journal.
    pub journal_appends: u64,
}

impl DeviceStats {
    /// Total busy time across all operation classes.
    pub fn total_busy_ns(&self) -> Nanos {
        self.read_busy_ns + self.program_busy_ns + self.erase_busy_ns
    }

    /// Total operations across all classes.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.programs + self.erases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = DeviceStats {
            reads: 2,
            programs: 3,
            erases: 1,
            trimmed_pages: 4,
            read_busy_ns: 24_000,
            program_busy_ns: 48_000,
            erase_busy_ns: 1_500_000,
            ..DeviceStats::default()
        };
        // Trims are metadata-only: they count as neither ops nor busy time.
        assert_eq!(s.total_ops(), 6);
        assert_eq!(s.total_busy_ns(), 1_572_000);
    }
}
