//! Per-block state machine.
//!
//! A [`Block`] tracks which of its pages have been written and which of the
//! written pages are still valid, plus its erase count, write pointer and
//! the timestamp of its last modification (used by the cost-benefit victim
//! policy). The state machine enforces the two hard NAND rules:
//!
//! 1. pages are programmed in strictly increasing page order within a block
//!    (the *write pointer*), and only onto never-written-since-erase pages;
//! 2. the only way to make a written page writable again is to erase the
//!    whole block.

use crate::bitmap::Bitmap;
use cagc_sim::time::Nanos;

/// Logical state of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased and never programmed since: writable.
    Free,
    /// Programmed and still referenced by at least one logical page.
    Valid,
    /// Programmed but no longer referenced: reclaimable by erase.
    Invalid,
}

/// State of one flash block.
#[derive(Debug, Clone)]
pub struct Block {
    written: Bitmap,
    valid: Bitmap,
    write_ptr: u32,
    erase_count: u32,
    last_modified_ns: Nanos,
    /// Invalid pages whose invalidation came from a host trim (deallocate)
    /// rather than an overwrite. Reset on erase.
    trimmed: u32,
}

impl Block {
    /// A fresh (erased, never used) block with `pages` pages.
    pub fn new(pages: u32) -> Self {
        Self {
            written: Bitmap::new(pages as usize),
            valid: Bitmap::new(pages as usize),
            write_ptr: 0,
            erase_count: 0,
            last_modified_ns: 0,
            trimmed: 0,
        }
    }

    /// Number of pages in the block.
    #[inline]
    pub fn pages(&self) -> u32 {
        self.written.len() as u32
    }

    /// State of page `page`.
    #[inline]
    pub fn page_state(&self, page: u32) -> PageState {
        if !self.written.get(page as usize) {
            PageState::Free
        } else if self.valid.get(page as usize) {
            PageState::Valid
        } else {
            PageState::Invalid
        }
    }

    /// Number of valid pages.
    #[inline]
    pub fn valid_count(&self) -> u32 {
        self.valid.count_ones() as u32
    }

    /// Number of invalid pages (written but no longer valid).
    #[inline]
    pub fn invalid_count(&self) -> u32 {
        (self.written.count_ones() - self.valid.count_ones()) as u32
    }

    /// Number of still-free pages.
    #[inline]
    pub fn free_count(&self) -> u32 {
        self.pages() - self.written.count_ones() as u32
    }

    /// The next page that a program must target, or `None` if full.
    #[inline]
    pub fn next_program_page(&self) -> Option<u32> {
        (self.write_ptr < self.pages()).then_some(self.write_ptr)
    }

    /// Whether every page has been written.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.write_ptr == self.pages()
    }

    /// Whether the block is entirely free (fresh or just erased).
    #[inline]
    pub fn is_free(&self) -> bool {
        self.write_ptr == 0
    }

    /// Times this block has been erased (wear).
    #[inline]
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Invalid pages in this block whose invalidation was a host trim
    /// (see [`Block::deallocate`]). Always ≤ [`Block::invalid_count`];
    /// resets to zero on erase. Victim policies use this to prefer blocks
    /// whose garbage is *stable* — trimmed pages never come back, while an
    /// overwrite-hot block keeps accumulating invalid pages if left alone.
    #[inline]
    pub fn trimmed_count(&self) -> u32 {
        self.trimmed
    }

    /// Timestamp of the last program/invalidate/erase that touched the block.
    #[inline]
    pub fn last_modified(&self) -> Nanos {
        self.last_modified_ns
    }

    /// Program the next page (must equal the write pointer). Returns the
    /// page offset that was programmed, or `None` if the block is full —
    /// the allocator must rotate to a new block first, and the device turns
    /// `None` into a structured [`crate::FlashError::BlockFull`] so the bug
    /// is distinguishable from an injected fault. The page becomes `Valid`.
    pub fn program_next(&mut self, now: Nanos) -> Option<u32> {
        let page = self.next_program_page()?;
        self.written.set(page as usize, true);
        self.valid.set(page as usize, true);
        self.write_ptr += 1;
        self.last_modified_ns = now;
        Some(page)
    }

    /// Mark a valid page invalid (its last logical reference went away).
    ///
    /// # Panics
    /// Panics if the page is not currently `Valid`: double-invalidation or
    /// invalidating a free page means refcount accounting is broken, and we
    /// want to fail loudly at the source.
    pub fn invalidate(&mut self, page: u32, now: Nanos) {
        match self.page_state(page) {
            PageState::Valid => {
                self.valid.set(page as usize, false);
                self.last_modified_ns = now;
            }
            s => panic!("invalidate page {page} in state {s:?}"),
        }
    }

    /// Mark a valid page invalid because the host trimmed (deallocated) its
    /// last logical reference. Identical to [`Block::invalidate`] at the
    /// state-machine level, but attributed: the block remembers how many of
    /// its invalid pages are trim garbage (see [`Block::trimmed_count`]).
    ///
    /// # Panics
    /// Panics if the page is not currently `Valid` (same contract as
    /// [`Block::invalidate`]).
    pub fn deallocate(&mut self, page: u32, now: Nanos) {
        self.invalidate(page, now);
        self.trimmed += 1;
    }

    /// Erase the block: all pages become `Free`, wear increments.
    ///
    /// # Panics
    /// Panics if any page is still `Valid` — erasing live data is the worst
    /// FTL bug there is, so the model refuses.
    pub fn erase(&mut self, now: Nanos) {
        assert_eq!(
            self.valid.count_ones(),
            0,
            "erase of block with {} valid pages",
            self.valid.count_ones()
        );
        self.written.clear();
        self.valid.clear();
        self.write_ptr = 0;
        self.erase_count += 1;
        self.trimmed = 0;
        self.last_modified_ns = now;
    }

    /// Iterate offsets of currently valid pages, ascending.
    pub fn valid_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.valid.iter_ones().map(|i| i as u32)
    }

    /// Visit offsets of currently valid pages, ascending — the word-level
    /// bulk form of [`Block::valid_pages`]: GC snapshots a victim's valid
    /// set on every collection, and the underlying bitmap scan skips a
    /// whole 64-page word per branch instead of testing page by page.
    #[inline]
    pub fn for_each_valid(&self, mut f: impl FnMut(u32)) {
        self.valid.for_each_one(|i| f(i as u32));
    }

    /// Recovery-only: overwrite the validity of every *written* page from
    /// the durable truth `f(page)` (page is referenced by at least one
    /// recovered logical mapping). The write pointer and wear are physical
    /// facts and stay; trim attribution is volatile bookkeeping lost with
    /// the crash, so it resets.
    pub(crate) fn recover_validity(&mut self, mut f: impl FnMut(u32) -> bool) {
        for page in 0..self.write_ptr {
            self.valid.set(page as usize, f(page));
        }
        self.trimmed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_all_free() {
        let b = Block::new(16);
        assert_eq!(b.free_count(), 16);
        assert_eq!(b.valid_count(), 0);
        assert_eq!(b.invalid_count(), 0);
        assert!(b.is_free());
        assert!(!b.is_full());
        assert_eq!(b.next_program_page(), Some(0));
    }

    #[test]
    fn programs_advance_sequentially() {
        let mut b = Block::new(4);
        assert_eq!(b.program_next(10), Some(0));
        assert_eq!(b.program_next(11), Some(1));
        assert_eq!(b.program_next(12), Some(2));
        assert_eq!(b.program_next(13), Some(3));
        assert!(b.is_full());
        assert_eq!(b.next_program_page(), None);
        assert_eq!(b.valid_count(), 4);
        assert_eq!(b.last_modified(), 13);
    }

    #[test]
    fn programming_a_full_block_is_rejected() {
        let mut b = Block::new(1);
        assert_eq!(b.program_next(0), Some(0));
        assert_eq!(b.program_next(1), None);
        // The rejected program changed nothing.
        assert_eq!(b.valid_count(), 1);
        assert_eq!(b.last_modified(), 0);
    }

    #[test]
    fn invalidate_moves_valid_to_invalid() {
        let mut b = Block::new(4);
        b.program_next(0);
        b.program_next(0);
        b.invalidate(0, 5);
        assert_eq!(b.page_state(0), PageState::Invalid);
        assert_eq!(b.page_state(1), PageState::Valid);
        assert_eq!(b.valid_count(), 1);
        assert_eq!(b.invalid_count(), 1);
        assert_eq!(b.free_count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalidate page")]
    fn double_invalidate_panics() {
        let mut b = Block::new(2);
        b.program_next(0);
        b.invalidate(0, 0);
        b.invalidate(0, 0);
    }

    #[test]
    #[should_panic(expected = "invalidate page")]
    fn invalidating_free_page_panics() {
        let mut b = Block::new(2);
        b.invalidate(1, 0);
    }

    #[test]
    fn erase_requires_no_valid_pages_and_resets() {
        let mut b = Block::new(3);
        for _ in 0..3 {
            b.program_next(0);
        }
        for p in 0..3 {
            b.invalidate(p, 0);
        }
        b.erase(99);
        assert!(b.is_free());
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.free_count(), 3);
        assert_eq!(b.next_program_page(), Some(0));
        // Block is reusable after erase.
        assert_eq!(b.program_next(100), Some(0));
    }

    #[test]
    #[should_panic(expected = "valid pages")]
    fn erase_with_valid_data_panics() {
        let mut b = Block::new(2);
        b.program_next(0);
        b.erase(0);
    }

    #[test]
    fn valid_pages_iterates_only_valid() {
        let mut b = Block::new(5);
        for _ in 0..4 {
            b.program_next(0);
        }
        b.invalidate(1, 0);
        b.invalidate(3, 0);
        let v: Vec<u32> = b.valid_pages().collect();
        assert_eq!(v, vec![0, 2]);
    }

    #[test]
    fn deallocate_is_an_attributed_invalidation() {
        let mut b = Block::new(4);
        for _ in 0..3 {
            b.program_next(0);
        }
        b.invalidate(0, 1); // overwrite garbage
        b.deallocate(1, 2); // trim garbage
        assert_eq!(b.page_state(1), PageState::Invalid);
        assert_eq!(b.invalid_count(), 2);
        assert_eq!(b.trimmed_count(), 1);
        assert!(b.trimmed_count() <= b.invalid_count());
    }

    #[test]
    #[should_panic(expected = "invalidate page")]
    fn deallocate_enforces_the_state_machine() {
        let mut b = Block::new(2);
        b.deallocate(0, 0); // free page: same panic as invalidate
    }

    #[test]
    fn erase_resets_the_trimmed_counter() {
        let mut b = Block::new(2);
        b.program_next(0);
        b.program_next(0);
        b.deallocate(0, 1);
        b.invalidate(1, 1);
        assert_eq!(b.trimmed_count(), 1);
        b.erase(2);
        assert_eq!(b.trimmed_count(), 0);
    }

    #[test]
    fn recover_validity_rewrites_only_written_pages() {
        let mut b = Block::new(4);
        b.program_next(0);
        b.program_next(0);
        b.program_next(0);
        b.deallocate(0, 1);
        assert_eq!(b.trimmed_count(), 1);
        // Durable truth: only page 1 is referenced.
        b.recover_validity(|p| p == 1);
        assert_eq!(b.page_state(0), PageState::Invalid);
        assert_eq!(b.page_state(1), PageState::Valid);
        assert_eq!(b.page_state(2), PageState::Invalid);
        assert_eq!(b.page_state(3), PageState::Free, "unwritten pages stay free");
        assert_eq!(b.trimmed_count(), 0, "trim attribution is volatile");
    }

    #[test]
    fn wear_accumulates_across_erase_cycles() {
        let mut b = Block::new(1);
        for i in 0..5 {
            b.program_next(i);
            b.invalidate(0, i);
            b.erase(i);
        }
        assert_eq!(b.erase_count(), 5);
    }
}
