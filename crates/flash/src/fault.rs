//! Deterministic fault injection, bad-block bookkeeping and the durable
//! metadata a power-loss recovery pass reads back.
//!
//! Real NAND fails: programs abort, erases wear a block out, reads return
//! uncorrectable ECC errors, and power can disappear between any two
//! operations. The paper simulates a fault-free FlashSim; this module adds
//! the device half of the robustness story:
//!
//! * [`FlashError`] — the structured error every fallible device operation
//!   returns, distinguishing *injected faults* (program/erase/read
//!   failures, power loss) from *caller bugs* (bad PPN, programming a full
//!   block) that used to be panics.
//! * [`FaultConfig`] / [`FaultPlan`] — a seeded, deterministic fault
//!   schedule driven by [`cagc_sim::SimRng`]: per-operation failure
//!   probabilities, explicit per-ordinal schedules, per-block wear-out
//!   (erase-failure probability rising past an endurance limit) and a
//!   `crash_at_op` power-loss point counted in *durable operations*.
//! * [`PageOob`] — the out-of-band metadata stamped on every page at
//!   program time (logical page, fingerprint stamp, durable sequence
//!   number). Real controllers keep exactly this in the page spare area;
//!   recovery rebuilds the LPN→PPN mapping from it.
//! * [`JournalOp`] / [`JournalEntry`] — the mapping-delta journal: dedup
//!   remaps and trims change the mapping *without* programming a page, so
//!   the controller persists them in a small metadata log (as production
//!   FTLs do for their L2P delta). Sequence numbers are shared with
//!   [`PageOob::seq`], giving recovery one total order over all durable
//!   mapping mutations.
//!
//! Everything here is deterministic: the same [`FaultConfig`] (seed,
//! probabilities, schedules, crash point) against the same workload yields
//! a byte-identical run.

use cagc_sim::time::Nanos;
use cagc_sim::SimRng;
use std::collections::HashSet;

use crate::addr::{BlockId, Ppn};

/// Structured error for every fallible flash-device operation.
///
/// Injected faults ([`FlashError::is_injected`] is `true`) model the
/// device misbehaving and have recovery policies in the FTL; the remaining
/// variants are caller bugs — an FTL that triggers one is broken, and
/// callers are expected to `panic!` on them at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// The physical page number is outside the device.
    BadPpn {
        /// The offending address.
        ppn: Ppn,
    },
    /// The block id is outside the device.
    BadBlock {
        /// The offending block.
        block: BlockId,
    },
    /// Program issued to a block with no free pages left.
    BlockFull {
        /// The full block.
        block: BlockId,
    },
    /// Read of a page that was never programmed since the last erase.
    ReadFree {
        /// The free page.
        ppn: Ppn,
    },
    /// Erase issued while the block still holds valid pages.
    EraseValid {
        /// The block.
        block: BlockId,
        /// How many valid pages it still holds.
        valid: u32,
    },
    /// Operation issued to a block already retired to the bad-block table.
    Retired {
        /// The retired block.
        block: BlockId,
    },
    /// Injected program failure: the target page is spoiled (consumed and
    /// unreadable) and the FTL must retry on another block.
    ProgramFailed {
        /// The page the failed program consumed.
        ppn: Ppn,
        /// When the failed attempt completed on the die.
        at: Nanos,
    },
    /// Injected erase failure: the device retired the block to the
    /// bad-block table; its pages are gone from the usable pool.
    EraseFailed {
        /// The block that failed to erase (now retired).
        block: BlockId,
        /// When the failed attempt completed on the die.
        at: Nanos,
    },
    /// Injected uncorrectable-ECC read error for this attempt (a re-read
    /// may succeed; the FTL decides the retry policy).
    ReadEcc {
        /// The page whose read failed.
        ppn: Ppn,
        /// When the failed attempt completed on the die.
        at: Nanos,
    },
    /// Injected failure of a *last-resort* recovery action (the heroic
    /// ECC decode after re-reads, the forced program after retries): the
    /// FTL has nothing left to try and the host sees an NVMe-style error
    /// completion. Raised by the FTL from
    /// [`FaultPlan::roll_unrecoverable`]; the device itself never returns
    /// it.
    Unrecoverable {
        /// When the failed recovery attempt completed.
        at: Nanos,
    },
    /// Power was lost: the device is down until
    /// [`crate::FlashDevice::power_cycle`]; every operation fails with
    /// this error and nothing more becomes durable.
    PowerLoss,
}

impl FlashError {
    /// Whether this error is an injected fault (device misbehaviour with a
    /// recovery policy) rather than a caller bug.
    pub fn is_injected(&self) -> bool {
        matches!(
            self,
            FlashError::ProgramFailed { .. }
                | FlashError::EraseFailed { .. }
                | FlashError::ReadEcc { .. }
                | FlashError::Unrecoverable { .. }
                | FlashError::PowerLoss
        )
    }
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::BadPpn { ppn } => write!(f, "ppn {ppn} out of range"),
            FlashError::BadBlock { block } => write!(f, "block {block} out of range"),
            FlashError::BlockFull { block } => write!(f, "program on full block {block}"),
            FlashError::ReadFree { ppn } => write!(f, "read of free (unwritten) page ppn={ppn}"),
            FlashError::EraseValid { block, valid } => {
                write!(f, "erase of block {block} with {valid} valid pages")
            }
            FlashError::Retired { block } => write!(f, "operation on retired block {block}"),
            FlashError::ProgramFailed { ppn, at } => {
                write!(f, "injected program failure at ppn {ppn} (t={at})")
            }
            FlashError::EraseFailed { block, at } => {
                write!(f, "injected erase failure on block {block} (t={at})")
            }
            FlashError::ReadEcc { ppn, at } => {
                write!(f, "injected read ECC error at ppn {ppn} (t={at})")
            }
            FlashError::Unrecoverable { at } => {
                write!(f, "injected unrecoverable recovery failure (t={at})")
            }
            FlashError::PowerLoss => write!(f, "power loss"),
        }
    }
}

impl std::error::Error for FlashError {}

/// Fault-injection configuration (all-zero default = no faults, and the
/// device behaves bit-identically to a build without this subsystem).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// Probability that any single program attempt fails.
    pub program_fail_prob: f64,
    /// Baseline probability that any single erase attempt fails.
    pub erase_fail_prob: f64,
    /// Probability that any single read attempt returns an ECC error.
    pub read_ecc_prob: f64,
    /// Probability that a *last-resort* recovery action fails: the heroic
    /// ECC decode a host read falls back to after exhausting re-reads, or
    /// the forced program a host write falls back to after exhausting
    /// retries. When it fires the FTL has nothing left to try and the
    /// host sees an NVMe-style error completion (media read error /
    /// write fault) instead of a latency. Drawn from its own PRNG stream
    /// (`"unrecoverable"`), so enabling it never perturbs the
    /// program/erase/read fault sequence of an existing seed.
    pub unrecoverable_prob: f64,
    /// Erase count past which wear-out sets in (0 disables wear-out).
    pub endurance_limit: u32,
    /// Additional erase-failure probability per erase beyond
    /// [`FaultConfig::endurance_limit`] (the wear-out ramp).
    pub wearout_slope: f64,
    /// Seed for the fault plan's own PRNG stream (independent of every
    /// other stream in the simulation).
    pub seed: u64,
    /// Power loss after this many *durable operations* (programs, erases,
    /// journal appends): the N-th durable op and everything after it never
    /// happens. `None` = never.
    pub crash_at_op: Option<u64>,
    /// Explicit schedule: 0-based ordinals of program attempts that fail
    /// regardless of probability.
    pub fail_program_ops: Vec<u64>,
    /// Explicit schedule: 0-based ordinals of erase attempts that fail.
    pub fail_erase_ops: Vec<u64>,
    /// Explicit schedule: 0-based ordinals of read attempts that fail.
    pub fail_read_ops: Vec<u64>,
}

impl FaultConfig {
    /// No faults at all (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault source is configured. When `false`, the device
    /// takes the exact pre-fault-subsystem fast paths: no PRNG draws, no
    /// schedule probes.
    pub fn is_active(&self) -> bool {
        self.program_fail_prob > 0.0
            || self.erase_fail_prob > 0.0
            || self.read_ecc_prob > 0.0
            || self.unrecoverable_prob > 0.0
            || (self.endurance_limit > 0 && self.wearout_slope > 0.0)
            || self.crash_at_op.is_some()
            || !self.fail_program_ops.is_empty()
            || !self.fail_erase_ops.is_empty()
            || !self.fail_read_ops.is_empty()
    }

    /// Sanity-check probabilities and the wear-out ramp.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("program_fail_prob", self.program_fail_prob),
            ("erase_fail_prob", self.erase_fail_prob),
            ("read_ecc_prob", self.read_ecc_prob),
            ("unrecoverable_prob", self.unrecoverable_prob),
            ("wearout_slope", self.wearout_slope),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} outside [0, 1]"));
            }
        }
        Ok(())
    }
}

/// Runtime state of the fault injector: the configuration, its PRNG
/// stream, per-class operation ordinals and the power-loss latch.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    active: bool,
    rng: SimRng,
    // Separate stream for unrecoverable-recovery rolls: the main
    // `"fault-plan"` stream's draw sequence must not shift when
    // `unrecoverable_prob` is enabled on an existing seed.
    unrecoverable_rng: SimRng,
    programs_seen: u64,
    erases_seen: u64,
    reads_seen: u64,
    durable_ops: u64,
    crashed: bool,
    fail_program_ops: HashSet<u64>,
    fail_erase_ops: HashSet<u64>,
    fail_read_ops: HashSet<u64>,
}

impl FaultPlan {
    /// A plan from its configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        let active = cfg.is_active();
        Self {
            rng: SimRng::for_stream(cfg.seed, "fault-plan"),
            unrecoverable_rng: SimRng::for_stream(cfg.seed, "unrecoverable"),
            fail_program_ops: cfg.fail_program_ops.iter().copied().collect(),
            fail_erase_ops: cfg.fail_erase_ops.iter().copied().collect(),
            fail_read_ops: cfg.fail_read_ops.iter().copied().collect(),
            active,
            cfg,
            programs_seen: 0,
            erases_seen: 0,
            reads_seen: 0,
            durable_ops: 0,
            crashed: false,
        }
    }

    /// Whether any fault source is configured.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether the simulated power-loss point has been reached.
    #[inline]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Durable operations performed so far (programs, erases, journal
    /// appends) — the clock `crash_at_op` counts in.
    #[inline]
    pub fn durable_ops(&self) -> u64 {
        self.durable_ops
    }

    /// Clear the power-loss latch (the crash point is consumed: it will
    /// not fire again after the cycle).
    pub fn power_cycle(&mut self) {
        self.crashed = false;
        self.cfg.crash_at_op = None;
    }

    /// Account one durable operation; trips the power-loss latch when the
    /// configured crash point is reached (that operation does not happen).
    pub fn note_durable_op(&mut self) -> Result<(), FlashError> {
        if self.crashed {
            return Err(FlashError::PowerLoss);
        }
        if let Some(limit) = self.cfg.crash_at_op {
            if self.durable_ops >= limit {
                self.crashed = true;
                return Err(FlashError::PowerLoss);
            }
        }
        self.durable_ops += 1;
        Ok(())
    }

    /// Should the next program attempt fail? Advances the program ordinal.
    pub fn roll_program(&mut self) -> bool {
        if !self.active {
            return false;
        }
        let ordinal = self.programs_seen;
        self.programs_seen += 1;
        let drawn = self.rng.gen_bool(self.cfg.program_fail_prob);
        self.fail_program_ops.contains(&ordinal) || drawn
    }

    /// Should the next erase attempt fail, given the block's current wear?
    /// Advances the erase ordinal. Past the endurance limit the failure
    /// probability ramps by `wearout_slope` per additional erase.
    pub fn roll_erase(&mut self, erase_count: u32) -> bool {
        if !self.active {
            return false;
        }
        let ordinal = self.erases_seen;
        self.erases_seen += 1;
        let mut p = self.cfg.erase_fail_prob;
        if self.cfg.endurance_limit > 0 && erase_count >= self.cfg.endurance_limit {
            p += self.cfg.wearout_slope * (erase_count - self.cfg.endurance_limit + 1) as f64;
        }
        let drawn = self.rng.gen_bool(p.min(1.0));
        self.fail_erase_ops.contains(&ordinal) || drawn
    }

    /// Should the next read attempt return an ECC error? Advances the
    /// read ordinal.
    pub fn roll_read(&mut self) -> bool {
        if !self.active {
            return false;
        }
        let ordinal = self.reads_seen;
        self.reads_seen += 1;
        let drawn = self.rng.gen_bool(self.cfg.read_ecc_prob);
        self.fail_read_ops.contains(&ordinal) || drawn
    }

    /// Should a *last-resort* recovery action (heroic ECC decode, forced
    /// program) fail, surfacing an unrecoverable error to the host? Draws
    /// from the dedicated `"unrecoverable"` stream only — the main fault
    /// stream's sequence is untouched, so existing fault runs stay
    /// byte-identical when this knob is zero.
    pub fn roll_unrecoverable(&mut self) -> bool {
        if !self.active || self.cfg.unrecoverable_prob <= 0.0 {
            return false;
        }
        self.unrecoverable_rng.gen_bool(self.cfg.unrecoverable_prob)
    }
}

/// Out-of-band metadata stamped on a page when it is programmed — the
/// durable breadcrumbs recovery rebuilds the mapping from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageOob {
    /// The logical page bound to this physical page at program time.
    /// `None` for GC relocation programs (their sharers are journalled as
    /// [`JournalOp::Remap`] records instead) and for torn/failed programs.
    pub lpn: Option<u64>,
    /// Fingerprint stamp (low 64 bits of the SHA-1) when this page is a
    /// tracked stored copy in the dedup index; `None` for untracked pages.
    pub fp: Option<u64>,
    /// Durable sequence number assigned by the device at program time;
    /// shares one counter with [`JournalEntry::seq`], so sorting all
    /// records by `seq` yields the exact durability order.
    pub seq: u64,
}

impl PageOob {
    /// OOB for a foreground (host) program binding `lpn`, optionally a
    /// fingerprint-tracked copy (inline dedup schemes stamp every program).
    pub fn host(lpn: u64, fp: Option<u64>) -> Self {
        Self { lpn: Some(lpn), fp, seq: 0 }
    }

    /// OOB for a GC relocation program: no single bound LPN (every sharer
    /// is journalled), optionally a fingerprint stamp.
    pub fn gc(fp: Option<u64>) -> Self {
        Self { lpn: None, fp, seq: 0 }
    }
}

/// A mapping mutation that does not program a page, persisted in the
/// controller's metadata journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// `lpn` now maps to `ppn` (dedup hit, GC relocation of a sharer).
    Remap {
        /// The logical page.
        lpn: u64,
        /// Its new physical page.
        ppn: Ppn,
    },
    /// `lpn` is unmapped (host trim honored).
    Unmap {
        /// The logical page.
        lpn: u64,
    },
}

/// One journalled mapping mutation with its durable sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Position in the total durable order (shared with [`PageOob::seq`]).
    pub seq: u64,
    /// The mutation.
    pub op: JournalOp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inactive() {
        let cfg = FaultConfig::none();
        assert!(!cfg.is_active());
        cfg.validate().unwrap();
        let mut plan = FaultPlan::new(cfg);
        assert!(!plan.roll_program());
        assert!(!plan.roll_erase(1_000_000));
        assert!(!plan.roll_read());
        assert!(!plan.crashed());
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let cfg = FaultConfig { program_fail_prob: 1.5, ..FaultConfig::none() };
        assert!(cfg.validate().is_err());
        let cfg = FaultConfig { wearout_slope: -0.1, ..FaultConfig::none() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn explicit_schedules_fire_on_exact_ordinals() {
        let cfg = FaultConfig { fail_program_ops: vec![0, 2], ..FaultConfig::none() };
        assert!(cfg.is_active());
        let mut plan = FaultPlan::new(cfg);
        assert!(plan.roll_program()); // ordinal 0
        assert!(!plan.roll_program()); // ordinal 1
        assert!(plan.roll_program()); // ordinal 2
        assert!(!plan.roll_program());
    }

    #[test]
    fn probability_rolls_are_seed_deterministic() {
        let cfg = FaultConfig { program_fail_prob: 0.3, seed: 42, ..FaultConfig::none() };
        let mut a = FaultPlan::new(cfg.clone());
        let mut b = FaultPlan::new(cfg);
        let xs: Vec<bool> = (0..256).map(|_| a.roll_program()).collect();
        let ys: Vec<bool> = (0..256).map(|_| b.roll_program()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x) && xs.iter().any(|&x| !x));
    }

    #[test]
    fn wearout_ramps_erase_failures_past_the_limit() {
        let cfg = FaultConfig {
            endurance_limit: 10,
            wearout_slope: 0.2,
            seed: 7,
            ..FaultConfig::none()
        };
        let mut plan = FaultPlan::new(cfg);
        let fresh = (0..500).filter(|_| plan.roll_erase(0)).count();
        let worn = (0..500).filter(|_| plan.roll_erase(30)).count();
        assert_eq!(fresh, 0, "below the limit the base probability is zero");
        assert!(worn > 400, "21 erases past the limit ⇒ certain failure, got {worn}/500");
    }

    #[test]
    fn crash_point_counts_durable_ops_and_latches() {
        let cfg = FaultConfig { crash_at_op: Some(2), ..FaultConfig::none() };
        let mut plan = FaultPlan::new(cfg);
        assert!(plan.note_durable_op().is_ok());
        assert!(plan.note_durable_op().is_ok());
        assert_eq!(plan.note_durable_op(), Err(FlashError::PowerLoss));
        assert!(plan.crashed());
        // Latched: everything after fails too.
        assert_eq!(plan.note_durable_op(), Err(FlashError::PowerLoss));
        plan.power_cycle();
        assert!(!plan.crashed());
        // The crash point is consumed: durable ops flow again.
        assert!(plan.note_durable_op().is_ok());
    }

    #[test]
    fn unrecoverable_rolls_use_their_own_stream() {
        // Same seed, same probability rolls on the main stream, with and
        // without the unrecoverable knob: the main stream must not shift.
        let base = FaultConfig { program_fail_prob: 0.3, seed: 42, ..FaultConfig::none() };
        let with = FaultConfig { unrecoverable_prob: 0.5, ..base.clone() };
        let mut a = FaultPlan::new(base);
        let mut b = FaultPlan::new(with);
        let xs: Vec<bool> = (0..256).map(|_| a.roll_program()).collect();
        let ys: Vec<bool> = (0..256)
            .map(|_| {
                let _ = b.roll_unrecoverable(); // interleave draws
                b.roll_program()
            })
            .collect();
        assert_eq!(xs, ys, "unrecoverable rolls must not perturb the main stream");
    }

    #[test]
    fn unrecoverable_prob_activates_and_rolls_deterministically() {
        let off = FaultConfig::none();
        assert!(!FaultPlan::new(off).roll_unrecoverable());
        let cfg = FaultConfig { unrecoverable_prob: 1.0, seed: 9, ..FaultConfig::none() };
        assert!(cfg.is_active());
        cfg.validate().unwrap();
        let mut plan = FaultPlan::new(cfg.clone());
        assert!(plan.roll_unrecoverable(), "prob 1.0 must always fire");
        let mut a = FaultPlan::new(FaultConfig { unrecoverable_prob: 0.4, ..cfg.clone() });
        let mut b = FaultPlan::new(FaultConfig { unrecoverable_prob: 0.4, ..cfg });
        let xs: Vec<bool> = (0..128).map(|_| a.roll_unrecoverable()).collect();
        let ys: Vec<bool> = (0..128).map(|_| b.roll_unrecoverable()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x) && xs.iter().any(|&x| !x));
        let bad = FaultConfig { unrecoverable_prob: 2.0, ..FaultConfig::none() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn injected_faults_are_distinguishable_from_caller_bugs() {
        assert!(FlashError::ProgramFailed { ppn: 1, at: 0 }.is_injected());
        assert!(FlashError::PowerLoss.is_injected());
        assert!(!FlashError::BlockFull { block: 3 }.is_injected());
        assert!(!FlashError::BadPpn { ppn: 9 }.is_injected());
        // Errors render something human-readable.
        assert!(format!("{}", FlashError::EraseFailed { block: 2, at: 5 }).contains("block 2"));
    }
}
