//! Physical address types.
//!
//! Physical page numbers ([`Ppn`]) are flat `u64` indices into the device's
//! page space; block ids ([`BlockId`]) are flat `u32` indices into its block
//! space. Both are plain integers rather than rich newtypes because they are
//! used as direct indices into dense per-page/per-block tables on the
//! simulator's hot path; [`crate::Geometry`] owns all conversions between
//! them and the (channel, die, plane, block, page) tuple form.

/// Flat physical page number: `block_id * pages_per_block + page_offset`.
pub type Ppn = u64;

/// Flat physical block id.
pub type BlockId = u32;

/// Page offset within its block (`0..pages_per_block`).
pub type PageOffset = u32;

/// Sentinel for "no physical page" (unmapped LPN, empty slot).
pub const NO_PPN: Ppn = Ppn::MAX;

/// A fully decomposed physical address, mostly for debugging and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysAddr {
    /// Channel index.
    pub channel: u32,
    /// Die index within the channel.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ch{}/die{}/pl{}/blk{}/pg{}",
            self.channel, self.die, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ppn_is_distinct_from_any_real_ppn() {
        // Real devices in this workspace are far below 2^63 pages.
        assert_eq!(NO_PPN, u64::MAX);
    }

    #[test]
    fn phys_addr_displays_readably() {
        let a = PhysAddr { channel: 1, die: 2, plane: 0, block: 37, page: 5 };
        assert_eq!(a.to_string(), "ch1/die2/pl0/blk37/pg5");
    }
}
