//! Device geometry and address arithmetic.

use crate::addr::{BlockId, PageOffset, PhysAddr, Ppn};

/// NAND geometry: channels × dies/channel × planes/die × blocks/plane ×
/// pages/block, with `page_size` bytes per page.
///
/// All address math lives here. Physical page numbers are laid out
/// block-major (`ppn = block_id * pages_per_block + page`), and block ids are
/// laid out so that consecutive blocks in the same plane are contiguous:
/// `block_id = ((channel * dies + die) * planes + plane) * blocks_per_plane
/// + block`. A block's die is therefore a cheap division.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of channels.
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_size: u32,
}

impl Geometry {
    /// Validate and construct a geometry.
    ///
    /// # Panics
    /// Panics if any dimension is zero — a zero-sized device is always a
    /// configuration bug, and the panic message names the offending field.
    pub fn new(
        channels: u32,
        dies_per_channel: u32,
        planes_per_die: u32,
        blocks_per_plane: u32,
        pages_per_block: u32,
        page_size: u32,
    ) -> Self {
        assert!(channels > 0, "geometry: channels must be > 0");
        assert!(dies_per_channel > 0, "geometry: dies_per_channel must be > 0");
        assert!(planes_per_die > 0, "geometry: planes_per_die must be > 0");
        assert!(blocks_per_plane > 0, "geometry: blocks_per_plane must be > 0");
        assert!(pages_per_block > 0, "geometry: pages_per_block must be > 0");
        assert!(page_size > 0, "geometry: page_size must be > 0");
        Self {
            channels,
            dies_per_channel,
            planes_per_die,
            blocks_per_plane,
            pages_per_block,
            page_size,
        }
    }

    /// Total number of dies.
    #[inline]
    pub fn total_dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Total number of blocks.
    #[inline]
    pub fn total_blocks(&self) -> u32 {
        self.total_dies() * self.planes_per_die * self.blocks_per_plane
    }

    /// Total number of physical pages.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Blocks per die (planes × blocks/plane).
    #[inline]
    pub fn blocks_per_die(&self) -> u32 {
        self.planes_per_die * self.blocks_per_plane
    }

    /// Compose a PPN from block id and page offset.
    ///
    /// # Panics
    /// Panics (debug) if the block id or page offset is out of range.
    #[inline]
    pub fn ppn(&self, block: BlockId, page: PageOffset) -> Ppn {
        debug_assert!(block < self.total_blocks(), "block {block} out of range");
        debug_assert!(page < self.pages_per_block, "page {page} out of range");
        block as u64 * self.pages_per_block as u64 + page as u64
    }

    /// Block id containing `ppn`.
    #[inline]
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        debug_assert!(ppn < self.total_pages(), "ppn {ppn} out of range");
        (ppn / self.pages_per_block as u64) as BlockId
    }

    /// Page offset of `ppn` within its block.
    #[inline]
    pub fn page_of(&self, ppn: Ppn) -> PageOffset {
        (ppn % self.pages_per_block as u64) as PageOffset
    }

    /// Die index (0-based, device-wide) that owns block `block`.
    #[inline]
    pub fn die_of_block(&self, block: BlockId) -> u32 {
        debug_assert!(block < self.total_blocks(), "block {block} out of range");
        block / self.blocks_per_die()
    }

    /// Die index that owns `ppn`.
    #[inline]
    pub fn die_of(&self, ppn: Ppn) -> u32 {
        self.die_of_block(self.block_of(ppn))
    }

    /// Channel index that owns `ppn`.
    #[inline]
    pub fn channel_of(&self, ppn: Ppn) -> u32 {
        self.die_of(ppn) / self.dies_per_channel
    }

    /// Fully decompose a PPN (diagnostics).
    pub fn decompose(&self, ppn: Ppn) -> PhysAddr {
        let block = self.block_of(ppn);
        let page = self.page_of(ppn);
        let die_global = self.die_of_block(block);
        let within_die = block % self.blocks_per_die();
        PhysAddr {
            channel: die_global / self.dies_per_channel,
            die: die_global % self.dies_per_channel,
            plane: within_die / self.blocks_per_plane,
            block: within_die % self.blocks_per_plane,
            page,
        }
    }

    /// Iterate every PPN of a block, in program order.
    pub fn pages_of_block(&self, block: BlockId) -> impl Iterator<Item = Ppn> {
        let base = block as u64 * self.pages_per_block as u64;
        (0..self.pages_per_block as u64).map(move |p| base + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Geometry {
        // 2 channels × 2 dies × 2 planes × 8 blocks × 16 pages × 4KiB
        Geometry::new(2, 2, 2, 8, 16, 4096)
    }

    #[test]
    fn totals_multiply_out() {
        let g = g();
        assert_eq!(g.total_dies(), 4);
        assert_eq!(g.blocks_per_die(), 16);
        assert_eq!(g.total_blocks(), 64);
        assert_eq!(g.total_pages(), 1024);
        assert_eq!(g.capacity_bytes(), 1024 * 4096);
    }

    #[test]
    fn ppn_round_trips_through_block_and_page() {
        let g = g();
        for block in 0..g.total_blocks() {
            for page in (0..g.pages_per_block).step_by(5) {
                let ppn = g.ppn(block, page);
                assert_eq!(g.block_of(ppn), block);
                assert_eq!(g.page_of(ppn), page);
            }
        }
    }

    #[test]
    fn die_mapping_partitions_blocks_evenly() {
        let g = g();
        let mut counts = vec![0u32; g.total_dies() as usize];
        for b in 0..g.total_blocks() {
            counts[g.die_of_block(b) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == g.blocks_per_die()));
    }

    #[test]
    fn decompose_is_consistent_with_accessors() {
        let g = g();
        let ppn = g.ppn(37, 11);
        let a = g.decompose(ppn);
        assert_eq!(a.page, 11);
        assert_eq!(a.channel, g.channel_of(ppn));
        let die_global = a.channel * g.dies_per_channel + a.die;
        assert_eq!(die_global, g.die_of(ppn));
        // Recompose the block id and check it matches.
        let block = ((a.channel * g.dies_per_channel + a.die) * g.planes_per_die + a.plane)
            * g.blocks_per_plane
            + a.block;
        assert_eq!(block, g.block_of(ppn));
    }

    #[test]
    fn pages_of_block_covers_exactly_the_block() {
        let g = g();
        let pages: Vec<Ppn> = g.pages_of_block(3).collect();
        assert_eq!(pages.len(), 16);
        assert_eq!(pages[0], g.ppn(3, 0));
        assert_eq!(*pages.last().unwrap(), g.ppn(3, 15));
        assert!(pages.iter().all(|&p| g.block_of(p) == 3));
    }

    #[test]
    #[should_panic(expected = "pages_per_block")]
    fn zero_dimension_rejected() {
        Geometry::new(1, 1, 1, 1, 0, 4096);
    }

    #[test]
    fn table1_block_shape() {
        // Table I: 4KB pages, 256KB blocks => 64 pages/block.
        let g = Geometry::new(8, 4, 1, 100, 64, 4096);
        assert_eq!(g.pages_per_block * g.page_size, 256 * 1024);
    }
}
