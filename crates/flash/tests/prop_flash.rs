//! Property-based tests for the flash device model.

use cagc_flash::{FaultConfig, FlashDevice, FlashError, Geometry, PageOob, PageState, Timing, UllConfig};
use cagc_harness::prop::*;

fn small_geometry() -> Geometry {
    Geometry::new(1, 2, 1, 8, 8, 4096)
}

harness_proptest! {
    /// Address round-trip: ppn → (block, page) → ppn for arbitrary geometry.
    #[test]
    fn geometry_address_round_trip(
        ch in 1u32..4, dies in 1u32..4, planes in 1u32..3,
        blocks in 1u32..32, pages in 1u32..64,
    ) {
        let g = Geometry::new(ch, dies, planes, blocks, pages, 4096);
        // Sample a spread of ppns rather than all (could be large).
        let total = g.total_pages();
        let step = (total / 97).max(1);
        let mut ppn = 0;
        while ppn < total {
            let b = g.block_of(ppn);
            let p = g.page_of(ppn);
            prop_assert_eq!(g.ppn(b, p), ppn);
            prop_assert!(g.die_of_block(b) < g.total_dies());
            prop_assert!(g.channel_of(ppn) < g.channels);
            ppn += step;
        }
    }

    /// Under any interleaving of program/invalidate/erase, per-block page
    /// accounting always satisfies valid + invalid + free == pages, and the
    /// device never reaches an inconsistent state.
    #[test]
    fn block_accounting_invariant_holds(ops in vec(0u8..3, 1..400)) {
        let g = small_geometry();
        let mut d = FlashDevice::new(g, Timing::ull());
        let nblocks = g.total_blocks();
        let mut now = 0u64;
        let mut live: Vec<u64> = Vec::new(); // ppns currently valid

        for (i, &op) in ops.iter().enumerate() {
            now += 1_000;
            let blk = (i as u32 * 7) % nblocks;
            match op {
                0 => {
                    // program into blk if it has room
                    if d.block(blk).next_program_page().is_some() {
                        let (_, ppn) = d.program_next(blk, now, PageOob::gc(None)).unwrap();
                        live.push(ppn);
                    }
                }
                1 => {
                    // invalidate a random-ish live page
                    if !live.is_empty() {
                        let ppn = live.swap_remove(i % live.len());
                        d.invalidate(ppn, now);
                    }
                }
                _ => {
                    // erase blk if it has no valid pages
                    if d.block(blk).valid_count() == 0 && !d.block(blk).is_free() {
                        d.erase(blk, now).unwrap();
                    }
                }
            }
            // Invariants after every step.
            for b in 0..nblocks {
                let blk = d.block(b);
                prop_assert_eq!(
                    blk.valid_count() + blk.invalid_count() + blk.free_count(),
                    blk.pages()
                );
            }
        }
        // Every live ppn the model says is valid must read back as Valid.
        for &ppn in &live {
            prop_assert_eq!(d.page_state(ppn), PageState::Valid);
        }
    }

    /// Reservations on a die never travel back in time, regardless of the
    /// operation mix, and stats totals match issued operations.
    #[test]
    fn die_time_is_monotone_per_die(ops in vec((0u8..2, 0u32..16), 1..200)) {
        let g = small_geometry();
        let mut d = FlashDevice::new(g, Timing::ull());
        let mut per_die_last = vec![0u64; g.total_dies() as usize];
        let mut programs = 0u64;
        let mut reads = 0u64;
        let mut written: Vec<u64> = Vec::new();

        for &(kind, blksel) in &ops {
            let blk = blksel % g.total_blocks();
            let die = g.die_of_block(blk) as usize;
            match kind {
                0 if d.block(blk).next_program_page().is_some() => {
                    let (r, ppn) = d.program_next(blk, 0, PageOob::gc(None)).unwrap();
                    prop_assert!(r.start >= per_die_last[die] || r.start == per_die_last[die]);
                    prop_assert!(r.end > per_die_last[die]);
                    per_die_last[die] = r.end;
                    written.push(ppn);
                    programs += 1;
                }
                1 if !written.is_empty() => {
                    let ppn = written[blksel as usize % written.len()];
                    let die = g.die_of(ppn) as usize;
                    let r = d.read(ppn, 0).unwrap();
                    prop_assert!(r.end > per_die_last[die]);
                    per_die_last[die] = r.end;
                    reads += 1;
                }
                _ => {}
            }
        }
        prop_assert_eq!(d.stats().programs, programs);
        prop_assert_eq!(d.stats().reads, reads);
    }

    /// Under an arbitrary probabilistic fault mix, the device keeps its
    /// story straight: every outcome is a success or a structured injected
    /// fault, failed erases retire their block exactly once, retired
    /// blocks reject all further work, and per-block page accounting
    /// still balances after every step.
    #[test]
    fn fault_injection_preserves_device_accounting(
        seed in 0u64..10_000,
        p_prog in 0.0f64..0.4,
        p_erase in 0.0f64..0.4,
        p_read in 0.0f64..0.4,
        ops in vec(0u8..3, 1..300),
    ) {
        let g = small_geometry();
        let faults = FaultConfig {
            program_fail_prob: p_prog,
            erase_fail_prob: p_erase,
            read_ecc_prob: p_read,
            seed,
            ..FaultConfig::none()
        };
        let mut d = FlashDevice::with_faults(g, Timing::ull(), faults);
        let nblocks = g.total_blocks();
        let mut live: Vec<u64> = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            let now = (i as u64 + 1) * 1_000;
            let blk = (i as u32 * 5) % nblocks;
            match op {
                0 if !d.is_retired(blk) && d.block(blk).next_program_page().is_some() => {
                    match d.program_next(blk, now, PageOob::gc(None)) {
                        Ok((_, ppn)) => live.push(ppn),
                        Err(FlashError::ProgramFailed { ppn, .. }) => {
                            prop_assert_eq!(d.page_state(ppn), PageState::Invalid);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("program: {e}"))),
                    }
                }
                1 if !live.is_empty() => {
                    let ppn = live[i % live.len()];
                    match d.read(ppn, now) {
                        Ok(_) => {}
                        Err(FlashError::ReadEcc { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("read: {e}"))),
                    }
                }
                _ => {
                    if !d.is_retired(blk) && d.block(blk).valid_count() == 0
                        && !d.block(blk).is_free()
                    {
                        match d.erase(blk, now) {
                            Ok(_) => {}
                            Err(FlashError::EraseFailed { block, .. }) => {
                                prop_assert!(d.is_retired(block));
                                prop_assert_eq!(
                                    d.program_next(block, now, PageOob::gc(None)),
                                    Err(FlashError::Retired { block })
                                );
                            }
                            Err(e) => return Err(TestCaseError::fail(format!("erase: {e}"))),
                        }
                    }
                }
            }
            for b in 0..nblocks {
                let blk = d.block(b);
                prop_assert_eq!(
                    blk.valid_count() + blk.invalid_count() + blk.free_count(),
                    blk.pages()
                );
            }
        }
        let retired = d.retired_blocks().len() as u64;
        prop_assert_eq!(d.stats().blocks_retired, retired);
        prop_assert_eq!(d.stats().erase_failures, retired);
    }
}

#[test]
fn full_block_lifecycle_with_table1_timing() {
    let cfg = UllConfig::tiny_for_tests();
    let mut d = FlashDevice::new(cfg.geometry(), cfg.timing());
    let ppb = cfg.pages_per_block;

    // Fill block 0 completely.
    let mut now = 0;
    let mut ppns = Vec::new();
    for _ in 0..ppb {
        let (r, ppn) = d.program_next(0, now, PageOob::host(0, None)).unwrap();
        now = r.end;
        ppns.push(ppn);
    }
    assert!(d.block(0).is_full());
    // Sequential programs on one die: exactly ppb * 16us of busy time.
    assert_eq!(now, ppb as u64 * 16_000);

    // Invalidate all, erase, and confirm wear.
    for ppn in ppns {
        d.invalidate(ppn, now);
    }
    let e = d.erase(0, now).unwrap();
    assert_eq!(e.end - e.start, 1_500_000);
    assert_eq!(d.block(0).erase_count(), 1);
    assert_eq!(d.stats().erases, 1);
}
